#!/usr/bin/env python3
"""Socket smoke test for `lmpr serve --socket`.

Spawns the daemon on a temporary UNIX socket, drives one session end to
end (TOPO, GEN, PATH, EVENT, STATS, a malformed line), opens a SECOND
connection to prove sessions are independent, then sends SHUTDOWN and
asserts the daemon exits 0 and removes the socket file.

Stdlib only, so CI can run it with a bare python3.

Usage: serve_socket_smoke.py /path/to/lmpr
"""

import os
import socket
import subprocess
import sys
import tempfile
import time


def connect(path, deadline=10.0):
    """Connects to the UNIX socket, polling until the daemon binds it."""
    end = time.time() + deadline
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except (FileNotFoundError, ConnectionRefusedError):
            sock.close()
            if time.time() > end:
                raise
            time.sleep(0.05)


class Session:
    def __init__(self, path):
        self.sock = connect(path)
        self.buffer = b""

    def send(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def recv_line(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise AssertionError("daemon closed the connection early")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def ask(self, line):
        self.send(line)
        return self.recv_line()

    def close(self):
        self.sock.close()


def expect(response, prefix, context):
    if not response.startswith(prefix):
        raise AssertionError(
            f"{context}: expected a response starting with {prefix!r}, "
            f"got {response!r}")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    # /tmp keeps the sun_path under its ~107-byte limit even when the
    # build tree lives somewhere deep.
    sock_dir = tempfile.mkdtemp(prefix="lmpr-serve-", dir="/tmp")
    sock_path = os.path.join(sock_dir, "lmpr.sock")
    daemon = subprocess.Popen(
        [binary, "serve", "--socket", sock_path, "--zero-timings"])
    try:
        one = Session(sock_path)
        expect(one.ask("TOPO XGFT(2;4,4;1,4)"), "OK XGFT(2;4,4;1,4)", "TOPO")
        expect(one.ask("GEN"), "OK gen=1", "GEN")

        one.send("PATH 0 5")
        header = one.recv_line()
        expect(header, "OK gen=1 variants=4 usable=4", "PATH header")
        lines = []
        while True:
            line = one.recv_line()
            if line == "END":
                break
            lines.append(line)
        if len(lines) != 4 or not all(l.startswith("VAR ") for l in lines):
            raise AssertionError(f"bad PATH body: {lines!r}")

        expect(one.ask("EVENT cable_down 16 20"), "OK gen=2", "EVENT")
        expect(one.ask("STATS"), "OK gen=2", "STATS")
        expect(one.ask("NONSENSE"), "ERR ", "reject")

        # A second concurrent session shares the fabric but counts its
        # own lines (the ERR line number restarts at its own input).
        two = Session(sock_path)
        expect(two.ask("GEN"), "OK gen=2", "second session GEN")
        expect(two.ask("NONSENSE"), "ERR 2:", "second session line count")
        expect(two.ask("QUIT"), "OK bye", "QUIT")
        two.close()

        expect(one.ask("SHUTDOWN"), "OK shutting down", "SHUTDOWN")
        one.close()

        code = daemon.wait(timeout=10)
        if code != 0:
            raise AssertionError(f"daemon exited {code}, expected 0")
        if os.path.exists(sock_path):
            raise AssertionError("socket file survived shutdown")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        if os.path.exists(sock_path):
            os.unlink(sock_path)
        os.rmdir(sock_dir)
    print("serve socket smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
