#!/usr/bin/env python3
"""Perf-regression guard over the perf_baseline run report.

Reads a BENCH_perf.json document (schema lmpr-perf-baseline/v1, written
by `lmpr run perf_baseline`) and fails -- exit status 1 -- on either:

  * a `speedup` field anywhere in the document below the threshold
    (default 1.0): the active-set flit kernel, the event kernel, the
    pooled fig5 sweep and the cached permutation study must never be
    SLOWER than their reference implementations;
  * the event-kernel low-load bar: every `event_kernel` entry at
    offered_load <= 0.2 must be at least as fast as the active-set
    kernel, and the BEST low-load entry must reach --min-event-speedup
    (default 5.0) -- the idle-cycle skipping the kernel exists for; or
  * a tracked benchmark section MISSING from the document.  A refactor
    that silently drops a benchmark would otherwise pass the speedup
    check vacuously; the key guard turns "we stopped measuring it" into
    a build failure.

Stdlib only, so CI can run it with a bare python3.

Usage: check_perf_baseline.py [--min-speedup X] [--min-event-speedup X]
                              [--expect-key PATH]... [BENCH_perf.json]
"""

import argparse
import json
import sys

# Dotted paths that must exist (and, for lists, be non-empty) in every
# perf baseline report.  Grows when `lmpr run perf_baseline` gains a
# benchmark; never shrinks silently.
DEFAULT_EXPECTED_KEYS = [
    "flit_kernel",
    "event_kernel",
    "fig5_quick_sweep.speedup",
    "flow_permutation_study.speedup",
    "serve_throughput.queries_per_sec",
    "serve_throughput.events_per_sec",
    "serve_throughput.inconsistent",
    "lft_build.build_seconds",
]


def walk_speedups(node, path="$"):
    """Yields (json_path, value) for every 'speedup' key in the document."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}"
            if key == "speedup":
                yield child, value
            else:
                yield from walk_speedups(value, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk_speedups(value, f"{path}[{i}]")


def lookup(document, dotted):
    """Resolves a dotted path; returns (found, value)."""
    node = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_perf.json")
    parser.add_argument("--min-speedup", type=float, default=1.0)
    parser.add_argument(
        "--min-event-speedup", type=float, default=5.0,
        help="floor for the best event-kernel speedup over active_set "
             "at offered_load <= 0.2 (default %(default)s)")
    parser.add_argument(
        "--expect-key", action="append", default=[], metavar="PATH",
        help="additional dotted path that must be present "
             f"(always checked: {', '.join(DEFAULT_EXPECTED_KEYS)})")
    args = parser.parse_args(argv)

    try:
        with open(args.report) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    schema = document.get("schema", "")
    if not schema.startswith("lmpr-perf-baseline/"):
        print(f"error: {args.report} has schema '{schema}', expected "
              "lmpr-perf-baseline/*", file=sys.stderr)
        return 2

    failed = False
    for dotted in DEFAULT_EXPECTED_KEYS + args.expect_key:
        found, value = lookup(document, dotted)
        if not found:
            print(f"FAIL key ${dotted} is missing from {args.report}")
            failed = True
        elif isinstance(value, list) and not value:
            print(f"FAIL key ${dotted} is an empty list")
            failed = True
        else:
            print(f"ok   key ${dotted} present")

    speedups = list(walk_speedups(document))
    if not speedups:
        print(f"error: no speedup fields in {args.report}", file=sys.stderr)
        return 2

    for path, value in speedups:
        if not isinstance(value, (int, float)) or value < args.min_speedup:
            print(f"FAIL {path} = {value} (< {args.min_speedup})")
            failed = True
        else:
            print(f"ok   {path} = {value:.3f}")

    # Event-kernel low-load bar: the walk above already enforced >= 1.0
    # (never slower than active_set); here the BEST low-load point must
    # additionally clear --min-event-speedup, or skipping idle cycles
    # stopped paying for itself.
    low_load = [
        entry for entry in document.get("event_kernel", [])
        if isinstance(entry, dict) and entry.get("offered_load", 1.0) <= 0.2
    ]
    if not low_load:
        print("FAIL event_kernel has no entries with offered_load <= 0.2")
        failed = True
    else:
        best = max(
            (e.get("speedup") for e in low_load
             if isinstance(e.get("speedup"), (int, float))),
            default=0.0)
        if best < args.min_event_speedup:
            print(f"FAIL best low-load event_kernel speedup {best:.3f} "
                  f"(< {args.min_event_speedup})")
            failed = True
        else:
            print(f"ok   best low-load event_kernel speedup {best:.3f} "
                  f">= {args.min_event_speedup}")

    if failed:
        print("perf baseline check failed: a tracked benchmark disappeared "
              f"or a speedup fell below {args.min_speedup}x", file=sys.stderr)
        return 1
    print(f"all {len(speedups)} speedups >= {args.min_speedup}x and all "
          f"{len(DEFAULT_EXPECTED_KEYS) + len(args.expect_key)} expected "
          "keys present")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
