#!/usr/bin/env python3
"""Perf-regression guard over the perf_baseline run report.

Reads a BENCH_perf.json document (schema lmpr-perf-baseline/v1, written
by `lmpr run perf_baseline`) and fails -- exit status 1 -- if any
`speedup` field anywhere in the document is below the threshold
(default 1.0): the active-set flit kernel, the pooled fig5 sweep and the
cached permutation study must never be SLOWER than their reference
implementations.  Stdlib only, so CI can run it with a bare python3.

Usage: check_perf_baseline.py [--min-speedup X] [BENCH_perf.json]
"""

import argparse
import json
import sys


def walk_speedups(node, path="$"):
    """Yields (json_path, value) for every 'speedup' key in the document."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}"
            if key == "speedup":
                yield child, value
            else:
                yield from walk_speedups(value, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk_speedups(value, f"{path}[{i}]")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_perf.json")
    parser.add_argument("--min-speedup", type=float, default=1.0)
    args = parser.parse_args(argv)

    try:
        with open(args.report) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    schema = document.get("schema", "")
    if not schema.startswith("lmpr-perf-baseline/"):
        print(f"error: {args.report} has schema '{schema}', expected "
              "lmpr-perf-baseline/*", file=sys.stderr)
        return 2

    speedups = list(walk_speedups(document))
    if not speedups:
        print(f"error: no speedup fields in {args.report}", file=sys.stderr)
        return 2

    failed = False
    for path, value in speedups:
        if not isinstance(value, (int, float)) or value < args.min_speedup:
            print(f"FAIL {path} = {value} (< {args.min_speedup})")
            failed = True
        else:
            print(f"ok   {path} = {value:.3f}")
    if failed:
        print(f"perf regression: a speedup fell below {args.min_speedup}x",
              file=sys.stderr)
        return 1
    print(f"all {len(speedups)} speedups >= {args.min_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
