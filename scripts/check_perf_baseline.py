#!/usr/bin/env python3
"""Perf-regression guard over the perf_baseline run report.

Reads a BENCH_perf.json document (schema lmpr-perf-baseline/v1, written
by `lmpr run perf_baseline`) and fails -- exit status 1 -- on any of:

  * a `speedup` field anywhere in the document below the threshold
    (default 1.0): the active-set flit kernel, the event kernel, the
    pooled fig5 sweep, the cached permutation study and the sharded
    fabric manager must never be SLOWER than their reference
    implementations;
  * the event-kernel low-load bar: every `event_kernel` entry at
    offered_load <= 0.2 must be at least as fast as the active-set
    kernel, and the BEST low-load entry must reach --min-event-speedup
    (default 5.0) -- the idle-cycle skipping the kernel exists for;
  * the sharded-manager bar: fm_shard.speedup must reach
    --min-shard-speedup (default 4.0) on the island-local storm at the
    paper's Ranger shape, and fm_shard.identical must be true (a
    speedup bought by computing something else is a bug, not a result);
  * the adaptive-selector bar: adaptive_selector.overhead (active-set
    wall-clock, adaptive_credit over oblivious, at matched load) must
    stay at or below --max-adaptive-overhead (default 1.10), and
    adaptive_selector.switches must be positive (an overhead measured
    while the selector never switched variants is meaningless);
  * a tracked benchmark section MISSING from the document.  A refactor
    that silently drops a benchmark would otherwise pass the speedup
    check vacuously; the key guard turns "we stopped measuring it" into
    a build failure.

Every check always runs -- nothing stops at the first violation -- and
on failure the FULL per-check comparison table (observed vs required,
aligned) is printed so one CI log shows every regression at once.

Stdlib only, so CI can run it with a bare python3.

Usage: check_perf_baseline.py [--min-speedup X] [--min-event-speedup X]
                              [--min-shard-speedup X]
                              [--max-adaptive-overhead X]
                              [--expect-key PATH]... [BENCH_perf.json]
"""

import argparse
import json
import sys

# Dotted paths that must exist (and, for lists, be non-empty) in every
# perf baseline report.  Grows when `lmpr run perf_baseline` gains a
# benchmark; never shrinks silently.
DEFAULT_EXPECTED_KEYS = [
    "flit_kernel",
    "event_kernel",
    "fig5_quick_sweep.speedup",
    "flow_permutation_study.speedup",
    "serve_throughput.queries_per_sec",
    "serve_throughput.events_per_sec",
    "serve_throughput.inconsistent",
    "fm_shard.speedup",
    "fm_shard.sharded_events_per_sec",
    "fm_shard.identical",
    "adaptive_selector.overhead",
    "adaptive_selector.decisions",
    "adaptive_selector.switches",
    "lft_build.build_seconds",
]


def walk_speedups(node, path="$"):
    """Yields (json_path, value) for every 'speedup' key in the document."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}"
            if key == "speedup":
                yield child, value
            else:
                yield from walk_speedups(value, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk_speedups(value, f"{path}[{i}]")


def lookup(document, dotted):
    """Resolves a dotted path; returns (found, value)."""
    node = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def fmt(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)


class Checks:
    """Accumulates every check's outcome; nothing short-circuits."""

    def __init__(self):
        self.rows = []  # (check, observed, required, ok)

    def add(self, check, observed, required, ok):
        self.rows.append((check, fmt(observed), required, bool(ok)))
        print(f"{'ok  ' if ok else 'FAIL'} {check} = {fmt(observed)}"
              f" (required: {required})")

    @property
    def failed(self):
        return any(not ok for _, _, _, ok in self.rows)

    def print_table(self, stream):
        """The full per-check comparison table, aligned."""
        header = ("check", "observed", "required", "status")
        rows = [header] + [(c, o, r, "ok" if ok else "FAIL")
                           for c, o, r, ok in self.rows]
        widths = [max(len(row[i]) for row in rows) for i in range(4)]
        for j, row in enumerate(rows):
            line = "  ".join(cell.ljust(widths[i])
                             for i, cell in enumerate(row))
            print(line.rstrip(), file=stream)
            if j == 0:
                print("  ".join("-" * w for w in widths), file=stream)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_perf.json")
    parser.add_argument("--min-speedup", type=float, default=1.0)
    parser.add_argument(
        "--min-event-speedup", type=float, default=5.0,
        help="floor for the best event-kernel speedup over active_set "
             "at offered_load <= 0.2 (default %(default)s)")
    parser.add_argument(
        "--min-shard-speedup", type=float, default=4.0,
        help="floor for the sharded fabric manager's repair speedup over "
             "the monolithic manager on the island-local storm "
             "(default %(default)s)")
    parser.add_argument(
        "--max-adaptive-overhead", type=float, default=1.10,
        help="ceiling for adaptive_selector.overhead, the adaptive-"
             "selector hot-path cost over oblivious at matched load "
             "(default %(default)s)")
    parser.add_argument(
        "--expect-key", action="append", default=[], metavar="PATH",
        help="additional dotted path that must be present "
             f"(always checked: {', '.join(DEFAULT_EXPECTED_KEYS)})")
    args = parser.parse_args(argv)

    try:
        with open(args.report) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    schema = document.get("schema", "")
    if not schema.startswith("lmpr-perf-baseline/"):
        print(f"error: {args.report} has schema '{schema}', expected "
              "lmpr-perf-baseline/*", file=sys.stderr)
        return 2

    checks = Checks()
    for dotted in DEFAULT_EXPECTED_KEYS + args.expect_key:
        found, value = lookup(document, dotted)
        if not found:
            checks.add(f"key ${dotted}", "missing", "present", False)
        elif isinstance(value, list) and not value:
            checks.add(f"key ${dotted}", "empty list", "non-empty", False)
        else:
            checks.add(f"key ${dotted}", "present", "present", True)

    speedups = list(walk_speedups(document))
    if not speedups:
        print(f"error: no speedup fields in {args.report}", file=sys.stderr)
        return 2
    for path, value in speedups:
        numeric = isinstance(value, (int, float))
        checks.add(path, value, f">= {args.min_speedup}",
                   numeric and value >= args.min_speedup)

    # Event-kernel low-load bar: the walk above already enforced >= 1.0
    # (never slower than active_set); here the BEST low-load point must
    # additionally clear --min-event-speedup, or skipping idle cycles
    # stopped paying for itself.
    low_load = [
        entry for entry in document.get("event_kernel", [])
        if isinstance(entry, dict) and entry.get("offered_load", 1.0) <= 0.2
    ]
    if not low_load:
        checks.add("event_kernel low-load entries", 0, ">= 1", False)
    else:
        best = max(
            (e.get("speedup") for e in low_load
             if isinstance(e.get("speedup"), (int, float))),
            default=0.0)
        checks.add("best low-load event_kernel speedup", best,
                   f">= {args.min_event_speedup}",
                   best >= args.min_event_speedup)

    # Sharded-manager bar: >= 1.0 came from the generic walk; the
    # tracked target is --min-shard-speedup, and the speedup only counts
    # if the sharded run was bit-identical to the monolithic one.
    found, shard_speedup = lookup(document, "fm_shard.speedup")
    if found:
        numeric = isinstance(shard_speedup, (int, float))
        checks.add("fm_shard.speedup target", shard_speedup,
                   f">= {args.min_shard_speedup}",
                   numeric and shard_speedup >= args.min_shard_speedup)
    found, identical = lookup(document, "fm_shard.identical")
    if found:
        checks.add("fm_shard.identical", identical, "true", identical is True)

    # Adaptive-selector bar: overhead is a COST ratio (adaptive over
    # oblivious seconds), deliberately not named `speedup` so the generic
    # >= 1.0 walk never sees it; the ceiling is the tentpole's <= 10%
    # hot-path budget.  The switch count must be positive or the timed
    # adaptive run never actually exercised the selector.
    found, overhead = lookup(document, "adaptive_selector.overhead")
    if found:
        numeric = isinstance(overhead, (int, float))
        checks.add("adaptive_selector.overhead ceiling", overhead,
                   f"<= {args.max_adaptive_overhead}",
                   numeric and overhead <= args.max_adaptive_overhead)
    found, switches = lookup(document, "adaptive_selector.switches")
    if found:
        numeric = isinstance(switches, (int, float))
        checks.add("adaptive_selector.switches", switches, ">= 1",
                   numeric and switches >= 1)

    if checks.failed:
        print(file=sys.stderr)
        print("perf baseline check failed; full comparison:",
              file=sys.stderr)
        checks.print_table(sys.stderr)
        return 1
    print(f"all {len(checks.rows)} checks passed ({len(speedups)} speedups "
          f">= {args.min_speedup}x, all "
          f"{len(DEFAULT_EXPECTED_KEYS) + len(args.expect_key)} expected "
          "keys present)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
