#!/usr/bin/env bash
# Build, test, and run every bench binary (quick scale).  Pass --full to
# forward paper-scale mode to the benches (expect ~1 h on a laptop).
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA=()
if [[ "${1:-}" == "--full" ]]; then
  EXTRA+=(--full)
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [[ -x "$b" && ! -d "$b" ]] || continue
  echo
  echo "### $b ${EXTRA[*]:-}"
  case "$b" in
    *micro_*) "$b" ;;  # google-benchmark binaries take their own flags
    *) "$b" "${EXTRA[@]}" ;;
  esac
done
