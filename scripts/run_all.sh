#!/usr/bin/env bash
# Build, test, and run every experiment through the unified driver
# (quick scale).  Flags:
#   --full         paper-scale runs (expect ~1 h on a laptop)
#   --seed N       forwarded to `lmpr run`
#   --workers N    forwarded to `lmpr run`
#   --json PATH    forwarded to `lmpr run` (structured run report)
set -euo pipefail
cd "$(dirname "$0")/.."

DRIVER_ARGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) DRIVER_ARGS+=(--full); shift ;;
    --seed|--workers|--json)
      [[ $# -ge 2 ]] || { echo "run_all.sh: $1 needs a value" >&2; exit 2; }
      DRIVER_ARGS+=("$1" "$2"); shift 2 ;;
    *) echo "run_all.sh: unknown flag $1" >&2; exit 2 ;;
  esac
done

# Prefer Ninja when installed, fall back to the default generator.  An
# already-configured build dir keeps its generator (CMake refuses to
# switch generators in place).
GENERATOR=()
if [[ ! -f build/CMakeCache.txt ]] && command -v ninja > /dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build "${GENERATOR[@]}"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

./build/lmpr run all "${DRIVER_ARGS[@]}"

# Google-benchmark micro benchmarks take their own flags; run them last.
for b in build/bench/micro_*; do
  [[ -x "$b" && ! -d "$b" ]] || continue
  echo
  echo "### $b"
  "$b"
done
