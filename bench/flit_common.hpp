// Shared scaffolding for the flit-level benches (Table 1, Figure 5 and
// ablations): load grids, run lengths, and seed-averaged saturation
// throughput under pinned permutation pairings.
#pragma once

#include <vector>

#include "bench_support.hpp"
#include "core/route_table.hpp"
#include "flit/network.hpp"
#include "flit/sweep.hpp"
#include "util/rng.hpp"

namespace lmpr::bench {

inline flit::SimConfig flit_base_config(bool full) {
  flit::SimConfig config;
  if (full) {
    config.warmup_cycles = 10'000;
    config.measure_cycles = 30'000;
    config.drain_cycles = 10'000;
  } else {
    config.warmup_cycles = 3'000;
    config.measure_cycles = 9'000;
    config.drain_cycles = 3'000;
  }
  return config;
}

inline std::vector<double> flit_load_grid(bool full) {
  return full ? flit::linspace_loads(0.10, 1.00, 10)
              : std::vector<double>{0.3, 0.45, 0.6, 0.75, 0.9};
}

/// Permutation pairings shared across heuristics: pairing i is drawn from
/// seed+i so every routing scheme faces identical traffic.
inline std::vector<std::vector<std::uint64_t>> shared_pairings(
    std::uint64_t hosts, std::uint64_t seed, std::size_t count) {
  std::vector<std::vector<std::uint64_t>> pairings;
  pairings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng rng{seed + i};
    const auto perm = rng.permutation(static_cast<std::size_t>(hosts));
    pairings.emplace_back(perm.begin(), perm.end());
  }
  return pairings;
}

struct SaturationResult {
  double max_throughput = 0.0;      ///< mean over pairings
  double delay_at_low_load = 0.0;   ///< mean message delay, first grid load
  double reorder_at_high_load = 0.0;  ///< out-of-order fraction, last load
};

/// "Maximum throughput achieved" (paper Table 1): sweep the offered load,
/// take the best accepted throughput, average over the shared pairings.
inline SaturationResult measure_saturation(
    const route::RouteTable& table, const flit::SimConfig& base,
    const std::vector<double>& loads,
    const std::vector<std::vector<std::uint64_t>>& pairings) {
  SaturationResult result;
  for (std::size_t i = 0; i < pairings.size(); ++i) {
    flit::SimConfig config = base;
    config.seed = base.seed + 1000 * (i + 1);
    config.fixed_destinations = pairings[i];
    const auto sweep = flit::run_load_sweep(table, config, loads);
    result.max_throughput += sweep.max_throughput;
    result.delay_at_low_load += sweep.points.front().mean_message_delay;
    result.reorder_at_high_load += sweep.points.back().out_of_order_fraction;
  }
  const auto n = static_cast<double>(pairings.size());
  result.max_throughput /= n;
  result.delay_at_low_load /= n;
  result.reorder_at_high_load /= n;
  return result;
}

}  // namespace lmpr::bench
