// Figure 4(c): average maximum permutation load vs K on XGFT(2;12,24;1,12)
// (the 24-port 2-tree).  Same expected shape as Figure 4(a).
#include "fig4_common.hpp"

int main(int argc, char** argv) {
  return lmpr::bench::run_fig4_binary(argc, argv, "c", 24, 2);
}
