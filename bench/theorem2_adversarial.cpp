// Theorem 2 demonstration: there are XGFTs and traffic patterns for which
// d-mod-k is a factor prod(w_i) away from optimal.  The bench instantiates
// the constructive proof (all destinations multiples of W = prod(w_i), so
// every d-mod-k upward choice is port 0) and shows (a) the measured
// PERF(d-mod-k) >= W and (b) how limited multi-path routing recovers
// gracefully as K grows -- PERF(disjoint, K) ~ W/K down to 1 at K = W.
#include "bench_support.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);

  struct Shape {
    std::size_t height;
    std::uint32_t spread;
  };
  const std::vector<Shape> shapes = options.full
      ? std::vector<Shape>{{2, 2}, {2, 4}, {2, 8}, {3, 2}, {3, 4}, {4, 2}}
      : std::vector<Shape>{{2, 4}, {3, 2}, {3, 4}};

  util::Table table({"topology", "W=prod(w)", "PERF(dmodk)",
                     "PERF(disjoint,2)", "PERF(disjoint,4)",
                     "PERF(disjoint,W)", "PERF(umulti)"});
  util::Rng rng{options.seed};
  for (const auto& shape : shapes) {
    const auto spec =
        flow::adversarial_dmodk_topology(shape.height, shape.spread);
    const topo::Xgft xgft{spec};
    const auto tm = flow::adversarial_dmodk_traffic(xgft);
    flow::LoadEvaluator eval(xgft);
    const double opt = flow::oload(xgft, tm).value;
    auto perf_of = [&](route::Heuristic h, std::size_t k) {
      return flow::perf_ratio(eval.evaluate(tm, h, k, rng).max_load, opt);
    };
    const auto w_total = xgft.spec().num_top_switches();
    table.add_row(
        {spec.to_string(), util::Table::num(w_total),
         util::Table::num(perf_of(route::Heuristic::kDModK, 1)),
         util::Table::num(perf_of(route::Heuristic::kDisjoint, 2)),
         util::Table::num(perf_of(route::Heuristic::kDisjoint, 4)),
         util::Table::num(perf_of(route::Heuristic::kDisjoint,
                                  static_cast<std::size_t>(w_total))),
         util::Table::num(perf_of(route::Heuristic::kUmulti, 1))});
  }
  bench::emit(table, options,
              "Theorem 2: adversarial pattern, PERF(d-mod-k) >= prod(w_i)");
  return 0;
}
