// Ablation A2: InfiniBand realizability -- the LID/LMC budget each path
// limit K costs on the paper's six topologies.  Reproduces the Section 1
// motivation: unlimited multi-path is NOT realizable at scale (the
// 24-port 3-tree needs 144 paths > 2^LMCmax, and bigger fabrics exhaust
// the 48K unicast LID space), while limited multi-path with small K fits
// comfortably.
#include "bench_support.hpp"
#include "core/lid_cost.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);

  util::Table table({"topology", "hosts", "K", "effective_paths", "LMC",
                     "total_LIDs", "realizable"});
  for (const std::uint32_t ports : {8u, 16u, 24u}) {
    for (const std::size_t levels : {2u, 3u}) {
      const auto spec = topo::XgftSpec::m_port_n_tree(ports, levels);
      const topo::Xgft xgft{spec};
      const std::uint64_t max_paths = spec.num_top_switches();
      std::vector<std::uint64_t> ks{1, 2, 4, 8};
      if (max_paths > 8) ks.push_back(max_paths);  // the UMULTI column
      for (const std::uint64_t k : ks) {
        const auto cost = route::lid_cost(xgft, k);
        table.add_row({spec.to_string(), util::Table::num(xgft.num_hosts()),
                       util::Table::num(k),
                       util::Table::num(cost.effective_paths),
                       util::Table::num(std::uint64_t{cost.lmc}),
                       util::Table::num(cost.total_lids),
                       cost.realizable ? "yes" : "NO"});
      }
    }
  }
  bench::emit(table, options,
              "Ablation A2: InfiniBand LID cost of K-path routing");
  return 0;
}
