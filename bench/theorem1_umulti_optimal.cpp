// Theorem 1 demonstration: PERF(UMULTI) = 1 on any XGFT -- the measured
// maximum link load of unlimited multi-path routing equals the subtree-cut
// lower bound ML(TM) on every traffic matrix, so UMULTI is an optimal
// oblivious routing.  The bench sweeps topology families and traffic
// classes and reports the worst observed ratio (must print 1.000).
#include "bench_support.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);

  const std::vector<topo::XgftSpec> specs = {
      topo::XgftSpec::m_port_n_tree(8, 2),
      topo::XgftSpec::m_port_n_tree(8, 3),
      topo::XgftSpec{{4, 4, 4}, {1, 4, 2}},
      topo::XgftSpec{{2, 3, 4}, {2, 2, 3}},
      topo::XgftSpec::gft(2, 4, 2),
  };
  const int trials = options.full ? 50 : 10;

  util::Table table({"topology", "traffic", "worst PERF(umulti)",
                     "worst PERF(dmodk)", "trials"});
  util::Rng rng{options.seed};
  for (const auto& spec : specs) {
    const topo::Xgft xgft{spec};
    flow::LoadEvaluator eval(xgft);
    struct TrafficCase {
      const char* name;
      bool randomized;
    };
    for (const auto& tc : {TrafficCase{"permutation", true},
                           TrafficCase{"random-matrix", true},
                           TrafficCase{"hotspot", false}}) {
      double worst_umulti = 0.0;
      double worst_dmodk = 0.0;
      const int reps = tc.randomized ? trials : 1;
      for (int t = 0; t < reps; ++t) {
        flow::TrafficMatrix tm(xgft.num_hosts());
        if (std::string_view(tc.name) == "permutation") {
          tm = flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
        } else if (std::string_view(tc.name) == "random-matrix") {
          for (int f = 0; f < 64; ++f) {
            tm.add(rng.below(xgft.num_hosts()), rng.below(xgft.num_hosts()),
                   rng.uniform01() * 3.0);
          }
        } else {
          tm = flow::TrafficMatrix::hotspot(xgft.num_hosts(), 0);
        }
        const double opt = flow::oload(xgft, tm).value;
        const double umulti =
            eval.evaluate(tm, route::Heuristic::kUmulti, 1, rng).max_load;
        const double dmodk =
            eval.evaluate(tm, route::Heuristic::kDModK, 1, rng).max_load;
        worst_umulti = std::max(worst_umulti, flow::perf_ratio(umulti, opt));
        worst_dmodk = std::max(worst_dmodk, flow::perf_ratio(dmodk, opt));
      }
      table.add_row({spec.to_string(), tc.name,
                     util::Table::num(worst_umulti),
                     util::Table::num(worst_dmodk),
                     util::Table::num(static_cast<std::size_t>(reps))});
    }
  }
  bench::emit(table, options,
              "Theorem 1: UMULTI attains the optimal oblivious ratio 1");
  return 0;
}
