// Legacy shim: logic lives in the `patterns_structured` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "patterns_structured");
}
