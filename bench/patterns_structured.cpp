// Extension bench: structured traffic patterns.  Figure 4 averages over
// RANDOM permutations; HPC workloads send structured ones.  This bench
// evaluates every heuristic on cyclic shifts (the building block of
// Zahavi's shift all-to-all, reference [17]), bit-reversal, and the
// Theorem-2-style modulo-concentrating shift, reporting the WORST
// performance ratio over each family.
#include "bench_support.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic.hpp"
#include "util/rng.hpp"

#include <bit>

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  const topo::Xgft xgft{spec};
  const std::uint64_t hosts = xgft.num_hosts();

  struct Scheme {
    route::Heuristic heuristic;
    std::size_t k;
  };
  std::vector<Scheme> schemes{{route::Heuristic::kDModK, 1}};
  for (const std::size_t k : {2u, 4u, 8u}) {
    schemes.push_back({route::Heuristic::kShift1, k});
    schemes.push_back({route::Heuristic::kDisjoint, k});
    schemes.push_back({route::Heuristic::kRandom, k});
  }
  schemes.push_back({route::Heuristic::kUmulti, 1});

  // Pattern families.  all-shifts = worst over every cyclic offset;
  // W-shifts = offsets that are multiples of prod(w) (the d-mod-k
  // concentrators from the Theorem 2 proof idea).
  const std::uint64_t w_total = spec.num_top_switches();
  std::vector<std::uint64_t> all_shifts;
  for (std::uint64_t s = 1; s < hosts; ++s) all_shifts.push_back(s);

  util::Table table({"heuristic", "K", "worst shift PERF",
                     "worst W-multiple shift PERF", "bit-reversal PERF"});
  flow::LoadEvaluator eval(xgft);
  util::Rng rng{options.seed};
  for (const auto& scheme : schemes) {
    double worst_shift = 0.0;
    double worst_wshift = 0.0;
    for (const std::uint64_t offset : all_shifts) {
      const auto tm = flow::TrafficMatrix::shift(hosts, offset);
      const double perf = flow::perf_ratio(
          eval.evaluate(tm, scheme.heuristic, scheme.k, rng).max_load,
          flow::oload(xgft, tm).value);
      worst_shift = std::max(worst_shift, perf);
      if (offset % w_total == 0) worst_wshift = std::max(worst_wshift, perf);
    }
    double bitrev = 0.0;
    if (std::has_single_bit(hosts)) {
      const auto tm = flow::TrafficMatrix::bit_reversal(hosts);
      bitrev = flow::perf_ratio(
          eval.evaluate(tm, scheme.heuristic, scheme.k, rng).max_load,
          flow::oload(xgft, tm).value);
    }
    table.add_row({std::string(to_string(scheme.heuristic)),
                   util::Table::num(scheme.k),
                   util::Table::num(worst_shift),
                   util::Table::num(worst_wshift),
                   util::Table::num(bitrev)});
  }
  bench::emit(table, options,
              "Structured patterns (shift family, bit-reversal), " +
                  spec.to_string());
  return 0;
}
