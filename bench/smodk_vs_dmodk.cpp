// Legacy shim: logic lives in the `smodk_vs_dmodk` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "smodk_vs_dmodk");
}
