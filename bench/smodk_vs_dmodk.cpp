// Validation bench for the premise the heuristics rest on (Section 3.3,
// citing Rodriguez et al.): source-mod-k and destination-mod-k routing
// have "negligible difference in performance".  Average maximum
// permutation load for both, across the paper's topologies.
#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);

  const std::vector<topo::XgftSpec> specs = {
      topo::XgftSpec::m_port_n_tree(8, 2),
      topo::XgftSpec::m_port_n_tree(16, 2),
      topo::XgftSpec::m_port_n_tree(8, 3),
      topo::XgftSpec::m_port_n_tree(16, 3),
  };

  util::Table table({"topology", "dmodk avg max load", "smodk avg max load",
                     "relative diff %", "samples"});
  for (const auto& spec : specs) {
    const topo::Xgft xgft{spec};
    double means[2] = {0.0, 0.0};
    std::size_t samples = 0;
    const route::Heuristic hs[2] = {route::Heuristic::kDModK,
                                    route::Heuristic::kSModK};
    for (int i = 0; i < 2; ++i) {
      flow::PermutationStudyConfig config;
      config.heuristic = hs[i];
      config.k_paths = 1;
      config.stopping = bench::stopping_rule(options.full);
      config.seed = options.seed;
      config.track_perf_ratio = false;
      const auto result = flow::run_permutation_study(xgft, config);
      means[i] = result.max_load.mean();
      samples = result.samples;
    }
    table.add_row({spec.to_string(), util::Table::num(means[0]),
                   util::Table::num(means[1]),
                   util::Table::num(100.0 * std::abs(means[0] - means[1]) /
                                        means[0],
                                    2),
                   util::Table::num(samples)});
  }
  bench::emit(table, options,
              "s-mod-k vs d-mod-k: negligible difference (Section 3.3)");
  return 0;
}
