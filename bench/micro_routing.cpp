// Micro benchmarks (google-benchmark) for the routing core: path
// selection, path materialization, route-table construction and
// flow-level evaluation throughput.
#include <benchmark/benchmark.h>

#include "core/heuristics.hpp"
#include "core/path_index.hpp"
#include "core/route_table.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmpr;

const topo::Xgft& big_tree() {
  static const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(24, 3)};
  return xgft;
}

const topo::Xgft& small_tree() {
  static const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
  return xgft;
}

void BM_SelectPaths(benchmark::State& state, route::Heuristic heuristic) {
  const topo::Xgft& xgft = big_tree();
  util::Rng rng{1};
  const auto k = static_cast<std::size_t>(state.range(0));
  std::uint64_t d = 1;
  for (auto _ : state) {
    d = (d * 2654435761u + 1) % xgft.num_hosts();
    if (d == 0) d = 1;
    benchmark::DoNotOptimize(
        route::select_path_indices(xgft, 0, d, k, heuristic, rng));
  }
}
BENCHMARK_CAPTURE(BM_SelectPaths, dmodk, route::Heuristic::kDModK)->Arg(1);
BENCHMARK_CAPTURE(BM_SelectPaths, shift1, route::Heuristic::kShift1)
    ->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SelectPaths, disjoint, route::Heuristic::kDisjoint)
    ->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SelectPaths, random, route::Heuristic::kRandom)
    ->Arg(4)->Arg(16);

void BM_MaterializePath(benchmark::State& state) {
  const topo::Xgft& xgft = big_tree();
  std::uint64_t d = 1;
  for (auto _ : state) {
    d = (d * 2654435761u + 1) % xgft.num_hosts();
    if (d == 0) d = 1;
    const std::uint64_t index = 7 % xgft.num_shortest_paths(0, d);
    benchmark::DoNotOptimize(route::materialize_path(xgft, 0, d, index));
  }
}
BENCHMARK(BM_MaterializePath);

void BM_NcaLevel(benchmark::State& state) {
  const topo::Xgft& xgft = big_tree();
  std::uint64_t d = 1;
  for (auto _ : state) {
    d = (d * 2654435761u + 1) % xgft.num_hosts();
    benchmark::DoNotOptimize(xgft.nca_level(17, d));
  }
}
BENCHMARK(BM_NcaLevel);

void BM_RouteTableBuild(benchmark::State& state) {
  const topo::Xgft& xgft = small_tree();
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    route::RouteTable table(xgft, route::Heuristic::kDisjoint, k);
    benchmark::DoNotOptimize(table.total_paths());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(xgft.num_hosts() * xgft.num_hosts()));
}
BENCHMARK(BM_RouteTableBuild)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_PermutationLoadEval(benchmark::State& state) {
  const topo::Xgft& xgft = big_tree();
  util::Rng rng{3};
  flow::LoadEvaluator eval(xgft);
  const auto tm = flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval.evaluate(tm, route::Heuristic::kDisjoint, k, rng).max_load);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tm.size()));
}
BENCHMARK(BM_PermutationLoadEval)->Arg(1)->Arg(8)->Arg(144)->Unit(benchmark::kMillisecond);

void BM_OloadBound(benchmark::State& state) {
  const topo::Xgft& xgft = big_tree();
  util::Rng rng{5};
  const auto tm = flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::oload(xgft, tm).value);
  }
}
BENCHMARK(BM_OloadBound)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
