// Legacy shim: logic lives in the `ablation_lft_realizability` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "ablation_lft_realizability");
}
