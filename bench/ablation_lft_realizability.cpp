// Ablation A5: what does each heuristic cost to REALIZE as InfiniBand
// forwarding state?  Destination-based LFTs can only perturb the d-mod-k
// anchor by a function of (destination LID, level).  With the
// disjoint-style LID layout, a block of K LIDs per destination already
// gives EVERY pair min(K, X) distinct paths; with the shift-style layout,
// pairs whose NCA sits below the top see no diversity until the LID
// block covers the whole upper tree.  The paper's best-performing
// heuristic is therefore also the cheapest to deploy.
//
// Reported per (topology, layout, K): the LID budget, and the average /
// worst multipath coverage over SD pairs relative to min(K, X).
#include "bench_support.hpp"
#include "fabric/lft.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);

  const std::vector<topo::XgftSpec> specs = {
      topo::XgftSpec::m_port_n_tree(8, 2),
      topo::XgftSpec::m_port_n_tree(8, 3),
      topo::XgftSpec::m_port_n_tree(16, 3),
  };
  const int pair_samples = options.full ? 2000 : 300;

  util::Table table({"topology", "layout", "K", "LIDs", "avg coverage ratio",
                     "worst coverage ratio", "pairs at full K"});
  util::Rng rng{options.seed};
  for (const auto& spec : specs) {
    const topo::Xgft xgft{spec};
    for (const auto layout : {fabric::LidLayout::kDisjointLayout,
                              fabric::LidLayout::kShiftLayout}) {
      for (const std::uint64_t k : {2ull, 4ull, 8ull}) {
        if (k > spec.num_top_switches()) continue;
        const fabric::Lft lft(xgft, k, layout);
        double ratio_sum = 0.0;
        double worst = 1.0;
        int full_cover = 0;
        int counted = 0;
        for (int i = 0; i < pair_samples; ++i) {
          const std::uint64_t s = rng.below(xgft.num_hosts());
          const std::uint64_t d = rng.below(xgft.num_hosts());
          if (s == d) continue;
          const std::uint64_t want =
              std::min<std::uint64_t>(k, xgft.num_shortest_paths(s, d));
          const std::uint64_t got =
              std::min<std::uint64_t>(lft.coverage(s, d), want);
          const double ratio =
              static_cast<double>(got) / static_cast<double>(want);
          ratio_sum += ratio;
          worst = std::min(worst, ratio);
          full_cover += (got == want);
          ++counted;
        }
        table.add_row(
            {spec.to_string(),
             layout == fabric::LidLayout::kDisjointLayout ? "disjoint"
                                                          : "shift",
             util::Table::num(k),
             util::Table::num(std::uint64_t{lft.lid_end() - 1}),
             util::Table::num(ratio_sum / counted),
             util::Table::num(worst),
             util::Table::num(100.0 * full_cover / counted, 1) + "%"});
      }
    }
  }
  bench::emit(table, options,
              "Ablation A5: LFT realizability of limited multi-path routing");
  return 0;
}
