// Legacy shim: logic lives in the `collectives_workloads` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "collectives_workloads");
}
