// Extension bench: application collectives on the Table-1 topology.
// Bandwidth-model slowdown (completion time / optimal) per workload and
// routing scheme.  Expected: d-mod-k is optimal on shift-structured
// collectives (all-to-all, ring) but pays on XOR-structured ones
// (recursive doubling) and transposes; disjoint keeps the shift
// optimality AND closes the XOR/transpose gap as K grows.
#include "bench_support.hpp"
#include "flow/collectives.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  const topo::Xgft xgft{spec};
  const std::uint64_t hosts = xgft.num_hosts();

  std::vector<flow::Collective> workloads;
  workloads.push_back(flow::shift_all_to_all(hosts));
  workloads.push_back(flow::ring_allreduce(hosts));
  if (std::has_single_bit(hosts)) {
    workloads.push_back(flow::recursive_doubling(hosts));
  }
  workloads.push_back(flow::stencil3d(2, 8, hosts / 16));
  workloads.push_back(flow::transpose(hosts / 16, 16));

  struct Scheme {
    route::Heuristic heuristic;
    std::size_t k;
  };
  std::vector<Scheme> schemes{{route::Heuristic::kDModK, 1},
                              {route::Heuristic::kShift1, 4},
                              {route::Heuristic::kDisjoint, 4},
                              {route::Heuristic::kRandom, 4},
                              {route::Heuristic::kDisjoint, 8},
                              {route::Heuristic::kUmulti, 1}};

  util::Table table({"workload", "heuristic", "K", "slowdown",
                     "time", "optimal"});
  util::Rng rng{options.seed};
  for (const auto& workload : workloads) {
    for (const auto& scheme : schemes) {
      const auto cost = flow::evaluate_collective(
          xgft, workload, scheme.heuristic, scheme.k, rng);
      table.add_row({workload.name, std::string(to_string(scheme.heuristic)),
                     util::Table::num(scheme.k),
                     util::Table::num(cost.slowdown),
                     util::Table::num(cost.time, 1),
                     util::Table::num(cost.optimal_time, 1)});
    }
  }
  bench::emit(table, options,
              "Collective workloads (bandwidth model), " + spec.to_string());
  return 0;
}
