// Legacy shim: logic lives in the `ablation_virtual_channels` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "ablation_virtual_channels");
}
