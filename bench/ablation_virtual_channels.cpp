// Ablation A6: virtual channels.  The paper evaluates with a single VC
// ("we run our simulations using only one virtual channel"); this bench
// shows how the saturation throughput of each routing scheme moves when
// head-of-line blocking is attacked with 2 and 4 VCs instead -- and that
// the ORDERING of the heuristics (the paper's claim) is stable across VC
// counts.
#include "flit_common.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = bench::flit_base_config(options.full);
  const auto loads = bench::flit_load_grid(options.full);
  const auto pairings = bench::shared_pairings(
      xgft.num_hosts(), options.seed, options.full ? 3 : 2);

  struct Scheme {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Scheme schemes[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"shift1(8)", route::Heuristic::kShift1, 8},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
  };

  util::Table table({"scheme", "VCs", "max_throughput_%"});
  for (const Scheme& scheme : schemes) {
    const route::RouteTable rt(xgft, scheme.heuristic, scheme.k,
                               options.seed);
    for (const std::uint32_t vcs : {1u, 2u, 4u}) {
      flit::SimConfig config = base;
      config.num_vcs = vcs;
      const auto result =
          bench::measure_saturation(rt, config, loads, pairings);
      table.add_row({scheme.name, util::Table::num(std::uint64_t{vcs}),
                     util::Table::num(100.0 * result.max_throughput, 2)});
    }
  }
  bench::emit(table, options,
              "Ablation A6: virtual channels vs saturation throughput, " +
                  xgft.spec().to_string());
  return 0;
}
