// Micro benchmark (google-benchmark) for the flit-level simulator:
// simulated cycles per second on the Table 1 topology at a moderate load.
#include <benchmark/benchmark.h>

#include "core/route_table.hpp"
#include "flit/network.hpp"

namespace {

using namespace lmpr;

void BM_FlitSimulation(benchmark::State& state) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
  const route::RouteTable table(xgft, route::Heuristic::kDisjoint, 8);
  const auto cycles = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    flit::SimConfig config;
    config.warmup_cycles = 0;
    config.measure_cycles = cycles;
    config.drain_cycles = 0;
    config.offered_load = 0.5;
    flit::Network network(table, config);
    benchmark::DoNotOptimize(network.run().flits_delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cycles));
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(cycles),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlitSimulation)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
