// Extension bench: limited multi-path routing as fault tolerance.  With
// static forwarding tables (no re-routing), a pair survives random cable
// failures only if one of its K installed paths does.  Reports pair
// connectivity per (heuristic, K) and failure rate -- disjoint's
// link-diversity pays off directly.
#include <bit>

#include "bench_support.hpp"
#include "flow/resilience.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  const topo::Xgft xgft{spec};

  util::Table table({"failure rate", "heuristic", "K", "connectivity",
                     "worst trial", "surviving paths"});
  for (const double rate : {0.01, 0.05}) {
    struct Scheme {
      route::Heuristic heuristic;
      std::size_t k;
    };
    for (const Scheme& scheme :
         {Scheme{route::Heuristic::kDModK, 1},
          Scheme{route::Heuristic::kShift1, 4},
          Scheme{route::Heuristic::kDisjoint, 4},
          Scheme{route::Heuristic::kRandom, 4},
          Scheme{route::Heuristic::kDisjoint, 8}}) {
      flow::ResilienceConfig config;
      config.heuristic = scheme.heuristic;
      config.k_paths = scheme.k;
      config.cable_failure_probability = rate;
      config.trials = options.full ? 100 : 20;
      config.pair_samples = options.full ? 5000 : 1000;
      config.seed = options.seed;
      const auto result = flow::measure_resilience(xgft, config);
      table.add_row({util::Table::num(100.0 * rate, 0) + "%",
                     std::string(to_string(scheme.heuristic)),
                     util::Table::num(scheme.k),
                     util::Table::num(result.connectivity, 4),
                     util::Table::num(result.worst_connectivity, 4),
                     util::Table::num(result.surviving_paths, 4)});
    }
  }
  bench::emit(table, options,
              "Multi-path resilience to random cable failures, " +
                  spec.to_string());
  return 0;
}
