// Legacy shim: logic lives in the `resilience_multipath` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "resilience_multipath");
}
