// Legacy shim: logic lives in the `adaptive_vs_oblivious` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "adaptive_vs_oblivious");
}
