// Extension bench: the adaptive baseline from the paper's related work
// (Gomez et al., "Deterministic versus Adaptive Routing in Fat-trees").
// Credit-based adaptive up-routing reacts to congestion the oblivious
// schemes can only spread statistically; under persistent permutation
// pairings it provides an upper reference point for what limited
// multi-path routing leaves on the table, at the price of out-of-order
// delivery and hardware support the paper's InfiniBand setting lacks.
#include "flit_common.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = bench::flit_base_config(options.full);
  const auto loads = bench::flit_load_grid(options.full);
  const auto pairings = bench::shared_pairings(
      xgft.num_hosts(), options.seed, options.full ? 3 : 2);

  util::Table table({"routing", "max_throughput_%", "low_load_delay_cyc"});

  // Oblivious schemes.
  struct Scheme {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  for (const Scheme& scheme :
       {Scheme{"dmodk (oblivious)", route::Heuristic::kDModK, 1},
        Scheme{"disjoint(4) (oblivious)", route::Heuristic::kDisjoint, 4},
        Scheme{"disjoint(8) (oblivious)", route::Heuristic::kDisjoint, 8},
        Scheme{"umulti(16) (oblivious)", route::Heuristic::kUmulti, 16}}) {
    const route::RouteTable rt(xgft, scheme.heuristic, scheme.k,
                               options.seed);
    const auto result = bench::measure_saturation(rt, base, loads, pairings);
    table.add_row({scheme.name,
                   util::Table::num(100.0 * result.max_throughput, 2),
                   util::Table::num(result.delay_at_low_load, 1)});
  }

  // Adaptive routing (route table is a placeholder; routing ignores it).
  {
    const route::RouteTable rt(xgft, route::Heuristic::kDModK, 1,
                               options.seed);
    flit::SimConfig config = base;
    config.routing_mode = flit::RoutingMode::kAdaptive;
    const auto result = bench::measure_saturation(rt, config, loads, pairings);
    table.add_row({"credit-based adaptive",
                   util::Table::num(100.0 * result.max_throughput, 2),
                   util::Table::num(result.delay_at_low_load, 1)});
  }
  bench::emit(table, options,
              "Adaptive vs oblivious routing (fixed pairing), " +
                  xgft.spec().to_string());
  return 0;
}
