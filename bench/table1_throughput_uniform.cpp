// Table 1: maximum throughput (percent of injection capacity) achieved
// under the paper's "uniform random traffic" on XGFT(3;4,4,8;1,4,4) (the
// 8-port 3-tree), flit-level simulation with virtual cut-through and
// credit flow control.
//
// Traffic interpretation (DESIGN.md): each source holds one uniformly
// random destination for the whole run (a random permutation) -- the
// reading under which the paper's numbers are reproducible.  Expected
// shape: throughput grows with K for every heuristic; at equal K,
// disjoint is best (paper: disjoint(8) 71.35% vs random(8) 69.75% vs
// shift-1(8) 67.65%); d-mod-k is the weakest.
#include "flit_common.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  const topo::Xgft xgft{spec};

  const auto base = bench::flit_base_config(options.full);
  const auto loads = bench::flit_load_grid(options.full);
  const auto pairings = bench::shared_pairings(
      xgft.num_hosts(), options.seed, options.full ? 5 : 2);

  const std::vector<std::size_t> k_values =
      options.full ? std::vector<std::size_t>{1, 2, 4, 8, 16}
                   : std::vector<std::size_t>{1, 2, 4, 8};

  // d-mod-k ignores K: measure its single column value once.
  const route::RouteTable dmodk(xgft, route::Heuristic::kDModK, 1,
                                options.seed);
  const double dmodk_throughput =
      bench::measure_saturation(dmodk, base, loads, pairings).max_throughput;

  util::Table table(
      {"num_paths", "dmodk_%", "shift1_%", "random_%", "disjoint_%"});
  for (const std::size_t k : k_values) {
    std::vector<std::string> row{util::Table::num(k),
                                 util::Table::num(100.0 * dmodk_throughput, 2)};
    for (const route::Heuristic h :
         {route::Heuristic::kShift1, route::Heuristic::kRandom,
          route::Heuristic::kDisjoint}) {
      const route::RouteTable rt(xgft, h, k, options.seed);
      const auto result = bench::measure_saturation(rt, base, loads, pairings);
      row.push_back(util::Table::num(100.0 * result.max_throughput, 2));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, options,
              "Table 1: max throughput (%), uniform (fixed-pairing) "
              "traffic, " + spec.to_string());
  return 0;
}
