// Legacy shim: logic lives in the `table1` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "table1");
}
