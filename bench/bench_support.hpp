// Shared scaffolding for the paper-reproduction bench binaries.
//
// Conventions (uniform across all benches):
//   * argument-free runs use laptop-scale defaults;
//   * --full (or env LMPR_FULL=1) switches to paper-scale parameters
//     (the 99%/2% stopping rule with the full sample budget, all K
//     values, longer flit runs);
//   * --csv PATH exports the printed series;
//   * --seed N reseeds everything deterministically.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "flow/permutation_study.hpp"
#include "topology/xgft.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace lmpr::bench {

struct CommonOptions {
  bool full = false;
  std::string csv_path;
  std::uint64_t seed = 7;
  /// Worker threads for parallelizable studies (--workers N; defaults to
  /// the machine's spare cores).  Results are worker-count independent.
  std::size_t workers = 0;

  static CommonOptions from_cli(const util::Cli& cli) {
    CommonOptions options;
    options.full = util::full_scale_requested(cli);
    options.csv_path = cli.get_or("csv", "");
    options.seed = static_cast<std::uint64_t>(
        cli.get_or("seed", std::int64_t{7}));
    options.workers = static_cast<std::size_t>(cli.get_or(
        "workers",
        static_cast<std::int64_t>(util::ThreadPool::default_workers())));
    return options;
  }
};

/// Prints the table, appends scale provenance, and honours --csv.
inline void emit(const util::Table& table, const CommonOptions& options,
                 const std::string& title) {
  std::cout << "== " << title << (options.full ? " [full scale]" : " [quick scale; pass --full for paper scale]")
            << " ==\n";
  table.print(std::cout);
  std::cout << std::flush;
  if (!options.csv_path.empty()) {
    if (table.write_csv_file(options.csv_path)) {
      std::cout << "csv written to " << options.csv_path << "\n";
    }
  }
}

/// The paper's stopping rule (99% CI within 2% of the mean, doubling
/// schedule) at paper scale; a slimmed-down budget for quick runs.
inline util::CiStoppingRule stopping_rule(bool full) {
  util::CiStoppingRule rule;
  if (full) {
    rule.initial_samples = 100;
    rule.max_samples = 12800;
  } else {
    rule.initial_samples = 30;
    rule.max_samples = 120;
  }
  return rule;
}

/// The four routing series of Figure 4.
inline std::vector<route::Heuristic> figure4_series() {
  return {route::Heuristic::kDModK, route::Heuristic::kShift1,
          route::Heuristic::kDisjoint, route::Heuristic::kRandom};
}

/// Runs one Figure-4 style study: average maximum permutation load per
/// (heuristic, K), one table row per K value.
inline util::Table run_figure4(const topo::Xgft& xgft,
                               const std::vector<std::size_t>& k_values,
                               const CommonOptions& options) {
  util::Table table({"K", "dmodk", "shift1", "disjoint", "random",
                     "dmodk_perf", "shift1_perf", "disjoint_perf",
                     "random_perf", "samples"});
  util::ThreadPool pool(options.workers);
  for (const std::size_t k : k_values) {
    std::vector<std::string> row{util::Table::num(k)};
    std::vector<std::string> perf_cells;
    std::size_t samples = 0;
    for (const route::Heuristic h : figure4_series()) {
      flow::PermutationStudyConfig config;
      config.heuristic = h;
      config.k_paths = k;
      config.stopping = stopping_rule(options.full);
      config.seed = options.seed;
      config.pool = &pool;
      const auto result = flow::run_permutation_study(xgft, config);
      row.push_back(util::Table::num(result.max_load.mean()));
      perf_cells.push_back(util::Table::num(result.perf.mean()));
      samples = std::max(samples, result.samples);
    }
    for (auto& cell : perf_cells) row.push_back(std::move(cell));
    row.push_back(util::Table::num(samples));
    table.add_row(std::move(row));
  }
  return table;
}

/// K sweep used by the Figure 4 benches: powers of two up to the
/// topology's maximum path count (always including 1, 3 and the max),
/// thinned in quick mode.
inline std::vector<std::size_t> k_sweep(const topo::Xgft& xgft, bool full) {
  const auto max_paths =
      static_cast<std::size_t>(xgft.spec().num_top_switches());
  std::vector<std::size_t> ks;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    if (k <= max_paths) ks.push_back(k);
  }
  for (std::size_t k = 4; k < max_paths; k *= 2) ks.push_back(k);
  if (ks.back() != max_paths) ks.push_back(max_paths);
  if (!full && ks.size() > 5) {
    // keep 1, 2, one middle value, max/2-ish and max
    std::vector<std::size_t> slim{ks[0], ks[1], ks[ks.size() / 2],
                                  ks[ks.size() - 2], ks.back()};
    return slim;
  }
  return ks;
}

}  // namespace lmpr::bench
