// Extension bench: the price of obliviousness.  Average max permutation
// load of the paper's OBLIVIOUS K-path heuristics vs a traffic-AWARE
// greedy K-path router that sees the matrix (rip-up-and-reroute refined)
// vs the absolute optimum OLOAD.  Shows how much of the d-mod-k -> UMULTI
// gap the disjoint heuristic already closes without any traffic
// knowledge.
#include "bench_support.hpp"
#include "flow/link_load.hpp"
#include "flow/traffic_aware.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  const topo::Xgft xgft{spec};
  const int samples = options.full ? 100 : 25;

  util::Table table({"K", "oload(optimal)", "aware(greedy)", "disjoint",
                     "random", "shift1", "dmodk"});
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    util::Rng rng{options.seed};
    flow::LoadEvaluator eval(xgft);
    double sums[6] = {0, 0, 0, 0, 0, 0};
    for (int s = 0; s < samples; ++s) {
      const auto tm =
          flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
      sums[0] += flow::oload(xgft, tm).value;
      flow::TrafficAwareConfig aware;
      aware.k_paths = k;
      sums[1] += flow::traffic_aware_kpath(xgft, tm, aware).max_load;
      sums[2] += eval.evaluate(tm, route::Heuristic::kDisjoint, k, rng).max_load;
      sums[3] += eval.evaluate(tm, route::Heuristic::kRandom, k, rng).max_load;
      sums[4] += eval.evaluate(tm, route::Heuristic::kShift1, k, rng).max_load;
      sums[5] += eval.evaluate(tm, route::Heuristic::kDModK, k, rng).max_load;
    }
    std::vector<std::string> row{util::Table::num(k)};
    for (const double sum : sums) {
      row.push_back(util::Table::num(sum / samples));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, options,
              "Price of obliviousness (avg max permutation load), " +
                  spec.to_string());
  return 0;
}
