// Legacy shim: logic lives in the `price_of_obliviousness` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "price_of_obliviousness");
}
