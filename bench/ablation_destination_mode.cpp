// Ablation A4: the traffic-model reading matters.  Under a FIXED random
// pairing (one destination per source for the whole run -- the reading
// that reproduces Table 1), persistent flows collide and multi-path
// routing wins big.  Under a FRESH destination per message, every
// deterministic scheme is statically balanced and d-mod-k is as good as
// any multi-path scheme -- the paper's gaps vanish.  This is the evidence
// behind DESIGN.md's interpretation of the paper's "uniform traffic".
#include "flit_common.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = bench::flit_base_config(options.full);
  const auto loads = bench::flit_load_grid(options.full);
  const auto pairings = bench::shared_pairings(
      xgft.num_hosts(), options.seed, options.full ? 3 : 2);

  struct Scheme {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Scheme schemes[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
  };

  util::Table table({"scheme", "destination model", "max_throughput_%"});
  for (const Scheme& scheme : schemes) {
    const route::RouteTable rt(xgft, scheme.heuristic, scheme.k,
                               options.seed);
    {
      const auto fixed = bench::measure_saturation(rt, base, loads, pairings);
      table.add_row({scheme.name, "fixed pairing (permutation)",
                     util::Table::num(100.0 * fixed.max_throughput, 2)});
    }
    {
      flit::SimConfig config = base;
      config.destination_mode = flit::DestinationMode::kPerMessage;
      double best = 0.0;
      for (std::size_t i = 0; i < pairings.size(); ++i) {
        config.seed = base.seed + 31 * (i + 1);
        const auto sweep = flit::run_load_sweep(rt, config, loads);
        best += sweep.max_throughput;
      }
      table.add_row({scheme.name, "fresh per message",
                     util::Table::num(100.0 * best /
                                          static_cast<double>(pairings.size()),
                                      2)});
    }
  }
  bench::emit(table, options,
              "Ablation A4: destination model vs routing gains, " +
                  xgft.spec().to_string());
  return 0;
}
