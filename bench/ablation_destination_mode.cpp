// Legacy shim: logic lives in the `ablation_destination_mode` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "ablation_destination_mode");
}
