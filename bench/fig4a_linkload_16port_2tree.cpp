// Legacy shim: logic lives in the `fig4a` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "fig4a");
}
