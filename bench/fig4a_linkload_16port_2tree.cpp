// Figure 4(a): average maximum permutation load vs K on XGFT(2;8,16;1,8)
// (the 16-port 2-tree).  Expected shape: every heuristic decreases
// monotonically with K, shift-1 == disjoint (2-level tree), d-mod-k based
// heuristics beat random at small K, all optimal at K = 8.
#include "fig4_common.hpp"

int main(int argc, char** argv) {
  return lmpr::bench::run_fig4_binary(argc, argv, "a", 16, 2);
}
