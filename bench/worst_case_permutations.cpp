// Extension bench: worst-case permutation search per routing scheme.
// Complements Figure 4 (which reports AVERAGE max permutation load): a
// hill-climbing adversary searches for the permutation with the largest
// performance ratio.  Expected: d-mod-k's worst case approaches the
// analytic collapse bound; limited multi-path routing shrinks the worst
// case roughly as W/K; UMULTI is unattackable (Theorem 1).
#include "bench_support.hpp"
#include "flow/worst_case.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  const topo::Xgft xgft{spec};

  util::Table table({"heuristic", "K", "worst PERF found", "worst max load",
                     "evaluations"});
  auto run = [&](route::Heuristic h, std::size_t k) {
    flow::WorstCaseConfig config;
    config.heuristic = h;
    config.k_paths = k;
    config.steps = options.full ? 4000 : 600;
    config.restarts = options.full ? 6 : 2;
    config.seed = options.seed;
    const auto result = flow::search_worst_permutation(xgft, config);
    table.add_row({std::string(to_string(h)), util::Table::num(k),
                   util::Table::num(result.worst_perf),
                   util::Table::num(result.worst_max_load),
                   util::Table::num(result.evaluations)});
  };
  run(route::Heuristic::kDModK, 1);
  for (const std::size_t k : {2u, 4u, 8u}) {
    run(route::Heuristic::kShift1, k);
    run(route::Heuristic::kDisjoint, k);
    run(route::Heuristic::kRandom, k);
  }
  run(route::Heuristic::kUmulti, 1);
  bench::emit(table, options,
              "Worst-case permutation search (hill climbing), " +
                  spec.to_string());
  return 0;
}
