// Legacy shim: logic lives in the `worst_case_permutations` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "worst_case_permutations");
}
