// Figure 4(b): average maximum permutation load vs K on
// XGFT(3;8,8,16;1,8,8) (the 16-port 3-tree).  Expected shape: disjoint <
// random < shift-1 for most K; all converge to optimal at K = 64.
#include "fig4_common.hpp"

int main(int argc, char** argv) {
  return lmpr::bench::run_fig4_binary(argc, argv, "b", 16, 3);
}
