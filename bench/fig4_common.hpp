// Shared driver for the four Figure 4 benches (average maximum link load
// over random permutations vs number of paths K).  Each binary pins its
// paper topology and delegates here.
#pragma once

#include "bench_support.hpp"

namespace lmpr::bench {

inline int run_fig4_binary(int argc, char** argv, const char* figure,
                           std::uint32_t ports, std::size_t levels) {
  const util::Cli cli(argc, argv);
  auto options = CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(cli.get_or(
      "topo", topo::XgftSpec::m_port_n_tree(ports, levels).to_string()));
  const topo::Xgft xgft{spec};
  const auto table = run_figure4(xgft, k_sweep(xgft, options.full), options);
  emit(table, options,
       std::string("Figure 4(") + figure + "): avg max permutation load, " +
           spec.to_string() + " (" + std::to_string(ports) + "-port " +
           std::to_string(levels) + "-tree)");
  return 0;
}

}  // namespace lmpr::bench
