// Legacy shim: logic lives in the `ablation_path_granularity` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "ablation_path_granularity");
}
