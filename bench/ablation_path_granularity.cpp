// Ablation A3: does it matter whether the multi-path traffic split is
// applied per message, per packet, or round-robin?  The paper distributes
// traffic by fractions (f = 1/K) without fixing the granularity; this
// bench shows the saturation throughput and low-load delay for each
// realization on the Table 1 topology.
#include "flit_common.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = bench::flit_base_config(options.full);
  const auto loads = bench::flit_load_grid(options.full);
  const auto pairings = bench::shared_pairings(
      xgft.num_hosts(), options.seed, options.full ? 3 : 2);

  struct Mode {
    const char* name;
    flit::PathSelection selection;
  };
  const Mode modes[] = {
      {"random per message", flit::PathSelection::kRandomPerMessage},
      {"random per packet", flit::PathSelection::kRandomPerPacket},
      {"round robin per message", flit::PathSelection::kRoundRobinPerMessage},
  };

  util::Table table({"heuristic", "K", "path granularity", "max_throughput_%",
                     "low_load_delay_cyc", "reorder_frac@high"});
  for (const route::Heuristic h :
       {route::Heuristic::kDisjoint, route::Heuristic::kShift1}) {
    for (const std::size_t k : {2u, 8u}) {
      const route::RouteTable rt(xgft, h, k, options.seed);
      for (const Mode& mode : modes) {
        flit::SimConfig config = base;
        config.path_selection = mode.selection;
        const auto result =
            bench::measure_saturation(rt, config, loads, pairings);
        table.add_row({std::string(to_string(h)), util::Table::num(k),
                       mode.name,
                       util::Table::num(100.0 * result.max_throughput, 2),
                       util::Table::num(result.delay_at_low_load, 1),
                       util::Table::num(result.reorder_at_high_load)});
      }
    }
  }
  bench::emit(table, options,
              "Ablation A3: traffic-split granularity, " +
                  xgft.spec().to_string());
  return 0;
}
