// Micro benchmarks (google-benchmark) for the fabric substrate: topology
// construction, XGFT recognition from shuffled cable lists, and LFT
// forwarding queries -- the subnet-manager hot paths.
#include <benchmark/benchmark.h>

#include "discovery/recognize.hpp"
#include "fabric/lft.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmpr;

void BM_XgftConstruction(benchmark::State& state) {
  const auto spec = topo::XgftSpec::m_port_n_tree(
      static_cast<std::uint32_t>(state.range(0)), 3);
  for (auto _ : state) {
    topo::Xgft xgft{spec};
    benchmark::DoNotOptimize(xgft.num_links());
  }
  state.SetLabel(spec.to_string());
}
BENCHMARK(BM_XgftConstruction)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMicrosecond);

void BM_RecognizeShuffledFabric(benchmark::State& state) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(
      static_cast<std::uint32_t>(state.range(0)), 3)};
  util::Rng rng{7};
  const auto fabric = discovery::export_fabric(xgft, &rng);
  for (auto _ : state) {
    const auto result = discovery::recognize_xgft(fabric);
    if (!result.ok) state.SkipWithError("recognition failed");
    benchmark::DoNotOptimize(result.canonical.size());
  }
  state.SetLabel(xgft.spec().to_string());
}
BENCHMARK(BM_RecognizeShuffledFabric)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_LftNextLink(benchmark::State& state) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
  const fabric::Lft lft(xgft, 8, fabric::LidLayout::kDisjointLayout);
  const topo::NodeId node = xgft.node_id(1, 0);
  std::uint32_t lid = 1;
  for (auto _ : state) {
    lid = lid % (lft.lid_end() - 1) + 1;
    benchmark::DoNotOptimize(lft.next_link(node, lid));
  }
}
BENCHMARK(BM_LftNextLink);

void BM_LftWalk(benchmark::State& state) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
  const fabric::Lft lft(xgft, 8, fabric::LidLayout::kDisjointLayout);
  std::uint64_t d = 1;
  for (auto _ : state) {
    d = (d * 2654435761u + 1) % xgft.num_hosts();
    if (d == 0) d = 1;
    benchmark::DoNotOptimize(lft.walk(0, d, 3).delivered);
  }
}
BENCHMARK(BM_LftWalk);

}  // namespace

BENCHMARK_MAIN();
