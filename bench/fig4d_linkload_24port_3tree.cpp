// Figure 4(d): average maximum permutation load vs K on
// XGFT(3;12,12,24;1,12,12) (the 24-port 3-tree, TACC-Ranger scale, 3456
// hosts).  The paper's headline flow-level figure: even K = 4 or 8
// drastically reduces the maximum link load vs d-mod-k; disjoint is the
// best heuristic throughout; optimal at K = 144.
#include "fig4_common.hpp"

int main(int argc, char** argv) {
  return lmpr::bench::run_fig4_binary(argc, argv, "d", 24, 3);
}
