// Ablation A1: WHERE does each heuristic leave contention?  Average
// per-level maximum link load over random permutations, split up/down.
// Quantifies Section 4.2.2: shift-1's K paths differ only at the top, so
// its lower-level links stay as congested as d-mod-k's, while disjoint
// forks at the lowest possible level and flattens level-1 contention too.
#include "bench_support.hpp"
#include "flow/link_load.hpp"
#include "flow/traffic.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(cli.get_or(
      "topo",
      topo::XgftSpec::m_port_n_tree(options.full ? 16 : 8, 3).to_string()));
  const topo::Xgft xgft{spec};
  const int samples = options.full ? 200 : 40;
  const std::vector<std::size_t> k_values{2, 4, 8};

  util::Table table({"heuristic", "K", "max_load", "up_L0", "up_L1", "up_L2",
                     "down_L2", "down_L1", "down_L0"});
  for (const route::Heuristic h :
       {route::Heuristic::kDModK, route::Heuristic::kShift1,
        route::Heuristic::kDisjoint, route::Heuristic::kRandom}) {
    for (const std::size_t k : k_values) {
      util::Rng rng{options.seed};
      flow::LoadEvaluator eval(xgft);
      double overall = 0.0;
      std::vector<double> up(xgft.height(), 0.0);
      std::vector<double> down(xgft.height(), 0.0);
      for (int s = 0; s < samples; ++s) {
        const auto tm =
            flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
        const auto result = eval.evaluate(tm, h, k, rng);
        overall += result.max_load;
        for (std::uint32_t l = 0; l < xgft.height(); ++l) {
          up[l] += result.max_up_load_per_level[l];
          down[l] += result.max_down_load_per_level[l];
        }
      }
      const double n = samples;
      table.add_row({std::string(to_string(h)), util::Table::num(k),
                     util::Table::num(overall / n),
                     util::Table::num(up[0] / n), util::Table::num(up[1] / n),
                     util::Table::num(up[2] / n),
                     util::Table::num(down[2] / n),
                     util::Table::num(down[1] / n),
                     util::Table::num(down[0] / n)});
      if (route::is_single_path(h)) break;  // K is irrelevant
    }
  }
  bench::emit(table, options,
              "Ablation A1: avg per-level max link load (permutations), " +
                  spec.to_string());
  return 0;
}
