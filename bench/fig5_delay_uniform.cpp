// Legacy shim: logic lives in the `fig5` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "fig5");
}
