// Figure 5: average message delay vs offered load under the paper's
// uniform (fixed-pairing) traffic on XGFT(3;4,4,8;1,4,4), flit level.
// Series: d-mod-k, disjoint(2), disjoint(8), shift-1(2), shift-1(8),
// random(1), random(2), random(8) -- the paper's legend.
//
// Expected shape: delays explode at each scheme's saturation load;
// multi-path saturates later than d-mod-k; at low load disjoint(2) can
// edge out disjoint(8) (spreading raises the chance of contention while
// lowering its penalty -- the paper's Section 5 discussion).
#include "flit_common.hpp"

namespace {

struct Series {
  const char* name;
  lmpr::route::Heuristic heuristic;
  std::size_t k;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  const topo::Xgft xgft{spec};

  const Series series[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"disjoint(2)", route::Heuristic::kDisjoint, 2},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
      {"shift1(2)", route::Heuristic::kShift1, 2},
      {"shift1(8)", route::Heuristic::kShift1, 8},
      {"random(1)", route::Heuristic::kRandomSingle, 1},
      {"random(2)", route::Heuristic::kRandom, 2},
      {"random(8)", route::Heuristic::kRandom, 8},
  };

  const auto base = bench::flit_base_config(options.full);
  const auto loads = options.full ? flit::linspace_loads(0.05, 0.95, 10)
                                  : std::vector<double>{0.1, 0.3, 0.5, 0.7};
  const auto pairings = bench::shared_pairings(
      xgft.num_hosts(), options.seed, options.full ? 3 : 1);

  // delays[series][load] accumulated over pairings.
  std::vector<std::vector<double>> delays(
      std::size(series), std::vector<double>(loads.size(), 0.0));
  for (std::size_t s = 0; s < std::size(series); ++s) {
    const route::RouteTable table(xgft, series[s].heuristic, series[s].k,
                                  options.seed);
    for (const auto& pairing : pairings) {
      flit::SimConfig config = base;
      config.seed = options.seed;
      config.fixed_destinations = pairing;
      const auto sweep = flit::run_load_sweep(table, config, loads);
      for (std::size_t i = 0; i < loads.size(); ++i) {
        delays[s][i] += sweep.points[i].mean_message_delay /
                        static_cast<double>(pairings.size());
      }
    }
  }

  std::vector<std::string> headers{"offered_load_%"};
  for (const auto& s : series) headers.emplace_back(s.name);
  util::Table table(headers);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> row{util::Table::num(100.0 * loads[i], 0)};
    for (std::size_t s = 0; s < std::size(series); ++s) {
      row.push_back(util::Table::num(delays[s][i], 1));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, options,
              "Figure 5: mean message delay (cycles) vs offered load, " +
                  spec.to_string());
  return 0;
}
