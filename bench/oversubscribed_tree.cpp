// Legacy shim: logic lives in the `oversubscribed_tree` scenario (src/engine/).
#include "engine/shim.hpp"

int main(int argc, char** argv) {
  return lmpr::engine::shim_main(argc, argv, "oversubscribed_tree");
}
