// Extension bench: oversubscribed (slimmed) fat-trees.  The paper's
// XGFT generality covers trees with w_i < m_i, where even optimal routing
// cannot keep the max load at 1 for permutations.  This bench runs the
// Figure-4 study on 2:1 and 4:1 oversubscribed GFTs and shows that (a)
// the heuristics still converge to the UMULTI optimum at K = prod(w),
// and (b) the optimum itself now sits above 1 (the structural
// oversubscription penalty, visible in the perf columns staying at 1.0
// while absolute loads stay high).
#include "fig4_common.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto options = bench::CommonOptions::from_cli(cli);

  for (const char* text : {"XGFT(2;8,8;1,4)",     // 2:1 at the leaf level
                           "XGFT(2;8,8;1,2)",     // 4:1
                           "XGFT(3;4,4,8;1,2,4)"  // 2:1 at level 1 only
                          }) {
    const auto spec = topo::XgftSpec::parse(text);
    const topo::Xgft xgft{spec};
    const auto table =
        bench::run_figure4(xgft, bench::k_sweep(xgft, options.full), options);
    bench::emit(table, options,
                std::string("Oversubscribed tree: ") + spec.to_string());
  }
  return 0;
}
