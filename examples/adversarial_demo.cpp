// Walkthrough of the Theorem 2 adversarial construction: builds an XGFT
// where d-mod-k collapses onto a single upward link, shows the traffic
// pattern, and demonstrates how limited multi-path routing recovers.
//
//   ./adversarial_demo --height 3 --spread 4
#include <iostream>

#include "lmpr.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto height =
      static_cast<std::size_t>(cli.get_or("height", std::int64_t{3}));
  const auto spread =
      static_cast<std::uint32_t>(cli.get_or("spread", std::int64_t{4}));

  const auto spec = flow::adversarial_dmodk_topology(height, spread);
  const topo::Xgft xgft{spec};
  const auto tm = flow::adversarial_dmodk_traffic(xgft);
  const std::uint64_t w_total = spec.num_top_switches();

  std::cout << "topology: " << spec.to_string() << " (" << xgft.num_hosts()
            << " hosts, W = prod(w_i) = " << w_total << ")\n";
  std::cout << "adversarial pattern: every host of the first height-"
            << (height - 1) << " subtree sends 1 unit to a destination that "
            << "is a multiple of W, so every d-mod-k upward port choice is "
            << "(d / prod(w)) mod w = 0:\n";
  for (const auto& d : tm.demands()) {
    std::cout << "  " << d.src << " -> " << d.dst << "\n";
  }

  flow::LoadEvaluator eval(xgft);
  util::Rng rng{1};
  const double opt = flow::oload(xgft, tm).value;
  std::cout << "\noptimal max link load OLOAD = " << opt
            << " (subtree cut bound, achieved by UMULTI)\n\n";

  util::Table table({"routing", "K", "max link load", "perf ratio"});
  auto add = [&](route::Heuristic h, std::size_t k) {
    const double load = eval.evaluate(tm, h, k, rng).max_load;
    table.add_row({std::string(to_string(h)), util::Table::num(k),
                   util::Table::num(load),
                   util::Table::num(flow::perf_ratio(load, opt))});
  };
  add(route::Heuristic::kDModK, 1);
  for (std::size_t k = 2; k < w_total; k *= 2) {
    add(route::Heuristic::kDisjoint, k);
  }
  add(route::Heuristic::kDisjoint, static_cast<std::size_t>(w_total));
  add(route::Heuristic::kUmulti, 1);
  table.print(std::cout);
  std::cout << "\nPERF(d-mod-k) = " << w_total
            << " = prod(w_i): the Theorem 2 lower bound, while disjoint(K) "
               "recovers as W/K.\n";
  return 0;
}
