// Subnet-manager walkthrough: export a topology as an anonymized cable
// list (shuffled node ids), recognize it back as an XGFT, and use the
// recovered canonical labels to install d-mod-k + disjoint multi-path
// forwarding tables -- the full deployment pipeline the paper's routing
// schemes assume.
//
//   ./fabric_discovery_demo --topo "XGFT(3;4,4,8;1,4,4)" --seed 7 --k 4
#include <iostream>

#include "lmpr.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  util::Rng rng{static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{7}))};
  const auto k = static_cast<std::uint64_t>(cli.get_or("k", std::int64_t{4}));

  // 1. A fabric appears on the wire: anonymous ids, shuffled cables.
  const topo::Xgft reference{spec};
  const auto fabric = discovery::export_fabric(reference, &rng);
  std::cout << "discovered " << fabric.num_nodes << " nodes, "
            << fabric.cables.size() << " cables, " << fabric.hosts.size()
            << " hosts (ids shuffled)\n";

  // 2. Recognize it.
  const auto result = discovery::recognize_xgft(fabric);
  if (!result.ok) {
    std::cerr << "not an XGFT: " << result.error << "\n";
    return 1;
  }
  std::cout << "recognized as " << result.spec.to_string()
            << " (isomorphism verified edge-by-edge)\n";

  // 3. Install LID-based multi-path forwarding on the canonical topology.
  const topo::Xgft xgft{result.spec};
  const fabric::Lft lft(xgft, k, fabric::LidLayout::kDisjointLayout);
  std::cout << "LFT: LMC " << lft.lmc() << ", " << lft.lid_end() - 1
            << " LIDs assigned (block of " << lft.block()
            << " per host)\n\n";

  // 4. Show one switch's forwarding table fragment and one routed walk.
  const std::uint32_t raw_src = fabric.hosts[0];
  const std::uint32_t raw_dst = fabric.hosts[1];
  const std::uint64_t src = result.canonical[raw_src];
  const std::uint64_t dst = result.canonical[raw_dst];
  std::cout << "raw host " << raw_src << " -> canonical host " << src
            << ", raw host " << raw_dst << " -> canonical host " << dst
            << "\n";
  for (std::uint32_t j = 0; j < lft.block(); ++j) {
    const auto walk = lft.walk(src, dst, j);
    std::cout << "  DLID " << lft.lid_of(dst, j) << " (variant " << j
              << "): " << (walk.delivered ? "delivered" : "LOST") << " via";
    for (const auto node : walk.path.nodes) {
      std::cout << ' ' << xgft.label_of(node).to_string();
    }
    std::cout << '\n';
  }
  return 0;
}
