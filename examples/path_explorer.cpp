// Path explorer: prints the full shortest-path enumeration for one SD
// pair with node labels -- reproducing the paper's Figure 3 path listing
// -- plus each heuristic's selection and its link-disjointness profile.
//
//   ./path_explorer                      # the paper's example (0, 63)
//   ./path_explorer --topo "XGFT(3;4,4,8;1,4,4)" --src 0 --dst 127 --k 4
#include <iostream>

#include "lmpr.hpp"

namespace {

std::string path_to_string(const lmpr::topo::Xgft& xgft,
                           const lmpr::route::Path& path) {
  std::string out;
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    if (i != 0) out += " -> ";
    out += xgft.label_of(path.nodes[i]).to_string();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto spec =
      topo::XgftSpec::parse(cli.get_or("topo", "XGFT(3;4,4,4;1,4,2)"));
  const topo::Xgft xgft{spec};
  const auto src = static_cast<std::uint64_t>(cli.get_or("src", std::int64_t{0}));
  const auto dst = static_cast<std::uint64_t>(
      cli.get_or("dst", static_cast<std::int64_t>(xgft.num_hosts() - 1)));
  const auto k = static_cast<std::size_t>(cli.get_or("k", std::int64_t{4}));
  util::Rng rng{static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}))};

  if (src >= xgft.num_hosts() || dst >= xgft.num_hosts()) {
    std::cerr << "src/dst must be < " << xgft.num_hosts() << "\n";
    return 1;
  }

  const std::uint64_t total = xgft.num_shortest_paths(src, dst);
  std::cout << spec.to_string() << ", SD pair (" << src << ", " << dst
            << "): NCA at level " << xgft.nca_level(src, dst) << ", "
            << total << " shortest paths\n\n";

  for (std::uint64_t i = 0; i < total; ++i) {
    const auto path = route::materialize_path(xgft, src, dst, i);
    std::cout << "Path " << i << ": " << path_to_string(xgft, path) << "\n";
  }

  std::cout << "\nd-mod-k path: Path " << route::dmodk_index(xgft, src, dst)
            << ",  s-mod-k path: Path " << route::smodk_index(xgft, src, dst)
            << "\n\nheuristic selections with K = " << k << ":\n";
  util::Table table({"heuristic", "paths", "distinct links",
                     "mean shared links/pair", "disjoint pairs"});
  for (const route::Heuristic h :
       {route::Heuristic::kShift1, route::Heuristic::kDisjoint,
        route::Heuristic::kRandom, route::Heuristic::kUmulti}) {
    const auto indices = route::select_path_indices(xgft, src, dst, k, h, rng);
    std::vector<route::Path> paths;
    std::string list;
    for (const auto index : indices) {
      if (!list.empty()) list += ", ";
      list += std::to_string(index);
      paths.push_back(route::materialize_path(xgft, src, dst, index));
    }
    const auto stats = route::analyze_path_set(xgft, paths);
    table.add_row({std::string(to_string(h)), list,
                   util::Table::num(stats.distinct_links),
                   util::Table::num(stats.mean_pairwise_shared, 2),
                   util::Table::num(stats.disjoint_pairs)});
  }
  table.print(std::cout);
  return 0;
}
