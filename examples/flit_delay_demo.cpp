// Flit-level demo: sweep the offered load for one routing configuration
// and print throughput / delay / delivery statistics per point.
//
//   ./flit_delay_demo --heuristic disjoint --k 8 --points 6
//   ./flit_delay_demo --topo "XGFT(3;4,4,8;1,4,4)" --heuristic dmodk
#include <iostream>

#include "lmpr.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  route::Heuristic heuristic = route::Heuristic::kDisjoint;
  try {
    heuristic = route::parse_heuristic(cli.get_or("heuristic", "disjoint"));
  } catch (const std::invalid_argument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  const auto k = static_cast<std::size_t>(cli.get_or("k", std::int64_t{8}));
  const auto points =
      static_cast<std::size_t>(cli.get_or("points", std::int64_t{6}));

  const topo::Xgft xgft{spec};
  const route::RouteTable table(xgft, heuristic, k,
                                static_cast<std::uint64_t>(
                                    cli.get_or("seed", std::int64_t{42})));

  flit::SimConfig config;
  config.warmup_cycles = static_cast<std::uint64_t>(
      cli.get_or("warmup", std::int64_t{4000}));
  config.measure_cycles = static_cast<std::uint64_t>(
      cli.get_or("measure", std::int64_t{12000}));
  config.drain_cycles = 4000;
  config.seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{42}));

  std::cout << "flit-level sweep on " << spec.to_string() << ", "
            << to_string(heuristic) << "(K=" << k << "), packet "
            << config.packet_flits << " flits, message "
            << config.message_packets << " packets, buffers "
            << config.buffer_packets << " packets\n";

  const auto sweep = flit::run_load_sweep(
      table, config, flit::linspace_loads(0.1, 0.95, points));

  util::Table out({"offered load", "throughput", "msg delay (cyc)",
                   "pkt delay (cyc)", "delivered"});
  for (const auto& p : sweep.points) {
    out.add_row({util::Table::num(p.offered_load, 2),
                 util::Table::num(p.throughput),
                 util::Table::num(p.mean_message_delay, 1),
                 util::Table::num(p.mean_packet_delay, 1),
                 util::Table::num(p.delivered_fraction)});
  }
  out.print(std::cout);
  std::cout << "maximum throughput achieved: "
            << util::Table::num(100.0 * sweep.max_throughput, 2) << "%\n";
  return 0;
}
