// Flow-level permutation study from the command line: average maximum
// link load over random permutations with the paper's 99%/2% stopping
// rule, for one topology / heuristic / K.
//
//   ./permutation_study --topo "XGFT(3;8,8,16;1,8,8)" --heuristic disjoint
//   ./permutation_study --heuristic dmodk --k 1 --precision 0.02
#include <iostream>

#include "lmpr.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  route::Heuristic heuristic = route::Heuristic::kDisjoint;
  try {
    heuristic = route::parse_heuristic(cli.get_or("heuristic", "disjoint"));
  } catch (const std::invalid_argument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }

  flow::PermutationStudyConfig config;
  config.heuristic = heuristic;
  config.k_paths = static_cast<std::size_t>(cli.get_or("k", std::int64_t{4}));
  config.seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{7}));
  config.stopping.initial_samples = static_cast<std::size_t>(
      cli.get_or("initial-samples", std::int64_t{100}));
  config.stopping.max_samples = static_cast<std::size_t>(
      cli.get_or("max-samples", std::int64_t{12800}));
  config.stopping.relative_precision = cli.get_or("precision", 0.02);

  const topo::Xgft xgft{spec};
  std::cout << "running on " << spec.to_string() << " ("
            << xgft.num_hosts() << " hosts), heuristic "
            << to_string(heuristic) << ", K = " << config.k_paths
            << " ...\n";
  const auto result = flow::run_permutation_study(xgft, config);

  util::Table table({"metric", "value"});
  table.add_row({"samples", util::Table::num(result.samples)});
  table.add_row({"converged (CI<=2% @99%)", result.converged ? "yes" : "no"});
  table.add_row({"avg max link load", util::Table::num(result.max_load.mean())});
  table.add_row({"99% CI half-width",
                 util::Table::num(result.max_load.ci_half_width(0.99), 4)});
  table.add_row({"min / max load",
                 util::Table::num(result.max_load.min()) + " / " +
                     util::Table::num(result.max_load.max())});
  table.add_row({"avg performance ratio", util::Table::num(result.perf.mean())});
  table.add_row({"worst performance ratio", util::Table::num(result.perf.max())});
  table.print(std::cout);
  return 0;
}
