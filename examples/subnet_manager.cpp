// An OpenSM-flavoured end-to-end tool: read (or synthesize) a fabric
// cable list, recognize the XGFT, assign LIDs, build the multi-path
// forwarding state, verify it by walking every variant of sampled pairs,
// and optionally dump a switch's DLID->port table.
//
//   # synthesize, recognize, verify:
//   ./subnet_manager --topo "XGFT(3;4,4,8;1,4,4)" --k 4 --shuffle-seed 5
//   # from a file (see discovery/io.hpp for the format):
//   ./subnet_manager --fabric my_fabric.txt --k 8 --dump-switch 130
//   # export a fabric file for later runs:
//   ./subnet_manager --topo "XGFT(2;4,8;1,4)" --save-fabric out.txt
#include <iostream>

#include "discovery/io.hpp"
#include "lmpr.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint64_t>(cli.get_or("k", std::int64_t{4}));

  // 1. Acquire the fabric.
  discovery::RawFabric fabric;
  try {
    if (const auto path = cli.get("fabric"); path && !path->empty()) {
      fabric = discovery::load_fabric_file(*path);
    } else {
      const auto spec = topo::XgftSpec::parse(cli.get_or(
          "topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
      const topo::Xgft reference{spec};
      if (cli.has("shuffle-seed")) {
        util::Rng rng{static_cast<std::uint64_t>(
            cli.get_or("shuffle-seed", std::int64_t{1}))};
        fabric = discovery::export_fabric(reference, &rng);
      } else {
        fabric = discovery::export_fabric(reference);
      }
    }
    if (const auto out = cli.get("save-fabric"); out && !out->empty()) {
      discovery::save_fabric_file(fabric, *out);
      std::cout << "fabric written to " << *out << "\n";
    }
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
  std::cout << "fabric: " << fabric.num_nodes << " nodes, "
            << fabric.cables.size() << " cables, " << fabric.hosts.size()
            << " hosts\n";

  // 2. Recognize.
  const auto recognition = discovery::recognize_xgft(fabric);
  if (!recognition.ok) {
    std::cerr << "not an XGFT: " << recognition.error << "\n";
    return 1;
  }
  std::cout << "recognized: " << recognition.spec.to_string() << "\n";

  // 3. Assign LIDs + forwarding state.
  const topo::Xgft xgft{recognition.spec};
  const fabric::Lft lft(xgft, k, fabric::LidLayout::kDisjointLayout);
  const auto cost = route::lid_cost(xgft, k);
  std::cout << "LIDs: block 2^" << lft.lmc() << " per host, "
            << lft.lid_end() - 1 << " total ("
            << (cost.realizable ? "realizable" : "NOT realizable")
            << " on InfiniBand)\n";

  // 4. Verify: walk every variant for sampled pairs.
  util::Rng rng{42};
  std::size_t walked = 0;
  std::size_t delivered = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t s = rng.below(xgft.num_hosts());
    std::uint64_t d = rng.below(xgft.num_hosts() - 1);
    if (d >= s) ++d;
    for (std::uint32_t j = 0; j < lft.block(); ++j) {
      ++walked;
      delivered += lft.walk(s, d, j).delivered;
    }
  }
  std::cout << "verification: " << delivered << "/" << walked
            << " sampled LFT walks delivered\n";

  // 5. Optional table dump (canonical node id).
  if (cli.has("dump-switch")) {
    const auto node = static_cast<topo::NodeId>(
        cli.get_or("dump-switch", std::int64_t{0}));
    if (node >= xgft.num_nodes() || xgft.is_host(node)) {
      std::cerr << "dump-switch expects a switch node id < "
                << xgft.num_nodes() << "\n";
      return 1;
    }
    const auto table = lft.table_for(node);
    std::cout << "\nLFT of switch " << xgft.label_of(node).to_string()
              << " (DLID -> next node):\n";
    for (std::uint32_t lid = 1; lid < lft.lid_end(); ++lid) {
      if (table[lid] == topo::kInvalidLink) continue;
      std::cout << "  " << lid << " -> "
                << xgft.label_of(xgft.link(table[lid]).dst).to_string()
                << (lft.variant_of(lid) == 0 ? "  (d-mod-k base)" : "")
                << "\n";
      if (lid > 24) {
        std::cout << "  ... (" << lft.lid_end() - 1 - lid
                  << " more entries)\n";
        break;
      }
    }
  }
  return delivered == walked ? 0 : 1;
}
