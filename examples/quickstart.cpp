// Quickstart: build an XGFT, route one SD pair with every heuristic, and
// evaluate a random permutation at the flow level.
//
//   ./quickstart [--topo "XGFT(3;4,4,8;1,4,4)"] [--k 4] [--seed 7]
#include <iostream>

#include "lmpr.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto spec =
      topo::XgftSpec::parse(cli.get_or("topo", "XGFT(3;4,4,8;1,4,4)"));
  const auto k_paths =
      static_cast<std::size_t>(cli.get_or("k", std::int64_t{4}));
  util::Rng rng{static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{7}))};

  const topo::Xgft xgft{spec};
  std::cout << "topology " << spec.to_string() << ": " << xgft.num_hosts()
            << " hosts, " << xgft.num_nodes() - xgft.num_hosts()
            << " switches, " << xgft.num_cables() << " cables\n";
  std::cout << "max shortest paths per SD pair: "
            << spec.num_top_switches() << "\n\n";

  // 1. Paths one heuristic at a time for the pair (0, last host).
  const std::uint64_t src = 0;
  const std::uint64_t dst = xgft.num_hosts() - 1;
  std::cout << "paths for SD pair (" << src << ", " << dst << "), K = "
            << k_paths << ":\n";
  for (const route::Heuristic h :
       {route::Heuristic::kDModK, route::Heuristic::kShift1,
        route::Heuristic::kDisjoint, route::Heuristic::kRandom}) {
    const auto indices =
        route::select_path_indices(xgft, src, dst, k_paths, h, rng);
    std::cout << "  " << to_string(h) << ":";
    for (const auto index : indices) std::cout << " Path " << index;
    std::cout << '\n';
  }

  // 2. Flow-level evaluation of one random permutation.
  const auto tm =
      flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  flow::LoadEvaluator evaluator(xgft);
  const double optimum = flow::oload(xgft, tm).value;
  std::cout << "\nrandom permutation, optimal max link load = " << optimum
            << ":\n";
  util::Table table({"heuristic", "K", "max link load", "perf ratio"});
  for (const route::Heuristic h :
       {route::Heuristic::kDModK, route::Heuristic::kShift1,
        route::Heuristic::kDisjoint, route::Heuristic::kRandom,
        route::Heuristic::kUmulti}) {
    const auto load = evaluator.evaluate(tm, h, k_paths, rng);
    table.add_row({std::string(to_string(h)), util::Table::num(k_paths),
                   util::Table::num(load.max_load),
                   util::Table::num(flow::perf_ratio(load.max_load, optimum))});
  }
  table.print(std::cout);
  return 0;
}
