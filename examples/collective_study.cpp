// Application-workload study: evaluate the routing heuristics on real HPC
// communication schedules (all-to-all, allreduce, stencil, transpose)
// with the bandwidth phase model, plus the traffic-aware greedy router as
// the "if only we knew the traffic" reference.
//
//   ./collective_study --topo "XGFT(3;4,4,8;1,4,4)" --k 4
#include <bit>
#include <iostream>

#include "lmpr.hpp"

int main(int argc, char** argv) {
  using namespace lmpr;
  const util::Cli cli(argc, argv);
  const auto spec = topo::XgftSpec::parse(
      cli.get_or("topo", topo::XgftSpec::m_port_n_tree(8, 3).to_string()));
  const auto k = static_cast<std::size_t>(cli.get_or("k", std::int64_t{4}));
  const topo::Xgft xgft{spec};
  const std::uint64_t hosts = xgft.num_hosts();
  util::Rng rng{static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{7}))};

  std::vector<flow::Collective> workloads;
  workloads.push_back(flow::shift_all_to_all(hosts));
  workloads.push_back(flow::ring_allreduce(hosts));
  if (std::has_single_bit(hosts)) {
    workloads.push_back(flow::recursive_doubling(hosts));
  }
  if (hosts % 16 == 0 && hosts / 16 >= 2) {
    workloads.push_back(flow::stencil3d(2, 8, hosts / 16));
    workloads.push_back(flow::transpose(hosts / 16, 16));
  }

  std::cout << "bandwidth-model slowdown vs optimal, " << spec.to_string()
            << ", K = " << k << ":\n";
  util::Table table({"workload", "dmodk", "shift1(K)", "disjoint(K)",
                     "random(K)", "aware(K)"});
  for (const auto& workload : workloads) {
    auto slow = [&](route::Heuristic h, std::size_t kk) {
      return util::Table::num(
          flow::evaluate_collective(xgft, workload, h, kk, rng).slowdown);
    };
    // Traffic-aware reference: greedy per phase.
    double aware_time = 0.0;
    double optimal_time = 0.0;
    for (const auto& phase : workload.phases) {
      flow::TrafficAwareConfig config;
      config.k_paths = k;
      aware_time += static_cast<double>(phase.repeat) *
                    flow::traffic_aware_kpath(xgft, phase.tm, config).max_load;
      optimal_time += static_cast<double>(phase.repeat) *
                      flow::oload(xgft, phase.tm).value;
    }
    table.add_row({workload.name, slow(route::Heuristic::kDModK, 1),
                   slow(route::Heuristic::kShift1, k),
                   slow(route::Heuristic::kDisjoint, k),
                   slow(route::Heuristic::kRandom, k),
                   util::Table::num(aware_time / optimal_time)});
  }
  table.print(std::cout);
  std::cout << "\n(1.000 = the phase-wise optimum OLOAD; Theorem 1 makes "
               "umulti hit it on every workload.)\n";
  return 0;
}
