// Seeded randomized equivalence harness for the sharded fabric manager.
// Fifty random XGFT shapes x random event scripts -- cable kills/heals at
// every level (including the level-(h-1) cables that touch the spine),
// switch kills/heals including TOP-LEVEL (spine) switches, cross-island
// faults and queries -- each replayed in lockstep through a monolithic
// fm::FabricManager and a shard::ShardedFabricManager with a random
// shard count.  After EVERY event the harness asserts bit-identity of
// the observable state (per-event records, exposed and per-policy
// tables, use counts, summary) plus the aggregator invariants
// (aggregate().churn == summary().total_churn, same for disconnected
// pairs).  A separate hammer drives island repairs concurrently on a
// real multi-worker ThreadPool -- the TSan CI step races it -- and the
// --list-islands partition table is pinned against a golden file.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fm/fabric_manager.hpp"
#include "shard/island_map.hpp"
#include "shard/sharded_manager.hpp"
#include "topology/spec.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lmpr {
namespace {

using fabric::LidLayout;
using fabric::RepairPolicy;

constexpr int kCombos = 50;
constexpr int kEventsPerCombo = 16;
constexpr std::uint64_t kSeedBase = 0x5ba4de11c0ffee01ull;

/// Random small XGFT shape: 2 or 3 levels with a real top width, so the
/// partition has several islands and a non-trivial spine.
topo::XgftSpec random_spec(util::Rng& rng) {
  const auto pick = [&rng](std::uint32_t lo, std::uint32_t hi) {
    return lo + static_cast<std::uint32_t>(rng.below(hi - lo + 1));
  };
  if (rng.below(2) == 0) {
    return topo::XgftSpec{{pick(2, 4), pick(2, 4)}, {pick(1, 3), pick(2, 3)}};
  }
  return topo::XgftSpec{{pick(2, 3), pick(2, 3), pick(2, 3)},
                        {pick(1, 2), pick(2, 3), pick(2, 3)}};
}

std::vector<std::uint32_t> raw_of(const fm::FabricManager& fm) {
  const auto& canonical = fm.canonical();
  std::vector<std::uint32_t> inverse(canonical.size(), 0);
  for (std::uint32_t raw = 0; raw < canonical.size(); ++raw) {
    inverse[static_cast<std::size_t>(canonical[raw])] = raw;
  }
  return inverse;
}

fm::Event cable_event(const fm::FabricManager& fm,
                      const std::vector<std::uint32_t>& inverse,
                      std::uint64_t cable, bool down) {
  const topo::Link& link = fm.xgft().link(static_cast<topo::LinkId>(cable));
  return {down ? fm::EventType::kCableDown : fm::EventType::kCableUp,
          inverse[static_cast<std::size_t>(link.src)],
          inverse[static_cast<std::size_t>(link.dst)]};
}

/// Draws the next event against the current degradation state; returns
/// false when the drawn branch has no applicable target this step.  The
/// switch-kill branch picks a TOP-LEVEL switch half the time so every
/// combo exercises spine events against the sharded repair path.
bool next_event(const fm::FabricManager& fm,
                const std::vector<std::uint32_t>& inverse, util::Rng& rng,
                fm::Event& event) {
  const topo::Xgft& xgft = fm.xgft();
  const fabric::Degradation& deg = fm.degradation();
  const double roll = rng.uniform01();
  if (roll < 0.38) {  // kill a random live cable (any level)
    const std::uint64_t cable = rng.below(xgft.num_cables());
    if (!deg.cable_ok(cable)) return false;
    event = cable_event(fm, inverse, cable, /*down=*/true);
  } else if (roll < 0.58) {  // heal a random dead cable
    std::vector<std::uint64_t> dead;
    for (std::uint64_t c = 0; c < xgft.num_cables(); ++c) {
      if (!deg.cable_ok(c)) dead.push_back(c);
    }
    if (dead.empty()) return false;
    event = cable_event(
        fm, inverse, dead[static_cast<std::size_t>(rng.below(dead.size()))],
        /*down=*/false);
  } else if (roll < 0.72) {  // kill a live switch (at most 2 dead)
    std::size_t dead_switches = 0;
    std::vector<topo::NodeId> live;
    const bool want_spine = rng.below(2) == 0;
    for (topo::NodeId n = 0; n < xgft.num_nodes(); ++n) {
      if (xgft.is_host(n)) continue;
      if (!deg.node_ok(n)) {
        ++dead_switches;
        continue;
      }
      if (!want_spine || xgft.level_of(n) == xgft.height()) live.push_back(n);
    }
    if (dead_switches >= 2 || live.empty()) return false;
    event = {fm::EventType::kSwitchDown,
             inverse[live[static_cast<std::size_t>(rng.below(live.size()))]],
             0};
  } else if (roll < 0.85) {  // heal a random dead switch
    std::vector<topo::NodeId> dead;
    for (topo::NodeId n = 0; n < xgft.num_nodes(); ++n) {
      if (!xgft.is_host(n) && !deg.node_ok(n)) dead.push_back(n);
    }
    if (dead.empty()) return false;
    event = {fm::EventType::kSwitchUp,
             inverse[dead[static_cast<std::size_t>(rng.below(dead.size()))]],
             0};
  } else {  // query: state-preserving, exercises the mixed stream
    event = {fm::EventType::kQuery,
             inverse[xgft.host(rng.below(xgft.num_hosts()))],
             inverse[xgft.host(rng.below(xgft.num_hosts()))]};
  }
  return true;
}

void check_records_equal(const fm::EventRecord& mono,
                         const fm::EventRecord& shard,
                         const std::string& where) {
  ASSERT_EQ(mono.ok, shard.ok) << where;
  ASSERT_EQ(mono.churn, shard.churn) << where;
  ASSERT_EQ(mono.destinations_repaired, shard.destinations_repaired) << where;
  ASSERT_EQ(mono.full_rebuild, shard.full_rebuild) << where;
  ASSERT_EQ(mono.disconnected_pairs, shard.disconnected_pairs) << where;
  ASSERT_EQ(mono.connected, shard.connected) << where;
  ASSERT_EQ(mono.usable_variants, shard.usable_variants) << where;
  ASSERT_EQ(mono.distinct_paths, shard.distinct_paths) << where;
  ASSERT_EQ(mono.primary_hops, shard.primary_hops) << where;
}

/// Full observable-state comparison plus the aggregator invariants.
void check_state_equal(const fm::FabricManager& mono,
                       const shard::ShardedFabricManager& sharded,
                       const std::string& where) {
  ASSERT_EQ(mono.tables(), sharded.tables()) << where;
  ASSERT_EQ(mono.policy_tables(), sharded.policy_tables()) << where;
  ASSERT_EQ(mono.use_counts(), sharded.use_counts()) << where;
  ASSERT_EQ(mono.shadow_tables() == nullptr,
            sharded.shadow_tables() == nullptr) << where;
  if (mono.shadow_tables() != nullptr) {
    ASSERT_EQ(*mono.shadow_tables(), *sharded.shadow_tables()) << where;
  }
  const fm::FmSummary& ms = mono.summary();
  const fm::FmSummary& ss = sharded.summary();
  ASSERT_EQ(ms.total_churn, ss.total_churn) << where;
  ASSERT_EQ(ms.full_rebuilds, ss.full_rebuilds) << where;
  ASSERT_EQ(ms.destinations_repaired, ss.destinations_repaired) << where;
  ASSERT_EQ(ms.disconnected_pairs, ss.disconnected_pairs) << where;
  ASSERT_EQ(ms.max_disconnected_window, ss.max_disconnected_window) << where;

  // The thin aggregator: per-shard metrics must re-derive the merged
  // control plane's totals exactly.
  const shard::ShardStats total = sharded.aggregate();
  ASSERT_EQ(total.churn, ss.total_churn) << where;
  ASSERT_EQ(total.disconnected_pairs, ss.disconnected_pairs) << where;
  ASSERT_EQ(total.columns_full + total.columns_scoped,
            static_cast<std::uint64_t>(ss.destinations_repaired)) << where;
}

TEST(ShardProperty, FiftySeedEquivalenceWithMonolithic) {
  for (int combo = 0; combo < kCombos; ++combo) {
    util::Rng rng{kSeedBase + static_cast<std::uint64_t>(combo)};
    const topo::XgftSpec spec = random_spec(rng);

    fm::FmConfig config;
    config.k_paths = 1ull << rng.below(3);  // 1, 2 or 4
    config.layout = rng.below(2) == 0 ? LidLayout::kDisjointLayout
                                      : LidLayout::kShiftLayout;
    config.repair_policy = rng.below(2) == 0 ? RepairPolicy::kFirstSurviving
                                             : RepairPolicy::kLoadAware;
    config.track_link_load = false;
    config.zero_timings = true;

    fm::FabricManager mono{spec, config};
    ASSERT_TRUE(mono.ok()) << mono.error();

    shard::ShardConfig shard_config;
    shard_config.fm = config;
    // 0 = auto (per island), 1 = one group (scoping still active), or a
    // partial grouping.
    shard_config.shards = rng.below(3);
    shard::ShardedFabricManager sharded{spec, shard_config};
    ASSERT_TRUE(sharded.ok()) << sharded.error();

    const auto inverse = raw_of(mono);
    std::uint64_t spine_before = 0;
    for (int step = 0; step < kEventsPerCombo; ++step) {
      fm::Event event;
      if (!next_event(mono, inverse, rng, event)) continue;
      const std::string where =
          "combo " + std::to_string(combo) + " (" + spec.to_string() +
          " K=" + std::to_string(config.k_paths) + " shards=" +
          std::to_string(sharded.islands().num_shards()) + ") step " +
          std::to_string(step) + " " + std::string(to_string(event.type));

      const fm::EventRecord mono_record = mono.apply(event);
      const fm::EventRecord shard_record = sharded.apply(event);
      check_records_equal(mono_record, shard_record, where);
      if (HasFatalFailure()) return;
      check_state_equal(mono, sharded, where);
      if (HasFatalFailure()) return;

      // Spine accounting only moves on top-level switch events.
      if (!sharded.islands().single() &&
          (event.type == fm::EventType::kSwitchDown ||
           event.type == fm::EventType::kSwitchUp)) {
        const topo::NodeId node =
            mono.canonical()[static_cast<std::size_t>(event.a)];
        const bool spine =
            mono.xgft().level_of(node) == mono.xgft().height();
        ASSERT_EQ(sharded.spine_events(), spine_before + (spine ? 1 : 0))
            << where;
      }
      spine_before = sharded.spine_events();
    }
  }
}

/// The TSan hammer: island repairs dispatched concurrently on a real
/// multi-worker pool, against a monolithic reference in lockstep.  Any
/// cross-column write sharing (tables, use counts, caches, flags) is a
/// race the sanitizer flags and a divergence this harness catches.
TEST(ShardProperty, ConcurrentIslandRepairsMatchMonolithic) {
  const topo::XgftSpec spec{{4, 4, 4}, {1, 2, 2}};
  util::ThreadPool pool(4);
  for (const RepairPolicy policy :
       {RepairPolicy::kFirstSurviving, RepairPolicy::kLoadAware}) {
    fm::FmConfig config;
    config.repair_policy = policy;
    config.track_link_load = false;
    config.zero_timings = true;

    fm::FabricManager mono{spec, config};
    ASSERT_TRUE(mono.ok()) << mono.error();
    shard::ShardConfig shard_config;
    shard_config.fm = config;
    shard_config.pool = &pool;
    shard::ShardedFabricManager sharded{spec, shard_config};
    ASSERT_TRUE(sharded.ok()) << sharded.error();
    ASSERT_GT(sharded.islands().num_shards(), 1u);

    const auto inverse = raw_of(mono);
    const std::uint64_t salt =
        policy == RepairPolicy::kFirstSurviving ? 0 : 1;
    util::Rng rng{std::uint64_t{0x7e577e57} + salt};
    for (int step = 0; step < 60; ++step) {
      fm::Event event;
      if (!next_event(mono, inverse, rng, event)) continue;
      const std::string where = "policy " +
                                std::string(to_string(policy)) + " step " +
                                std::to_string(step);
      const fm::EventRecord mono_record = mono.apply(event);
      const fm::EventRecord shard_record = sharded.apply(event);
      check_records_equal(mono_record, shard_record, where);
      if (HasFatalFailure()) return;
    }
    check_state_equal(mono, sharded, "final state, policy " +
                                         std::string(to_string(policy)));
  }
}

/// Degenerate partitions fall back to the monolithic repair loop but
/// must stay observably identical too.
TEST(ShardProperty, SingleIslandFallbackMatchesMonolithic) {
  // m_h == 1: one island, no spine -- IslandMap::single() is true.
  const topo::XgftSpec spec{{4, 1}, {2, 2}};
  fm::FmConfig config;
  config.track_link_load = false;
  config.zero_timings = true;
  fm::FabricManager mono{spec, config};
  ASSERT_TRUE(mono.ok()) << mono.error();
  shard::ShardConfig shard_config;
  shard_config.fm = config;
  shard::ShardedFabricManager sharded{spec, shard_config};
  ASSERT_TRUE(sharded.ok()) << sharded.error();
  ASSERT_TRUE(sharded.islands().single());

  const auto inverse = raw_of(mono);
  util::Rng rng{42};
  for (int step = 0; step < 20; ++step) {
    fm::Event event;
    if (!next_event(mono, inverse, rng, event)) continue;
    const std::string where = "single-island step " + std::to_string(step);
    const fm::EventRecord mono_record = mono.apply(event);
    const fm::EventRecord shard_record = sharded.apply(event);
    check_records_equal(mono_record, shard_record, where);
    if (HasFatalFailure()) return;
    check_state_equal(mono, sharded, where);
    if (HasFatalFailure()) return;
  }
  const shard::ShardStats total = sharded.aggregate();
  ASSERT_EQ(total.churn, sharded.summary().total_churn);
}

/// Pins the `lmpr fm --list-islands` partition table byte-for-byte: the
/// CLI prints exactly render_island_table(), so this golden covers the
/// driver output for the default fm topology and a height-3 shape with
/// a partial (2-shard) grouping.
TEST(ShardProperty, ListIslandsGolden) {
  std::ostringstream got;
  {
    const topo::Xgft xgft{topo::XgftSpec{{4, 4}, {2, 2}}};
    const shard::IslandMap map(xgft, 0);
    got << render_island_table(map, xgft);
  }
  {
    const topo::Xgft xgft{topo::XgftSpec{{4, 4, 4}, {1, 2, 2}}};
    const shard::IslandMap map(xgft, 2);
    got << render_island_table(map, xgft);
  }
  const std::string golden_path =
      std::string(LMPR_GOLDEN_DIR) + "/list_islands.txt";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden file " << golden_path;
  std::ostringstream want;
  want << in.rdbuf();
  ASSERT_EQ(got.str(), want.str())
      << "--list-islands output drifted from " << golden_path;
}

}  // namespace
}  // namespace lmpr
