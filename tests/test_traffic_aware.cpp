#include <gtest/gtest.h>

#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic_aware.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flow::TrafficAwareConfig;
using flow::traffic_aware_kpath;
using flow::TrafficMatrix;
using topo::Xgft;
using topo::XgftSpec;

TEST(TrafficAware, SingleDemandUsesKPathsEvenly) {
  // XGFT(1;2;4): hosts with 4 parents -> 4 fully link-disjoint paths.
  const Xgft xgft{XgftSpec{{2}, {4}}};
  TrafficMatrix tm(xgft.num_hosts());
  tm.add(0, 1, 1.0);
  TrafficAwareConfig config;
  config.k_paths = 4;
  const auto result = traffic_aware_kpath(xgft, tm, config);
  EXPECT_DOUBLE_EQ(result.max_load, 0.25);
}

TEST(TrafficAware, AccessLinksBoundSingleDemand) {
  // With w_1 = 1 every path shares the two access links, so a lone unit
  // demand always produces max load 1.0 no matter how many paths spread
  // the middle.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  TrafficMatrix tm(xgft.num_hosts());
  tm.add(0, 31, 1.0);
  TrafficAwareConfig config;
  config.k_paths = 4;
  EXPECT_DOUBLE_EQ(traffic_aware_kpath(xgft, tm, config).max_load, 1.0);
}

TEST(TrafficAware, RespectsOloadLowerBound) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  util::Rng rng{5};
  for (int trial = 0; trial < 5; ++trial) {
    const auto tm = TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
    TrafficAwareConfig config;
    config.k_paths = 4;
    const auto result = traffic_aware_kpath(xgft, tm, config);
    EXPECT_GE(result.max_load, flow::oload(xgft, tm).value - 1e-9);
  }
}

TEST(TrafficAware, BeatsObliviousDisjointOnPermutations) {
  // Seeing the traffic can only help: on random permutations the greedy
  // traffic-aware router must do at least as well as the oblivious
  // disjoint heuristic at equal K (checked with margin over trials).
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  util::Rng rng{9};
  flow::LoadEvaluator eval(xgft);
  double aware_total = 0.0;
  double disjoint_total = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto tm = TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
    TrafficAwareConfig config;
    config.k_paths = 4;
    aware_total += traffic_aware_kpath(xgft, tm, config).max_load;
    disjoint_total +=
        eval.evaluate(tm, route::Heuristic::kDisjoint, 4, rng).max_load;
  }
  EXPECT_LE(aware_total, disjoint_total + 1e-9);
}

TEST(TrafficAware, DefeatsTheTheorem2Adversary) {
  // The adversarial pattern that forces d-mod-k to PERF = W is trivial
  // for a traffic-aware router even at K = 1.
  const Xgft xgft{flow::adversarial_dmodk_topology(2, 4)};
  const auto tm = flow::adversarial_dmodk_traffic(xgft);
  TrafficAwareConfig config;
  config.k_paths = 1;
  const auto result = traffic_aware_kpath(xgft, tm, config);
  EXPECT_NEAR(flow::perf_ratio(result.max_load, flow::oload(xgft, tm).value),
              1.0, 1e-9);
}

TEST(TrafficAware, RefinementNeverHurts) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  util::Rng rng{13};
  const auto tm = TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  TrafficAwareConfig no_refine;
  no_refine.k_paths = 2;
  no_refine.refine_passes = 0;
  TrafficAwareConfig refined = no_refine;
  refined.refine_passes = 5;
  EXPECT_LE(traffic_aware_kpath(xgft, tm, refined).max_load,
            traffic_aware_kpath(xgft, tm, no_refine).max_load + 1e-9);
}

TEST(TrafficAware, Deterministic) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  util::Rng rng{17};
  const auto tm = TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  TrafficAwareConfig config;
  config.k_paths = 2;
  const auto a = traffic_aware_kpath(xgft, tm, config);
  const auto b = traffic_aware_kpath(xgft, tm, config);
  EXPECT_DOUBLE_EQ(a.max_load, b.max_load);
}

}  // namespace
