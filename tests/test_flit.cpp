#include <gtest/gtest.h>

#include <cmath>

#include "flit/network.hpp"
#include "flit/sweep.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flit::DestinationMode;
using flit::Network;
using flit::PathSelection;
using flit::SimConfig;
using flit::SimMetrics;
using route::Heuristic;
using route::RouteTable;
using topo::Xgft;
using topo::XgftSpec;

SimConfig quick_config(double load) {
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 6000;
  config.drain_cycles = 4000;
  config.offered_load = load;
  config.seed = 5;
  return config;
}

TEST(FlitNetwork, LowLoadDeliversEverything) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  Network network(table, quick_config(0.1));
  const SimMetrics metrics = network.run();
  EXPECT_GT(metrics.messages_generated, 100u);
  EXPECT_EQ(metrics.messages_delivered, metrics.messages_generated);
  EXPECT_DOUBLE_EQ(metrics.delivered_fraction(), 1.0);
  // Accepted throughput tracks the offered load away from saturation.
  EXPECT_NEAR(metrics.throughput, 0.1, 0.02);
}

TEST(FlitNetwork, ZeroLoadDelayIsNearAnalyticBound) {
  // At vanishing load a packet crosses 2*nca links (1 cycle head latency
  // each, +1 router stage per hop) and pays packet_flits-1 serialization;
  // a 4-packet message adds 3 packets * 16 flits of injection
  // serialization.  The measured mean must sit within a small factor of
  // that bound, which catches gross timing bugs.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  auto config = quick_config(0.02);
  Network network(table, config);
  const SimMetrics metrics = network.run();
  ASSERT_GT(metrics.message_delay.count(), 20u);
  const double min_bound = 2.0 * 2.0 + (config.packet_flits - 1.0) +
                           (config.message_packets - 1.0) * config.packet_flits;
  EXPECT_GT(metrics.message_delay.mean(), min_bound * 0.9);
  EXPECT_LT(metrics.message_delay.mean(), min_bound * 2.0);
  EXPECT_LT(metrics.packet_delay.mean(), metrics.message_delay.mean());
}

TEST(FlitNetwork, DeterministicForFixedSeed) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2);
  Network a(table, quick_config(0.4));
  Network b(table, quick_config(0.4));
  const auto ma = a.run();
  const auto mb = b.run();
  EXPECT_EQ(ma.flits_delivered, mb.flits_delivered);
  EXPECT_EQ(ma.messages_generated, mb.messages_generated);
  EXPECT_DOUBLE_EQ(ma.message_delay.mean(), mb.message_delay.mean());
}

TEST(FlitNetwork, SaturationCapsThroughput) {
  // Beyond saturation, accepted throughput stays below offered load and
  // undelivered messages pile up.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  Network network(table, quick_config(0.95));
  const SimMetrics metrics = network.run();
  EXPECT_LT(metrics.throughput, 0.95);
  EXPECT_LT(metrics.delivered_fraction(), 1.0);
}

TEST(FlitNetwork, DelayGrowsWithLoad) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  Network low(table, quick_config(0.1));
  Network high(table, quick_config(0.6));
  EXPECT_LT(low.run().message_delay.mean(), high.run().message_delay.mean());
}

TEST(FlitNetwork, PerMessageDestinationModeRuns) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2);
  auto config = quick_config(0.3);
  config.destination_mode = DestinationMode::kPerMessage;
  Network network(table, config);
  const SimMetrics metrics = network.run();
  EXPECT_GT(metrics.messages_delivered, 0u);
  EXPECT_NEAR(metrics.throughput, 0.3, 0.05);
}

TEST(FlitNetwork, PathSelectionModesAllDeliver) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 4);
  for (const PathSelection mode :
       {PathSelection::kRandomPerMessage, PathSelection::kRandomPerPacket,
        PathSelection::kRoundRobinPerMessage}) {
    auto config = quick_config(0.2);
    config.path_selection = mode;
    Network network(table, config);
    const SimMetrics metrics = network.run();
    EXPECT_DOUBLE_EQ(metrics.delivered_fraction(), 1.0)
        << static_cast<int>(mode);
  }
}

TEST(FlitNetwork, SinglePacketMessagesWork) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  auto config = quick_config(0.25);
  config.message_packets = 1;
  config.packet_flits = 4;
  Network network(table, config);
  const SimMetrics metrics = network.run();
  EXPECT_DOUBLE_EQ(metrics.delivered_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.packet_delay.mean(),
                   metrics.message_delay.mean());
}

TEST(FlitNetwork, WorksOnMultiParentHosts) {
  // w_1 = 2: hosts have two uplinks; paths choose between them.
  const Xgft xgft{XgftSpec{{2, 3, 4}, {2, 2, 3}}};
  const RouteTable table(xgft, Heuristic::kDisjoint, 4);
  Network network(table, quick_config(0.2));
  const SimMetrics metrics = network.run();
  EXPECT_DOUBLE_EQ(metrics.delivered_fraction(), 1.0);
}

TEST(FlitSweep, LinspaceEndpoints) {
  const auto loads = flit::linspace_loads(0.1, 0.9, 5);
  ASSERT_EQ(loads.size(), 5u);
  EXPECT_DOUBLE_EQ(loads.front(), 0.1);
  EXPECT_DOUBLE_EQ(loads.back(), 0.9);
  EXPECT_DOUBLE_EQ(loads[2], 0.5);
}

TEST(FlitSweep, MaxThroughputIsMaxOfPoints) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  auto config = quick_config(0.0);
  const auto result =
      flit::run_load_sweep(table, config, {0.1, 0.4, 0.8});
  ASSERT_EQ(result.points.size(), 3u);
  double best = 0.0;
  for (const auto& p : result.points) best = std::max(best, p.throughput);
  EXPECT_DOUBLE_EQ(result.max_throughput, best);
  // Offered loads recorded faithfully.
  EXPECT_DOUBLE_EQ(result.points[1].offered_load, 0.4);
}

TEST(FlitSweep, ThroughputMonotoneBelowSaturation) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kUmulti, 1);
  auto config = quick_config(0.0);
  const auto result = flit::run_load_sweep(table, config, {0.1, 0.2, 0.3});
  EXPECT_LT(result.points[0].throughput, result.points[1].throughput);
  EXPECT_LT(result.points[1].throughput, result.points[2].throughput);
}

}  // namespace
