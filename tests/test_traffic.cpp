#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "flow/traffic.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flow::TrafficMatrix;

TEST(TrafficMatrix, AddAndTotal) {
  TrafficMatrix tm(4);
  tm.add(0, 1, 2.0);
  tm.add(1, 2, 3.0);
  tm.add(0, 1, 1.0);  // duplicates accumulate at evaluation time
  EXPECT_EQ(tm.size(), 3u);
  EXPECT_DOUBLE_EQ(tm.total(), 6.0);
}

TEST(TrafficMatrix, PermutationGenerator) {
  const std::vector<std::size_t> perm{2, 0, 3, 1};
  const auto tm = TrafficMatrix::permutation(4, perm, 1.5);
  ASSERT_EQ(tm.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tm.demands()[i].src, i);
    EXPECT_EQ(tm.demands()[i].dst, perm[i]);
    EXPECT_DOUBLE_EQ(tm.demands()[i].amount, 1.5);
  }
}

TEST(TrafficMatrix, RandomPermutationIsAPermutation) {
  util::Rng rng{1};
  const auto tm = TrafficMatrix::random_permutation(64, rng);
  std::set<std::uint64_t> dsts;
  for (const auto& d : tm.demands()) dsts.insert(d.dst);
  EXPECT_EQ(dsts.size(), 64u);
}

TEST(TrafficMatrix, UniformRowSumsToRate) {
  const auto tm = TrafficMatrix::uniform(8, 2.0);
  EXPECT_EQ(tm.size(), 8u * 7u);
  std::vector<double> row(8, 0.0);
  for (const auto& d : tm.demands()) {
    EXPECT_NE(d.src, d.dst);
    row[static_cast<std::size_t>(d.src)] += d.amount;
  }
  for (const double sum : row) EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST(TrafficMatrix, ShiftPattern) {
  const auto tm = TrafficMatrix::shift(6, 2);
  for (const auto& d : tm.demands()) {
    EXPECT_EQ(d.dst, (d.src + 2) % 6);
  }
}

TEST(TrafficMatrix, BitReversal) {
  const auto tm = TrafficMatrix::bit_reversal(8);
  // 3-bit reversals: 0->0, 1->4, 2->2, 3->6, 4->1, 5->5, 6->3, 7->7.
  const std::vector<std::uint64_t> expected{0, 4, 2, 6, 1, 5, 3, 7};
  ASSERT_EQ(tm.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(tm.demands()[i].dst, expected[i]);
  }
}

TEST(TrafficMatrix, BitReversalRequiresPowerOfTwo) {
  EXPECT_DEATH(TrafficMatrix::bit_reversal(6), "precondition");
}

TEST(TrafficMatrix, Hotspot) {
  const auto tm = TrafficMatrix::hotspot(5, 2);
  EXPECT_EQ(tm.size(), 4u);
  for (const auto& d : tm.demands()) {
    EXPECT_EQ(d.dst, 2u);
    EXPECT_NE(d.src, 2u);
  }
}

TEST(Adversarial, FactoryTopologyAlwaysFits) {
  for (std::size_t h : {1u, 2u, 3u}) {
    for (std::uint32_t spread : {2u, 3u, 4u}) {
      const auto spec = flow::adversarial_dmodk_topology(h, spread);
      EXPECT_TRUE(flow::adversarial_dmodk_fits(spec)) << spec.to_string();
    }
  }
}

TEST(Adversarial, KnownShapeH2S4) {
  const auto spec = flow::adversarial_dmodk_topology(2, 4);
  EXPECT_EQ(spec.to_string(), "XGFT(2;4,8;1,4)");
}

TEST(Adversarial, TrafficTargetsMultiplesOfW) {
  const topo::Xgft xgft{flow::adversarial_dmodk_topology(2, 4)};
  const auto tm = flow::adversarial_dmodk_traffic(xgft);
  const std::uint64_t w_total = xgft.spec().num_top_switches();
  // One flow per host of the first height-1 subtree.
  EXPECT_EQ(tm.size(), xgft.hosts_per_subtree(1));
  std::set<std::uint64_t> dsts;
  for (const auto& d : tm.demands()) {
    EXPECT_LT(d.src, xgft.hosts_per_subtree(1));
    EXPECT_EQ(d.dst % w_total, 0u);
    EXPECT_LT(d.dst, xgft.num_hosts());
    dsts.insert(d.dst);
    // Destination outside the source's height-(h-1) subtree.
    EXPECT_NE(xgft.subtree_of(d.src, 1), xgft.subtree_of(d.dst, 1));
  }
  // All destinations in distinct subtrees (tightness of the bound).
  EXPECT_EQ(dsts.size(), tm.size());
}

TEST(Adversarial, ThrowsWhenConstructionDoesNotFit) {
  // 8-port 3-tree: S = W = 16 but the last destination 16*16 = 256 would
  // exceed the 128 hosts.
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
  EXPECT_FALSE(flow::adversarial_dmodk_fits(xgft.spec()));
  EXPECT_THROW(flow::adversarial_dmodk_traffic(xgft), std::invalid_argument);
}

}  // namespace
