// Cross-module integration: the flow-level static analysis must predict
// flit-level behaviour -- a permutation whose static max link load is L
// saturates near offered load 1/L, and routings with lower static load
// sustain strictly more traffic.
#include <gtest/gtest.h>

#include "flit/network.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;

TEST(Integration, StaticLoadPredictsSaturationOrdering) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
  constexpr std::uint64_t kSeed = 2024;

  // Pin the pairing so the flow level analyzes exactly the flit traffic.
  util::Rng rng{kSeed};
  const auto perm = rng.permutation(static_cast<std::size_t>(xgft.num_hosts()));
  const auto tm = flow::TrafficMatrix::permutation(xgft.num_hosts(), perm);

  flow::LoadEvaluator eval(xgft);
  const route::RouteTable dmodk(xgft, route::Heuristic::kDModK, 1);
  const route::RouteTable disjoint(xgft, route::Heuristic::kDisjoint, 8);
  const double load_dmodk = eval.evaluate(tm, dmodk).max_load;
  const double load_disjoint = eval.evaluate(tm, disjoint).max_load;
  ASSERT_LT(load_disjoint, load_dmodk);  // multi-path spreads the flows

  auto run_at = [&](const route::RouteTable& table, double offered) {
    flit::SimConfig config;
    config.seed = kSeed;
    config.fixed_destinations.assign(perm.begin(), perm.end());
    config.warmup_cycles = 3000;
    config.measure_cycles = 8000;
    config.drain_cycles = 3000;
    config.offered_load = offered;
    flit::Network network(table, config);
    return network.run();
  };

  // Offered load comfortably beyond d-mod-k's static saturation point
  // (1/load_dmodk) but below disjoint's: d-mod-k must shed traffic while
  // disjoint sustains it.
  const double probe = 0.9 / load_disjoint;
  if (probe <= 1.0 && probe > 1.2 / load_dmodk) {
    const auto m_dmodk = run_at(dmodk, probe);
    const auto m_disjoint = run_at(disjoint, probe);
    EXPECT_LT(m_dmodk.throughput, m_disjoint.throughput);
    EXPECT_LT(m_dmodk.delivered_fraction(),
              m_disjoint.delivered_fraction());
  } else {
    GTEST_SKIP() << "sampled permutation too benign for the probe load";
  }
}

TEST(Integration, FlitUtilizationMatchesFlowPredictionAtLowLoad) {
  // Below saturation, the flit simulator's measured per-level PEAK link
  // utilization must track the flow-level static prediction scaled by the
  // offered load: util(level) ~ offered_load * max_link_load(level).
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
  constexpr std::uint64_t kSeed = 77;
  util::Rng rng{kSeed};
  const auto perm = rng.permutation(static_cast<std::size_t>(xgft.num_hosts()));
  const auto tm = flow::TrafficMatrix::permutation(xgft.num_hosts(), perm);

  const route::RouteTable table(xgft, route::Heuristic::kDModK, 1);
  flow::LoadEvaluator eval(xgft);
  eval.evaluate(tm, table);
  // Per-level mean static load, from the evaluator's per-link loads.
  std::vector<double> mean_up(3, 0.0);
  std::vector<double> mean_down(3, 0.0);
  std::vector<std::size_t> up_n(3, 0);
  std::vector<std::size_t> down_n(3, 0);
  for (std::size_t id = 0; id < eval.link_loads().size(); ++id) {
    const topo::Link& link = xgft.link(static_cast<topo::LinkId>(id));
    (link.up ? mean_up : mean_down)[link.level] += eval.link_loads()[id];
    ++(link.up ? up_n : down_n)[link.level];
  }
  for (std::uint32_t l = 0; l < 3; ++l) {
    mean_up[l] /= static_cast<double>(up_n[l]);
    mean_down[l] /= static_cast<double>(down_n[l]);
  }

  flit::SimConfig config;
  config.seed = kSeed;
  config.fixed_destinations.assign(perm.begin(), perm.end());
  config.offered_load = 0.15;  // far below saturation: no queueing losses
  config.warmup_cycles = 4000;
  config.measure_cycles = 20000;
  config.drain_cycles = 2000;
  flit::Network network(table, config);
  const auto metrics = network.run();

  ASSERT_EQ(metrics.mean_up_utilization.size(), 3u);
  for (std::uint32_t level = 0; level < 3; ++level) {
    EXPECT_NEAR(metrics.mean_up_utilization[level], 0.15 * mean_up[level],
                0.1 * 0.15 * mean_up[level] + 0.005)
        << "up level " << level;
    EXPECT_NEAR(metrics.mean_down_utilization[level],
                0.15 * mean_down[level],
                0.1 * 0.15 * mean_down[level] + 0.005)
        << "down level " << level;
  }
}

TEST(Integration, ThroughputNeverExceedsStaticBound) {
  // Accepted per-host throughput of the flows crossing the hottest link
  // cannot exceed capacity; aggregate throughput at high offered load
  // stays below 1.0 and the hot flows are throttled.
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 2)};
  const route::RouteTable table(xgft, route::Heuristic::kDModK, 1);
  flit::SimConfig config;
  config.seed = 7;
  config.warmup_cycles = 2000;
  config.measure_cycles = 6000;
  config.drain_cycles = 2000;
  config.offered_load = 1.0;
  flit::Network network(table, config);
  const auto metrics = network.run();
  EXPECT_LT(metrics.throughput, 1.0);
  EXPECT_GT(metrics.throughput, 0.2);
}

}  // namespace
