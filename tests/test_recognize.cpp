#include <gtest/gtest.h>

#include "core/single_path.hpp"
#include "discovery/recognize.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using discovery::export_fabric;
using discovery::RawFabric;
using discovery::recognize_xgft;
using topo::Xgft;
using topo::XgftSpec;

TEST(Recognize, IdentityExportRoundTrips) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const auto fabric = export_fabric(xgft);
  const auto result = recognize_xgft(fabric);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec, xgft.spec());
  // Identity export: hosts keep their ids; switches may be relabelled by
  // an automorphism but levels must match.
  for (std::uint32_t node = 0; node < fabric.num_nodes; ++node) {
    EXPECT_EQ(xgft.level_of(result.canonical[node]),
              xgft.level_of(static_cast<topo::NodeId>(node)));
  }
}

class RecognizeRoundTrip : public testing::TestWithParam<XgftSpec> {};

TEST_P(RecognizeRoundTrip, ShuffledExportIsRecognized) {
  const Xgft xgft{GetParam()};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng{seed};
    const auto fabric = export_fabric(xgft, &rng);
    const auto result = recognize_xgft(fabric);
    ASSERT_TRUE(result.ok) << GetParam().to_string() << ": " << result.error;
    EXPECT_EQ(result.spec, xgft.spec());
    // The canonical map must be a level-preserving bijection whose edge
    // image matches (recognize_xgft verifies edges internally; spot-check
    // the bijection here).
    std::vector<bool> used(static_cast<std::size_t>(xgft.num_nodes()), false);
    for (const auto mapped : result.canonical) {
      ASSERT_NE(mapped, topo::kInvalidNode);
      EXPECT_FALSE(used[mapped]);
      used[mapped] = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RecognizeRoundTrip,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

TEST(Recognize, RejectsEmptyFabric) {
  EXPECT_FALSE(recognize_xgft(RawFabric{}).ok);
}

TEST(Recognize, RejectsMissingHosts) {
  RawFabric fabric;
  fabric.num_nodes = 3;
  fabric.cables = {{0, 2}, {1, 2}};
  EXPECT_FALSE(recognize_xgft(fabric).ok);
}

TEST(Recognize, RejectsSelfLoopAndDuplicateCables) {
  RawFabric fabric;
  fabric.num_nodes = 3;
  fabric.hosts = {0, 1};
  fabric.cables = {{0, 0}};
  EXPECT_EQ(recognize_xgft(fabric).error, "self-loop cable");
  fabric.cables = {{0, 2}, {2, 0}, {1, 2}};
  EXPECT_EQ(recognize_xgft(fabric).error, "duplicate cable");
}

TEST(Recognize, RejectsDisconnectedFabric) {
  RawFabric fabric;
  fabric.num_nodes = 4;
  fabric.hosts = {0, 1};
  fabric.cables = {{0, 2}, {1, 2}};  // node 3 floats
  EXPECT_EQ(recognize_xgft(fabric).error, "disconnected node");
}

TEST(Recognize, RejectsMissingCable) {
  // XGFT(1;2;2) minus one cable: degree regularity breaks.
  const Xgft xgft{XgftSpec{{2}, {2}}};
  auto fabric = export_fabric(xgft);
  fabric.cables.pop_back();
  const auto result = recognize_xgft(fabric);
  EXPECT_FALSE(result.ok);
}

TEST(Recognize, RejectsExtraHostOnOneLeaf) {
  // An irregular tree: 3 hosts under switch A, 2 under switch B, one top
  // switch -- copies differ in size.
  RawFabric fabric;
  fabric.num_nodes = 8;  // hosts 0-4, leaves 5-6, top 7
  fabric.hosts = {0, 1, 2, 3, 4};
  fabric.cables = {{0, 5}, {1, 5}, {2, 5}, {3, 6}, {4, 6}, {5, 7}, {6, 7}};
  const auto result = recognize_xgft(fabric);
  EXPECT_FALSE(result.ok);
}

TEST(Recognize, RejectsCrossWiredTopLevel) {
  // Two leaf groups, two tops; one top reaches a copy twice instead of
  // once per copy -- not an XGFT wiring.
  RawFabric fabric;
  fabric.num_nodes = 8;  // hosts 0-3, leaves 4-5, tops 6-7
  fabric.hosts = {0, 1, 2, 3};
  fabric.cables = {{0, 4}, {1, 4}, {2, 5}, {3, 5},
                   {4, 6}, {5, 6},          // top 6 ok
                   {4, 7}, {4, 7}};         // duplicate
  EXPECT_FALSE(recognize_xgft(fabric).ok);
}

TEST(Recognize, RejectsTorusLikeWiring) {
  // 4 hosts, 4 "switches" wired in a cycle among themselves: cables at
  // the same level.
  RawFabric fabric;
  fabric.num_nodes = 8;
  fabric.hosts = {0, 1, 2, 3};
  fabric.cables = {{0, 4}, {1, 5}, {2, 6}, {3, 7},
                   {4, 5}, {5, 6}, {6, 7}, {7, 4}};
  const auto result = recognize_xgft(fabric);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "cable joins non-adjacent levels");
}

TEST(Recognize, CanonicalMapEnablesRouting) {
  // End-to-end: recognize a shuffled fabric, then route on the canonical
  // topology between two raw hosts.
  const Xgft reference{XgftSpec::m_port_n_tree(8, 3)};
  util::Rng rng{99};
  const auto fabric = export_fabric(reference, &rng);
  const auto result = recognize_xgft(fabric);
  ASSERT_TRUE(result.ok) << result.error;
  const Xgft xgft{result.spec};
  const std::uint32_t raw_a = fabric.hosts[0];
  const std::uint32_t raw_b = fabric.hosts[1];
  const std::uint64_t a = result.canonical[raw_a];
  const std::uint64_t b = result.canonical[raw_b];
  ASSERT_TRUE(xgft.is_host(static_cast<topo::NodeId>(a)));
  ASSERT_TRUE(xgft.is_host(static_cast<topo::NodeId>(b)));
  const auto path = route::materialize_path(
      xgft, a, b, route::dmodk_index(xgft, a, b));
  lmpr::test::expect_valid_path(xgft, a, b, path);
}

}  // namespace
