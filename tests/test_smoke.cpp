// Build-level smoke test: umbrella header compiles, a small end-to-end
// pipeline runs.
#include <gtest/gtest.h>

#include "lmpr.hpp"

namespace {

using namespace lmpr;

TEST(Smoke, EndToEndPipeline) {
  topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(4, 2)};
  EXPECT_EQ(xgft.num_hosts(), 8u);

  util::Rng rng{1};
  flow::LoadEvaluator eval(xgft);
  const auto tm =
      flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  const auto load =
      eval.evaluate(tm, route::Heuristic::kUmulti, /*k_paths=*/1, rng);
  const auto opt = flow::oload(xgft, tm);
  EXPECT_DOUBLE_EQ(flow::perf_ratio(load.max_load, opt.value), 1.0);
}

}  // namespace
