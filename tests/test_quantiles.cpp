#include <gtest/gtest.h>

#include "util/quantiles.hpp"
#include "util/rng.hpp"

namespace {

using lmpr::util::ReservoirQuantiles;

TEST(ReservoirQuantiles, ExactWhenUnderCapacity) {
  ReservoirQuantiles q(100);
  for (int i = 1; i <= 99; ++i) q.add(i);
  EXPECT_EQ(q.count(), 99u);
  EXPECT_EQ(q.sample_size(), 99u);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 99.0);
  EXPECT_DOUBLE_EQ(q.median(), 50.0);
}

TEST(ReservoirQuantiles, InterleavedAddAndQuery) {
  ReservoirQuantiles q(16);
  for (int i = 0; i < 8; ++i) q.add(i);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 7.0);
  for (int i = 8; i < 16; ++i) q.add(i);  // query then keep adding
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 15.0);
}

TEST(ReservoirQuantiles, ApproximatesLargeUniformStream) {
  ReservoirQuantiles q(4096, 9);
  lmpr::util::Rng rng{11};
  for (int i = 0; i < 200000; ++i) q.add(rng.uniform01());
  EXPECT_EQ(q.count(), 200000u);
  EXPECT_EQ(q.sample_size(), 4096u);
  EXPECT_NEAR(q.median(), 0.5, 0.03);
  EXPECT_NEAR(q.quantile(0.9), 0.9, 0.03);
  EXPECT_NEAR(q.p99(), 0.99, 0.02);
}

TEST(ReservoirQuantiles, DeterministicForFixedSeed) {
  ReservoirQuantiles a(64, 3);
  ReservoirQuantiles b(64, 3);
  lmpr::util::Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    a.add(x);
    b.add(x);
  }
  EXPECT_DOUBLE_EQ(a.median(), b.median());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
}

TEST(ReservoirQuantiles, P99AtLeastMedian) {
  ReservoirQuantiles q(128, 1);
  lmpr::util::Rng rng{2};
  for (int i = 0; i < 5000; ++i) q.add(rng.uniform01() * 10.0);
  EXPECT_GE(q.p99(), q.median());
}

}  // namespace
