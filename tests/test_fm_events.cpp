// Tests for the fm event-script language: total parsing with
// line-numbered diagnostics, plus the byte-stable golden JSON run report
// `lmpr fm` emits for a fixed script at quick scale.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "engine/fm_support.hpp"
#include "engine/registry.hpp"
#include "engine/runner.hpp"
#include "engine/sinks.hpp"
#include "fm/events.hpp"

namespace lmpr {
namespace {

TEST(EventScript, ParsesCommandsCommentsAndBlanks) {
  const std::string text =
      "# take a leaf cable out, probe, put it back\n"
      "cable_down 0 16\n"
      "query 0 5   # mid-outage probe\n"
      "\n"
      "switch_down 20\n"
      "cable_up 0 16\n";
  const auto script = fm::parse_event_script(text);
  ASSERT_TRUE(script.ok) << script.error;
  ASSERT_EQ(script.events.size(), 4u);
  EXPECT_EQ(script.events[0],
            (fm::Event{fm::EventType::kCableDown, 0, 16}));
  EXPECT_EQ(script.events[1], (fm::Event{fm::EventType::kQuery, 0, 5}));
  EXPECT_EQ(script.events[2],
            (fm::Event{fm::EventType::kSwitchDown, 20, 0}));
  EXPECT_EQ(script.events[3], (fm::Event{fm::EventType::kCableUp, 0, 16}));
  EXPECT_TRUE(script.events[0].topology_event());
  EXPECT_FALSE(script.events[1].topology_event());
}

TEST(EventScript, DiagnosticsCarryLineNumbers) {
  const auto unknown = fm::parse_event_script("cable_down 0 1\nreboot 3\n");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("line 2"), std::string::npos);
  EXPECT_NE(unknown.error.find("unknown event 'reboot'"), std::string::npos);

  const auto missing = fm::parse_event_script("cable_down 0\n");
  EXPECT_FALSE(missing.ok);
  EXPECT_NE(missing.error.find("expects 2 node ids"), std::string::npos);

  const auto trailing = fm::parse_event_script("switch_down 3 4\n");
  EXPECT_FALSE(trailing.ok);
  EXPECT_NE(trailing.error.find("trailing token '4'"), std::string::npos);

  const auto range = fm::parse_event_script("query 0 4294967296\n");
  EXPECT_FALSE(range.ok);
  EXPECT_NE(range.error.find("out of range"), std::string::npos);

  const auto junk = fm::parse_event_script("cable_up zero 1\n");
  EXPECT_FALSE(junk.ok);
  EXPECT_NE(junk.error.find("line 1"), std::string::npos);
}

TEST(EventScript, EmptyInputIsAnEmptyScript) {
  const auto script = fm::parse_event_script(std::string{});
  ASSERT_TRUE(script.ok);
  EXPECT_TRUE(script.events.empty());
}

TEST(EventScript, StreamOverloadMatchesStringOverload) {
  const std::string text = "cable_down 1 17\nquery 1 2\n";
  std::istringstream in(text);
  const auto a = fm::parse_event_script(in);
  const auto b = fm::parse_event_script(text);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.events, b.events);
}

TEST(EventScript, EventTypeNamesRoundTripTheParser) {
  for (const fm::EventType type :
       {fm::EventType::kCableDown, fm::EventType::kCableUp,
        fm::EventType::kSwitchDown, fm::EventType::kQuery}) {
    const std::string line =
        std::string(to_string(type)) +
        (type == fm::EventType::kSwitchDown ? " 7" : " 7 8");
    const auto script = fm::parse_event_script(line);
    ASSERT_TRUE(script.ok) << script.error;
    ASSERT_EQ(script.events.size(), 1u);
    EXPECT_EQ(script.events[0].type, type);
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Golden-file test: the quick-scale `lmpr fm` JSON run report for the CI
// smoke script must stay byte-stable (schema AND numbers).  Regenerate
// consciously with:
//   build/lmpr fm --script scripts/fm_smoke.script --zero-timings
//       --json tests/golden/fm_quick.json   (one command line)
TEST(FmReport, SmokeScriptGoldenFile) {
  const auto script = fm::parse_event_script(
      slurp(std::string(LMPR_SCRIPTS_DIR) + "/fm_smoke.script"));
  ASSERT_TRUE(script.ok) << script.error;

  engine::FmRunOptions options;  // default topology, K = 4, disjoint
  options.config.zero_timings = true;
  engine::Report report;
  std::string error;
  ASSERT_TRUE(engine::run_fm_events(options, script, report, error)) << error;
  EXPECT_EQ(report.scenario, "fm");
  EXPECT_TRUE(report.converged);

  const std::string got =
      engine::JsonSink::document({report}).dump(2) + "\n";
  const std::string want = slurp(std::string(LMPR_GOLDEN_DIR) +
                                 "/fm_quick.json");
  EXPECT_EQ(got, want) << "fm quick report drifted from golden file";
}

TEST(FmReport, ScriptAndFabricErrorsAreReported) {
  engine::FmRunOptions options;
  engine::Report report;
  std::string error;
  EXPECT_FALSE(engine::run_fm_events(
      options, fm::parse_event_script("reboot 1\n"), report, error));
  EXPECT_NE(error.find("unknown event"), std::string::npos);

  discovery::RawFabric bogus;
  bogus.num_nodes = 3;
  bogus.hosts = {0, 1};
  bogus.cables = {{0, 2}};
  options.fabric = &bogus;
  error.clear();
  EXPECT_FALSE(engine::run_fm_events(
      options, fm::parse_event_script("query 0 1\n"), report, error));
  EXPECT_NE(error.find("not recognized"), std::string::npos);
}

// The scaling scenario's headline claim: incremental repair rewrites
// strictly fewer entries than a from-scratch rebuild on single-cable
// faults.
TEST(FmScenarios, RepairScalingChurnRatioBelowOne) {
  const engine::Scenario* scenario =
      engine::ScenarioRegistry::builtin().find("fm_repair_scaling");
  ASSERT_NE(scenario, nullptr);
  engine::CommonOptions options;
  const engine::Report report = run_scenario(*scenario, options, {});
  ASSERT_TRUE(report.converged);
  bool found = false;
  for (const auto& metric : report.metrics) {
    if (metric.name == "churn_ratio_worst") {
      found = true;
      EXPECT_GT(metric.value, 0.0);
      EXPECT_LT(metric.value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace lmpr
