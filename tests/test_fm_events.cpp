// Tests for the fm event-script language: total parsing with
// line-numbered diagnostics, plus the byte-stable golden JSON run report
// `lmpr fm` emits for a fixed script at quick scale.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "engine/fm_support.hpp"
#include "engine/registry.hpp"
#include "engine/runner.hpp"
#include "engine/sinks.hpp"
#include "fm/events.hpp"
#include "topology/factory.hpp"
#include "topology/generic.hpp"

namespace lmpr {
namespace {

TEST(EventScript, ParsesCommandsCommentsAndBlanks) {
  const std::string text =
      "# take a leaf cable out, probe, put it back\n"
      "cable_down 0 16\n"
      "query 0 5   # mid-outage probe\n"
      "\n"
      "switch_down 20\n"
      "cable_up 0 16\n";
  const auto script = fm::parse_event_script(text);
  ASSERT_TRUE(script.ok) << script.error;
  ASSERT_EQ(script.events.size(), 4u);
  EXPECT_EQ(script.events[0],
            (fm::Event{fm::EventType::kCableDown, 0, 16}));
  EXPECT_EQ(script.events[1], (fm::Event{fm::EventType::kQuery, 0, 5}));
  EXPECT_EQ(script.events[2],
            (fm::Event{fm::EventType::kSwitchDown, 20, 0}));
  EXPECT_EQ(script.events[3], (fm::Event{fm::EventType::kCableUp, 0, 16}));
  EXPECT_TRUE(script.events[0].topology_event());
  EXPECT_FALSE(script.events[1].topology_event());
}

TEST(EventScript, DiagnosticsCarryLineNumbers) {
  const auto unknown = fm::parse_event_script("cable_down 0 1\nreboot 3\n");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("line 2"), std::string::npos);
  EXPECT_NE(unknown.error.find("unknown event 'reboot'"), std::string::npos);

  const auto missing = fm::parse_event_script("cable_down 0\n");
  EXPECT_FALSE(missing.ok);
  EXPECT_NE(missing.error.find("expects 2 node ids"), std::string::npos);

  const auto trailing = fm::parse_event_script("switch_down 3 4\n");
  EXPECT_FALSE(trailing.ok);
  EXPECT_NE(trailing.error.find("trailing token '4'"), std::string::npos);

  const auto range = fm::parse_event_script("query 0 4294967296\n");
  EXPECT_FALSE(range.ok);
  EXPECT_NE(range.error.find("out of range"), std::string::npos);

  const auto junk = fm::parse_event_script("cable_up zero 1\n");
  EXPECT_FALSE(junk.ok);
  EXPECT_NE(junk.error.find("line 1"), std::string::npos);
}

TEST(EventScript, EmptyInputIsAnEmptyScript) {
  const auto script = fm::parse_event_script(std::string{});
  ASSERT_TRUE(script.ok);
  EXPECT_TRUE(script.events.empty());
}

TEST(EventScript, StreamOverloadMatchesStringOverload) {
  const std::string text = "cable_down 1 17\nquery 1 2\n";
  std::istringstream in(text);
  const auto a = fm::parse_event_script(in);
  const auto b = fm::parse_event_script(text);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.events, b.events);
}

TEST(EventScript, EventTypeNamesRoundTripTheParser) {
  for (const fm::EventType type :
       {fm::EventType::kCableDown, fm::EventType::kCableUp,
        fm::EventType::kSwitchDown, fm::EventType::kSwitchUp,
        fm::EventType::kQuery}) {
    const bool one_operand = type == fm::EventType::kSwitchDown ||
                             type == fm::EventType::kSwitchUp;
    const std::string line =
        std::string(to_string(type)) + (one_operand ? " 7" : " 7 8");
    const auto script = fm::parse_event_script(line);
    ASSERT_TRUE(script.ok) << script.error;
    ASSERT_EQ(script.events.size(), 1u);
    EXPECT_EQ(script.events[0].type, type);
  }
}

// Fuzz-style corpus: adversarial inputs a hand-edited or machine-built
// script can plausibly contain.  The parser is total -- every entry must
// either parse to the exact events listed or fail with a line-numbered
// diagnostic, never crash or mis-parse.
TEST(EventScriptCorpus, AcceptedInputs) {
  struct Accept {
    const char* text;
    std::vector<fm::Event> events;
  };
  const std::vector<Accept> corpus = {
      // CRLF line endings: '\r' is stream whitespace, so DOS files parse.
      {"cable_down 0 16\r\nquery 0 5\r\n",
       {{fm::EventType::kCableDown, 0, 16}, {fm::EventType::kQuery, 0, 5}}},
      // Tabs and repeated blanks as separators.
      {"cable_up\t3\t\t19\n", {{fm::EventType::kCableUp, 3, 19}}},
      // Comment glued to the last operand.
      {"switch_up 21#heal it\n", {{fm::EventType::kSwitchUp, 21, 0}}},
      // Whitespace-only and '\r'-only lines are blanks.
      {"  \t \n\r\nswitch_down 20\n", {{fm::EventType::kSwitchDown, 20, 0}}},
      // Duplicate lines are two events, not a merged one: replaying the
      // same fault twice is a valid (no-op) stream.
      {"cable_down 2 18\ncable_down 2 18\n",
       {{fm::EventType::kCableDown, 2, 18},
        {fm::EventType::kCableDown, 2, 18}}},
      // Boundary id: 2^32 - 1 is the last representable raw id.
      {"switch_down 4294967295\n",
       {{fm::EventType::kSwitchDown, 4294967295u, 0}}},
      // No trailing newline on the final line.
      {"query 1 2", {{fm::EventType::kQuery, 1, 2}}},
  };
  for (const auto& entry : corpus) {
    const auto script = fm::parse_event_script(std::string(entry.text));
    ASSERT_TRUE(script.ok) << entry.text << ": " << script.error;
    EXPECT_EQ(script.events, entry.events) << entry.text;
  }
}

TEST(EventScriptCorpus, RejectedInputsCarryDiagnostics) {
  struct Reject {
    const char* text;
    const char* needle;  ///< must appear in the diagnostic
  };
  const std::vector<Reject> corpus = {
      // Truncated lines at every prefix length.
      {"cable_down\n", "expects 2 node ids"},
      {"cable_down 5\n", "expects 2 node ids"},
      {"switch_up\n", "expects 1 node id"},
      {"query 7\n", "expects 2 node ids"},
      // One past the raw-id range, and absurdly larger.
      {"switch_down 4294967296\n", "out of range"},
      {"cable_down 0 18446744073709551615\n", "out of range"},
      // Larger than uint64 itself: extraction fails like a non-number.
      {"switch_down 99999999999999999999\n", "expects 1 node id"},
      // Negative ids wrap to huge values under unsigned extraction.
      {"cable_down -1 4\n", "out of range"},
      // Keywords are case-sensitive; prefixes are not keywords.
      {"Cable_down 0 1\n", "unknown event 'Cable_down'"},
      {"cable 0 1\n", "unknown event 'cable'"},
      // Overlong lines surface the first trailing token.
      {"query 1 2 3 4 5 6 7 8\n", "trailing token '3'"},
      // Errors report the 1-based line of the offender, not the count of
      // parsed events.
      {"cable_down 0 16\n\n# note\nswitch_down\n", "line 4"},
  };
  for (const auto& entry : corpus) {
    const auto script = fm::parse_event_script(std::string(entry.text));
    EXPECT_FALSE(script.ok) << entry.text;
    EXPECT_NE(script.error.find(entry.needle), std::string::npos)
        << entry.text << " diagnostic was: " << script.error;
  }
}

fm::Event timed(fm::EventType type, std::uint32_t a, std::uint32_t b,
                std::uint64_t at) {
  fm::Event event{type, a, b};
  event.at = at;
  event.timed = true;
  return event;
}

// Timestamp corpus for the `@<cycle>` prefix the replay engine consumes.
// Same contract as the bare-event corpus: every entry parses exactly or
// fails with a line-numbered diagnostic.
TEST(EventScriptCorpus, AcceptedTimestamps) {
  struct Accept {
    const char* text;
    std::vector<fm::Event> events;
  };
  const std::vector<Accept> corpus = {
      // The canonical form.
      {"@100 cable_down 0 16\n",
       {timed(fm::EventType::kCableDown, 0, 16, 100)}},
      // Equal stamps are legal (applied in script order).
      {"@500 cable_down 0 16\n@500 cable_up 0 16\n",
       {timed(fm::EventType::kCableDown, 0, 16, 500),
        timed(fm::EventType::kCableUp, 0, 16, 500)}},
      // Mixed timed and untimed lines: untimed events stay unstamped at
      // parse time (stamp_events spreads them later).
      {"cable_down 2 18\n@900 query 0 5\n",
       {{fm::EventType::kCableDown, 2, 18},
        timed(fm::EventType::kQuery, 0, 5, 900)}},
      // Stamp 0 and tab separation.
      {"@0\tswitch_down\t20\n",
       {timed(fm::EventType::kSwitchDown, 20, 0, 0)}},
  };
  for (const auto& entry : corpus) {
    const auto script = fm::parse_event_script(std::string(entry.text));
    ASSERT_TRUE(script.ok) << entry.text << ": " << script.error;
    EXPECT_EQ(script.events, entry.events) << entry.text;
  }
}

TEST(EventScriptCorpus, RejectedTimestamps) {
  struct Reject {
    const char* text;
    const char* needle;
  };
  const std::vector<Reject> corpus = {
      // Regression: decreasing explicit stamps must be rejected at parse
      // time, not silently reordered or replayed backwards.
      {"@2000 cable_down 0 16\n@1000 cable_up 0 16\n", "goes backwards"},
      {"@2000 cable_down 0 16\n@1000 cable_up 0 16\n", "line 2"},
      // A later explicit stamp below an EARLIER one with untimed lines in
      // between is still backwards.
      {"@2000 cable_down 0 16\nquery 0 1\n@1999 cable_up 0 16\n",
       "goes backwards"},
      // Malformed stamp tokens.
      {"@abc cable_down 0 16\n", "bad timestamp"},
      {"@ cable_down 0 16\n", "bad timestamp"},
      {"@-1 cable_down 0 16\n", "bad timestamp"},
      {"@12x cable_down 0 16\n", "bad timestamp"},
      // A stamp with no event on the line.
      {"@500\n", "without an event"},
      {"@500   # nothing here\n", "without an event"},
      // Two stamps on one line: the second is not an event keyword.
      {"@500 @600 cable_down 0 16\n", "unknown event"},
  };
  for (const auto& entry : corpus) {
    const auto script = fm::parse_event_script(std::string(entry.text));
    EXPECT_FALSE(script.ok) << entry.text;
    EXPECT_NE(script.error.find(entry.needle), std::string::npos)
        << entry.text << " diagnostic was: " << script.error;
  }
}

TEST(EventScript, StampEventsSpreadsUntimedRunsEvenly) {
  // A stamp-free script of n events lands at horizon / (n + 1) spacing.
  const auto bare = fm::parse_event_script(
      "cable_down 0 16\nquery 0 5\ncable_up 0 16\n");
  ASSERT_TRUE(bare.ok) << bare.error;
  const auto stamped = fm::stamp_events(bare, 8'000);
  ASSERT_EQ(stamped.size(), 3u);
  EXPECT_EQ(stamped[0].cycle, 2'000u);
  EXPECT_EQ(stamped[1].cycle, 4'000u);
  EXPECT_EQ(stamped[2].cycle, 6'000u);

  // Untimed events between explicit stamps spread over the open interval
  // between those stamps; explicit stamps are kept verbatim.
  const auto mixed = fm::parse_event_script(
      "@1000 cable_down 0 16\nquery 0 5\nquery 0 9\n@4000 cable_up 0 16\n");
  ASSERT_TRUE(mixed.ok) << mixed.error;
  const auto cycles = fm::stamp_events(mixed, 10'000);
  ASSERT_EQ(cycles.size(), 4u);
  EXPECT_EQ(cycles[0].cycle, 1'000u);
  EXPECT_EQ(cycles[1].cycle, 2'000u);
  EXPECT_EQ(cycles[2].cycle, 3'000u);
  EXPECT_EQ(cycles[3].cycle, 4'000u);
  for (std::size_t i = 1; i < cycles.size(); ++i) {
    EXPECT_GE(cycles[i].cycle, cycles[i - 1].cycle);
  }

  EXPECT_TRUE(fm::stamp_events(fm::parse_event_script(std::string{}), 1'000)
                  .empty());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Golden-file test: the quick-scale `lmpr fm` JSON run report for the CI
// smoke script must stay byte-stable (schema AND numbers).  Regenerate
// consciously with:
//   build/lmpr fm --script scripts/fm_smoke.script --zero-timings
//       --json tests/golden/fm_quick.json   (one command line)
TEST(FmReport, SmokeScriptGoldenFile) {
  const auto script = fm::parse_event_script(
      slurp(std::string(LMPR_SCRIPTS_DIR) + "/fm_smoke.script"));
  ASSERT_TRUE(script.ok) << script.error;

  engine::FmRunOptions options;  // default topology, K = 4, disjoint
  options.config.zero_timings = true;
  engine::Report report;
  std::string error;
  ASSERT_TRUE(engine::run_fm_events(options, script, report, error)) << error;
  EXPECT_EQ(report.scenario, "fm");
  EXPECT_TRUE(report.converged);

  const std::string got =
      engine::JsonSink::document({report}).dump(2) + "\n";
  const std::string want = slurp(std::string(LMPR_GOLDEN_DIR) +
                                 "/fm_quick.json");
  EXPECT_EQ(got, want) << "fm quick report drifted from golden file";
}

// Golden-file test: the load_aware rebalance walkthrough must stay
// byte-stable too -- it pins the arbitration outcomes (the cable_down
// 10 22 event is the canonical case where the column-local greedy alone
// would regress to 1.25 and the first_surviving guard holds the line at
// 1.0).  Regenerate consciously with:
//   build/lmpr fm --topo "XGFT(2;4,4;3,3)"
//       --script scripts/fm_rebalance.script --repair-policy load_aware
//       --zero-timings --json tests/golden/fm_rebalance_quick.json
TEST(FmReport, RebalanceScriptGoldenFile) {
  const auto script = fm::parse_event_script(
      slurp(std::string(LMPR_SCRIPTS_DIR) + "/fm_rebalance.script"));
  ASSERT_TRUE(script.ok) << script.error;

  engine::FmRunOptions options;
  options.spec = topo::XgftSpec{{4, 4}, {3, 3}};
  options.config.repair_policy = fabric::RepairPolicy::kLoadAware;
  options.config.zero_timings = true;
  engine::Report report;
  std::string error;
  ASSERT_TRUE(engine::run_fm_events(options, script, report, error)) << error;
  EXPECT_TRUE(report.converged);

  const std::string got =
      engine::JsonSink::document({report}).dump(2) + "\n";
  const std::string want = slurp(std::string(LMPR_GOLDEN_DIR) +
                                 "/fm_rebalance_quick.json");
  EXPECT_EQ(got, want) << "fm rebalance report drifted from golden file";
}

// Golden-file test: the GENERIC-fabric quick report must stay
// byte-stable too -- it pins the whole --topology path (factory ->
// RawFabric export -> allow_generic fabric manager) end to end.
// Regenerate consciously with:
//   build/lmpr fm --topology "RRG(8;4;2)"
//       --script scripts/fm_generic_smoke.script --zero-timings
//       --json tests/golden/fm_generic_quick.json
TEST(FmReport, GenericSmokeScriptGoldenFile) {
  const auto script = fm::parse_event_script(
      slurp(std::string(LMPR_SCRIPTS_DIR) + "/fm_generic_smoke.script"));
  ASSERT_TRUE(script.ok) << script.error;

  const auto topology = topo::make_topology("RRG(8;4;2)");
  const discovery::RawFabric fabric = topo::to_raw_fabric(*topology);
  engine::FmRunOptions options;
  options.fabric = &fabric;
  options.topology_name = topology->name();
  options.config.allow_generic = true;
  options.config.zero_timings = true;
  engine::Report report;
  std::string error;
  ASSERT_TRUE(engine::run_fm_events(options, script, report, error)) << error;
  EXPECT_TRUE(report.converged);

  const std::string got =
      engine::JsonSink::document({report}).dump(2) + "\n";
  const std::string want = slurp(std::string(LMPR_GOLDEN_DIR) +
                                 "/fm_generic_quick.json");
  EXPECT_EQ(got, want) << "generic fm report drifted from golden file";
}

TEST(FmReport, ScriptAndFabricErrorsAreReported) {
  engine::FmRunOptions options;
  engine::Report report;
  std::string error;
  EXPECT_FALSE(engine::run_fm_events(
      options, fm::parse_event_script("reboot 1\n"), report, error));
  EXPECT_NE(error.find("unknown event"), std::string::npos);

  discovery::RawFabric bogus;
  bogus.num_nodes = 3;
  bogus.hosts = {0, 1};
  bogus.cables = {{0, 2}};
  options.fabric = &bogus;
  error.clear();
  EXPECT_FALSE(engine::run_fm_events(
      options, fm::parse_event_script("query 0 1\n"), report, error));
  EXPECT_NE(error.find("not recognized"), std::string::npos);
}

// The scaling scenario's headline claim: incremental repair rewrites
// strictly fewer entries than a from-scratch rebuild on single-cable
// faults.
TEST(FmScenarios, RepairScalingChurnRatioBelowOne) {
  const engine::Scenario* scenario =
      engine::ScenarioRegistry::builtin().find("fm_repair_scaling");
  ASSERT_NE(scenario, nullptr);
  engine::CommonOptions options;
  const engine::Report report = run_scenario(*scenario, options, {});
  ASSERT_TRUE(report.converged);
  bool found = false;
  for (const auto& metric : report.metrics) {
    if (metric.name == "churn_ratio_worst") {
      found = true;
      EXPECT_GT(metric.value, 0.0);
      EXPECT_LT(metric.value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

// The rebalance scenario's headline claim: under arbitration, load_aware
// never loses an event to first_surviving on the reference load, and on
// the width-3 quick topology it strictly wins some.
TEST(FmScenarios, RebalanceVsFirstNoRegressions) {
  const engine::Scenario* scenario =
      engine::ScenarioRegistry::builtin().find("fm_rebalance_vs_first");
  ASSERT_NE(scenario, nullptr);
  engine::CommonOptions options;
  const engine::Report report = run_scenario(*scenario, options, {});
  ASSERT_TRUE(report.converged);
  double regressions = -1.0;
  double improvements = -1.0;
  for (const auto& metric : report.metrics) {
    if (metric.name == "regressions") regressions = metric.value;
    if (metric.name == "improvements") improvements = metric.value;
  }
  EXPECT_EQ(regressions, 0.0);
  EXPECT_GT(improvements, 0.0);
}

}  // namespace
}  // namespace lmpr
