#include "util/json.hpp"

#include <gtest/gtest.h>

#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

namespace {

using lmpr::util::Json;

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(Json::escape("hello world"), "hello world");
  EXPECT_EQ(Json::escape(""), "");
  EXPECT_EQ(Json::escape("16-port 2-tree; K=4"), "16-port 2-tree; K=4");
}

TEST(JsonEscape, EscapesRfc8259TwoCharForms) {
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Json::escape("a\nb"), "a\\nb");
  EXPECT_EQ(Json::escape("a\rb"), "a\\rb");
  EXPECT_EQ(Json::escape("a\tb"), "a\\tb");
  EXPECT_EQ(Json::escape("a\bb"), "a\\bb");
  EXPECT_EQ(Json::escape("a\fb"), "a\\fb");
}

TEST(JsonEscape, EscapesRemainingControlCharsAsU00XX) {
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(Json::escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(Json::escape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscape, LeavesUtf8BytesIntact) {
  // Multi-byte UTF-8 (here: a right arrow) must pass through unescaped.
  EXPECT_EQ(Json::escape("a\xe2\x86\x92z"), "a\xe2\x86\x92z");
}

TEST(JsonNumber, IntegersPrintExactly) {
  EXPECT_EQ(Json::number(std::int64_t{0}), "0");
  EXPECT_EQ(Json::number(std::int64_t{-7}), "-7");
  EXPECT_EQ(Json::number(std::int64_t{9007199254740993}), "9007199254740993");
}

TEST(JsonNumber, DoublesRoundTripThroughShortestForm) {
  for (const double value : {0.1, 1.0 / 3.0, 2.5, 100.0, -0.875, 1e-20,
                             6.02214076e23, 0.30000000000000004}) {
    const std::string text = Json::number(value);
    double parsed = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    ASSERT_EQ(ec, std::errc{}) << text;
    ASSERT_EQ(ptr, text.data() + text.size()) << text;
    EXPECT_EQ(parsed, value) << text;
  }
}

TEST(JsonNumber, NonFiniteDegradesToNull) {
  EXPECT_EQ(Json::number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(Json::number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonDump, ScalarForms) {
  EXPECT_EQ(Json().dump(-1), "null");
  EXPECT_EQ(Json(nullptr).dump(-1), "null");
  EXPECT_EQ(Json(true).dump(-1), "true");
  EXPECT_EQ(Json(false).dump(-1), "false");
  EXPECT_EQ(Json(42).dump(-1), "42");
  EXPECT_EQ(Json(2.5).dump(-1), "2.5");
  EXPECT_EQ(Json("hi\n").dump(-1), "\"hi\\n\"");
}

TEST(JsonDump, CompactContainers) {
  auto arr = Json::array();
  arr.push(1).push("two").push(Json::array());
  EXPECT_EQ(arr.dump(-1), "[1,\"two\",[]]");

  auto obj = Json::object();
  obj.set("b", 1).set("a", Json::object());
  // Insertion order is preserved; keys are NOT sorted.
  EXPECT_EQ(obj.dump(-1), "{\"b\":1,\"a\":{}}");
}

TEST(JsonDump, IndentedFormIsStable) {
  auto obj = Json::object();
  obj.set("name", "fig4a");
  auto ks = Json::array();
  ks.push(1).push(2).push(4);
  obj.set("k", std::move(ks));
  EXPECT_EQ(obj.dump(2),
            "{\n"
            "  \"name\": \"fig4a\",\n"
            "  \"k\": [\n"
            "    1,\n"
            "    2,\n"
            "    4\n"
            "  ]\n"
            "}");
}

TEST(JsonDump, EmptyContainersStayOnOneLine) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(JsonDump, WriteMatchesDump) {
  auto obj = Json::object();
  obj.set("x", 1.5).set("y", Json::array());
  std::ostringstream os;
  obj.write(os, 2);
  EXPECT_EQ(os.str(), obj.dump(2));
}

}  // namespace
