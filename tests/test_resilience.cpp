#include <gtest/gtest.h>

#include "flow/resilience.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flow::measure_resilience;
using flow::ResilienceConfig;
using topo::Xgft;
using topo::XgftSpec;

ResilienceConfig quick(route::Heuristic h, std::size_t k, double p) {
  ResilienceConfig config;
  config.heuristic = h;
  config.k_paths = k;
  config.cable_failure_probability = p;
  config.trials = 10;
  config.pair_samples = 500;
  config.seed = 3;
  return config;
}

TEST(Resilience, NoFailuresMeansFullConnectivity) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const auto result = measure_resilience(
      xgft, quick(route::Heuristic::kDisjoint, 4, 0.0));
  EXPECT_DOUBLE_EQ(result.connectivity, 1.0);
  EXPECT_DOUBLE_EQ(result.worst_connectivity, 1.0);
  EXPECT_DOUBLE_EQ(result.surviving_paths, 1.0);
  EXPECT_DOUBLE_EQ(result.failed_cables, 0.0);
}

TEST(Resilience, FailureRateIsRespected) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // 384 cables
  auto config = quick(route::Heuristic::kDisjoint, 4, 0.05);
  config.trials = 40;
  const auto result = measure_resilience(xgft, config);
  EXPECT_NEAR(result.failed_cables, 0.05 * 384.0, 4.0);
  EXPECT_LT(result.surviving_paths, 1.0);
}

TEST(Resilience, MorePathsImproveConnectivity) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  double previous = 0.0;
  for (const std::size_t k : {1u, 4u, 16u}) {
    const auto result = measure_resilience(
        xgft, quick(route::Heuristic::kDisjoint, k, 0.05));
    EXPECT_GE(result.connectivity, previous - 0.01) << "K=" << k;
    previous = result.connectivity;
  }
}

TEST(Resilience, DisjointSurvivesBetterThanShift1) {
  // shift-1's K paths share their lower links, so one low-level cable
  // failure kills the whole set; disjoint's fork-low diversity survives.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const auto shift = measure_resilience(
      xgft, quick(route::Heuristic::kShift1, 4, 0.05));
  const auto disjoint = measure_resilience(
      xgft, quick(route::Heuristic::kDisjoint, 4, 0.05));
  EXPECT_GT(disjoint.connectivity, shift.connectivity);
}

TEST(Resilience, DeterministicForFixedSeed) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const auto a = measure_resilience(
      xgft, quick(route::Heuristic::kRandom, 2, 0.1));
  const auto b = measure_resilience(
      xgft, quick(route::Heuristic::kRandom, 2, 0.1));
  EXPECT_DOUBLE_EQ(a.connectivity, b.connectivity);
  EXPECT_DOUBLE_EQ(a.surviving_paths, b.surviving_paths);
}

TEST(Resilience, ExhaustivePairModeWorks) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};  // 8 hosts
  auto config = quick(route::Heuristic::kDisjoint, 2, 0.1);
  config.pair_samples = 0;  // all ordered pairs
  config.trials = 5;
  const auto result = measure_resilience(xgft, config);
  EXPECT_GT(result.connectivity, 0.0);
  EXPECT_LE(result.connectivity, 1.0);
}

TEST(Resilience, CertainFailureDisconnectsEveryPair) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};  // 8 hosts, 32 cables
  auto config = quick(route::Heuristic::kDisjoint, 2, 1.0);
  config.pair_samples = 0;
  config.trials = 2;
  config.record_details = true;
  const auto result = measure_resilience(xgft, config);
  EXPECT_DOUBLE_EQ(result.connectivity, 0.0);
  EXPECT_DOUBLE_EQ(result.worst_connectivity, 0.0);
  EXPECT_DOUBLE_EQ(result.surviving_paths, 0.0);
  EXPECT_DOUBLE_EQ(result.failed_cables,
                   static_cast<double>(xgft.num_cables()));
  ASSERT_EQ(result.trials.size(), 2u);
  const std::uint64_t hosts = xgft.num_hosts();
  for (const auto& trial : result.trials) {
    EXPECT_EQ(trial.failed_cables.size(), xgft.num_cables());
    EXPECT_EQ(trial.disconnected.size(), hosts * (hosts - 1));
  }
}

TEST(Resilience, ZeroProbabilityRecordsEmptyDetails) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  auto config = quick(route::Heuristic::kDisjoint, 2, 0.0);
  config.pair_samples = 0;
  config.trials = 3;
  config.record_details = true;
  const auto result = measure_resilience(xgft, config);
  EXPECT_DOUBLE_EQ(result.connectivity, 1.0);
  ASSERT_EQ(result.trials.size(), 3u);
  for (const auto& trial : result.trials) {
    EXPECT_TRUE(trial.failed_cables.empty());
    EXPECT_TRUE(trial.disconnected.empty());
  }
}

TEST(Resilience, DetailsAreOffByDefault) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const auto result = measure_resilience(
      xgft, quick(route::Heuristic::kDisjoint, 2, 0.1));
  EXPECT_TRUE(result.trials.empty());
}

TEST(Resilience, DetailsMatchTheAggregates) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};  // 8 hosts
  auto config = quick(route::Heuristic::kDisjoint, 2, 0.15);
  config.pair_samples = 0;
  config.trials = 6;
  config.record_details = true;
  const auto result = measure_resilience(xgft, config);
  ASSERT_EQ(result.trials.size(), 6u);
  const double pairs =
      static_cast<double>(xgft.num_hosts() * (xgft.num_hosts() - 1));
  double connectivity = 0.0;
  double failed = 0.0;
  for (const auto& trial : result.trials) {
    connectivity +=
        1.0 - static_cast<double>(trial.disconnected.size()) / pairs;
    failed += static_cast<double>(trial.failed_cables.size());
  }
  EXPECT_DOUBLE_EQ(result.connectivity, connectivity / 6.0);
  EXPECT_DOUBLE_EQ(result.failed_cables, failed / 6.0);
}

}  // namespace
