// Tests of the optimality machinery: Lemma 1 (the subtree-cut bound is a
// genuine lower bound), Theorem 1 (UMULTI attains it on every XGFT and
// every traffic matrix), Theorem 2 (d-mod-k can be a factor prod(w_i) off
// optimal).
#include <gtest/gtest.h>

#include <limits>

#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flow::LoadEvaluator;
using flow::oload;
using flow::perf_ratio;
using flow::TrafficMatrix;
using route::Heuristic;
using topo::Xgft;
using topo::XgftSpec;

TrafficMatrix random_tm(std::uint64_t hosts, util::Rng& rng,
                        std::size_t flows) {
  TrafficMatrix tm(hosts);
  for (std::size_t i = 0; i < flows; ++i) {
    tm.add(rng.below(hosts), rng.below(hosts), rng.uniform01() * 4.0);
  }
  return tm;
}

TEST(PerfRatio, EdgeCases) {
  EXPECT_DOUBLE_EQ(perf_ratio(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(perf_ratio(2.0, 1.0), 2.0);
  EXPECT_TRUE(std::isinf(perf_ratio(1.0, 0.0)));
}

TEST(Oload, HotspotBindsAtTheDestinationCut) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};  // w = (1,4), 32 hosts
  const auto tm = TrafficMatrix::hotspot(xgft.num_hosts(), 0);
  const auto result = oload(xgft, tm);
  // 31 units converge on host 0 through its single access link: TL(0)=1.
  EXPECT_DOUBLE_EQ(result.value, 31.0);
  EXPECT_EQ(result.cut_height, 0u);
  EXPECT_EQ(result.cut_subtree, 0u);
}

TEST(Oload, PermutationOnFullBisectionIsOne) {
  // A permutation with all-remote pairs on a full-bisection 2-tree has
  // optimal load exactly 1 (each host sends and receives one unit).
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const auto tm =
      TrafficMatrix::shift(xgft.num_hosts(), xgft.num_hosts() / 2);
  EXPECT_DOUBLE_EQ(oload(xgft, tm).value, 1.0);
}

TEST(Oload, IdentifiesTheBindingCutHeight) {
  // Concentrate traffic out of ONE leaf (height-1 subtree): the binding
  // cut must be that subtree, not a host or the whole-tree cut.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // leaves hold 4 hosts
  TrafficMatrix tm(xgft.num_hosts());
  for (std::uint64_t s = 4; s < 8; ++s) {      // leaf 1
    tm.add(s, s + 60, 1.0);                    // remote destinations
  }
  const auto result = oload(xgft, tm);
  // 4 units over TL(1) = w1*w2 = 4 -> bound 1.0 from the leaf cut; host
  // cuts give 1.0 too (1 unit over 1 link) -- accept either, but the
  // subtree index must be consistent with the height reported.
  EXPECT_DOUBLE_EQ(result.value, 1.0);
  if (result.cut_height == 1) {
    // Either the source leaf (1) or the destination leaf (16).
    EXPECT_TRUE(result.cut_subtree == 1u || result.cut_subtree == 16u);
  } else {
    EXPECT_EQ(result.cut_height, 0u);
    const bool source = result.cut_subtree >= 4 && result.cut_subtree < 8;
    const bool dest = result.cut_subtree >= 64 && result.cut_subtree < 68;
    EXPECT_TRUE(source || dest) << result.cut_subtree;
  }
}

TEST(Oload, ArgmaxLinkCarriesTheMaxLoad) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  flow::LoadEvaluator eval(xgft);
  util::Rng rng{31};
  const auto tm = TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  const auto result = eval.evaluate(tm, Heuristic::kDModK, 1, rng);
  ASSERT_NE(result.argmax, topo::kInvalidLink);
  EXPECT_DOUBLE_EQ(eval.link_loads()[result.argmax], result.max_load);
}

class Theorems : public testing::TestWithParam<XgftSpec> {};

TEST_P(Theorems, Lemma1EveryRoutingIsAtLeastOload) {
  const Xgft xgft{GetParam()};
  LoadEvaluator eval(xgft);
  util::Rng rng{11};
  for (int trial = 0; trial < 5; ++trial) {
    const auto tm = random_tm(xgft.num_hosts(), rng, 40);
    const double lower = oload(xgft, tm).value;
    for (const Heuristic h :
         {Heuristic::kDModK, Heuristic::kSModK, Heuristic::kRandomSingle,
          Heuristic::kShift1, Heuristic::kDisjoint, Heuristic::kRandom,
          Heuristic::kUmulti}) {
      const double mload = eval.evaluate(tm, h, 2, rng).max_load;
      EXPECT_GE(mload, lower - 1e-9) << to_string(h);
    }
  }
}

TEST_P(Theorems, Theorem1UmultiIsOptimalOblivious) {
  // MLOAD(UMULTI, TM) == ML(TM) == OLOAD(TM) for every TM: checked on
  // random matrices, permutations and hotspots.
  const Xgft xgft{GetParam()};
  LoadEvaluator eval(xgft);
  util::Rng rng{13};
  std::vector<TrafficMatrix> tms;
  tms.push_back(random_tm(xgft.num_hosts(), rng, 60));
  tms.push_back(TrafficMatrix::random_permutation(xgft.num_hosts(), rng));
  tms.push_back(TrafficMatrix::hotspot(xgft.num_hosts(), 0));
  if (xgft.num_hosts() <= 64) {
    tms.push_back(TrafficMatrix::uniform(xgft.num_hosts()));
  }
  for (const auto& tm : tms) {
    const double mload = eval.evaluate(tm, Heuristic::kUmulti, 1, rng).max_load;
    const double opt = oload(xgft, tm).value;
    EXPECT_NEAR(mload, opt, 1e-9 + 1e-12 * opt);
    EXPECT_NEAR(perf_ratio(mload, opt), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Theorems,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

TEST(Theorem2, DmodkLosesByFactorW) {
  for (std::uint32_t spread : {2u, 4u}) {
    for (std::size_t height : {2u, 3u}) {
      const Xgft xgft{flow::adversarial_dmodk_topology(height, spread)};
      const auto tm = flow::adversarial_dmodk_traffic(xgft);
      LoadEvaluator eval(xgft);
      util::Rng rng{1};
      const double mload = eval.evaluate(tm, Heuristic::kDModK, 1, rng).max_load;
      const double opt = oload(xgft, tm).value;
      const double w_total =
          static_cast<double>(xgft.spec().num_top_switches());
      // All traffic concentrates on one upward link...
      EXPECT_DOUBLE_EQ(mload, static_cast<double>(tm.size()));
      // ...while the optimum spreads it over all prod(w_i) boundary links,
      // so the performance ratio is at least prod(w_i).
      EXPECT_GE(perf_ratio(mload, opt), w_total - 1e-9)
          << xgft.spec().to_string();
    }
  }
}

TEST(Theorem2, UmultiIsImmuneToTheAdversary) {
  const Xgft xgft{flow::adversarial_dmodk_topology(3, 4)};
  const auto tm = flow::adversarial_dmodk_traffic(xgft);
  LoadEvaluator eval(xgft);
  util::Rng rng{1};
  const double mload = eval.evaluate(tm, Heuristic::kUmulti, 1, rng).max_load;
  EXPECT_NEAR(perf_ratio(mload, oload(xgft, tm).value), 1.0, 1e-9);
}

}  // namespace
