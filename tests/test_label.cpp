#include <gtest/gtest.h>

#include "test_support.hpp"
#include "topology/label.hpp"

namespace {

using lmpr::topo::digit_radix;
using lmpr::topo::Label;
using lmpr::topo::label_to_rank;
using lmpr::topo::rank_to_label;
using lmpr::topo::XgftSpec;

TEST(Label, DigitRadixSwitchesAtLevel) {
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};
  // At level 2, digits 1..2 are w-digits, digit 3 is an m-digit.
  EXPECT_EQ(digit_radix(spec, 2, 1), 1u);
  EXPECT_EQ(digit_radix(spec, 2, 2), 4u);
  EXPECT_EQ(digit_radix(spec, 2, 3), 4u);
  // Hosts (level 0): all m-digits.
  EXPECT_EQ(digit_radix(spec, 0, 1), 4u);
  EXPECT_EQ(digit_radix(spec, 0, 3), 4u);
}

TEST(Label, RankZeroIsAllZeros) {
  const XgftSpec spec{{2, 3, 4}, {2, 2, 3}};
  for (std::uint32_t level = 0; level <= 3; ++level) {
    const Label label = rank_to_label(spec, level, 0);
    for (const auto digit : label.digits) EXPECT_EQ(digit, 0u);
  }
}

TEST(Label, HostRankUsesA1AsLeastSignificantDigit) {
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};
  const Label label = rank_to_label(spec, 0, 27);  // 27 = 1*16 + 2*4 + 3
  EXPECT_EQ(label.digits[0], 3u);  // a_1
  EXPECT_EQ(label.digits[1], 2u);  // a_2
  EXPECT_EQ(label.digits[2], 1u);  // a_3
}

TEST(Label, ToStringMostSignificantFirst) {
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};
  const Label label = rank_to_label(spec, 0, 27);
  EXPECT_EQ(label.to_string(), "(0; 1, 2, 3)");
}

class LabelRoundTrip : public testing::TestWithParam<XgftSpec> {};

TEST_P(LabelRoundTrip, RankToLabelToRank) {
  const XgftSpec& spec = GetParam();
  for (std::uint32_t level = 0; level <= spec.height(); ++level) {
    const std::uint64_t count = spec.nodes_at_level(level);
    for (std::uint64_t rank = 0; rank < count; ++rank) {
      const Label label = rank_to_label(spec, level, rank);
      EXPECT_EQ(label.level, level);
      EXPECT_EQ(label_to_rank(spec, label), rank);
      for (std::size_t i = 1; i <= spec.height(); ++i) {
        EXPECT_LT(label.digits[i - 1], digit_radix(spec, level, i));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, LabelRoundTrip,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

}  // namespace
