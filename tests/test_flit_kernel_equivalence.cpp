// Differential proof that the active-set kernel is bit-identical to the
// reference full-scan kernel (SimConfig::reference_kernel): both run the
// same seeded simulation and every SimMetrics field must match EXACTLY --
// same grants in the same order, same calendar events in the same bucket
// order, hence the same floating-point accumulation and the same RNG
// consumption.  Any divergence, however small, means the active-set
// bookkeeping skipped or reordered work the reference would have done.
//
// Also covers the parallel sweep paths: run_load_sweep and
// measure_saturation must return identical results with and without a
// thread pool (index-derived seeds, index-ordered merges).
//
// Carries the `perf` ctest label: it simulates a grid of shapes x loads x
// routing modes, so it runs longer than a unit test.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "engine/study.hpp"
#include "flit/network.hpp"
#include "flit/sweep.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lmpr;
using flit::DestinationMode;
using flit::Network;
using flit::PathSelection;
using flit::RoutingMode;
using flit::SimConfig;
using flit::SimMetrics;
using route::Heuristic;
using route::RouteTable;
using topo::Xgft;
using topo::XgftSpec;

void expect_stats_identical(const util::OnlineStats& a,
                            const util::OnlineStats& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  if (a.count() > 0) {
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
}

/// Every SimMetrics field, compared with operator== on doubles: the two
/// kernels must not differ even in the last ulp.
void expect_metrics_identical(const SimMetrics& active,
                              const SimMetrics& reference) {
  EXPECT_EQ(active.offered_load, reference.offered_load);
  EXPECT_EQ(active.throughput, reference.throughput);
  expect_stats_identical(active.message_delay, reference.message_delay,
                         "message_delay");
  expect_stats_identical(active.packet_delay, reference.packet_delay,
                         "packet_delay");
  EXPECT_EQ(active.message_delay_dist.sample_size(),
            reference.message_delay_dist.sample_size());
  if (active.message_delay_dist.sample_size() > 0) {
    EXPECT_EQ(active.message_delay_dist.median(),
              reference.message_delay_dist.median());
    EXPECT_EQ(active.message_delay_dist.p99(),
              reference.message_delay_dist.p99());
  }
  EXPECT_EQ(active.messages_generated, reference.messages_generated);
  EXPECT_EQ(active.messages_delivered, reference.messages_delivered);
  EXPECT_EQ(active.flits_delivered, reference.flits_delivered);
  EXPECT_EQ(active.packets_delivered, reference.packets_delivered);
  EXPECT_EQ(active.packets_out_of_order, reference.packets_out_of_order);
  EXPECT_EQ(active.packets_outstanding, reference.packets_outstanding);
  EXPECT_EQ(active.packets_generated, reference.packets_generated);
  EXPECT_EQ(active.mean_up_utilization, reference.mean_up_utilization);
  EXPECT_EQ(active.mean_down_utilization, reference.mean_down_utilization);
  EXPECT_EQ(active.max_up_utilization, reference.max_up_utilization);
  EXPECT_EQ(active.max_down_utilization, reference.max_down_utilization);
}

void run_both_kernels(const RouteTable& table, SimConfig config) {
  config.reference_kernel = false;
  const SimMetrics active = Network(table, config).run();
  config.reference_kernel = true;
  const SimMetrics reference = Network(table, config).run();
  ASSERT_GT(reference.packets_generated, 0u);  // the case exercises traffic
  expect_metrics_identical(active, reference);
}

SimConfig grid_config(double load) {
  SimConfig config;
  config.warmup_cycles = 400;
  config.measure_cycles = 1200;
  config.drain_cycles = 600;
  config.offered_load = load;
  config.seed = 97;
  return config;
}

struct RoutingCase {
  const char* name;
  Heuristic heuristic;
  std::size_t k;
  PathSelection selection;
  RoutingMode mode;
  std::uint32_t num_vcs;
};

TEST(KernelEquivalence, GridOfShapesLoadsAndRoutingModes) {
  const XgftSpec shapes[] = {
      XgftSpec::m_port_n_tree(4, 2),
      XgftSpec{{2, 3, 4}, {2, 2, 3}},
      XgftSpec{{4, 4, 4}, {1, 2, 2}},
  };
  const RoutingCase cases[] = {
      {"dmodk", Heuristic::kDModK, 1, PathSelection::kRandomPerMessage,
       RoutingMode::kOblivious, 1},
      {"disjoint4-rr", Heuristic::kDisjoint, 4,
       PathSelection::kRoundRobinPerMessage, RoutingMode::kOblivious, 1},
      {"random2-per-packet", Heuristic::kRandom, 2,
       PathSelection::kRandomPerPacket, RoutingMode::kOblivious, 1},
      {"shift1-2vc", Heuristic::kShift1, 2, PathSelection::kRandomPerMessage,
       RoutingMode::kOblivious, 2},
      {"adaptive", Heuristic::kDModK, 1, PathSelection::kRandomPerMessage,
       RoutingMode::kAdaptive, 1},
  };
  for (const XgftSpec& spec : shapes) {
    const Xgft xgft{spec};
    for (const RoutingCase& rc : cases) {
      const RouteTable table(xgft, rc.heuristic, rc.k, 11);
      for (const double load : {0.15, 0.45, 0.85}) {
        SCOPED_TRACE(std::string(rc.name) + " " + spec.to_string() +
                     " load " + std::to_string(load));
        SimConfig config = grid_config(load);
        config.path_selection = rc.selection;
        config.routing_mode = rc.mode;
        config.num_vcs = rc.num_vcs;
        run_both_kernels(table, config);
      }
    }
  }
}

TEST(KernelEquivalence, HotspotTraffic) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2, 11);
  SimConfig config = grid_config(0.4);
  config.destination_mode = DestinationMode::kHotspot;
  config.hotspot_target = 3;
  config.hotspot_fraction = 0.3;
  run_both_kernels(table, config);
}

TEST(KernelEquivalence, FreshDestinationPerMessage) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kRandom, 4, 11);
  SimConfig config = grid_config(0.5);
  config.destination_mode = DestinationMode::kPerMessage;
  run_both_kernels(table, config);
}

TEST(KernelEquivalence, HigherFidelityRun) {
  // One longer run at paper-like cycle counts: bookkeeping drift that a
  // short run could miss (e.g. a slot leak that only matters once FIFOs
  // compact) has room to surface.
  const Xgft xgft{XgftSpec{{4, 4, 4}, {1, 2, 2}}};
  const RouteTable table(xgft, Heuristic::kDisjoint, 4, 11);
  SimConfig config;
  config.warmup_cycles = 3000;
  config.measure_cycles = 9000;
  config.drain_cycles = 3000;
  config.offered_load = 0.7;
  config.seed = 1234;
  run_both_kernels(table, config);
}

void expect_sweeps_identical(const flit::SweepResult& a,
                             const flit::SweepResult& b) {
  EXPECT_EQ(a.max_throughput, b.max_throughput);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const flit::SweepPoint& p = a.points[i];
    const flit::SweepPoint& q = b.points[i];
    EXPECT_EQ(p.offered_load, q.offered_load);
    EXPECT_EQ(p.throughput, q.throughput);
    EXPECT_EQ(p.mean_message_delay, q.mean_message_delay);
    EXPECT_EQ(p.mean_packet_delay, q.mean_packet_delay);
    EXPECT_EQ(p.median_message_delay, q.median_message_delay);
    EXPECT_EQ(p.p99_message_delay, q.p99_message_delay);
    EXPECT_EQ(p.delivered_fraction, q.delivered_fraction);
    EXPECT_EQ(p.out_of_order_fraction, q.out_of_order_fraction);
  }
}

TEST(ParallelSweep, MatchesSerialSweep) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2, 11);
  const SimConfig base = grid_config(0.5);
  const std::vector<double> loads{0.2, 0.4, 0.6, 0.8};
  const auto serial = flit::run_load_sweep(table, base, loads, nullptr);
  util::ThreadPool pool(3);
  const auto pooled = flit::run_load_sweep(table, base, loads, &pool);
  expect_sweeps_identical(serial, pooled);
}

TEST(ParallelSweep, MeasureSaturationMatchesSerial) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kShift1, 2, 11);
  const SimConfig base = grid_config(0.5);
  const std::vector<double> loads{0.3, 0.6, 0.9};
  const auto pairings = engine::shared_pairings(xgft.num_hosts(), 21, 2);
  const auto serial =
      engine::measure_saturation(table, base, loads, pairings, nullptr);
  util::ThreadPool pool(3);
  const auto pooled =
      engine::measure_saturation(table, base, loads, pairings, &pool);
  EXPECT_EQ(serial.max_throughput, pooled.max_throughput);
  // mean_message_delay is NaN when a point delivered nothing; NaN != NaN,
  // so compare bit patterns via ==-or-both-NaN.
  EXPECT_TRUE(serial.delay_at_low_load == pooled.delay_at_low_load ||
              (std::isnan(serial.delay_at_low_load) &&
               std::isnan(pooled.delay_at_low_load)));
  EXPECT_EQ(serial.reorder_at_high_load, pooled.reorder_at_high_load);
}

}  // namespace
