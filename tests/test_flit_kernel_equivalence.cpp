// Differential proof that the active-set and event kernels are
// bit-identical to the reference full-scan kernel (SimConfig::kernel):
// all three run the same seeded simulation and every SimMetrics field
// must match EXACTLY -- same grants in the same order, same calendar
// events in the same bucket order, hence the same floating-point
// accumulation and the same RNG consumption.  Any divergence, however
// small, means a kernel skipped or reordered work the reference would
// have done (for the event kernel: that a fast-forwarded cycle was not
// actually a no-op, or that waking hosts off the heap perturbed the
// packet/message allocation order).
//
// Also covers the parallel sweep paths: run_load_sweep and
// measure_saturation must return identical results with and without a
// thread pool (index-derived seeds, index-ordered merges).
//
// Carries the `perf` ctest label: it simulates a grid of shapes x loads x
// routing modes, so it runs longer than a unit test.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "adaptive/selector.hpp"
#include "engine/study.hpp"
#include "fabric/degraded.hpp"
#include "fabric/lft.hpp"
#include "flit/network.hpp"
#include "flit/sweep.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lmpr;
using flit::DestinationMode;
using flit::Network;
using flit::PathSelection;
using flit::RoutingMode;
using flit::SimConfig;
using flit::SimMetrics;
using route::Heuristic;
using route::RouteTable;
using topo::Xgft;
using topo::XgftSpec;

void expect_stats_identical(const util::OnlineStats& a,
                            const util::OnlineStats& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  if (a.count() > 0) {
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
}

/// Every SimMetrics field, compared with operator== on doubles: the two
/// kernels must not differ even in the last ulp.
void expect_metrics_identical(const SimMetrics& active,
                              const SimMetrics& reference) {
  EXPECT_EQ(active.offered_load, reference.offered_load);
  EXPECT_EQ(active.throughput, reference.throughput);
  expect_stats_identical(active.message_delay, reference.message_delay,
                         "message_delay");
  expect_stats_identical(active.packet_delay, reference.packet_delay,
                         "packet_delay");
  EXPECT_EQ(active.message_delay_dist.sample_size(),
            reference.message_delay_dist.sample_size());
  if (active.message_delay_dist.sample_size() > 0) {
    EXPECT_EQ(active.message_delay_dist.median(),
              reference.message_delay_dist.median());
    EXPECT_EQ(active.message_delay_dist.p99(),
              reference.message_delay_dist.p99());
  }
  EXPECT_EQ(active.messages_generated, reference.messages_generated);
  EXPECT_EQ(active.messages_delivered, reference.messages_delivered);
  EXPECT_EQ(active.flits_delivered, reference.flits_delivered);
  EXPECT_EQ(active.packets_delivered, reference.packets_delivered);
  EXPECT_EQ(active.packets_out_of_order, reference.packets_out_of_order);
  EXPECT_EQ(active.packets_outstanding, reference.packets_outstanding);
  EXPECT_EQ(active.packets_generated, reference.packets_generated);
  EXPECT_EQ(active.packets_dropped, reference.packets_dropped);
  EXPECT_EQ(active.packets_rerouted, reference.packets_rerouted);
  EXPECT_EQ(active.messages_lost, reference.messages_lost);
  EXPECT_EQ(active.mean_up_utilization, reference.mean_up_utilization);
  EXPECT_EQ(active.mean_down_utilization, reference.mean_down_utilization);
  EXPECT_EQ(active.max_up_utilization, reference.max_up_utilization);
  EXPECT_EQ(active.max_down_utilization, reference.max_down_utilization);
}

/// The three-way differential cell: reference is the oracle, active-set
/// and event must both reproduce it bit-for-bit.
void run_all_kernels(const RouteTable& table, SimConfig config) {
  config.kernel = flit::Kernel::kReference;
  const SimMetrics reference = Network(table, config).run();
  ASSERT_GT(reference.packets_generated, 0u);  // the case exercises traffic
  config.kernel = flit::Kernel::kActiveSet;
  const SimMetrics active = Network(table, config).run();
  expect_metrics_identical(active, reference);
  config.kernel = flit::Kernel::kEvent;
  const SimMetrics event = Network(table, config).run();
  expect_metrics_identical(event, reference);
}

/// LFT-routed three-way cell: like run_all_kernels, but the packets are
/// forwarded by DLID tables, the configuration may engage the adaptive
/// variant selector, and the selector's decision/switch counters -- a
/// kernel-INDEPENDENT observable -- must also match bit-for-bit.
/// Returns the reference kernel's counters so callers can assert the
/// adaptive cells were not degenerate.
adaptive::SelectorStats run_all_kernels_lft(const fabric::Lft& lft,
                                            const fabric::Tables& tables,
                                            SimConfig config) {
  config.kernel = flit::Kernel::kReference;
  Network reference_net(lft, tables, config);
  const SimMetrics reference = reference_net.run();
  EXPECT_GT(reference.packets_generated, 0u);
  config.kernel = flit::Kernel::kActiveSet;
  Network active_net(lft, tables, config);
  expect_metrics_identical(active_net.run(), reference);
  EXPECT_EQ(active_net.selector_stats(), reference_net.selector_stats());
  config.kernel = flit::Kernel::kEvent;
  Network event_net(lft, tables, config);
  expect_metrics_identical(event_net.run(), reference);
  EXPECT_EQ(event_net.selector_stats(), reference_net.selector_stats());
  return reference_net.selector_stats();
}

SimConfig grid_config(double load) {
  SimConfig config;
  config.warmup_cycles = 400;
  config.measure_cycles = 1200;
  config.drain_cycles = 600;
  config.offered_load = load;
  config.seed = 97;
  return config;
}

struct RoutingCase {
  const char* name;
  Heuristic heuristic;
  std::size_t k;
  PathSelection selection;
  RoutingMode mode;
  std::uint32_t num_vcs;
};

TEST(KernelEquivalence, GridOfShapesLoadsAndRoutingModes) {
  const XgftSpec shapes[] = {
      XgftSpec::m_port_n_tree(4, 2),
      XgftSpec{{2, 3, 4}, {2, 2, 3}},
      XgftSpec{{4, 4, 4}, {1, 2, 2}},
  };
  const RoutingCase cases[] = {
      {"dmodk", Heuristic::kDModK, 1, PathSelection::kRandomPerMessage,
       RoutingMode::kOblivious, 1},
      {"disjoint4-rr", Heuristic::kDisjoint, 4,
       PathSelection::kRoundRobinPerMessage, RoutingMode::kOblivious, 1},
      {"random2-per-packet", Heuristic::kRandom, 2,
       PathSelection::kRandomPerPacket, RoutingMode::kOblivious, 1},
      {"shift1-2vc", Heuristic::kShift1, 2, PathSelection::kRandomPerMessage,
       RoutingMode::kOblivious, 2},
      {"adaptive", Heuristic::kDModK, 1, PathSelection::kRandomPerMessage,
       RoutingMode::kAdaptive, 1},
  };
  for (const XgftSpec& spec : shapes) {
    const Xgft xgft{spec};
    for (const RoutingCase& rc : cases) {
      const RouteTable table(xgft, rc.heuristic, rc.k, 11);
      for (const double load : {0.15, 0.45, 0.85}) {
        SCOPED_TRACE(std::string(rc.name) + " " + spec.to_string() +
                     " load " + std::to_string(load));
        SimConfig config = grid_config(load);
        config.path_selection = rc.selection;
        config.routing_mode = rc.mode;
        config.num_vcs = rc.num_vcs;
        run_all_kernels(table, config);
      }
    }
  }
}

TEST(KernelEquivalence, HotspotTraffic) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2, 11);
  SimConfig config = grid_config(0.4);
  config.destination_mode = DestinationMode::kHotspot;
  config.hotspot_target = 3;
  config.hotspot_fraction = 0.3;
  run_all_kernels(table, config);
}

TEST(KernelEquivalence, AdaptiveVariantSelectionGrid) {
  // The variant selector's decision points (injection + per-hop arrival)
  // ride machinery shared by all three kernels; this grid proves the
  // claim over shapes x K x policy x traffic, including the selector
  // counters.  The degeneracy guard at the bottom rejects a vacuous
  // pass: across the adaptive cells packets must actually have moved
  // off their incumbent variant in every policy.
  struct SelectCase {
    const char* name;
    std::size_t k;
    fabric::LidLayout layout;
    flit::SelectPolicy select;
    DestinationMode traffic;
  };
  const SelectCase cases[] = {
      {"credit-k2-perm", 2, fabric::LidLayout::kDisjointLayout,
       flit::SelectPolicy::kAdaptiveCredit, DestinationMode::kFixedPermutation},
      {"credit-k4-shift", 4, fabric::LidLayout::kDisjointLayout,
       flit::SelectPolicy::kAdaptiveCredit, DestinationMode::kShift},
      {"occupancy-k4-perm", 4, fabric::LidLayout::kShiftLayout,
       flit::SelectPolicy::kAdaptiveOccupancy,
       DestinationMode::kFixedPermutation},
      {"occupancy-k2-hotspot", 2, fabric::LidLayout::kDisjointLayout,
       flit::SelectPolicy::kAdaptiveOccupancy, DestinationMode::kHotspot},
      {"oblivious-k4-perm", 4, fabric::LidLayout::kDisjointLayout,
       flit::SelectPolicy::kOblivious, DestinationMode::kFixedPermutation},
  };
  const XgftSpec shapes[] = {
      XgftSpec::m_port_n_tree(4, 2),
      XgftSpec{{4, 4, 4}, {1, 2, 2}},
  };
  std::uint64_t credit_switches = 0;
  std::uint64_t occupancy_switches = 0;
  for (const XgftSpec& spec : shapes) {
    const Xgft xgft{spec};
    const fabric::Degradation healthy(xgft);
    for (const SelectCase& sc : cases) {
      const fabric::Lft lft(xgft, sc.k, sc.layout);
      const fabric::Tables tables = fabric::build_lft(lft, healthy);
      for (const double load : {0.2, 0.6}) {
        SCOPED_TRACE(std::string(sc.name) + " " + spec.to_string() +
                     " load " + std::to_string(load));
        SimConfig config = grid_config(load);
        config.select = sc.select;
        config.destination_mode = sc.traffic;
        config.shift_distance = 5;   // cross-leaf: every message climbs
        config.hotspot_fraction = 0.3;
        config.hotspot_target = 3;
        const adaptive::SelectorStats stats =
            run_all_kernels_lft(lft, tables, config);
        if (sc.select == flit::SelectPolicy::kOblivious) {
          EXPECT_EQ(stats.decisions, 0u);
        }
        if (sc.select == flit::SelectPolicy::kAdaptiveCredit) {
          credit_switches += stats.switches;
        }
        if (sc.select == flit::SelectPolicy::kAdaptiveOccupancy) {
          occupancy_switches += stats.switches;
        }
      }
    }
  }
  EXPECT_GT(credit_switches, 0u);
  EXPECT_GT(occupancy_switches, 0u);
}

TEST(KernelEquivalence, FreshDestinationPerMessage) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kRandom, 4, 11);
  SimConfig config = grid_config(0.5);
  config.destination_mode = DestinationMode::kPerMessage;
  run_all_kernels(table, config);
}

TEST(KernelEquivalence, HigherFidelityRun) {
  // One longer run at paper-like cycle counts: bookkeeping drift that a
  // short run could miss (e.g. a slot leak that only matters once FIFOs
  // compact) has room to surface.
  const Xgft xgft{XgftSpec{{4, 4, 4}, {1, 2, 2}}};
  const RouteTable table(xgft, Heuristic::kDisjoint, 4, 11);
  SimConfig config;
  config.warmup_cycles = 3000;
  config.measure_cycles = 9000;
  config.drain_cycles = 3000;
  config.offered_load = 0.7;
  config.seed = 1234;
  run_all_kernels(table, config);
}

void expect_sweeps_identical(const flit::SweepResult& a,
                             const flit::SweepResult& b) {
  EXPECT_EQ(a.max_throughput, b.max_throughput);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const flit::SweepPoint& p = a.points[i];
    const flit::SweepPoint& q = b.points[i];
    EXPECT_EQ(p.offered_load, q.offered_load);
    EXPECT_EQ(p.throughput, q.throughput);
    EXPECT_EQ(p.mean_message_delay, q.mean_message_delay);
    EXPECT_EQ(p.mean_packet_delay, q.mean_packet_delay);
    EXPECT_EQ(p.median_message_delay, q.median_message_delay);
    EXPECT_EQ(p.p99_message_delay, q.p99_message_delay);
    EXPECT_EQ(p.delivered_fraction, q.delivered_fraction);
    EXPECT_EQ(p.out_of_order_fraction, q.out_of_order_fraction);
  }
}

TEST(ParallelSweep, MatchesSerialSweep) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2, 11);
  const SimConfig base = grid_config(0.5);
  const std::vector<double> loads{0.2, 0.4, 0.6, 0.8};
  const auto serial = flit::run_load_sweep(table, base, loads, nullptr);
  util::ThreadPool pool(3);
  const auto pooled = flit::run_load_sweep(table, base, loads, &pool);
  expect_sweeps_identical(serial, pooled);
}

TEST(ParallelSweep, MeasureSaturationMatchesSerial) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kShift1, 2, 11);
  const SimConfig base = grid_config(0.5);
  const std::vector<double> loads{0.3, 0.6, 0.9};
  const auto pairings = engine::shared_pairings(xgft.num_hosts(), 21, 2);
  const auto serial =
      engine::measure_saturation(table, base, loads, pairings, nullptr);
  util::ThreadPool pool(3);
  const auto pooled =
      engine::measure_saturation(table, base, loads, pairings, &pool);
  EXPECT_EQ(serial.max_throughput, pooled.max_throughput);
  // mean_message_delay is NaN when a point delivered nothing; NaN != NaN,
  // so compare bit patterns via ==-or-both-NaN.
  EXPECT_TRUE(serial.delay_at_low_load == pooled.delay_at_low_load ||
              (std::isnan(serial.delay_at_low_load) &&
               std::isnan(pooled.delay_at_low_load)));
  EXPECT_EQ(serial.reorder_at_high_load, pooled.reorder_at_high_load);
}

TEST(EventKernel, SkipsIdleCyclesAtLowLoad) {
  // The equivalence grid would pass even if the fast-forward never fired
  // (skipping nothing is trivially bit-identical).  Prove the skip path
  // actually engages where it is supposed to: a small fabric at 2% load
  // idles most of the time.
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2, 11);
  SimConfig config = grid_config(0.02);
  config.kernel = flit::Kernel::kEvent;
  Network network(table, config);
  const SimMetrics event = network.run();
  EXPECT_GT(network.cycles_skipped(), network.horizon() / 4);
  config.kernel = flit::Kernel::kReference;
  expect_metrics_identical(event, Network(table, config).run());
}

TEST(EventKernel, ZeroCompletionWindowsSurviveFastForward) {
  // Satellite regression: at starvation load the event kernel fast-
  // forwards across entire epoch windows, so harvest_window() must keep
  // reporting exact zeros (not NaN, not a stale p99) for windows in which
  // no message completed -- and the window sequence must stay bit-
  // identical to the kernels that ticked through those windows.
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2, 11);
  SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 4000;
  config.drain_cycles = 800;
  config.offered_load = 0.004;  // a message every ~16k cycles per host
  config.seed = 5;
  config.window_metrics = true;

  const auto windows_of = [&](flit::Kernel kernel) {
    SimConfig run_config = config;
    run_config.kernel = kernel;
    Network network(table, run_config);
    std::vector<flit::WindowMetrics> windows;
    const flit::Cycle window = 500;
    for (flit::Cycle at = window; at <= network.horizon(); at += window) {
      network.run_until(at);
      windows.push_back(network.harvest_window());
    }
    network.run_until(network.horizon());
    (void)network.finalize();
    return windows;
  };

  const auto reference = windows_of(flit::Kernel::kReference);
  const auto active = windows_of(flit::Kernel::kActiveSet);
  const auto event = windows_of(flit::Kernel::kEvent);
  ASSERT_EQ(reference.size(), event.size());
  ASSERT_EQ(reference.size(), active.size());
  std::size_t empty_windows = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_TRUE(event[i] == reference[i]);
    EXPECT_TRUE(active[i] == reference[i]);
    if (event[i].messages_delivered == 0) {
      ++empty_windows;
      EXPECT_EQ(event[i].mean_message_delay, 0.0);
      EXPECT_EQ(event[i].p99_message_delay, 0.0);
      EXPECT_TRUE(std::isfinite(event[i].throughput));
      EXPECT_TRUE(std::isfinite(event[i].max_link_utilization));
    }
  }
  // The load is starved enough that some windows really were empty;
  // otherwise this regression test tests nothing.
  EXPECT_GT(empty_windows, 0u);
}

TEST(ParallelSweep, EventKernelMatchesActiveAndPooled) {
  // run_load_sweep must give the same bytes (a) across kernels and
  // (b) with the per-point work farmed onto the ThreadPool -- the pooled
  // event kernel is also what the TSan job races.
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2, 11);
  SimConfig base = grid_config(0.5);
  const std::vector<double> loads{0.05, 0.2, 0.4, 0.8};
  const auto active_serial = flit::run_load_sweep(table, base, loads, nullptr);
  base.kernel = flit::Kernel::kEvent;
  const auto event_serial = flit::run_load_sweep(table, base, loads, nullptr);
  expect_sweeps_identical(active_serial, event_serial);
  util::ThreadPool pool(3);
  const auto event_pooled = flit::run_load_sweep(table, base, loads, &pool);
  expect_sweeps_identical(event_serial, event_pooled);
}

}  // namespace
