// Feeding an XGFT's own cable list through GenericGraphTopology must
// reproduce the XGFT's routing SEMANTICS: same structure, same per-pair
// path counts, the same SET of shortest paths (and therefore identical
// UMULTI link-load histograms), and LFT walks that always deliver along
// an enumerated shortest path.
//
// Entry-level equality is deliberately NOT asserted: the generic provider
// ranks paths lexicographically in cable order and anchors routes at
// dst mod candidate-count, while the XGFT ranks by label digits and
// anchors at the d-mod-k digit.  Both are valid LFT realizations of the
// same path set; everything set-shaped must coincide exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "core/route_table.hpp"
#include "fabric/lft.hpp"
#include "flow/link_load.hpp"
#include "flow/traffic.hpp"
#include "topology/generic.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace {

using lmpr::topo::GenericGraphTopology;
using lmpr::topo::LidLayout;
using lmpr::topo::Link;
using lmpr::topo::LinkId;
using lmpr::topo::NodeId;
using lmpr::topo::Topology;
using lmpr::topo::Xgft;
using lmpr::topo::XgftSpec;
using lmpr::topo::to_raw_fabric;

/// The specs the suite sweeps: a flat tree, the Figure-style 2-level
/// workhorse, and a 3-level tree with mixed arities.
std::vector<XgftSpec> equivalence_specs() {
  return {
      XgftSpec{{4}, {3}},
      XgftSpec{{4, 4}, {2, 2}},
      XgftSpec{{2, 2, 2}, {1, 2, 2}},
  };
}

GenericGraphTopology generic_twin(const Xgft& xgft) {
  return GenericGraphTopology(to_raw_fabric(xgft), xgft.name());
}

/// All shortest paths of (src, dst), each as its hop-ordered link list,
/// sorted so two enumerations compare as sets.
std::vector<std::vector<LinkId>> path_set(const Topology& topo,
                                          std::uint64_t src,
                                          std::uint64_t dst) {
  std::vector<std::vector<LinkId>> paths;
  std::vector<LinkId> links;
  for (std::uint64_t i = 0; i < topo.num_paths(src, dst); ++i) {
    links.clear();
    topo.append_path_links(src, dst, i, links);
    paths.push_back(links);
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// Integer UMULTI link-load histogram: how many enumerated shortest paths
/// (over all ordered host pairs) traverse each directed link.  Exact, so
/// the comparison is immune to floating-point summation order.
std::vector<std::uint64_t> umulti_histogram(const Topology& topo) {
  std::vector<std::uint64_t> loads(topo.num_links(), 0);
  std::vector<LinkId> links;
  for (std::uint64_t s = 0; s < topo.num_hosts(); ++s) {
    for (std::uint64_t d = 0; d < topo.num_hosts(); ++d) {
      if (s == d) continue;
      for (std::uint64_t i = 0; i < topo.num_paths(s, d); ++i) {
        links.clear();
        topo.append_path_links(s, d, i, links);
        for (const LinkId id : links) ++loads[id];
      }
    }
  }
  return loads;
}

TEST(TopologyEquivalence, StructureIsIdentical) {
  for (const XgftSpec& spec : equivalence_specs()) {
    const Xgft xgft(spec);
    const GenericGraphTopology generic = generic_twin(xgft);
    SCOPED_TRACE(xgft.name());
    EXPECT_EQ(generic.num_hosts(), xgft.num_hosts());
    EXPECT_EQ(generic.num_nodes(), xgft.num_nodes());
    EXPECT_EQ(generic.num_links(), xgft.num_links());
    EXPECT_EQ(generic.num_levels(), xgft.num_levels());
    for (NodeId node = 0; node < xgft.num_nodes(); ++node) {
      EXPECT_EQ(generic.level_of(node), xgft.level_of(node)) << node;
      EXPECT_EQ(generic.is_host(node), xgft.is_host(node)) << node;
    }
    // The identity export preserves cable indices and the BFS layering
    // reproduces the tree levels, so even LinkIds coincide.
    for (std::uint64_t id = 0; id < xgft.num_links(); ++id) {
      const Link& a = xgft.link(static_cast<LinkId>(id));
      const Link& b = generic.link(static_cast<LinkId>(id));
      EXPECT_EQ(a.src, b.src) << id;
      EXPECT_EQ(a.dst, b.dst) << id;
      EXPECT_EQ(a.level, b.level) << id;
      EXPECT_EQ(a.up, b.up) << id;
    }
  }
}

TEST(TopologyEquivalence, PathCountsMatchPropertyOne) {
  for (const XgftSpec& spec : equivalence_specs()) {
    const Xgft xgft(spec);
    const GenericGraphTopology generic = generic_twin(xgft);
    SCOPED_TRACE(xgft.name());
    EXPECT_EQ(generic.max_paths(), xgft.max_paths());
    for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
      for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
        EXPECT_EQ(generic.num_paths(s, d), xgft.num_paths(s, d))
            << s << "->" << d;
      }
    }
  }
}

TEST(TopologyEquivalence, ShortestPathSetsAreEqual) {
  for (const XgftSpec& spec : equivalence_specs()) {
    const Xgft xgft(spec);
    const GenericGraphTopology generic = generic_twin(xgft);
    SCOPED_TRACE(xgft.name());
    for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
      for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
        if (s == d) continue;
        EXPECT_EQ(path_set(generic, s, d), path_set(xgft, s, d))
            << s << "->" << d;
      }
    }
  }
}

TEST(TopologyEquivalence, UmultiLinkLoadHistogramsAreIdentical) {
  for (const XgftSpec& spec : equivalence_specs()) {
    const Xgft xgft(spec);
    const GenericGraphTopology generic = generic_twin(xgft);
    SCOPED_TRACE(xgft.name());
    EXPECT_EQ(umulti_histogram(generic), umulti_histogram(xgft));
  }
}

TEST(TopologyEquivalence, UmultiMaxLoadMatchesThroughTheFlowStack) {
  // All-w power-of-two spec: path fractions are exact binary fractions, so
  // MLOAD is bit-identical regardless of per-pair accumulation order.
  const Xgft xgft(XgftSpec{{4, 4}, {2, 2}});
  const GenericGraphTopology generic = generic_twin(xgft);
  const auto tm = lmpr::flow::TrafficMatrix::uniform(xgft.num_hosts());
  const lmpr::route::RouteTable xgft_table(
      xgft, lmpr::route::Heuristic::kUmulti, 1);
  const lmpr::route::RouteTable generic_table(
      generic, lmpr::route::Heuristic::kUmulti, 1);
  lmpr::flow::LoadEvaluator xgft_eval(xgft);
  lmpr::flow::LoadEvaluator generic_eval(generic);
  const auto a = xgft_eval.evaluate(tm, xgft_table);
  const auto b = generic_eval.evaluate(tm, generic_table);
  EXPECT_DOUBLE_EQ(a.max_load, b.max_load);
  ASSERT_EQ(xgft_eval.link_loads().size(), generic_eval.link_loads().size());
  for (std::size_t id = 0; id < xgft_eval.link_loads().size(); ++id) {
    EXPECT_DOUBLE_EQ(xgft_eval.link_loads()[id],
                     generic_eval.link_loads()[id])
        << id;
  }
}

TEST(TopologyEquivalence, SinglePathSelectionsPickEnumeratedPaths) {
  // The single-path anchors differ by construction (digit decomposition
  // vs dst-mod-candidates); each must still land inside the pair's range.
  for (const XgftSpec& spec : equivalence_specs()) {
    const Xgft xgft(spec);
    const GenericGraphTopology generic = generic_twin(xgft);
    SCOPED_TRACE(xgft.name());
    for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
      for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
        const std::uint64_t count = generic.num_paths(s, d);
        EXPECT_LT(generic.dmodk_index(s, d), count) << s << "->" << d;
        EXPECT_LT(generic.smodk_index(s, d), count) << s << "->" << d;
        EXPECT_LT(xgft.dmodk_index(s, d), count) << s << "->" << d;
      }
    }
  }
}

TEST(TopologyEquivalence, LftWalksDeliverOnBothRealizations) {
  for (const XgftSpec& spec : equivalence_specs()) {
    const Xgft xgft(spec);
    const GenericGraphTopology generic = generic_twin(xgft);
    SCOPED_TRACE(xgft.name());
    const lmpr::fabric::Lft xgft_lft(xgft, xgft.max_paths(),
                                     LidLayout::kDisjointLayout);
    const lmpr::fabric::Lft generic_lft(generic, generic.max_paths(),
                                        LidLayout::kDisjointLayout);
    ASSERT_EQ(generic_lft.block(), xgft_lft.block());
    for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
      for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
        if (s == d) continue;
        const auto reference = path_set(xgft, s, d);
        for (std::uint32_t j = 0; j < xgft_lft.block(); ++j) {
          const auto a = xgft_lft.walk(s, d, j);
          const auto b = generic_lft.walk(s, d, j);
          ASSERT_TRUE(a.delivered) << s << "->" << d << " variant " << j;
          ASSERT_TRUE(b.delivered) << s << "->" << d << " variant " << j;
          // Both forwardings emit members of the SAME shortest-path set
          // (reference comes from the XGFT; the sets were proven equal).
          EXPECT_TRUE(std::binary_search(reference.begin(), reference.end(),
                                         a.path.links))
              << s << "->" << d << " variant " << j;
          EXPECT_TRUE(std::binary_search(reference.begin(), reference.end(),
                                         b.path.links))
              << s << "->" << d << " variant " << j;
          EXPECT_EQ(a.path.links.size(), b.path.links.size())
              << s << "->" << d << " variant " << j;
        }
      }
    }
  }
}

TEST(TopologyEquivalence, DisjointFirstKPathsAreLinkDisjointOnBoth) {
  // The paper's DISJOINT guarantee: the first w_1 variants of the disjoint
  // layout are link-disjoint on the XGFT.  The generic twin enumerates the
  // same path set, so its first-K disjoint picks must be distinct paths
  // (it makes no stride guarantee, but distinctness must hold).
  const Xgft xgft(XgftSpec{{4, 4}, {2, 2}});
  const GenericGraphTopology generic = generic_twin(xgft);
  for (std::uint64_t d = 1; d < xgft.num_hosts(); ++d) {
    const std::uint64_t count = xgft.num_paths(0, d);
    std::set<std::uint64_t> xgft_picks, generic_picks;
    for (std::uint64_t n = 0; n < count; ++n) {
      xgft_picks.insert(xgft.disjoint_offset(0, d, n));
      generic_picks.insert(generic.disjoint_offset(0, d, n));
    }
    // Each enumeration is a permutation of [0, count).
    EXPECT_EQ(xgft_picks.size(), count) << d;
    EXPECT_EQ(generic_picks.size(), count) << d;
    EXPECT_LT(*xgft_picks.rbegin(), count) << d;
    EXPECT_LT(*generic_picks.rbegin(), count) << d;
  }
}

}  // namespace
