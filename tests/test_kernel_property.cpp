// Randomized cross-kernel differential harness (ctest label
// `kernel_diff`): fifty seeded (topology, traffic, fault-script) combos,
// each replayed through the fault-replay engine once per flit kernel
// (reference, active_set, event), asserting that every observable of the
// run is IDENTICAL -- per-epoch WindowMetrics and swap-edge drop/reroute
// counters, the overall SimMetrics accounting, and the recovery
// analysis.  The scripts are generated against an evolving scratch
// FabricManager exactly like tests/test_fm_property.cpp, so they mix
// cable kills, heals, switch deaths/reboots and queries that are all
// applicable when fired.  Everything is seeded through util::Rng: a
// failure reproduces from the combo number alone.
//
// A pooled-sweep test rides along so the TSan CI step (which runs
// `ctest -L kernel_diff`) races the event kernel across ThreadPool
// workers, not just serially.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/route_table.hpp"
#include "fabric/degraded.hpp"
#include "flit/config.hpp"
#include "flit/metrics.hpp"
#include "flit/sweep.hpp"
#include "fm/events.hpp"
#include "fm/fabric_manager.hpp"
#include "replay/replay.hpp"
#include "topology/spec.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lmpr {
namespace {

using fabric::LidLayout;
using fabric::RepairPolicy;

constexpr int kCombos = 50;
constexpr int kEventAttemptsPerCombo = 10;
constexpr std::uint64_t kSeedBase = 0x9e3779b97f4a7c15ull;

/// Random small XGFT shape: kept a notch smaller than the fm property
/// harness because every combo runs the flit simulator three times.
topo::XgftSpec random_spec(util::Rng& rng) {
  const auto pick = [&rng](std::uint32_t lo, std::uint32_t hi) {
    return lo + static_cast<std::uint32_t>(rng.below(hi - lo + 1));
  };
  if (rng.below(2) == 0) {
    return topo::XgftSpec{{pick(2, 4), pick(2, 4)}, {pick(1, 2), pick(2, 3)}};
  }
  return topo::XgftSpec{{2, pick(2, 3), pick(2, 3)},
                        {1, pick(1, 2), pick(2, 2)}};
}

/// Inverse of the recognition isomorphism: raw id whose canonical image
/// is the given topo node (spec-built managers use raw = node id, but
/// the harness goes through the mapping so it cannot silently rely on
/// that).
std::vector<std::uint32_t> raw_of(const fm::FabricManager& fm) {
  const auto& canonical = fm.canonical();
  std::vector<std::uint32_t> inverse(canonical.size(), 0);
  for (std::uint32_t raw = 0; raw < canonical.size(); ++raw) {
    inverse[static_cast<std::size_t>(canonical[raw])] = raw;
  }
  return inverse;
}

fm::Event cable_event(const fm::FabricManager& fm,
                      const std::vector<std::uint32_t>& inverse,
                      std::uint64_t cable, bool down) {
  const topo::Link& link = fm.xgft().link(static_cast<topo::LinkId>(cable));
  return {down ? fm::EventType::kCableDown : fm::EventType::kCableUp,
          inverse[static_cast<std::size_t>(link.src)],
          inverse[static_cast<std::size_t>(link.dst)]};
}

/// Draws the next event against the scratch manager's degradation state;
/// returns false when the drawn branch has no applicable target.
bool next_event(const fm::FabricManager& fm,
                const std::vector<std::uint32_t>& inverse, util::Rng& rng,
                fm::Event& event) {
  const topo::Xgft& xgft = fm.xgft();
  const fabric::Degradation& deg = fm.degradation();
  const double roll = rng.uniform01();
  if (roll < 0.45) {  // kill a random live cable
    const std::uint64_t cable = rng.below(xgft.num_cables());
    if (!deg.cable_ok(cable)) return false;
    event = cable_event(fm, inverse, cable, /*down=*/true);
  } else if (roll < 0.65) {  // heal a random dead cable
    std::vector<std::uint64_t> dead;
    for (std::uint64_t c = 0; c < xgft.num_cables(); ++c) {
      if (!deg.cable_ok(c)) dead.push_back(c);
    }
    if (dead.empty()) return false;
    event = cable_event(
        fm, inverse, dead[static_cast<std::size_t>(rng.below(dead.size()))],
        /*down=*/false);
  } else if (roll < 0.75) {  // kill a random live switch (at most 1 dead)
    for (topo::NodeId n = 0; n < xgft.num_nodes(); ++n) {
      if (!xgft.is_host(n) && !deg.node_ok(n)) return false;
    }
    const std::uint64_t num_switches = xgft.num_nodes() - xgft.num_hosts();
    const topo::NodeId node = static_cast<topo::NodeId>(
        xgft.num_hosts() + rng.below(num_switches));
    if (!deg.node_ok(node)) return false;
    event = {fm::EventType::kSwitchDown, inverse[node], 0};
  } else if (roll < 0.85) {  // heal a random dead switch
    std::vector<topo::NodeId> dead;
    for (topo::NodeId n = 0; n < xgft.num_nodes(); ++n) {
      if (!xgft.is_host(n) && !deg.node_ok(n)) dead.push_back(n);
    }
    if (dead.empty()) return false;
    event = {fm::EventType::kSwitchUp,
             inverse[dead[static_cast<std::size_t>(rng.below(dead.size()))]],
             0};
  } else {  // query: state-preserving, exercises mixed streams
    event = {fm::EventType::kQuery,
             inverse[xgft.host(rng.below(xgft.num_hosts()))],
             inverse[xgft.host(rng.below(xgft.num_hosts()))]};
  }
  return true;
}

/// Random replay configuration: short horizons (the combos add up), but
/// every knob the kernels could disagree under is drawn from the seed.
replay::ReplayConfig random_config(util::Rng& rng) {
  replay::ReplayConfig config;
  config.sim.warmup_cycles = 200;
  config.sim.measure_cycles = 1'600;
  config.sim.drain_cycles = 400;
  const double loads[] = {0.05, 0.1, 0.3, 0.6};
  config.sim.offered_load = loads[rng.below(4)];
  config.sim.seed = 0xace1u + rng.below(1u << 16);
  config.sim.drop_policy = rng.below(2) == 0
                               ? flit::DropPolicy::kDrop
                               : flit::DropPolicy::kRerouteAtSwitch;
  config.sim.path_selection = rng.below(2) == 0
                                  ? flit::PathSelection::kRandomPerMessage
                                  : flit::PathSelection::kRandomPerPacket;
  // Half the combos replay with the adaptive variant selector engaged
  // (DESIGN §16): its per-hop DLID rewrites ride the same decision
  // points in all three kernels, so the fault storms must stay
  // bit-identical under it too -- including the selector counters,
  // asserted below.
  const flit::SelectPolicy selects[] = {
      flit::SelectPolicy::kOblivious, flit::SelectPolicy::kOblivious,
      flit::SelectPolicy::kAdaptiveCredit,
      flit::SelectPolicy::kAdaptiveOccupancy};
  config.sim.select = selects[rng.below(4)];
  config.fm.k_paths = 1ull << rng.below(3);  // 1, 2 or 4
  config.fm.layout = rng.below(2) == 0 ? LidLayout::kDisjointLayout
                                       : LidLayout::kShiftLayout;
  config.fm.repair_policy = rng.below(2) == 0 ? RepairPolicy::kFirstSurviving
                                              : RepairPolicy::kLoadAware;
  config.fm.zero_timings = true;
  config.window_cycles = rng.below(2) == 0 ? 300 : 500;
  return config;
}

void expect_stats_identical(const util::OnlineStats& a,
                            const util::OnlineStats& b,
                            const std::string& where) {
  ASSERT_EQ(a.count(), b.count()) << where;
  ASSERT_EQ(a.mean(), b.mean()) << where;
  ASSERT_EQ(a.variance(), b.variance()) << where;
}

/// Every observable of a replayed run, compared exactly (doubles with
/// operator==): epochs, swap-edge fault accounting, overall SimMetrics,
/// recovery analysis.
void expect_results_identical(const replay::ReplayResult& got,
                              const replay::ReplayResult& oracle,
                              const std::string& where) {
  ASSERT_EQ(got.epochs.size(), oracle.epochs.size()) << where;
  for (std::size_t i = 0; i < got.epochs.size(); ++i) {
    const std::string at = where + " epoch " + std::to_string(i);
    ASSERT_EQ(got.epochs[i].start_cycle, oracle.epochs[i].start_cycle) << at;
    ASSERT_EQ(got.epochs[i].records.size(), oracle.epochs[i].records.size())
        << at;
    ASSERT_EQ(got.epochs[i].dropped_at_swap, oracle.epochs[i].dropped_at_swap)
        << at;
    ASSERT_EQ(got.epochs[i].rerouted_at_swap,
              oracle.epochs[i].rerouted_at_swap)
        << at;
    ASSERT_EQ(got.epochs[i].window, oracle.epochs[i].window) << at;
  }
  const flit::SimMetrics& a = got.overall;
  const flit::SimMetrics& b = oracle.overall;
  ASSERT_EQ(a.throughput, b.throughput) << where;
  ASSERT_EQ(a.messages_generated, b.messages_generated) << where;
  ASSERT_EQ(a.messages_delivered, b.messages_delivered) << where;
  ASSERT_EQ(a.messages_lost, b.messages_lost) << where;
  ASSERT_EQ(a.packets_generated, b.packets_generated) << where;
  ASSERT_EQ(a.packets_delivered, b.packets_delivered) << where;
  ASSERT_EQ(a.packets_dropped, b.packets_dropped) << where;
  ASSERT_EQ(a.packets_rerouted, b.packets_rerouted) << where;
  ASSERT_EQ(a.packets_out_of_order, b.packets_out_of_order) << where;
  ASSERT_EQ(a.flits_delivered, b.flits_delivered) << where;
  expect_stats_identical(a.message_delay, b.message_delay, where);
  expect_stats_identical(a.packet_delay, b.packet_delay, where);
  ASSERT_EQ(got.selector.decisions, oracle.selector.decisions) << where;
  ASSERT_EQ(got.selector.switches, oracle.selector.switches) << where;
  ASSERT_EQ(got.event_errors, oracle.event_errors) << where;
  ASSERT_EQ(got.baseline_delay, oracle.baseline_delay) << where;
  ASSERT_EQ(got.peak_delay, oracle.peak_delay) << where;
  ASSERT_EQ(got.recovered, oracle.recovered) << where;
  ASSERT_EQ(got.recovery_cycles, oracle.recovery_cycles) << where;
}

replay::ReplayResult run_one(const topo::XgftSpec& spec,
                             replay::ReplayConfig config, flit::Kernel kernel,
                             const fm::EventScript& script,
                             const std::string& where) {
  config.sim.kernel = kernel;
  replay::ReplayEngine engine{spec, config};
  EXPECT_TRUE(engine.ok()) << where << ": " << engine.error();
  replay::ReplayResult result = engine.run(script);
  EXPECT_TRUE(result.ok) << where << ": " << result.error;
  return result;
}

TEST(KernelProperty, RandomReplaysIdenticalAcrossAllThreeKernels) {
  std::uint64_t total_events = 0;
  std::uint64_t total_faulted = 0;  // combos whose swap edge killed packets
  std::uint64_t adaptive_combos = 0;  // selector engaged (adaptive, K > 1)
  std::uint64_t adaptive_switches = 0;
  for (int combo = 0; combo < kCombos; ++combo) {
    util::Rng rng{kSeedBase + static_cast<std::uint64_t>(combo)};
    const topo::XgftSpec spec = random_spec(rng);
    const replay::ReplayConfig config = random_config(rng);

    // Generate the fault script against a scratch manager that evolves
    // with it, so every drawn event is applicable when the replay fires
    // it (same spec + same event order = same degradation trajectory).
    fm::FmConfig scratch_config = config.fm;
    fm::FabricManager scratch{spec, scratch_config};
    ASSERT_TRUE(scratch.ok()) << scratch.error();
    const auto inverse = raw_of(scratch);
    fm::EventScript script{/*ok=*/true, /*error=*/"", /*events=*/{}};
    for (int step = 0; step < kEventAttemptsPerCombo; ++step) {
      fm::Event event;
      if (!next_event(scratch, inverse, rng, event)) continue;
      const fm::EventRecord record = scratch.apply(event);
      ASSERT_TRUE(record.ok) << "combo " << combo << ": " << record.error;
      script.events.push_back(event);
    }

    const std::string where =
        "combo " + std::to_string(combo) + " (" + spec.to_string() +
        " K=" + std::to_string(config.fm.k_paths) +
        " load=" + std::to_string(config.sim.offered_load) + " events=" +
        std::to_string(script.events.size()) + ")";
    const auto reference =
        run_one(spec, config, flit::Kernel::kReference, script, where);
    const auto active =
        run_one(spec, config, flit::Kernel::kActiveSet, script, where);
    const auto event =
        run_one(spec, config, flit::Kernel::kEvent, script, where);
    expect_results_identical(active, reference, where + " [active_set]");
    expect_results_identical(event, reference, where + " [event]");

    ASSERT_GT(reference.epochs.size(), 0u) << where;
    total_events += script.events.size();
    for (const replay::Epoch& epoch : reference.epochs) {
      total_faulted += epoch.dropped_at_swap + epoch.rerouted_at_swap;
    }
    if (config.sim.select != flit::SelectPolicy::kOblivious &&
        config.fm.k_paths > 1) {
      ++adaptive_combos;
      adaptive_switches += reference.selector.switches;
    } else {
      ASSERT_EQ(reference.selector.decisions, 0u) << where;
    }
  }
  // The harness must not degenerate: the seeds have to produce real
  // fault scripts, at least some runs must catch packets on a dying
  // cable (the code path where the kernels are likeliest to drift), and
  // the adaptive draws must both occur and actually move packets across
  // variants (an engagement floor -- comparing counters that are always
  // zero would prove nothing about the selector).
  EXPECT_GT(total_events, static_cast<std::uint64_t>(kCombos) * 4);
  EXPECT_GT(total_faulted, 0u);
  EXPECT_GT(adaptive_combos, 0u);
  EXPECT_GT(adaptive_switches, 0u);
}

// Pooled event-kernel sweeps over random shapes: the unit of work the
// TSan kernel_diff step races across ThreadPool workers.  Serial and
// pooled sweeps must agree exactly for every shape (run_load_sweep
// merges in index order, so any divergence is a determinism bug, and any
// data race is TSan's to report).
TEST(KernelProperty, PooledEventSweepsMatchSerialOnRandomShapes) {
  util::ThreadPool pool(4);
  const std::vector<double> loads{0.05, 0.2, 0.5};
  for (int combo = 0; combo < 6; ++combo) {
    constexpr std::uint64_t kSweepSalt = 0x5bd1e995;
    util::Rng rng{(kSeedBase ^ kSweepSalt) +
                  static_cast<std::uint64_t>(combo)};
    const topo::XgftSpec spec = random_spec(rng);
    const topo::Xgft xgft{spec};
    const route::RouteTable table(xgft, route::Heuristic::kDisjoint, 2, 11);
    flit::SimConfig base;
    base.warmup_cycles = 200;
    base.measure_cycles = 1'200;
    base.drain_cycles = 400;
    base.seed = 17 + static_cast<std::uint64_t>(combo);
    base.kernel = flit::Kernel::kEvent;
    const auto serial = flit::run_load_sweep(table, base, loads, nullptr);
    const auto pooled = flit::run_load_sweep(table, base, loads, &pool);
    ASSERT_EQ(serial.points.size(), pooled.points.size()) << combo;
    ASSERT_EQ(serial.max_throughput, pooled.max_throughput) << combo;
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      ASSERT_EQ(serial.points[i].throughput, pooled.points[i].throughput)
          << "combo " << combo << " point " << i;
      ASSERT_EQ(serial.points[i].mean_message_delay,
                pooled.points[i].mean_message_delay)
          << "combo " << combo << " point " << i;
      ASSERT_EQ(serial.points[i].p99_message_delay,
                pooled.points[i].p99_message_delay)
          << "combo " << combo << " point " << i;
    }
  }
}

}  // namespace
}  // namespace lmpr
