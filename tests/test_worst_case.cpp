#include <gtest/gtest.h>

#include <set>

#include "flow/permutation_study.hpp"
#include "flow/worst_case.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flow::search_worst_permutation;
using flow::WorstCaseConfig;
using topo::Xgft;
using topo::XgftSpec;

WorstCaseConfig quick(route::Heuristic h, std::size_t k) {
  WorstCaseConfig config;
  config.heuristic = h;
  config.k_paths = k;
  config.steps = 300;
  config.restarts = 2;
  config.seed = 5;
  return config;
}

TEST(WorstCase, ResultIsAValidPermutation) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const auto result =
      search_worst_permutation(xgft, quick(route::Heuristic::kDModK, 1));
  ASSERT_EQ(result.worst_perm.size(), xgft.num_hosts());
  std::set<std::size_t> dsts(result.worst_perm.begin(),
                             result.worst_perm.end());
  EXPECT_EQ(dsts.size(), xgft.num_hosts());
  EXPECT_GE(result.worst_perf, 1.0);
  EXPECT_DOUBLE_EQ(result.worst_perf,
                   result.worst_max_load / result.worst_oload);
  EXPECT_GT(result.evaluations, 300u);
}

TEST(WorstCase, FindsTheDmodkCollapseOnA2LevelTree) {
  // XGFT(2;4,8;1,4): four same-leaf hosts sending to destinations in the
  // same mod-4 class collapse onto one uplink -> PERF 4.  The search must
  // get close to that analytic worst case.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  auto config = quick(route::Heuristic::kDModK, 1);
  config.steps = 1500;
  config.restarts = 3;
  const auto result = search_worst_permutation(xgft, config);
  EXPECT_GE(result.worst_perf, 3.5);
  EXPECT_LE(result.worst_perf, 4.0 + 1e-9);
}

TEST(WorstCase, SearchBeatsRandomSamplingAverage) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const auto searched =
      search_worst_permutation(xgft, quick(route::Heuristic::kDModK, 1));
  flow::PermutationStudyConfig sampling;
  sampling.heuristic = route::Heuristic::kDModK;
  sampling.k_paths = 1;
  sampling.stopping.initial_samples = 50;
  sampling.stopping.max_samples = 50;
  const auto sampled = flow::run_permutation_study(xgft, sampling);
  EXPECT_GT(searched.worst_perf, sampled.perf.mean());
}

TEST(WorstCase, UmultiCannotBeAttacked) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const auto result =
      search_worst_permutation(xgft, quick(route::Heuristic::kUmulti, 1));
  EXPECT_NEAR(result.worst_perf, 1.0, 1e-9);
}

TEST(WorstCase, MorePathsShrinkTheWorstCase) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  double previous = 1e30;
  for (const std::size_t k : {1u, 2u, 4u}) {
    const auto result = search_worst_permutation(
        xgft, quick(route::Heuristic::kDisjoint, k));
    EXPECT_LE(result.worst_perf, previous + 1e-9) << "K=" << k;
    previous = result.worst_perf;
  }
}

TEST(WorstCase, DeterministicForFixedSeed) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const auto a =
      search_worst_permutation(xgft, quick(route::Heuristic::kRandom, 2));
  const auto b =
      search_worst_permutation(xgft, quick(route::Heuristic::kRandom, 2));
  EXPECT_DOUBLE_EQ(a.worst_perf, b.worst_perf);
  EXPECT_EQ(a.worst_perm, b.worst_perm);
}

}  // namespace
