#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "flow/permutation_study.hpp"
#include "flow/worst_case.hpp"
#include "test_support.hpp"
#include "util/thread_pool.hpp"

namespace {

using lmpr::util::ThreadPool;

TEST(ThreadPool, InlineModeRunsEverything) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, WorkersCoverEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for(5000, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(37, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 20 * 37);
}

TEST(ThreadPool, EmptyBatchIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool survives and stays usable.
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, PermutationStudyIdenticalWithAndWithoutPool) {
  using namespace lmpr;
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 2)};
  flow::PermutationStudyConfig config;
  config.heuristic = route::Heuristic::kDisjoint;
  config.k_paths = 2;
  config.stopping.initial_samples = 40;
  config.stopping.max_samples = 80;
  const auto serial = flow::run_permutation_study(xgft, config);
  ThreadPool pool(3);
  config.pool = &pool;
  const auto parallel = flow::run_permutation_study(xgft, config);
  EXPECT_EQ(serial.samples, parallel.samples);
  EXPECT_DOUBLE_EQ(serial.max_load.mean(), parallel.max_load.mean());
  EXPECT_DOUBLE_EQ(serial.max_load.variance(),
                   parallel.max_load.variance());
  EXPECT_DOUBLE_EQ(serial.perf.mean(), parallel.perf.mean());
}

TEST(ThreadPool, RepeatedReuseOfOnePoolIsSafe) {
  // Regression test: a straggler worker used to probe the (stack-
  // allocated) batch of a *finished* parallel_for after the caller had
  // already returned, which intermittently crashed scenarios that reuse
  // one pool for many back-to-back batches.
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.parallel_for(8, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500u * 8u);
}

TEST(ThreadPool, WorstCaseSearchIdenticalWithAndWithoutPool) {
  using namespace lmpr;
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(4, 2)};
  flow::WorstCaseConfig config;
  config.steps = 150;
  config.restarts = 4;
  const auto serial = flow::search_worst_permutation(xgft, config);
  ThreadPool pool(2);
  config.pool = &pool;
  const auto parallel = flow::search_worst_permutation(xgft, config);
  EXPECT_DOUBLE_EQ(serial.worst_perf, parallel.worst_perf);
  EXPECT_EQ(serial.worst_perm, parallel.worst_perm);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
}


TEST(ThreadPool, NestedSubmissionFromWorkerRunsInline) {
  // Regression test: parallel_for from inside a worker used to trip the
  // single-batch precondition (or deadlock a 1-worker pool waiting for
  // itself).  Nested submissions now run inline on the calling worker.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> outer_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    outer_total.fetch_add(1, std::memory_order_relaxed);
    pool.parallel_for(16, [&](std::size_t) {
      // Two levels down is inline again: still inside the outer batch.
      pool.parallel_for(2, [&](std::size_t) {
        inner_total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(outer_total.load(), 8);
  EXPECT_EQ(inner_total.load(), 8 * 16 * 2);
  // The pool is intact for the next top-level batch.
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, WorkerSlotIsZeroOnCallerAndBoundedOnWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::worker_slot(), 0u);  // the submitting thread
  std::vector<std::atomic<int>> seen(pool.worker_count() + 1);
  pool.parallel_for(64, [&seen](std::size_t) {
    const std::size_t slot = ThreadPool::worker_slot();
    ASSERT_LT(slot, seen.size());
    seen[slot].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (const auto& count : seen) total += count.load();
  EXPECT_EQ(total, 64);
  EXPECT_EQ(ThreadPool::worker_slot(), 0u);  // unchanged after the batch
}

}  // namespace
