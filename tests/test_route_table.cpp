#include <gtest/gtest.h>

#include <set>

#include "core/route_table.hpp"
#include "core/single_path.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using route::Heuristic;
using route::RouteTable;
using topo::Xgft;
using topo::XgftSpec;

TEST(RouteTable, StoresRequestedPathCounts) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};  // w = (1,4)
  const RouteTable table(xgft, Heuristic::kDisjoint, 2);
  EXPECT_EQ(table.k_paths(), 2u);
  // Remote pair: min(2, 4) = 2 paths; same-leaf pair: 1 path.
  EXPECT_EQ(table.paths(0, 31).size(), 2u);
  EXPECT_EQ(table.paths(0, 1).size(), 1u);
  // Self pair: the single empty path.
  EXPECT_EQ(table.paths(5, 5).size(), 1u);
  EXPECT_TRUE(table.paths(5, 5)[0].links.empty());
}

TEST(RouteTable, PathsAreValid) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kRandom, 2, /*seed=*/9);
  for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
    for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
      for (const route::Path& path : table.paths(s, d)) {
        lmpr::test::expect_valid_path(xgft, s, d, path);
      }
    }
  }
}

TEST(RouteTable, DmodkTableMatchesDirectComputation) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
    for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
      if (s == d) continue;
      ASSERT_EQ(table.paths(s, d).size(), 1u);
      EXPECT_EQ(table.paths(s, d)[0].index, route::dmodk_index(xgft, s, d));
    }
  }
}

TEST(RouteTable, SameSeedSameTable) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable a(xgft, Heuristic::kRandom, 2, 33);
  const RouteTable b(xgft, Heuristic::kRandom, 2, 33);
  for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
    for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
      ASSERT_EQ(a.paths(s, d).size(), b.paths(s, d).size());
      for (std::size_t i = 0; i < a.paths(s, d).size(); ++i) {
        EXPECT_EQ(a.paths(s, d)[i].index, b.paths(s, d)[i].index);
      }
    }
  }
}

TEST(RouteTable, PickReturnsMembersOnly) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kShift1, 3);
  util::Rng rng{4};
  std::set<std::uint64_t> member_indices;
  for (const auto& p : table.paths(0, 31)) member_indices.insert(p.index);
  std::set<std::uint64_t> picked;
  for (int i = 0; i < 200; ++i) picked.insert(table.pick(0, 31, rng).index);
  EXPECT_EQ(picked, member_indices);  // all members hit, nothing else
}

TEST(RouteTable, RoundRobinCycles) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kShift1, 3);
  const auto set = table.paths(0, 31);
  for (std::uint64_t c = 0; c < 9; ++c) {
    EXPECT_EQ(&table.pick_round_robin(0, 31, c),
              &set[static_cast<std::size_t>(c % set.size())]);
  }
}

TEST(RouteTable, MeanPathsPerPair) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};  // w = (1,2), 8 hosts
  // UMULTI: same-leaf pairs (NCA 1) get 1 path, remote pairs get 2.
  const RouteTable table(xgft, Heuristic::kUmulti, 1);
  // Per source: 1 same-leaf partner with 1 path, 6 remote with 2.
  const double expected = (1.0 * 1 + 6.0 * 2) / 7.0;
  EXPECT_NEAR(table.mean_paths_per_pair(), expected, 1e-12);
  EXPECT_EQ(table.total_paths(), 8u * (1 * 1 + 6 * 2) + 8u /*self*/);
}

}  // namespace
