#include <gtest/gtest.h>

#include <set>

#include "flow/collectives.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flow::Collective;
using flow::evaluate_collective;
using topo::Xgft;
using topo::XgftSpec;

TEST(Collectives, ShiftAllToAllShape) {
  const auto c = flow::shift_all_to_all(8);
  EXPECT_EQ(c.phases.size(), 7u);
  for (std::size_t p = 0; p < c.phases.size(); ++p) {
    EXPECT_EQ(c.phases[p].tm.size(), 8u);
    EXPECT_EQ(c.phases[p].repeat, 1u);
    for (const auto& d : c.phases[p].tm.demands()) {
      EXPECT_EQ(d.dst, (d.src + p + 1) % 8);
    }
  }
}

TEST(Collectives, RecursiveDoublingShape) {
  const auto c = flow::recursive_doubling(16);
  EXPECT_EQ(c.phases.size(), 4u);  // log2(16)
  // Each phase is an involution pairing: dst ^ src == 2^p.
  for (std::size_t p = 0; p < c.phases.size(); ++p) {
    for (const auto& d : c.phases[p].tm.demands()) {
      EXPECT_EQ(d.src ^ d.dst, 1ull << p);
    }
  }
}

TEST(Collectives, RecursiveDoublingRequiresPowerOfTwo) {
  EXPECT_DEATH(flow::recursive_doubling(12), "precondition");
}

TEST(Collectives, RingAllreduceRepeats) {
  const auto c = flow::ring_allreduce(32);
  ASSERT_EQ(c.phases.size(), 1u);
  EXPECT_EQ(c.phases[0].repeat, 62u);  // 2 * (N - 1)
}

TEST(Collectives, Stencil3dIsSixPermutationPhases) {
  const auto c = flow::stencil3d(2, 4, 4);  // 32 hosts
  EXPECT_EQ(c.phases.size(), 6u);
  for (const auto& phase : c.phases) {
    EXPECT_EQ(phase.tm.size(), 32u);
    std::set<std::uint64_t> dsts;
    for (const auto& d : phase.tm.demands()) {
      EXPECT_NE(d.src, d.dst);  // every dimension >= 2: no self-sends
      dsts.insert(d.dst);
    }
    EXPECT_EQ(dsts.size(), 32u);  // a permutation
  }
}

TEST(Collectives, TransposeFixedPointsOnDiagonal) {
  const auto c = flow::transpose(4, 4);
  ASSERT_EQ(c.phases.size(), 1u);
  std::size_t fixed = 0;
  for (const auto& d : c.phases[0].tm.demands()) fixed += (d.src == d.dst);
  EXPECT_EQ(fixed, 4u);  // the diagonal
}

TEST(Collectives, UmultiIsOptimalOnEveryWorkload) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};  // 32 hosts
  util::Rng rng{3};
  for (const Collective& c :
       {flow::shift_all_to_all(32), flow::recursive_doubling(32),
        flow::ring_allreduce(32), flow::stencil3d(2, 4, 4),
        flow::transpose(4, 8)}) {
    const auto cost = evaluate_collective(xgft, c, route::Heuristic::kUmulti,
                                          1, rng);
    EXPECT_NEAR(cost.slowdown, 1.0, 1e-9) << c.name;
    EXPECT_GT(cost.optimal_time, 0.0) << c.name;
  }
}

TEST(Collectives, DmodkIsOptimalOnShiftFamilies) {
  // Zahavi: d-mod-k routes cyclic shifts optimally -- so the shift
  // all-to-all and the ring must see slowdown 1.0 under d-mod-k.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  util::Rng rng{5};
  for (const Collective& c :
       {flow::shift_all_to_all(128), flow::ring_allreduce(128)}) {
    const auto cost =
        evaluate_collective(xgft, c, route::Heuristic::kDModK, 1, rng);
    EXPECT_NEAR(cost.slowdown, 1.0, 1e-9) << c.name;
  }
}

TEST(Collectives, SlowdownAtLeastOneAndMonotoneInK) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  util::Rng rng{7};
  const auto c = flow::recursive_doubling(128);
  double previous = 1e30;
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    const auto cost =
        evaluate_collective(xgft, c, route::Heuristic::kDisjoint, k, rng);
    EXPECT_GE(cost.slowdown, 1.0 - 1e-9);
    EXPECT_LE(cost.slowdown, previous + 1e-9) << "K=" << k;
    previous = cost.slowdown;
  }
}

}  // namespace
