// The shift-layout LFT must realize the shift-1 heuristic for top-level
// pairs at small K (before carries diverge), complementing
// test_lft.cpp's disjoint-layout checks.
#include <gtest/gtest.h>

#include <set>

#include "core/heuristics.hpp"
#include "fabric/lft.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using fabric::Lft;
using fabric::LidLayout;
using topo::Xgft;
using topo::XgftSpec;

TEST(LftShiftLayout, TopPairsFollowShift1ForSmallK) {
  // For pairs whose NCA is the top level and j < w_h, the shift layout's
  // variant j is exactly the shift-1 heuristic's j-th path (consecutive
  // top-level switches starting at the d-mod-k anchor).
  // Destination-based forwarding is digit-wise (no carry into lower
  // levels), so the correspondence holds until the top digit wraps:
  // j < w_h - (d-mod-k top digit).
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // w = (1,4,4)
  const Lft lft(xgft, 4, LidLayout::kShiftLayout);
  util::Rng rng{3};
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t s = rng.below(xgft.num_hosts());
    const std::uint64_t d = rng.below(xgft.num_hosts());
    if (s == d || xgft.nca_level(s, d) != xgft.height()) continue;
    const auto shift_set = route::select_path_indices(
        xgft, s, d, 4, route::Heuristic::kShift1, rng);
    const std::uint32_t anchor_top =
        static_cast<std::uint32_t>(shift_set[0] % 4);  // least-sig digit
    for (std::uint32_t j = 0; j + anchor_top < 4; ++j) {
      EXPECT_EQ(lft.induced_path_index(s, d, j), shift_set[j])
          << "s=" << s << " d=" << d << " j=" << j;
    }
  }
}

TEST(LftShiftLayout, FullBlockCoversTopPairsCompletely) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const Lft lft(xgft, 16, LidLayout::kShiftLayout);
  EXPECT_EQ(lft.coverage(0, 127), 16u);
  // ... and even the low pairs once the block spans the whole tree.
  EXPECT_EQ(lft.coverage(0, 8), 4u);
}

TEST(LftShiftLayout, WalksAgreeWithInducedIndices) {
  const Xgft xgft{XgftSpec{{2, 3, 4}, {2, 2, 3}}};  // w1 = 2 generality
  const Lft lft(xgft, xgft.spec().num_top_switches(),
                LidLayout::kShiftLayout);
  util::Rng rng{5};
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t s = rng.below(xgft.num_hosts());
    const std::uint64_t d = rng.below(xgft.num_hosts());
    if (s == d) continue;
    for (std::uint32_t j = 0; j < lft.block(); ++j) {
      const auto walk = lft.walk(s, d, j);
      ASSERT_TRUE(walk.delivered);
      const auto expected = route::materialize_path(
          xgft, s, d, lft.induced_path_index(s, d, j));
      EXPECT_EQ(walk.path.links, expected.links);
    }
  }
}

}  // namespace
