#include <gtest/gtest.h>

#include "core/deadlock.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using route::analyze_channel_dependencies;
using route::Heuristic;
using route::RouteTable;
using topo::Xgft;
using topo::XgftSpec;

class DeadlockFreedom : public testing::TestWithParam<XgftSpec> {};

TEST_P(DeadlockFreedom, EveryHeuristicIsAcyclicOnOneVc) {
  // Up*/down* shortest-path routing never turns down-then-up, so every
  // route table the library builds must induce an acyclic channel
  // dependency graph -- deadlock-free on a single virtual channel.
  const Xgft xgft{GetParam()};
  for (const Heuristic h :
       {Heuristic::kDModK, Heuristic::kShift1, Heuristic::kDisjoint,
        Heuristic::kRandom, Heuristic::kUmulti}) {
    const RouteTable table(xgft, h, 4, /*seed=*/11);
    const auto analysis = analyze_channel_dependencies(table);
    EXPECT_TRUE(analysis.acyclic) << to_string(h);
    EXPECT_GT(analysis.dependencies, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DeadlockFreedom,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

TEST(Deadlock, DetectsACraftedCycle) {
  // Hand-build a down-then-up "path" set whose dependencies form a cycle:
  // A->B->A between two channels.  Not producible by the library's
  // routing; the checker must flag it.
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  // up link of host 0 and the down link back to host 0 form a 2-cycle
  // when chained in both orders.
  const topo::LinkId up = xgft.up_link(xgft.host(0), 0);
  const topo::NodeId leaf = xgft.parent(xgft.host(0), 0);
  const topo::LinkId down = xgft.down_link(leaf, 0);
  const std::vector<std::vector<topo::LinkId>> paths{{up, down},
                                                     {down, up}};
  const auto analysis = analyze_channel_dependencies(xgft, paths);
  EXPECT_FALSE(analysis.acyclic);
  EXPECT_NE(analysis.witness, topo::kInvalidLink);
}

TEST(Deadlock, LongerCycleDetected) {
  // A three-channel cycle through distinct switches.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};  // leaf switches, 4 tops
  const topo::NodeId leaf0 = xgft.parent(xgft.host(0), 0);
  const topo::NodeId top0 = xgft.parent(leaf0, 0);
  const topo::NodeId top1 = xgft.parent(leaf0, 1);
  const topo::LinkId a = xgft.up_link(leaf0, 0);    // leaf0 -> top0
  // top0 -> leaf0 (down port of leaf0's rank)
  const auto leaf_rank = static_cast<std::uint32_t>(xgft.rank_of(leaf0));
  const topo::LinkId b = xgft.down_link(top0, leaf_rank);
  const topo::LinkId c = xgft.up_link(leaf0, 1);    // leaf0 -> top1
  const topo::LinkId d = xgft.down_link(top1, leaf_rank);
  // Chain a->b, b->c, c->d, d->a : a cycle of length 4.
  const std::vector<std::vector<topo::LinkId>> paths{
      {a, b}, {b, c}, {c, d}, {d, a}};
  EXPECT_FALSE(analyze_channel_dependencies(xgft, paths).acyclic);
}

TEST(Deadlock, EmptyAndSingleHopPathsAreAcyclic) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const std::vector<std::vector<topo::LinkId>> paths{
      {}, {xgft.up_link(xgft.host(0), 0)}};
  const auto analysis = analyze_channel_dependencies(xgft, paths);
  EXPECT_TRUE(analysis.acyclic);
  EXPECT_EQ(analysis.dependencies, 0u);
}

TEST(Deadlock, DependencyCountIsDeduplicated) {
  // Two identical paths contribute the dependency edge once.
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const auto path = route::materialize_path(xgft, 0, 7, 0);
  const std::vector<std::vector<topo::LinkId>> paths{path.links, path.links};
  const auto analysis = analyze_channel_dependencies(xgft, paths);
  EXPECT_TRUE(analysis.acyclic);
  EXPECT_EQ(analysis.dependencies, path.links.size() - 1);
}

}  // namespace
