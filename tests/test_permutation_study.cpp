#include <gtest/gtest.h>

#include "flow/permutation_study.hpp"

namespace {

using namespace lmpr;
using flow::PermutationStudyConfig;
using flow::run_permutation_study;
using route::Heuristic;
using topo::Xgft;
using topo::XgftSpec;

PermutationStudyConfig quick_config(Heuristic h, std::size_t k) {
  PermutationStudyConfig config;
  config.heuristic = h;
  config.k_paths = k;
  config.stopping.initial_samples = 50;
  config.stopping.max_samples = 200;
  config.seed = 21;
  return config;
}

TEST(PermutationStudy, RunsAndRespectsSampleBounds) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const auto result =
      run_permutation_study(xgft, quick_config(Heuristic::kDModK, 1));
  EXPECT_GE(result.samples, 50u);
  EXPECT_LE(result.samples, 200u);
  EXPECT_EQ(result.max_load.count(), result.samples);
  EXPECT_EQ(result.perf.count(), result.samples);
  EXPECT_GE(result.max_load.mean(), 1.0);  // permutations load some link
}

TEST(PermutationStudy, DeterministicForFixedSeed) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const auto a =
      run_permutation_study(xgft, quick_config(Heuristic::kRandom, 2));
  const auto b =
      run_permutation_study(xgft, quick_config(Heuristic::kRandom, 2));
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_DOUBLE_EQ(a.max_load.mean(), b.max_load.mean());
}

TEST(PermutationStudy, UmultiAlwaysOptimal) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const auto result =
      run_permutation_study(xgft, quick_config(Heuristic::kUmulti, 1));
  EXPECT_NEAR(result.perf.mean(), 1.0, 1e-9);
  EXPECT_NEAR(result.perf.max(), 1.0, 1e-9);
}

TEST(PermutationStudy, KAtMaxPathsMatchesUmulti) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};  // max 2 paths
  const auto result =
      run_permutation_study(xgft, quick_config(Heuristic::kDisjoint, 2));
  EXPECT_NEAR(result.perf.mean(), 1.0, 1e-9);
}

TEST(PermutationStudy, MorePathsNeverHurtOnAverage) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  double previous = 1e30;
  for (const std::size_t k : {1u, 2u, 4u}) {
    const auto result =
        run_permutation_study(xgft, quick_config(Heuristic::kDisjoint, k));
    EXPECT_LE(result.max_load.mean(), previous * 1.02) << "K=" << k;
    previous = result.max_load.mean();
  }
}

TEST(PermutationStudy, TrackPerfRatioCanBeDisabled) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  auto config = quick_config(Heuristic::kDModK, 1);
  config.track_perf_ratio = false;
  const auto result = run_permutation_study(xgft, config);
  EXPECT_EQ(result.perf.count(), 0u);
  EXPECT_GT(result.max_load.count(), 0u);
}


TEST(PermutationStudy, PathCacheDoesNotChangeResults) {
  // Per-worker evaluator reuse with the path cache must be invisible in
  // the sampled statistics, for every heuristic.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  for (const Heuristic h : route::all_heuristics()) {
    auto with_cache = quick_config(h, 2);
    auto without_cache = quick_config(h, 2);
    without_cache.use_path_cache = false;
    const auto a = run_permutation_study(xgft, with_cache);
    const auto b = run_permutation_study(xgft, without_cache);
    EXPECT_EQ(a.samples, b.samples) << to_string(h);
    EXPECT_EQ(a.max_load.mean(), b.max_load.mean()) << to_string(h);
    EXPECT_EQ(a.max_load.variance(), b.max_load.variance()) << to_string(h);
    EXPECT_EQ(a.perf.mean(), b.perf.mean()) << to_string(h);
  }
}

TEST(PermutationStudy, PooledCachedStudyMatchesSerialUncached) {
  // The strongest cross-check: pool + cache vs no pool + no cache.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  auto serial = quick_config(Heuristic::kDisjoint, 4);
  serial.use_path_cache = false;
  const auto a = run_permutation_study(xgft, serial);
  util::ThreadPool pool(3);
  auto pooled = quick_config(Heuristic::kDisjoint, 4);
  pooled.pool = &pool;
  const auto b = run_permutation_study(xgft, pooled);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.max_load.mean(), b.max_load.mean());
  EXPECT_EQ(a.max_load.variance(), b.max_load.variance());
  EXPECT_EQ(a.perf.mean(), b.perf.mean());
  EXPECT_EQ(a.converged, b.converged);
}

}  // namespace
