// Seeded randomized property/differential harness for the fabric
// manager.  Fifty random XGFT shapes x random event scripts (cable and
// switch failures, healing, queries), each replayed in lockstep through
// a first_surviving manager and a load_aware manager.  After EVERY event
// it asserts the three guarantees the subsystem is built on:
//
//   (a) REPAIR EQUIVALENCE -- the incrementally repaired tables are
//       entry-for-entry identical to a from-scratch degraded rebuild:
//       policy_tables() == fabric::build_lft for each policy, the
//       load_aware shadow matches the first_surviving rebuild, and the
//       exposed tables() match fm::build_managed_tables (arbitration
//       included);
//   (b) SAFETY -- no reachable (src, dst) pair is routed over a dead
//       cable or through a dead switch, and delivery is
//       policy-independent (the candidate sets are);
//   (c) DOMINANCE -- the load_aware reference max link load never
//       exceeds first_surviving's on the same trace (arbitration makes
//       this structural, the harness re-derives both loads from the
//       exposed tables to prove it end to end);
//
// plus the bookkeeping invariant that per-cable use counts stay
// consistent with the tables they index.  Everything is seeded through
// util::Rng, so a failure reproduces from the combo number alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/degraded.hpp"
#include "fabric/lft.hpp"
#include "fm/events.hpp"
#include "fm/fabric_manager.hpp"
#include "topology/spec.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace lmpr {
namespace {

using fabric::LidLayout;
using fabric::RepairPolicy;

constexpr int kCombos = 50;
constexpr int kEventsPerCombo = 18;
constexpr std::uint64_t kSeedBase = 0xf0e1d2c3b4a59687ull;

/// Random small XGFT shape: 2 or 3 levels, hosts capped so a full
/// from-scratch rebuild per event stays cheap.
topo::XgftSpec random_spec(util::Rng& rng) {
  const auto pick = [&rng](std::uint32_t lo, std::uint32_t hi) {
    return lo + static_cast<std::uint32_t>(rng.below(hi - lo + 1));
  };
  if (rng.below(2) == 0) {
    return topo::XgftSpec{{pick(2, 4), pick(2, 4)}, {pick(1, 3), pick(2, 3)}};
  }
  return topo::XgftSpec{{pick(2, 3), pick(2, 3), pick(2, 3)},
                        {pick(1, 2), pick(2, 3), pick(2, 3)}};
}

/// Inverse of the recognition isomorphism: raw id whose canonical image
/// is the given topo node.
std::vector<std::uint32_t> raw_of(const fm::FabricManager& fm) {
  const auto& canonical = fm.canonical();
  std::vector<std::uint32_t> inverse(canonical.size(), 0);
  for (std::uint32_t raw = 0; raw < canonical.size(); ++raw) {
    inverse[static_cast<std::size_t>(canonical[raw])] = raw;
  }
  return inverse;
}

fm::Event cable_event(const fm::FabricManager& fm,
                      const std::vector<std::uint32_t>& inverse,
                      std::uint64_t cable, bool down) {
  const topo::Link& link = fm.xgft().link(static_cast<topo::LinkId>(cable));
  return {down ? fm::EventType::kCableDown : fm::EventType::kCableUp,
          inverse[static_cast<std::size_t>(link.src)],
          inverse[static_cast<std::size_t>(link.dst)]};
}

/// Draws the next event against the current degradation state; returns
/// false when the drawn branch has no applicable target this step.
bool next_event(const fm::FabricManager& fm,
                const std::vector<std::uint32_t>& inverse, util::Rng& rng,
                fm::Event& event) {
  const topo::Xgft& xgft = fm.xgft();
  const fabric::Degradation& deg = fm.degradation();
  const double roll = rng.uniform01();
  if (roll < 0.40) {  // kill a random live cable
    const std::uint64_t cable = rng.below(xgft.num_cables());
    if (!deg.cable_ok(cable)) return false;
    event = cable_event(fm, inverse, cable, /*down=*/true);
  } else if (roll < 0.60) {  // heal a random dead cable
    std::vector<std::uint64_t> dead;
    for (std::uint64_t c = 0; c < xgft.num_cables(); ++c) {
      if (!deg.cable_ok(c)) dead.push_back(c);
    }
    if (dead.empty()) return false;
    event = cable_event(
        fm, inverse,
        dead[static_cast<std::size_t>(rng.below(dead.size()))],
        /*down=*/false);
  } else if (roll < 0.72) {  // kill a random live switch (at most 2 dead)
    std::size_t dead_switches = 0;
    for (topo::NodeId n = 0; n < xgft.num_nodes(); ++n) {
      if (!xgft.is_host(n) && !deg.node_ok(n)) ++dead_switches;
    }
    if (dead_switches >= 2) return false;
    const std::uint64_t num_switches = xgft.num_nodes() - xgft.num_hosts();
    const topo::NodeId node = static_cast<topo::NodeId>(
        xgft.num_hosts() + rng.below(num_switches));
    if (!deg.node_ok(node)) return false;
    event = {fm::EventType::kSwitchDown, inverse[node], 0};
  } else if (roll < 0.85) {  // heal a random dead switch
    std::vector<topo::NodeId> dead;
    for (topo::NodeId n = 0; n < xgft.num_nodes(); ++n) {
      if (!xgft.is_host(n) && !deg.node_ok(n)) dead.push_back(n);
    }
    if (dead.empty()) return false;
    event = {fm::EventType::kSwitchUp,
             inverse[dead[static_cast<std::size_t>(rng.below(dead.size()))]],
             0};
  } else {  // query: state-preserving, exercises the mixed stream
    event = {fm::EventType::kQuery,
             inverse[xgft.host(rng.below(xgft.num_hosts()))],
             inverse[xgft.host(rng.below(xgft.num_hosts()))]};
  }
  return true;
}

/// Recomputes use_counts from scratch off the given tables and compares
/// them with the manager's incrementally maintained ones.
void check_use_counts(const fm::FabricManager& fm, const std::string& where) {
  const topo::Xgft& xgft = fm.xgft();
  const fabric::Lft& lft = fm.lft();
  std::vector<std::vector<std::uint32_t>> expected(
      static_cast<std::size_t>(xgft.num_cables()),
      std::vector<std::uint32_t>(static_cast<std::size_t>(xgft.num_hosts()),
                                 0));
  for (std::uint64_t dst = 0; dst < xgft.num_hosts(); ++dst) {
    const std::uint32_t first = lft.lid_of(dst, 0);
    for (const auto& row : fm.policy_tables()) {
      for (std::uint32_t j = 0; j < lft.block(); ++j) {
        const topo::LinkId entry = row[first + j];
        if (entry == topo::kInvalidLink) continue;
        ++expected[static_cast<std::size_t>(xgft.cable_of(entry))]
                  [static_cast<std::size_t>(dst)];
      }
    }
  }
  ASSERT_EQ(fm.use_counts(), expected) << where;
}

/// Walks every (src, dst, variant) of the exposed tables: delivered
/// walks must not traverse a dead cable or enter a dead node; the
/// delivered set comes back through `delivered` for cross-policy
/// comparison (ASSERT_* needs a void-returning function).
void check_safety(const fm::FabricManager& fm, const std::string& where,
                  std::vector<bool>& delivered) {
  const topo::Xgft& xgft = fm.xgft();
  const fabric::Lft& lft = fm.lft();
  const fabric::Degradation& deg = fm.degradation();
  const std::uint64_t hosts = xgft.num_hosts();
  delivered.clear();
  delivered.reserve(static_cast<std::size_t>(hosts * hosts * lft.block()));
  for (std::uint64_t s = 0; s < hosts; ++s) {
    for (std::uint64_t d = 0; d < hosts; ++d) {
      for (std::uint32_t j = 0; j < lft.block(); ++j) {
        const fm::FabricManager::Walk walk = fm.walk(s, d, j);
        delivered.push_back(walk.delivered);
        if (s == d) continue;
        for (const topo::LinkId link : walk.links) {
          ASSERT_TRUE(deg.cable_ok(xgft.cable_of(link)))
              << where << " s=" << s << " d=" << d << " j=" << j
              << " routed over dead cable " << xgft.cable_of(link);
          ASSERT_TRUE(deg.node_ok(xgft.link(link).dst) ||
                      xgft.link(link).dst == xgft.host(d))
              << where << " s=" << s << " d=" << d << " j=" << j
              << " routed through dead node " << xgft.link(link).dst;
        }
      }
    }
  }
}

TEST(FmProperty, RandomTopologiesAndScriptsUnderBothPolicies) {
  for (int combo = 0; combo < kCombos; ++combo) {
    util::Rng rng{kSeedBase + static_cast<std::uint64_t>(combo)};
    const topo::XgftSpec spec = random_spec(rng);

    fm::FmConfig config;
    config.k_paths = 1ull << rng.below(3);  // 1, 2 or 4
    config.layout = rng.below(2) == 0 ? LidLayout::kDisjointLayout
                                      : LidLayout::kShiftLayout;
    config.track_link_load = false;  // the harness derives loads itself
    config.zero_timings = true;

    config.repair_policy = RepairPolicy::kFirstSurviving;
    fm::FabricManager first{spec, config};
    config.repair_policy = RepairPolicy::kLoadAware;
    fm::FabricManager load{spec, config};
    ASSERT_TRUE(first.ok()) << first.error();
    ASSERT_TRUE(load.ok()) << load.error();
    ASSERT_NE(load.shadow_tables(), nullptr);
    const auto inverse = raw_of(first);
    const topo::Xgft& xgft = first.xgft();
    const fabric::Lft& lft = first.lft();

    for (int step = 0; step < kEventsPerCombo; ++step) {
      fm::Event event;
      if (!next_event(first, inverse, rng, event)) continue;
      const std::string where = "combo " + std::to_string(combo) + " (" +
                                spec.to_string() +
                                " K=" + std::to_string(config.k_paths) +
                                ") step " + std::to_string(step) + " " +
                                std::string(to_string(event.type));

      const fm::EventRecord record_first = first.apply(event);
      const fm::EventRecord record_load = load.apply(event);
      ASSERT_TRUE(record_first.ok) << where << ": " << record_first.error;
      ASSERT_TRUE(record_load.ok) << where << ": " << record_load.error;

      // The degradation state evolves policy-independently.
      ASSERT_EQ(first.degradation().cable_dead,
                load.degradation().cable_dead) << where;
      ASSERT_EQ(first.degradation().node_dead, load.degradation().node_dead)
          << where;
      const fabric::Degradation& deg = first.degradation();

      // (a) Repair equivalence: incremental state == from-scratch
      // rebuild, per policy, for the shadow, and for the arbitrated view.
      ASSERT_EQ(first.tables(),
                fabric::build_lft(lft, deg, RepairPolicy::kFirstSurviving))
          << where;
      ASSERT_EQ(load.policy_tables(),
                fabric::build_lft(lft, deg, RepairPolicy::kLoadAware))
          << where;
      ASSERT_EQ(*load.shadow_tables(), first.tables()) << where;
      ASSERT_EQ(load.tables(),
                fm::build_managed_tables(xgft, lft, deg,
                                         RepairPolicy::kLoadAware))
          << where;

      // (b) Safety on both exposed table sets, and policy-independent
      // delivery.
      std::vector<bool> delivered_first;
      std::vector<bool> delivered_load;
      check_safety(first, where, delivered_first);
      if (HasFatalFailure()) return;
      check_safety(load, where, delivered_load);
      if (HasFatalFailure()) return;
      ASSERT_EQ(delivered_first, delivered_load)
          << where << ": policies must deliver the same pair-variants";

      // (c) Dominance: load_aware never carries the reference
      // permutation worse than first_surviving on the same trace.
      const double load_first =
          fm::reference_max_load(xgft, lft, first.tables());
      const double load_load =
          fm::reference_max_load(xgft, lft, load.tables());
      ASSERT_LE(load_load, load_first + 1e-9) << where;

      // Bookkeeping: use counts match the tables they index.
      check_use_counts(first, where);
      if (HasFatalFailure()) return;
      check_use_counts(load, where);
      if (HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace lmpr
