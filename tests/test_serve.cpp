// Tests for the `lmpr serve` routing daemon: total protocol parsing
// (reject/fuzz corpus in the fm::events style), service semantics
// (generations, load swaps, error propagation), the byte-pinned golden
// session, the torn-read hammer over the published snapshots, and a
// smoke run of the serve_throughput bench.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/serve_support.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"

namespace lmpr {
namespace {

using serve::Command;
using serve::parse_request;

// ---------------------------------------------------------------------------
// Protocol parsing.

TEST(ServeProtocol, ParsesCoreCommands) {
  const auto load = parse_request("LOAD reports/fabric.json");
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.request.command, Command::kLoad);
  EXPECT_EQ(load.request.text, "reports/fabric.json");

  const auto topo = parse_request("topo XGFT( 2 ; 4,4 ; 1,4 )");
  ASSERT_TRUE(topo.ok) << topo.error;
  EXPECT_EQ(topo.request.command, Command::kTopo);
  EXPECT_EQ(topo.request.text, "XGFT( 2 ; 4,4 ; 1,4 )");

  const auto event = parse_request("Event cable_down 0 16");
  ASSERT_TRUE(event.ok) << event.error;
  EXPECT_EQ(event.request.command, Command::kEvent);
  EXPECT_EQ(event.request.event,
            (fm::Event{fm::EventType::kCableDown, 0, 16}));

  const auto path = parse_request("PATH 3 9 2");
  ASSERT_TRUE(path.ok) << path.error;
  EXPECT_EQ(path.request.command, Command::kPath);
  EXPECT_EQ(path.request.src, 3u);
  EXPECT_EQ(path.request.dst, 9u);
  EXPECT_EQ(path.request.limit, 2u);

  const auto all = parse_request("PATH 3 9");
  ASSERT_TRUE(all.ok) << all.error;
  EXPECT_EQ(all.request.limit, 0u) << "no K means every installed variant";

  for (const char* bare : {"STATS", "stats", "GEN", "QUIT", "shutdown"}) {
    const auto parsed = parse_request(bare);
    EXPECT_TRUE(parsed.ok) << bare << ": " << parsed.error;
  }
}

TEST(ServeProtocol, BlankAndCommentLinesElicitNoResponse) {
  for (const char* text : {"", "   ", "\t", "# a comment", "  # indented",
                           "\r", "# CRLF comment\r"}) {
    const auto parsed = parse_request(text);
    EXPECT_FALSE(parsed.ok) << text;
    EXPECT_TRUE(parsed.blank) << text;
  }
}

TEST(ServeProtocol, StripsCrlfAndTrailingComments) {
  const auto crlf = parse_request("GEN\r");
  EXPECT_TRUE(crlf.ok) << crlf.error;

  const auto comment = parse_request("PATH 1 2   # probe the pair\r");
  ASSERT_TRUE(comment.ok) << comment.error;
  EXPECT_EQ(comment.request.src, 1u);
  EXPECT_EQ(comment.request.dst, 2u);
}

// Every malformed input yields ok = false with a one-line reason, never
// a crash -- the daemon-facing analogue of the fm event-script corpus.
TEST(ServeProtocol, RejectCorpusNeverCrashes) {
  const struct {
    const char* line;
    const char* needle;
  } corpus[] = {
      {"BOGUS", "unknown command 'BOGUS'"},
      {"LAUNCH the missiles", "unknown command 'LAUNCH'"},
      {"LOAD", "LOAD expects a fabric file path"},
      {"LOAD a b", "trailing token 'b'"},
      {"TOPO", "TOPO expects a topology spec"},
      {"EVENT", "EVENT needs an event line"},
      {"EVENT # nothing", "EVENT needs an event line"},
      {"EVENT reboot 3", "unknown event 'reboot'"},
      {"EVENT cable_down 0", "expects 2 node ids"},
      {"EVENT cable_down 0 1 2", "trailing token '2'"},
      {"EVENT query 0 4294967296", "out of range"},
      {"EVENT @5 cable_down 0 16", "does not accept @<cycle> stamps"},
      {"PATH", "PATH expects <src> <dst> [K], got 0 operands"},
      {"PATH 1", "got 1 operand"},
      {"PATH 1 2 3 4", "got 4 operands"},
      {"PATH x 2", "bad src host id 'x'"},
      {"PATH 1 -2", "bad dst host id '-2'"},
      {"PATH 1 2 0", "bad variant count '0'"},
      {"PATH 1 2 99999999999", "variant count 99999999999 out of range"},
      {"STATS now", "trailing token 'now'"},
      {"GEN 1", "trailing token '1'"},
      {"QUIT loudly", "trailing token 'loudly'"},
      {"SHUTDOWN -f", "trailing token '-f'"},
  };
  for (const auto& entry : corpus) {
    serve::ParsedRequest parsed;
    EXPECT_NO_THROW(parsed = parse_request(entry.line)) << entry.line;
    EXPECT_FALSE(parsed.ok) << entry.line;
    EXPECT_FALSE(parsed.blank) << entry.line;
    EXPECT_NE(parsed.error.find(entry.needle), std::string::npos)
        << entry.line << " => " << parsed.error;
  }
}

TEST(ServeProtocol, OversizedInputsAreRejectedWhole) {
  const std::string giant(serve::kMaxRequestBytes + 1, 'a');
  const auto parsed = parse_request(giant);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("exceeds"), std::string::npos);

  // A hostile kilobyte token under the line cap is clipped in the echo.
  const std::string token(1024, 'z');
  const auto clipped = parse_request("PATH " + token + " 2");
  EXPECT_FALSE(clipped.ok);
  EXPECT_NE(clipped.error.find("..."), std::string::npos);
  EXPECT_LT(clipped.error.size(), 120u);
}

// ---------------------------------------------------------------------------
// Service semantics.

TEST(ServeService, QueriesBeforeAnyLoadFail) {
  serve::RoutingService service;
  EXPECT_FALSE(service.loaded());
  EXPECT_EQ(service.generation(), 0u);
  const auto path = service.query_path(0, 1);
  EXPECT_FALSE(path.ok);
  EXPECT_NE(path.error.find("no fabric loaded"), std::string::npos);
  EXPECT_FALSE(service.stats().ok);
  const auto applied =
      service.apply_event(fm::Event{fm::EventType::kCableDown, 0, 16});
  EXPECT_FALSE(applied.record.ok);
}

TEST(ServeService, BadSpecsEchoTheFactoryDiagnostic) {
  serve::RoutingService service;
  const auto outcome = service.load_spec("XGFT(2;4,4)");
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("XGFT(2;4,4)"), std::string::npos)
      << outcome.error;
  EXPECT_NE(outcome.error.find("line 1, column 11"), std::string::npos)
      << outcome.error;
  EXPECT_FALSE(service.loaded()) << "a failed load must not install";
}

TEST(ServeService, GenerationsCountTableSets) {
  serve::RoutingService service;
  const auto loaded = service.load_spec("XGFT(2;4,4;1,4)");
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.generation, 1u);

  // Query events and rejected events republish under the same generation.
  const auto query =
      service.apply_event(fm::Event{fm::EventType::kQuery, 0, 5});
  EXPECT_TRUE(query.record.ok);
  EXPECT_EQ(query.generation, 1u);
  const auto rejected =
      service.apply_event(fm::Event{fm::EventType::kCableDown, 0, 7});
  EXPECT_FALSE(rejected.record.ok) << "0-7 is not a cable";
  EXPECT_EQ(rejected.generation, 1u);

  // Topology events install a new table set.
  const auto down =
      service.apply_event(fm::Event{fm::EventType::kCableDown, 16, 20});
  EXPECT_TRUE(down.record.ok) << down.record.error;
  EXPECT_EQ(down.generation, 2u);
  const auto up =
      service.apply_event(fm::Event{fm::EventType::kCableUp, 16, 20});
  EXPECT_TRUE(up.record.ok) << up.record.error;
  EXPECT_EQ(up.generation, 3u);

  // A replacing load starts a fresh table set too.
  const auto reloaded = service.load_spec("XGFT(2;2,2;1,2)");
  ASSERT_TRUE(reloaded.ok) << reloaded.error;
  EXPECT_EQ(reloaded.generation, 4u);
  EXPECT_EQ(service.stats().hosts, 4u);
}

TEST(ServeService, PathQueriesWalkEveryVariant) {
  serve::RoutingService service;
  ASSERT_TRUE(service.load_spec("XGFT(2;4,4;1,4)").ok);
  const auto all = service.query_path(0, 5);
  ASSERT_TRUE(all.ok) << all.error;
  EXPECT_EQ(all.variants, 4u);
  EXPECT_EQ(all.usable, 4u);
  for (const auto& walk : all.walks) {
    ASSERT_TRUE(walk.delivered);
    ASSERT_GE(walk.nodes.size(), 2u);
    EXPECT_EQ(walk.nodes.front(), 0u);
    EXPECT_EQ(walk.nodes.back(), 5u) << "hosts are their own node ids here";
  }

  const auto limited = service.query_path(0, 5, 2);
  ASSERT_TRUE(limited.ok);
  EXPECT_EQ(limited.variants, 2u);

  EXPECT_FALSE(service.query_path(99, 5).ok);
  EXPECT_FALSE(service.query_path(0, 99).ok);
  const auto over = service.query_path(0, 5, 9);
  EXPECT_FALSE(over.ok);
  EXPECT_NE(over.error.find("exceeds the installed block"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden session.

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The CI smoke session byte-for-byte: scripts/serve_smoke.txt through a
// zero-timings service must reproduce tests/golden/serve_quick.txt.
TEST(ServeSession, GoldenQuickSession) {
  const std::string script =
      slurp(std::string{LMPR_SCRIPTS_DIR} + "/serve_smoke.txt");
  ASSERT_FALSE(script.empty());

  serve::ServeConfig config;
  config.fm.zero_timings = true;
  serve::RoutingService service(config);
  std::istringstream in(script);
  std::ostringstream out;
  const auto exit = serve::run_session(service, in, out);
  EXPECT_EQ(exit, serve::SessionExit::kQuit);

  const std::string golden =
      slurp(std::string{LMPR_GOLDEN_DIR} + "/serve_quick.txt");
  EXPECT_EQ(out.str(), golden)
      << "serve session drifted from tests/golden/serve_quick.txt; if the "
         "change is intentional, regenerate with: ./build/lmpr serve "
         "--zero-timings --script scripts/serve_smoke.txt";
}

TEST(ServeSession, CrlfSessionsAnswerIdentically) {
  serve::ServeConfig config;
  config.fm.zero_timings = true;
  serve::RoutingService lf_service(config);
  serve::RoutingService crlf_service(config);
  const std::string lf_script = "TOPO XGFT(2;4,4;1,4)\nPATH 0 5 1\nGEN\n";
  std::string crlf_script = lf_script;
  std::size_t at = 0;
  while ((at = crlf_script.find('\n', at)) != std::string::npos) {
    crlf_script.replace(at, 1, "\r\n");
    at += 2;
  }
  std::istringstream lf_in(lf_script), crlf_in(crlf_script);
  std::ostringstream lf_out, crlf_out;
  serve::run_session(lf_service, lf_in, lf_out);
  serve::run_session(crlf_service, crlf_in, crlf_out);
  EXPECT_EQ(lf_out.str(), crlf_out.str());
}

// ---------------------------------------------------------------------------
// Concurrency: snapshots never tear.

using WalkSet = std::vector<std::pair<bool, std::vector<topo::NodeId>>>;

WalkSet flatten(const serve::PathResult& result) {
  WalkSet walks;
  walks.reserve(result.walks.size());
  for (const auto& walk : result.walks) {
    walks.emplace_back(walk.delivered, walk.nodes);
  }
  return walks;
}

// One cable toggles down/up while a reader hammers the same pair: the
// tables have exactly TWO valid states (repair is deterministic and
// healing restores the from-scratch build), mapped by generation parity.
// Any answer matching neither state for its generation is a torn read.
TEST(ServeConcurrency, HammeredReadersSeeOnlyWholeGenerations) {
  serve::ServeConfig config;
  config.fm.zero_timings = true;
  serve::RoutingService service(config);
  ASSERT_TRUE(service.load_spec("XGFT(2;4,4;1,4)").ok);

  const std::uint64_t src = 0, dst = 5;
  const auto healthy = service.query_path(src, dst);
  ASSERT_TRUE(healthy.ok);
  ASSERT_EQ(healthy.generation, 1u);
  const WalkSet healthy_walks = flatten(healthy);

  const fm::Event down{fm::EventType::kCableDown, 16, 20};
  const fm::Event up{fm::EventType::kCableUp, 16, 20};
  ASSERT_TRUE(service.apply_event(down).record.ok);
  const auto degraded = service.query_path(src, dst);
  ASSERT_TRUE(degraded.ok);
  ASSERT_EQ(degraded.generation, 2u);
  const WalkSet degraded_walks = flatten(degraded);
  ASSERT_NE(degraded_walks, healthy_walks)
      << "the toggled cable must actually change the pair's walks";
  ASSERT_TRUE(service.apply_event(up).record.ok);
  ASSERT_EQ(flatten(service.query_path(src, dst)), healthy_walks)
      << "healing must restore the deterministic from-scratch tables";

  // Generation parity now encodes the state: odd = healthy, even =
  // degraded (gen 1 healthy, each toggle bumps by one).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> observed{0};
  std::thread reader([&] {
    std::uint64_t last_generation = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto result = service.query_path(src, dst);
      ++observed;
      if (!result.ok || result.generation < last_generation) {
        ++torn;
        continue;
      }
      last_generation = result.generation;
      const WalkSet& expected =
          (result.generation % 2 == 1) ? healthy_walks : degraded_walks;
      if (flatten(result) != expected) ++torn;
    }
  });

  for (int toggle = 0; toggle < 200; ++toggle) {
    ASSERT_TRUE(service.apply_event(down).record.ok);
    ASSERT_TRUE(service.apply_event(up).record.ok);
  }
  stop.store(true);
  reader.join();

  EXPECT_EQ(torn.load(), 0u)
      << "of " << observed.load() << " concurrent answers";
  EXPECT_GT(observed.load(), 0u);
  // 1 load + initial down/up + 200 toggles x 2 published table sets.
  EXPECT_EQ(service.generation(), 403u);
}

// ---------------------------------------------------------------------------
// Bench smoke.

TEST(ServeBench, ThroughputWorkloadRunsConsistent) {
  engine::ServeThroughputOptions options;
  options.readers = 2;
  options.storm_cables = 8;
  options.seed = 7;
  const auto result = engine::run_serve_throughput(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.events, 16u);
  EXPECT_EQ(result.inconsistent, 0u);
  EXPECT_GT(result.queries, 0u);
  EXPECT_GT(result.queries_per_sec, 0.0);
  // 1 load + 16 topology events, every one a published table set.
  EXPECT_EQ(result.final_generation, 17u);
}

}  // namespace
}  // namespace lmpr
