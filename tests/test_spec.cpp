#include <gtest/gtest.h>

#include <stdexcept>

#include "topology/spec.hpp"

namespace {

using lmpr::topo::XgftSpec;

TEST(XgftSpec, PaperTopologyCounts) {
  // The six experimental topologies of Section 5 (DESIGN.md reconstruction).
  struct Case {
    std::uint32_t ports;
    std::size_t levels;
    std::uint64_t hosts;
    std::uint64_t tops;
  };
  const Case cases[] = {
      {8, 2, 32, 4},      {16, 2, 128, 8},    {24, 2, 288, 12},
      {8, 3, 128, 16},    {16, 3, 1024, 64},  {24, 3, 3456, 144},
  };
  for (const auto& c : cases) {
    const auto spec = XgftSpec::m_port_n_tree(c.ports, c.levels);
    EXPECT_EQ(spec.num_hosts(), c.hosts) << c.ports << "-port " << c.levels;
    EXPECT_EQ(spec.num_top_switches(), c.tops)
        << c.ports << "-port " << c.levels;
  }
}

TEST(XgftSpec, MPortNTreeShape) {
  const auto spec = XgftSpec::m_port_n_tree(8, 3);
  EXPECT_EQ(spec.m, (std::vector<std::uint32_t>{4, 4, 8}));
  EXPECT_EQ(spec.w, (std::vector<std::uint32_t>{1, 4, 4}));
}

TEST(XgftSpec, KAryNTreeShape) {
  const auto spec = XgftSpec::k_ary_n_tree(4, 3);
  EXPECT_EQ(spec.m, (std::vector<std::uint32_t>{4, 4, 4}));
  EXPECT_EQ(spec.w, (std::vector<std::uint32_t>{1, 4, 4}));
  EXPECT_EQ(spec.num_hosts(), 64u);
  EXPECT_EQ(spec.num_top_switches(), 16u);
}

TEST(XgftSpec, GftShape) {
  const auto spec = XgftSpec::gft(2, 3, 2);
  EXPECT_EQ(spec.m, (std::vector<std::uint32_t>{3, 3}));
  EXPECT_EQ(spec.w, (std::vector<std::uint32_t>{2, 2}));
  EXPECT_EQ(spec.num_hosts(), 9u);
  EXPECT_EQ(spec.num_top_switches(), 4u);
}

TEST(XgftSpec, NodesAtLevel) {
  // XGFT(3;4,4,8;1,4,4): 128 hosts, 32+32+16 switches.
  const auto spec = XgftSpec::m_port_n_tree(8, 3);
  EXPECT_EQ(spec.nodes_at_level(0), 128u);
  EXPECT_EQ(spec.nodes_at_level(1), 32u);
  EXPECT_EQ(spec.nodes_at_level(2), 32u);
  EXPECT_EQ(spec.nodes_at_level(3), 16u);
  EXPECT_EQ(spec.total_nodes(), 208u);
}

TEST(XgftSpec, PrefixProductsAndBoundaryLinks) {
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};  // Figure 3 topology
  EXPECT_EQ(spec.m_prefix_product(0), 1u);
  EXPECT_EQ(spec.m_prefix_product(2), 16u);
  EXPECT_EQ(spec.w_prefix_product(3), 8u);
  // TL(k) = w_1..w_{k+1}.
  EXPECT_EQ(spec.boundary_links(0), 1u);
  EXPECT_EQ(spec.boundary_links(1), 4u);
  EXPECT_EQ(spec.boundary_links(2), 8u);
}

TEST(XgftSpec, ToStringMatchesPaperNotation) {
  const auto spec = XgftSpec::m_port_n_tree(8, 3);
  EXPECT_EQ(spec.to_string(), "XGFT(3;4,4,8;1,4,4)");
}

TEST(XgftSpec, ParseRoundTrip) {
  for (const char* text :
       {"XGFT(3;4,4,8;1,4,4)", "XGFT(1;4;2)", "XGFT(2;3,5;2,3)"}) {
    const auto spec = XgftSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
  }
}

TEST(XgftSpec, ParseToleratesWhitespace) {
  const auto spec = XgftSpec::parse("XGFT(2; 4, 8; 1, 4)");
  EXPECT_EQ(spec.to_string(), "XGFT(2;4,8;1,4)");
}

TEST(XgftSpec, ParseRejectsGarbage) {
  EXPECT_THROW(XgftSpec::parse("FATTREE(2;4;4)"), std::invalid_argument);
  EXPECT_THROW(XgftSpec::parse("XGFT(2;4,8)"), std::invalid_argument);
  EXPECT_THROW(XgftSpec::parse("XGFT(3;4,8;1,4)"), std::invalid_argument);
}

TEST(XgftSpec, ValidateRejectsMalformed) {
  EXPECT_THROW((XgftSpec{{}, {}}).validate(), std::invalid_argument);
  EXPECT_THROW((XgftSpec{{4, 4}, {1}}).validate(), std::invalid_argument);
  EXPECT_THROW((XgftSpec{{0}, {1}}).validate(), std::invalid_argument);
  EXPECT_THROW((XgftSpec{{4}, {0}}).validate(), std::invalid_argument);
}

TEST(XgftSpec, ValidateRejectsOverflowScale) {
  XgftSpec spec;
  spec.m.assign(16, 4096);  // 4096^16 hosts: overflows
  spec.w.assign(16, 1);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(XgftSpec, MPortNTreeRejectsOddPorts) {
  EXPECT_THROW(XgftSpec::m_port_n_tree(7, 2), std::invalid_argument);
  EXPECT_THROW(XgftSpec::m_port_n_tree(8, 0), std::invalid_argument);
}

TEST(XgftSpec, AccessorsUseOneBasedSubscripts) {
  const auto spec = XgftSpec::m_port_n_tree(8, 3);
  EXPECT_EQ(spec.m_at(1), 4u);
  EXPECT_EQ(spec.m_at(3), 8u);
  EXPECT_EQ(spec.w_at(1), 1u);
  EXPECT_EQ(spec.w_at(3), 4u);
}

}  // namespace
