#include <gtest/gtest.h>

#include <stdexcept>

#include "topology/spec.hpp"

namespace {

using lmpr::topo::XgftSpec;

TEST(XgftSpec, PaperTopologyCounts) {
  // The six experimental topologies of Section 5 (DESIGN.md reconstruction).
  struct Case {
    std::uint32_t ports;
    std::size_t levels;
    std::uint64_t hosts;
    std::uint64_t tops;
  };
  const Case cases[] = {
      {8, 2, 32, 4},      {16, 2, 128, 8},    {24, 2, 288, 12},
      {8, 3, 128, 16},    {16, 3, 1024, 64},  {24, 3, 3456, 144},
  };
  for (const auto& c : cases) {
    const auto spec = XgftSpec::m_port_n_tree(c.ports, c.levels);
    EXPECT_EQ(spec.num_hosts(), c.hosts) << c.ports << "-port " << c.levels;
    EXPECT_EQ(spec.num_top_switches(), c.tops)
        << c.ports << "-port " << c.levels;
  }
}

TEST(XgftSpec, MPortNTreeShape) {
  const auto spec = XgftSpec::m_port_n_tree(8, 3);
  EXPECT_EQ(spec.m, (std::vector<std::uint32_t>{4, 4, 8}));
  EXPECT_EQ(spec.w, (std::vector<std::uint32_t>{1, 4, 4}));
}

TEST(XgftSpec, KAryNTreeShape) {
  const auto spec = XgftSpec::k_ary_n_tree(4, 3);
  EXPECT_EQ(spec.m, (std::vector<std::uint32_t>{4, 4, 4}));
  EXPECT_EQ(spec.w, (std::vector<std::uint32_t>{1, 4, 4}));
  EXPECT_EQ(spec.num_hosts(), 64u);
  EXPECT_EQ(spec.num_top_switches(), 16u);
}

TEST(XgftSpec, GftShape) {
  const auto spec = XgftSpec::gft(2, 3, 2);
  EXPECT_EQ(spec.m, (std::vector<std::uint32_t>{3, 3}));
  EXPECT_EQ(spec.w, (std::vector<std::uint32_t>{2, 2}));
  EXPECT_EQ(spec.num_hosts(), 9u);
  EXPECT_EQ(spec.num_top_switches(), 4u);
}

TEST(XgftSpec, NodesAtLevel) {
  // XGFT(3;4,4,8;1,4,4): 128 hosts, 32+32+16 switches.
  const auto spec = XgftSpec::m_port_n_tree(8, 3);
  EXPECT_EQ(spec.nodes_at_level(0), 128u);
  EXPECT_EQ(spec.nodes_at_level(1), 32u);
  EXPECT_EQ(spec.nodes_at_level(2), 32u);
  EXPECT_EQ(spec.nodes_at_level(3), 16u);
  EXPECT_EQ(spec.total_nodes(), 208u);
}

TEST(XgftSpec, PrefixProductsAndBoundaryLinks) {
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};  // Figure 3 topology
  EXPECT_EQ(spec.m_prefix_product(0), 1u);
  EXPECT_EQ(spec.m_prefix_product(2), 16u);
  EXPECT_EQ(spec.w_prefix_product(3), 8u);
  // TL(k) = w_1..w_{k+1}.
  EXPECT_EQ(spec.boundary_links(0), 1u);
  EXPECT_EQ(spec.boundary_links(1), 4u);
  EXPECT_EQ(spec.boundary_links(2), 8u);
}

TEST(XgftSpec, ToStringMatchesPaperNotation) {
  const auto spec = XgftSpec::m_port_n_tree(8, 3);
  EXPECT_EQ(spec.to_string(), "XGFT(3;4,4,8;1,4,4)");
}

TEST(XgftSpec, ParseRoundTrip) {
  for (const char* text :
       {"XGFT(3;4,4,8;1,4,4)", "XGFT(1;4;2)", "XGFT(2;3,5;2,3)"}) {
    const auto spec = XgftSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
  }
}

TEST(XgftSpec, ParseToleratesWhitespace) {
  const auto spec = XgftSpec::parse("XGFT(2; 4, 8; 1, 4)");
  EXPECT_EQ(spec.to_string(), "XGFT(2;4,8;1,4)");
}

TEST(XgftSpec, ParseRejectsGarbage) {
  EXPECT_THROW(XgftSpec::parse("FATTREE(2;4;4)"), std::invalid_argument);
  EXPECT_THROW(XgftSpec::parse("XGFT(2;4,8)"), std::invalid_argument);
  EXPECT_THROW(XgftSpec::parse("XGFT(3;4,8;1,4)"), std::invalid_argument);
}

TEST(XgftSpecCorpus, AcceptedInputs) {
  struct Accept {
    const char* text;
    const char* canonical;  ///< to_string() of the parse
  };
  const Accept corpus[] = {
      // Whitespace everywhere whitespace is legal, including newlines.
      {"  XGFT ( 2 ; 4 , 8 ; 1 , 4 )  ", "XGFT(2;4,8;1,4)"},
      {"XGFT(2;\n  4,8;\n  1,4)", "XGFT(2;4,8;1,4)"},
      // Height 1 (the smallest legal tree).
      {"XGFT(1;2;1)", "XGFT(1;2;1)"},
      // Leading zeros are plain decimal, not octal.
      {"XGFT(2;04,008;01,4)", "XGFT(2;4,8;1,4)"},
      // Tabs as separators.
      {"XGFT(2;\t4,8;\t1,4)", "XGFT(2;4,8;1,4)"},
  };
  for (const auto& entry : corpus) {
    const auto spec = XgftSpec::parse(entry.text);
    EXPECT_EQ(spec.to_string(), entry.canonical) << entry.text;
  }
}

TEST(XgftSpecCorpus, RejectedInputsCarryDiagnostics) {
  struct Reject {
    const char* text;
    const char* needle;  ///< must appear in the diagnostic
  };
  const Reject corpus[] = {
      // Wrong keyword / missing structure at every prefix length.
      {"", "expected 'XGFT'"},
      {"FATTREE(2;4;4)", "expected 'XGFT'"},
      {"XGFT", "expected '('"},
      {"XGFT(", "expected height"},
      {"XGFT(2", "expected ';'"},
      {"XGFT(2;", "expected m-arity"},
      {"XGFT(2;4,8", "expected ';'"},
      {"XGFT(2;4,8;", "expected w-arity"},
      {"XGFT(2;4,8;1,4", "expected ')'"},
      // Trailing junk after a complete spec.
      {"XGFT(2;4,8;1,4)x", "trailing characters"},
      {"XGFT(2;4,8;1,4))", "trailing characters"},
      // Zero arities and a zero height, each at its own position.
      {"XGFT(0;;)", "height must be at least 1"},
      {"XGFT(2;0,8;1,4)", "m-arity must be at least 1"},
      {"XGFT(2;4,8;1,0)", "w-arity must be at least 1"},
      // 2^32 and far beyond: no silent std::stoul truncation.
      {"XGFT(2;4294967296,8;1,4)", "m-arity exceeds 32 bits"},
      {"XGFT(2;4,8;99999999999999999999,4)", "w-arity exceeds 32 bits"},
      // Mismatched arity counts against the declared height.
      {"XGFT(3;4,8;1,4,2)", "expected 3 m-arities"},
      {"XGFT(2;4,8;1,4,2)", "expected 2 w-arities"},
      // Negative numbers and stray separators are character errors.
      {"XGFT(2;-4,8;1,4)", "expected m-arity"},
      {"XGFT(2;4,,8;1,4)", "expected m-arity"},
      {"XGFT(2;4,8;,1,4)", "expected w-arity"},
      // Diagnostics carry 1-based line:column positions.
      {"XGFT(2;4,8;1,4)x", "line 1, column 16"},
      {"XGFT(2;\n4,0;\n1,4)", "line 2, column 3"},
  };
  for (const auto& entry : corpus) {
    try {
      XgftSpec::parse(entry.text);
      FAIL() << "accepted: " << entry.text;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string{error.what()}.find(entry.needle),
                std::string::npos)
          << entry.text << " diagnostic was: " << error.what();
    }
  }
}

TEST(XgftSpec, ValidateRejectsMalformed) {
  EXPECT_THROW((XgftSpec{{}, {}}).validate(), std::invalid_argument);
  EXPECT_THROW((XgftSpec{{4, 4}, {1}}).validate(), std::invalid_argument);
  EXPECT_THROW((XgftSpec{{0}, {1}}).validate(), std::invalid_argument);
  EXPECT_THROW((XgftSpec{{4}, {0}}).validate(), std::invalid_argument);
}

TEST(XgftSpec, ValidateRejectsOverflowScale) {
  XgftSpec spec;
  spec.m.assign(16, 4096);  // 4096^16 hosts: overflows
  spec.w.assign(16, 1);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(XgftSpec, MPortNTreeRejectsOddPorts) {
  EXPECT_THROW(XgftSpec::m_port_n_tree(7, 2), std::invalid_argument);
  EXPECT_THROW(XgftSpec::m_port_n_tree(8, 0), std::invalid_argument);
}

TEST(XgftSpec, AccessorsUseOneBasedSubscripts) {
  const auto spec = XgftSpec::m_port_n_tree(8, 3);
  EXPECT_EQ(spec.m_at(1), 4u);
  EXPECT_EQ(spec.m_at(3), 8u);
  EXPECT_EQ(spec.w_at(1), 1u);
  EXPECT_EQ(spec.w_at(3), 4u);
}

}  // namespace
