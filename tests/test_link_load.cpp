#include <gtest/gtest.h>

#include "core/route_table.hpp"
#include "flow/link_load.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flow::LoadEvaluator;
using flow::TrafficMatrix;
using route::Heuristic;
using topo::Xgft;
using topo::XgftSpec;

TEST(LinkLoad, SingleFlowLoadsEveryPathLinkOnce) {
  // XGFT(1;2;1): two hosts under one switch.  One unit 0 -> 1 loads the
  // 0->switch up link and the switch->1 down link with exactly 1.
  const Xgft xgft{XgftSpec{{2}, {1}}};
  LoadEvaluator eval(xgft);
  TrafficMatrix tm(2);
  tm.add(0, 1, 1.0);
  util::Rng rng{1};
  const auto result = eval.evaluate(tm, Heuristic::kDModK, 1, rng);
  EXPECT_DOUBLE_EQ(result.max_load, 1.0);
  double total = 0.0;
  int loaded = 0;
  for (const double load : eval.link_loads()) {
    total += load;
    loaded += (load > 0.0);
  }
  EXPECT_EQ(loaded, 2);
  EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(LinkLoad, SelfTrafficIsLoadFree) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  LoadEvaluator eval(xgft);
  TrafficMatrix tm(xgft.num_hosts());
  for (std::uint64_t i = 0; i < xgft.num_hosts(); ++i) tm.add(i, i, 5.0);
  util::Rng rng{1};
  EXPECT_DOUBLE_EQ(eval.evaluate(tm, Heuristic::kDModK, 1, rng).max_load, 0.0);
}

TEST(LinkLoad, MultiPathSplitsEvenly) {
  // XGFT(1;2;4): hosts with 4 parents, 4 shortest paths.  K = 4 puts 1/4
  // on each of the 8 involved links.
  const Xgft xgft{XgftSpec{{2}, {4}}};
  LoadEvaluator eval(xgft);
  TrafficMatrix tm(2);
  tm.add(0, 1, 1.0);
  util::Rng rng{1};
  const auto result = eval.evaluate(tm, Heuristic::kUmulti, 1, rng);
  EXPECT_DOUBLE_EQ(result.max_load, 0.25);
  for (const double load : eval.link_loads()) {
    EXPECT_TRUE(load == 0.0 || load == 0.25);
  }
}

TEST(LinkLoad, AmountsScaleLinearly) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  LoadEvaluator eval(xgft);
  util::Rng rng{2};
  TrafficMatrix tm1(xgft.num_hosts());
  tm1.add(0, 31, 1.0);
  tm1.add(4, 31, 1.0);
  const double base = eval.evaluate(tm1, Heuristic::kDModK, 1, rng).max_load;
  TrafficMatrix tm3(xgft.num_hosts());
  tm3.add(0, 31, 3.0);
  tm3.add(4, 31, 3.0);
  const double scaled = eval.evaluate(tm3, Heuristic::kDModK, 1, rng).max_load;
  EXPECT_DOUBLE_EQ(scaled, 3.0 * base);
}

TEST(LinkLoad, ConvergingFlowsAccumulate) {
  // Both remote leaves send to host 0: the final down link carries 2.
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  LoadEvaluator eval(xgft);
  TrafficMatrix tm(xgft.num_hosts());
  tm.add(4, 0, 1.0);
  tm.add(6, 0, 1.0);
  util::Rng rng{3};
  const auto result = eval.evaluate(tm, Heuristic::kUmulti, 1, rng);
  EXPECT_DOUBLE_EQ(result.max_load, 2.0);
  const topo::Link& hot = xgft.link(result.argmax);
  EXPECT_FALSE(hot.up);
  EXPECT_EQ(hot.dst, xgft.host(0));
}

TEST(LinkLoad, TableEvaluationMatchesOnTheFly) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  LoadEvaluator eval(xgft);
  util::Rng rng{4};
  const auto tm = TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  for (const Heuristic h :
       {Heuristic::kDModK, Heuristic::kShift1, Heuristic::kDisjoint,
        Heuristic::kUmulti}) {
    util::Rng unused{0};
    const double direct = eval.evaluate(tm, h, 3, unused).max_load;
    const route::RouteTable table(xgft, h, 3);
    const double via_table = eval.evaluate(tm, table).max_load;
    EXPECT_DOUBLE_EQ(direct, via_table) << to_string(h);
  }
}

TEST(LinkLoad, PerLevelMaximaAreConsistent) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  LoadEvaluator eval(xgft);
  util::Rng rng{5};
  const auto tm = TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
  const auto result = eval.evaluate(tm, Heuristic::kDModK, 1, rng);
  double overall = 0.0;
  ASSERT_EQ(result.max_up_load_per_level.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    overall = std::max({overall, result.max_up_load_per_level[l],
                        result.max_down_load_per_level[l]});
  }
  EXPECT_DOUBLE_EQ(overall, result.max_load);
}

TEST(LinkLoad, EvaluatorIsReusable) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  LoadEvaluator eval(xgft);
  util::Rng rng{6};
  TrafficMatrix heavy(xgft.num_hosts());
  heavy.add(0, 7, 10.0);
  TrafficMatrix light(xgft.num_hosts());
  light.add(0, 7, 1.0);
  EXPECT_DOUBLE_EQ(eval.evaluate(heavy, Heuristic::kDModK, 1, rng).max_load,
                   10.0);
  // A second evaluation must not see stale loads.
  EXPECT_DOUBLE_EQ(eval.evaluate(light, Heuristic::kDModK, 1, rng).max_load,
                   1.0);
}


TEST(LinkLoadCache, CachedEqualsUncachedForEveryHeuristic) {
  // The path cache must be invisible: identical link loads (exact doubles,
  // same accumulation order) for every heuristic, including the randomized
  // ones (which bypass the cache and must consume the same RNG draws).
  const Xgft xgft{XgftSpec{{2, 3, 4}, {2, 2, 3}}};
  for (const Heuristic h : route::all_heuristics()) {
    LoadEvaluator cached(xgft);
    LoadEvaluator uncached(xgft);
    uncached.set_path_cache_enabled(false);
    ASSERT_TRUE(cached.path_cache_enabled());
    ASSERT_FALSE(uncached.path_cache_enabled());
    util::Rng rng_a{77};
    util::Rng rng_b{77};
    for (int sample = 0; sample < 4; ++sample) {
      util::Rng perm_rng{100 + static_cast<std::uint64_t>(sample)};
      const auto tm =
          TrafficMatrix::random_permutation(xgft.num_hosts(), perm_rng);
      const auto with = cached.evaluate(tm, h, 3, rng_a);
      const auto without = uncached.evaluate(tm, h, 3, rng_b);
      EXPECT_EQ(with.max_load, without.max_load)
          << to_string(h) << " sample " << sample;
      EXPECT_EQ(with.argmax, without.argmax) << to_string(h);
      EXPECT_EQ(with.max_up_load_per_level, without.max_up_load_per_level)
          << to_string(h);
      EXPECT_EQ(with.max_down_load_per_level,
                without.max_down_load_per_level)
          << to_string(h);
      EXPECT_EQ(cached.link_loads(), uncached.link_loads()) << to_string(h);
    }
  }
}

TEST(LinkLoadCache, RepeatedEvaluationsMatchFreshEvaluator) {
  // Cache hits on later samples must reproduce what a cold evaluator
  // computes from scratch.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  LoadEvaluator warm(xgft);
  util::Rng rng{9};
  for (int sample = 0; sample < 3; ++sample) {
    util::Rng perm_rng{200 + static_cast<std::uint64_t>(sample)};
    const auto tm =
        TrafficMatrix::random_permutation(xgft.num_hosts(), perm_rng);
    const auto warm_result = warm.evaluate(tm, Heuristic::kDisjoint, 2, rng);
    LoadEvaluator cold(xgft);
    util::Rng cold_rng{9};
    const auto cold_result =
        cold.evaluate(tm, Heuristic::kDisjoint, 2, cold_rng);
    EXPECT_EQ(warm_result.max_load, cold_result.max_load);
    EXPECT_EQ(warm.link_loads(), cold.link_loads());
  }
}

TEST(LinkLoadCache, HeuristicSwitchInvalidatesCache) {
  // Switching (heuristic, K) between calls must not serve stale paths.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  LoadEvaluator eval(xgft);
  util::Rng rng{3};
  util::Rng perm_rng{4};
  const auto tm =
      TrafficMatrix::random_permutation(xgft.num_hosts(), perm_rng);
  const double dmodk = eval.evaluate(tm, Heuristic::kDModK, 1, rng).max_load;
  const double umulti =
      eval.evaluate(tm, Heuristic::kUmulti, 1, rng).max_load;
  const double dmodk_again =
      eval.evaluate(tm, Heuristic::kDModK, 1, rng).max_load;
  const double k2 = eval.evaluate(tm, Heuristic::kDisjoint, 2, rng).max_load;
  const double k4 = eval.evaluate(tm, Heuristic::kDisjoint, 4, rng).max_load;
  EXPECT_EQ(dmodk, dmodk_again);
  EXPECT_LE(umulti, dmodk);  // unlimited multi-path never loads more
  LoadEvaluator fresh(xgft);
  util::Rng fresh_rng{3};
  EXPECT_EQ(k2, fresh.evaluate(tm, Heuristic::kDisjoint, 2, fresh_rng)
                    .max_load);
  EXPECT_EQ(k4, fresh.evaluate(tm, Heuristic::kDisjoint, 4, fresh_rng)
                    .max_load);
}

}  // namespace
