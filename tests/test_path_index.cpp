#include <gtest/gtest.h>

#include <set>

#include "core/path_index.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmpr;
using route::choice_stride;
using route::decode_path_index;
using route::encode_path_index;
using route::materialize_path;
using topo::Xgft;
using topo::XgftSpec;

TEST(PathIndex, ChoiceStrides) {
  // Figure 3 topology: w = (1,4,2), NCA at level 3.
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};
  EXPECT_EQ(choice_stride(spec, 3, 0), 8u);  // j_1 stride = w_2*w_3
  EXPECT_EQ(choice_stride(spec, 3, 1), 2u);  // j_2 stride = w_3
  EXPECT_EQ(choice_stride(spec, 3, 2), 1u);  // j_3 stride = 1
}

TEST(PathIndex, DecodeEncodeKnownValue) {
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};
  // index 7 = 0*8 + 3*2 + 1.
  const auto choices = decode_path_index(spec, 3, 7);
  ASSERT_EQ(choices.size(), 3u);
  EXPECT_EQ(choices[0], 0u);
  EXPECT_EQ(choices[1], 3u);
  EXPECT_EQ(choices[2], 1u);
  EXPECT_EQ(encode_path_index(spec, 3, choices), 7u);
}

TEST(PathIndex, SelfPairIsEmptyPath) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const auto path = materialize_path(xgft, 5, 5, 0);
  EXPECT_TRUE(path.links.empty());
  ASSERT_EQ(path.nodes.size(), 1u);
  EXPECT_EQ(path.nodes[0], xgft.host(5));
}

TEST(PathIndex, PathsBijectOntoTopSwitches) {
  // Path i peaks at top-level switch number i in the paper's recursive
  // construction numbering (top switch y of XGFT(k) = w_k*x + j_k with x
  // the sub-tree's top-switch number): the apex's label digits a_l must
  // equal the decoded upward choices j_l.
  const Xgft xgft{XgftSpec{{4, 4, 4}, {1, 4, 2}}};
  const std::uint64_t src = 0;
  const std::uint64_t dst = 63;
  std::set<topo::NodeId> apexes;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto path = materialize_path(xgft, src, dst, i);
    const topo::NodeId apex = path.nodes[3];  // NCA level is 3
    apexes.insert(apex);
    const auto label = xgft.label_of(apex);
    const auto choices = decode_path_index(xgft.spec(), 3, i);
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_EQ(label.digits[l], choices[l]) << "path " << i;
    }
  }
  // Every top switch of the (whole-fabric) subtree is hit exactly once.
  EXPECT_EQ(apexes.size(), 8u);
}

class PathMaterialization : public testing::TestWithParam<XgftSpec> {};

TEST_P(PathMaterialization, AllPathsValidDistinctAndComplete) {
  const Xgft xgft{GetParam()};
  const std::uint64_t hosts = xgft.num_hosts();
  const std::uint64_t step = hosts > 24 ? hosts / 11 : 1;
  for (std::uint64_t s = 0; s < hosts; s += step) {
    for (std::uint64_t d = 0; d < hosts; d += step) {
      if (s == d) continue;
      const std::uint64_t total = xgft.num_shortest_paths(s, d);
      std::set<std::vector<topo::LinkId>> unique_link_seqs;
      for (std::uint64_t i = 0; i < total; ++i) {
        const auto path = materialize_path(xgft, s, d, i);
        lmpr::test::expect_valid_path(xgft, s, d, path);
        EXPECT_EQ(path.index, i);
        unique_link_seqs.insert(path.links);
      }
      // Property 1: exactly prod w_i distinct shortest paths.
      EXPECT_EQ(unique_link_seqs.size(), total);
    }
  }
}

TEST_P(PathMaterialization, AppendLinksMatchesMaterialize) {
  const Xgft xgft{GetParam()};
  const std::uint64_t hosts = xgft.num_hosts();
  util::Rng rng{4};
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t s = rng.below(hosts);
    const std::uint64_t d = rng.below(hosts);
    if (s == d) continue;
    const std::uint64_t i = rng.below(xgft.num_shortest_paths(s, d));
    const auto path = materialize_path(xgft, s, d, i);
    std::vector<topo::LinkId> links;
    route::append_path_links(xgft, s, d, i, links);
    EXPECT_EQ(links, path.links);
  }
}

TEST_P(PathMaterialization, DecodeEncodeRoundTripAllIndices) {
  const XgftSpec& spec = GetParam();
  for (std::uint32_t nca = 1; nca <= spec.height(); ++nca) {
    const std::uint64_t total = spec.w_prefix_product(nca);
    for (std::uint64_t i = 0; i < total; ++i) {
      const auto choices = decode_path_index(spec, nca, i);
      EXPECT_EQ(encode_path_index(spec, nca, choices), i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PathMaterialization,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

}  // namespace
