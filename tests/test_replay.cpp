// Tests for the dynamic fault-replay engine (src/replay): determinism of
// the epoch-windowed metrics across all three flit kernels and across
// reruns,
// the drop vs reroute_at_switch fault policies, the zero-completion
// window guard, and the byte-stable golden JSON report for the pinned
// replay_quick run.  Everything here carries the `replay` ctest label
// (CI runs it as its own step; the plain suite excludes it with -LE).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "engine/replay_support.hpp"
#include "engine/sinks.hpp"
#include "fm/events.hpp"
#include "replay/replay.hpp"

namespace lmpr {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

fm::EventScript quick_script() {
  auto script =
      fm::parse_event_script(std::string(engine::replay_quick_script()));
  EXPECT_TRUE(script.ok) << script.error;
  return script;
}

replay::ReplayResult run_quick(flit::Kernel kernel,
                               flit::DropPolicy drop_policy) {
  replay::ReplayConfig config = engine::quick_replay_config();
  config.sim.kernel = kernel;
  config.sim.drop_policy = drop_policy;
  replay::ReplayEngine engine({{4, 4}, {2, 2}}, config);
  EXPECT_TRUE(engine.ok()) << engine.error();
  replay::ReplayResult result = engine.run(quick_script());
  EXPECT_TRUE(result.ok) << result.error;
  return result;
}

// The acceptance criterion the ISSUE names: the same seed and script must
// produce IDENTICAL windowed metrics on all three kernels, and across
// reruns.  WindowMetrics comparison is exact (defaulted operator==,
// doubles included) -- any drift in grant order, event timing or the
// table-swap cycle shows up here.  For the event kernel this also pins
// that epoch boundaries land on exact cycles despite the fast-forward
// (run_until clamps the jump to the epoch edge).
TEST(Replay, WindowedMetricsDeterministicAcrossKernelsAndReruns) {
  const auto active = run_quick(flit::Kernel::kActiveSet,
                                flit::DropPolicy::kDrop);
  const auto active_again = run_quick(flit::Kernel::kActiveSet,
                                      flit::DropPolicy::kDrop);
  const auto reference = run_quick(flit::Kernel::kReference,
                                   flit::DropPolicy::kDrop);
  const auto event = run_quick(flit::Kernel::kEvent, flit::DropPolicy::kDrop);

  ASSERT_GT(active.epochs.size(), 0u);
  ASSERT_EQ(active.epochs.size(), reference.epochs.size());
  ASSERT_EQ(active.epochs.size(), active_again.epochs.size());
  ASSERT_EQ(active.epochs.size(), event.epochs.size());
  for (std::size_t i = 0; i < active.epochs.size(); ++i) {
    EXPECT_EQ(active.epochs[i].window, reference.epochs[i].window)
        << "kernel divergence in epoch " << i;
    EXPECT_EQ(event.epochs[i].window, reference.epochs[i].window)
        << "event-kernel divergence in epoch " << i;
    EXPECT_EQ(active.epochs[i].window, active_again.epochs[i].window)
        << "rerun divergence in epoch " << i;
    EXPECT_EQ(active.epochs[i].dropped_at_swap,
              reference.epochs[i].dropped_at_swap);
    EXPECT_EQ(active.epochs[i].rerouted_at_swap,
              reference.epochs[i].rerouted_at_swap);
    EXPECT_EQ(event.epochs[i].dropped_at_swap,
              reference.epochs[i].dropped_at_swap);
    EXPECT_EQ(event.epochs[i].rerouted_at_swap,
              reference.epochs[i].rerouted_at_swap);
  }
  for (const auto* other : {&active, &event}) {
    EXPECT_EQ(other->overall.packets_dropped,
              reference.overall.packets_dropped);
    EXPECT_EQ(other->overall.packets_rerouted,
              reference.overall.packets_rerouted);
    EXPECT_EQ(other->overall.messages_delivered,
              reference.overall.messages_delivered);
    EXPECT_EQ(other->overall.messages_lost, reference.overall.messages_lost);
    EXPECT_EQ(other->baseline_delay, reference.baseline_delay);
    EXPECT_EQ(other->peak_delay, reference.peak_delay);
    EXPECT_EQ(other->recovered, reference.recovered);
    EXPECT_EQ(other->recovery_cycles, reference.recovery_cycles);
  }
}

// Epoch boundaries must tile the whole timeline back-to-back and stamp
// every script event onto an edge.
TEST(Replay, EpochsTileTheTimelineAndCarryTheEvents) {
  const auto result = run_quick(flit::Kernel::kActiveSet,
                                flit::DropPolicy::kDrop);
  const replay::ReplayConfig config = engine::quick_replay_config();
  const std::uint64_t horizon = config.sim.warmup_cycles +
                                config.sim.measure_cycles +
                                config.sim.drain_cycles;
  ASSERT_FALSE(result.epochs.empty());
  EXPECT_EQ(result.epochs.front().window.start_cycle,
            config.sim.warmup_cycles);
  EXPECT_EQ(result.epochs.back().window.end_cycle, horizon);
  std::size_t events = 0;
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const auto& window = result.epochs[i].window;
    EXPECT_EQ(result.epochs[i].start_cycle, window.start_cycle);
    EXPECT_LT(window.start_cycle, window.end_cycle);
    if (i > 0) {
      EXPECT_EQ(window.start_cycle, result.epochs[i - 1].window.end_cycle);
    }
    events += result.epochs[i].records.size();
  }
  EXPECT_EQ(events, quick_script().events.size());
  EXPECT_EQ(result.event_errors, 0u);
  // The smoke storm's fault stamps: first at warmup + 3000, last topology
  // event at warmup + 12000.
  EXPECT_EQ(result.first_event_cycle, config.sim.warmup_cycles + 3'000);
  EXPECT_EQ(result.last_event_cycle, config.sim.warmup_cycles + 12'000);
}

// drop loses every packet a fault catches; reroute_at_switch re-homes the
// buffered ones (only packets already serializing over the severed wire
// still drop), so it must never lose more.  The storm is a whole top
// switch dying under congestion (load 0.6) -- that severs four uplinks
// at once with queued output backlog, so the salvage path deterministically
// fires.  Windowed drop/reroute counters must sum to the whole-run
// totals, and packet conservation must hold under both policies.
TEST(Replay, DropVersusRerouteAtSwitch) {
  const auto run_switch_storm = [](flit::DropPolicy drop_policy) {
    replay::ReplayConfig config = engine::quick_replay_config();
    config.sim.offered_load = 0.6;
    config.sim.drop_policy = drop_policy;
    replay::ReplayEngine engine({{4, 4}, {2, 2}}, config);
    EXPECT_TRUE(engine.ok()) << engine.error();
    replay::ReplayResult result = engine.run(fm::parse_event_script(
        "@3000 switch_down 24\n@9000 switch_up 24\n"));
    EXPECT_TRUE(result.ok) << result.error;
    return result;
  };
  const auto dropped = run_switch_storm(flit::DropPolicy::kDrop);
  const auto rerouted = run_switch_storm(flit::DropPolicy::kRerouteAtSwitch);

  EXPECT_EQ(dropped.overall.packets_rerouted, 0u);
  EXPECT_GT(dropped.overall.packets_dropped, 0u)
      << "the smoke storm should catch at least one packet on the wire";
  EXPECT_GT(rerouted.overall.packets_rerouted, 0u)
      << "reroute_at_switch should salvage at least one buffered packet";
  EXPECT_LE(rerouted.overall.packets_dropped,
            dropped.overall.packets_dropped);
  EXPECT_LE(rerouted.overall.messages_lost, dropped.overall.messages_lost);

  for (const auto& result : {dropped, rerouted}) {
    std::uint64_t window_drops = 0;
    std::uint64_t window_reroutes = 0;
    for (const auto& epoch : result.epochs) {
      window_drops += epoch.window.packets_dropped;
      window_reroutes += epoch.window.packets_rerouted;
    }
    EXPECT_EQ(window_drops, result.overall.packets_dropped);
    EXPECT_EQ(window_reroutes, result.overall.packets_rerouted);
    EXPECT_EQ(result.overall.packets_generated,
              result.overall.packets_delivered +
                  result.overall.packets_dropped +
                  result.overall.packets_outstanding);
    EXPECT_LE(result.overall.messages_lost, result.overall.packets_dropped);
  }
}

// The division-by-zero guard: at starvation load most windows complete
// zero messages, and those windows must report exactly 0 delay (not NaN)
// with every field finite.
TEST(Replay, ZeroMessageWindowsReportZeroDelay) {
  replay::ReplayConfig config;
  config.sim.warmup_cycles = 200;
  config.sim.measure_cycles = 2'000;
  config.sim.drain_cycles = 400;
  config.sim.offered_load = 0.02;  // one message per ~3200 cycles per host
  config.sim.seed = 7;
  config.fm.zero_timings = true;
  config.window_cycles = 100;
  replay::ReplayEngine engine({{4, 4}, {2, 2}}, config);
  ASSERT_TRUE(engine.ok()) << engine.error();
  const auto result =
      engine.run(fm::parse_event_script("@600 cable_down 0 17\n"));
  ASSERT_TRUE(result.ok) << result.error;

  std::size_t empty_windows = 0;
  for (const auto& epoch : result.epochs) {
    const auto& window = epoch.window;
    if (window.messages_delivered == 0) {
      ++empty_windows;
      EXPECT_EQ(window.mean_message_delay, 0.0);
      EXPECT_EQ(window.p99_message_delay, 0.0);
    }
    EXPECT_TRUE(std::isfinite(window.mean_message_delay));
    EXPECT_TRUE(std::isfinite(window.p99_message_delay));
    EXPECT_TRUE(std::isfinite(window.throughput));
    EXPECT_TRUE(std::isfinite(window.max_link_utilization));
  }
  EXPECT_GT(empty_windows, 0u)
      << "starvation load should produce zero-completion windows";
  EXPECT_TRUE(std::isfinite(result.baseline_delay));
  EXPECT_TRUE(std::isfinite(result.peak_delay));
}

// Config validation and one-shot semantics.
TEST(Replay, RejectsBadConfigAndLateStamps) {
  replay::ReplayConfig config = engine::quick_replay_config();
  config.window_cycles = 0;
  replay::ReplayEngine bad_window({{4, 4}, {2, 2}}, config);
  EXPECT_FALSE(bad_window.ok());

  replay::ReplayEngine engine({{4, 4}, {2, 2}},
                              engine::quick_replay_config());
  ASSERT_TRUE(engine.ok()) << engine.error();
  const auto late =
      engine.run(fm::parse_event_script("@999999 cable_down 0 16\n"));
  EXPECT_FALSE(late.ok);
  EXPECT_NE(late.error.find("measurement window"), std::string::npos)
      << late.error;
}

// A script with no topology events trivially counts as recovered and
// perturbs nothing: the run must match an event-free run window for
// window.
TEST(Replay, QueryOnlyScriptIsRecoveredAndUnperturbed) {
  replay::ReplayConfig config = engine::quick_replay_config();
  replay::ReplayEngine with_queries({{4, 4}, {2, 2}}, config);
  replay::ReplayEngine without({{4, 4}, {2, 2}}, config);
  ASSERT_TRUE(with_queries.ok()) << with_queries.error();
  ASSERT_TRUE(without.ok()) << without.error();
  const auto queried = with_queries.run(
      fm::parse_event_script("@4000 query 0 9\n@8000 query 3 12\n"));
  const auto clean = without.run(fm::EventScript{true, {}, {}});
  ASSERT_TRUE(queried.ok) << queried.error;
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_TRUE(queried.recovered);
  EXPECT_TRUE(clean.recovered);
  EXPECT_EQ(queried.overall.packets_dropped, 0u);
  // Query boundaries split epochs differently, so compare totals.
  EXPECT_EQ(queried.overall.messages_delivered,
            clean.overall.messages_delivered);
  EXPECT_EQ(queried.overall.throughput, clean.overall.throughput);
}

// Golden-file test: the replay_quick JSON run report must stay
// byte-stable (schema AND numbers).  Regenerate consciously with:
//   build/lmpr replay --script scripts/replay_smoke.script --zero-timings
//       --json tests/golden/replay_quick.json   (one command line)
TEST(ReplayReport, QuickGoldenFile) {
  engine::ReplayRunOptions options;
  options.config = engine::quick_replay_config();
  engine::Report report;
  std::string error;
  ASSERT_TRUE(engine::run_replay(options, quick_script(), report, error))
      << error;
  EXPECT_EQ(report.scenario, "replay");
  EXPECT_TRUE(report.converged);

  const std::string got = engine::JsonSink::document({report}).dump(2) + "\n";
  const std::string want =
      slurp(std::string(LMPR_GOLDEN_DIR) + "/replay_quick.json");
  EXPECT_EQ(got, want) << "replay quick report drifted from golden file";
}

// Golden-pinned event-kernel replay: the same smoke storm run with
// --kernel event must produce the byte-identical JSON report -- the
// report does not echo the kernel, so identical cycle stamps and window
// numbers mean identical bytes.  This is the strongest single check that
// the event kernel's fast-forward never moves an epoch boundary or a
// window metric.
TEST(ReplayReport, EventKernelReproducesGoldenBytes) {
  engine::ReplayRunOptions options;
  options.config = engine::quick_replay_config();
  options.config.sim.kernel = flit::Kernel::kEvent;
  engine::Report report;
  std::string error;
  ASSERT_TRUE(engine::run_replay(options, quick_script(), report, error))
      << error;
  const std::string got = engine::JsonSink::document({report}).dump(2) + "\n";
  const std::string want =
      slurp(std::string(LMPR_GOLDEN_DIR) + "/replay_quick.json");
  EXPECT_EQ(got, want)
      << "event-kernel replay diverged from the pinned golden bytes";
}

// Golden-pinned ADAPTIVE replay: the same smoke storm with the variant
// selector engaged (--select adaptive_credit) must stay byte-stable too,
// and across all three kernels -- the selector decides at injection and
// per-hop arrival, both shared kernel machinery, so identical bytes here
// are the strongest end-to-end check that adaptivity never perturbs an
// epoch boundary, a window metric, or the fault accounting differently
// per kernel.  Regenerate consciously with:
//   build/lmpr replay --script scripts/replay_smoke.script
//       --select adaptive_credit --zero-timings
//       --json tests/golden/replay_adaptive_quick.json  (one command line)
TEST(ReplayReport, AdaptiveGoldenFileAcrossAllKernels) {
  const std::string want =
      slurp(std::string(LMPR_GOLDEN_DIR) + "/replay_adaptive_quick.json");
  for (const flit::Kernel kernel :
       {flit::Kernel::kActiveSet, flit::Kernel::kReference,
        flit::Kernel::kEvent}) {
    engine::ReplayRunOptions options;
    options.config = engine::quick_replay_config();
    options.config.sim.select = flit::SelectPolicy::kAdaptiveCredit;
    options.config.sim.kernel = kernel;
    engine::Report report;
    std::string error;
    ASSERT_TRUE(engine::run_replay(options, quick_script(), report, error))
        << error;
    EXPECT_TRUE(report.converged);
    const std::string got =
        engine::JsonSink::document({report}).dump(2) + "\n";
    EXPECT_EQ(got, want)
        << "adaptive replay report drifted from golden file (kernel "
        << static_cast<int>(kernel) << ")";
  }
  // The golden itself must not be degenerate: the pinned storm has to
  // have exercised real variant switches.
  EXPECT_NE(want.find("\"selector_decisions\": 19524"), std::string::npos);
  EXPECT_NE(want.find("\"selector_switches\": 8030"), std::string::npos);
}

// The CLI smoke script shipped in scripts/ must stay identical to the
// embedded constant the golden test and replay_quick scenario run, or the
// CI byte-diff and the golden file would silently test different storms.
TEST(ReplayReport, SmokeScriptFileMatchesEmbeddedConstant) {
  const std::string file =
      slurp(std::string(LMPR_SCRIPTS_DIR) + "/replay_smoke.script");
  EXPECT_EQ(file, std::string(engine::replay_quick_script()));
}

}  // namespace
}  // namespace lmpr
