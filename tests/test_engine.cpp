#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/runner.hpp"

#ifndef LMPR_GOLDEN_DIR
#define LMPR_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace lmpr::engine;
using lmpr::util::Cli;

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  return Cli(static_cast<int>(args.size()), args.data(), {"full"});
}

TEST(ScenarioRegistry, ContainsEveryMigratedScenario) {
  const auto& registry = ScenarioRegistry::builtin();
  for (const char* name :
       {"fig4a", "fig4b", "fig4c", "fig4d", "table1", "fig5", "theorem1",
        "theorem2", "ablation_level_balance", "ablation_lid_cost",
        "ablation_path_granularity", "ablation_destination_mode",
        "ablation_lft_realizability", "ablation_virtual_channels",
        "adaptive_vs_oblivious", "collectives_workloads",
        "fm_churn_disjoint_vs_shift", "fm_rebalance_vs_first",
        "fm_repair_scaling", "fm_shard_scaling", "generic_vs_xgft", "kernel_grid",
        "oversubscribed_tree",
        "patterns_structured",
        "perf_baseline",
        "price_of_obliviousness", "replay_cable_storm", "replay_quick",
        "resilience_multipath", "serve_throughput", "smodk_vs_dmodk",
        "worst_case_permutations"}) {
    const Scenario* scenario = registry.find(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_FALSE(scenario->description.empty()) << name;
    EXPECT_FALSE(scenario->artifact.empty()) << name;
    EXPECT_FALSE(scenario->quick_params.empty()) << name;
    EXPECT_FALSE(scenario->full_params.empty()) << name;
    EXPECT_TRUE(scenario->run != nullptr) << name;
  }
  EXPECT_EQ(registry.all().size(), 32u);
}

TEST(ScenarioRegistry, FindIsExactMatchOnly) {
  const auto& registry = ScenarioRegistry::builtin();
  EXPECT_EQ(registry.find("fig4"), nullptr);
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);
}

TEST(GlobMatch, PatternSemantics) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("fig4?", "fig4a"));
  EXPECT_FALSE(glob_match("fig4?", "fig4"));
  EXPECT_FALSE(glob_match("fig4?", "fig4ab"));
  EXPECT_TRUE(glob_match("ablation_*", "ablation_lid_cost"));
  EXPECT_FALSE(glob_match("ablation_*", "adaptive_vs_oblivious"));
  EXPECT_TRUE(glob_match("*mod*", "smodk_vs_dmodk"));
  EXPECT_TRUE(glob_match("theorem1", "theorem1"));
  EXPECT_FALSE(glob_match("theorem1", "theorem2"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(ScenarioRegistry, MatchReturnsRegistrationOrder) {
  const auto matched = ScenarioRegistry::builtin().match("fig4?");
  ASSERT_EQ(matched.size(), 4u);
  EXPECT_EQ(matched[0]->name, "fig4a");
  EXPECT_EQ(matched[1]->name, "fig4b");
  EXPECT_EQ(matched[2]->name, "fig4c");
  EXPECT_EQ(matched[3]->name, "fig4d");
}

TEST(CommonOptions, ParsesSharedFlags) {
  const auto cli = make_cli(
      {"--full", "--seed", "11", "--workers", "3", "--topo", "2;8,8;1,8",
       "--csv", "/tmp/out.csv"});
  const auto options = CommonOptions::from_cli(cli);
  EXPECT_TRUE(options.full);
  EXPECT_EQ(options.seed, 11u);
  EXPECT_EQ(options.workers, 3u);
  EXPECT_EQ(options.topo, "2;8,8;1,8");
  EXPECT_EQ(options.csv_path, "/tmp/out.csv");
}

TEST(CommonOptions, RejectsUnknownFlagsWithOffenderListed) {
  const auto cli = make_cli({"--fulll"});
  try {
    CommonOptions::from_cli(cli);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--fulll"), std::string::npos)
        << error.what();
  }
}

TEST(CommonOptions, CallerQueriedFlagsAreNotUnknown) {
  const auto cli = make_cli({"--json", "/tmp/report.json", "--seed", "5"});
  EXPECT_EQ(cli.get_or("json", ""), "/tmp/report.json");
  const auto options = CommonOptions::from_cli(cli);  // must not throw
  EXPECT_EQ(options.seed, 5u);
}

TEST(RunContext, DerivedSeedIsDeterministicAndTagSensitive) {
  CommonOptions options;
  options.seed = 7;
  const RunContext a(options);
  const RunContext b(options);
  EXPECT_EQ(a.derived_seed("fig5"), b.derived_seed("fig5"));
  EXPECT_NE(a.derived_seed("fig5"), a.derived_seed("table1"));
  options.seed = 8;
  const RunContext c(options);
  EXPECT_NE(a.derived_seed("fig5"), c.derived_seed("fig5"));
}

Report run_theorem1_quick() {
  const Scenario* scenario = ScenarioRegistry::builtin().find("theorem1");
  if (scenario == nullptr) throw std::runtime_error("theorem1 missing");
  CommonOptions options;
  options.seed = 7;
  options.workers = 2;
  Report report = run_scenario(*scenario, options, {});
  report.duration_seconds = 0.0;  // the only nondeterministic field
  return report;
}

TEST(JsonReport, StampsProvenance) {
  const Report report = run_theorem1_quick();
  EXPECT_EQ(report.scenario, "theorem1");
  EXPECT_EQ(report.family, "flow");
  EXPECT_FALSE(report.full_scale);
  EXPECT_EQ(report.seed, 7u);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.samples, 0u);

  const std::string text = JsonSink::to_json(report).dump(2);
  for (const char* needle :
       {"\"scenario\": \"theorem1\"", "\"artifact\": \"Theorem 1\"",
        "\"family\": \"flow\"", "\"scale\": \"quick\"", "\"seed\": 7",
        "\"converged\": true", "\"samples\":", "\"duration_seconds\": 0",
        "\"config\":", "\"metrics\":", "\"series\":"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing " << needle << " in:\n" << text;
  }
}

// Golden-file test: the quick-scale theorem1 JSON report must stay
// byte-stable (schema AND numbers) for seed 7.  Regenerate consciously
// with:  build/lmpr run theorem1 --seed 7 --workers 2 --json <golden>
// then zero the duration_seconds field.
TEST(JsonReport, Theorem1QuickGoldenFile) {
  const Report report = run_theorem1_quick();
  const std::string got =
      JsonSink::document({report}).dump(2) + "\n";

  const std::string path =
      std::string(LMPR_GOLDEN_DIR) + "/theorem1_quick.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "theorem1 quick report drifted from " << path;
}

}  // namespace
