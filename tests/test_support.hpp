// Shared fixtures for the test suite: the topology grid that property
// tests sweep over, and small helpers for checking path well-formedness.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/path_index.hpp"
#include "topology/spec.hpp"
#include "topology/xgft.hpp"

namespace lmpr::test {

/// Topologies the property tests sweep: paper instances plus irregular
/// arities and w_1 > 1 cases (hosts with several parents) to exercise the
/// general XGFT definition, not just m-port n-trees.
inline std::vector<topo::XgftSpec> property_grid() {
  using topo::XgftSpec;
  return {
      XgftSpec{{4}, {2}},                 // 1-level, multi-parent hosts
      XgftSpec{{2, 2}, {2, 2}},           // GFT(2;2,2)
      XgftSpec::m_port_n_tree(4, 2),      // XGFT(2;2,4;1,2)
      XgftSpec::m_port_n_tree(8, 2),      // XGFT(2;4,8;1,4)
      XgftSpec::k_ary_n_tree(2, 3),       // XGFT(3;2,2,2;1,2,2)
      XgftSpec{{4, 4, 4}, {1, 4, 2}},     // the paper's Figure 3 topology
      XgftSpec{{3, 5}, {2, 3}},           // irregular arities
      XgftSpec{{2, 3, 4}, {2, 2, 3}},     // irregular, 3 levels, w1 = 2
      XgftSpec::m_port_n_tree(8, 3),      // XGFT(3;4,4,8;1,4,4)
  };
}

/// Human-readable parameterized-test name for a grid index.
inline std::string grid_name(const testing::TestParamInfo<topo::XgftSpec>& p) {
  std::string name = p.param.to_string();
  std::string out;
  for (char ch : name) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      out.push_back(ch);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

/// Asserts that `path` is a well-formed shortest path from src to dst:
/// consecutive links share a node, the walk goes up for nca hops then down
/// for nca hops, and the endpoints are the given hosts.
inline void expect_valid_path(const topo::Xgft& xgft, std::uint64_t src,
                              std::uint64_t dst, const route::Path& path) {
  ASSERT_FALSE(path.nodes.empty());
  EXPECT_EQ(path.nodes.front(), xgft.host(src));
  EXPECT_EQ(path.nodes.back(), xgft.host(dst));
  if (src == dst) {
    EXPECT_TRUE(path.links.empty());
    return;
  }
  const std::uint32_t nca = xgft.nca_level(src, dst);
  ASSERT_EQ(path.links.size(), 2u * nca);
  ASSERT_EQ(path.nodes.size(), 2u * nca + 1);
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const topo::Link& link = xgft.link(path.links[i]);
    EXPECT_EQ(link.src, path.nodes[i]) << "hop " << i;
    EXPECT_EQ(link.dst, path.nodes[i + 1]) << "hop " << i;
    EXPECT_EQ(link.up, i < nca) << "hop " << i;
  }
  // Apex is at the NCA level.
  EXPECT_EQ(xgft.level_of(path.nodes[nca]), nca);
}

}  // namespace lmpr::test
