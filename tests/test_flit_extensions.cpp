// Tests for the flit-simulator extensions: virtual channels, adaptive
// routing, and delay quantiles.
#include <gtest/gtest.h>

#include "flit/network.hpp"
#include "flit/sweep.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using flit::Network;
using flit::RoutingMode;
using flit::SimConfig;
using route::Heuristic;
using route::RouteTable;
using topo::Xgft;
using topo::XgftSpec;

SimConfig quick_config(double load) {
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 6000;
  config.drain_cycles = 4000;
  config.offered_load = load;
  config.seed = 5;
  return config;
}

TEST(VirtualChannels, AllVcCountsDeliverEverythingAtLowLoad) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  for (const std::uint32_t vcs : {1u, 2u, 4u}) {
    auto config = quick_config(0.2);
    config.num_vcs = vcs;
    Network network(table, config);
    const auto metrics = network.run();
    EXPECT_DOUBLE_EQ(metrics.delivered_fraction(), 1.0) << vcs << " VCs";
    EXPECT_NEAR(metrics.throughput, 0.2, 0.03) << vcs << " VCs";
  }
}

TEST(VirtualChannels, MoreVcsDoNotReduceSaturationThroughput) {
  // VCs attack head-of-line blocking: throughput at high load with 4 VCs
  // must be at least that of 1 VC (modulo small noise).
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  auto config1 = quick_config(0.9);
  config1.num_vcs = 1;
  auto config4 = quick_config(0.9);
  config4.num_vcs = 4;
  const double thr1 = Network(table, config1).run().throughput;
  const double thr4 = Network(table, config4).run().throughput;
  EXPECT_GE(thr4, thr1 * 0.95);
}

TEST(VirtualChannels, DeterministicForFixedSeed) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2);
  auto config = quick_config(0.5);
  config.num_vcs = 2;
  const auto a = Network(table, config).run();
  const auto b = Network(table, config).run();
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_DOUBLE_EQ(a.message_delay.mean(), b.message_delay.mean());
}

TEST(AdaptiveRouting, DeliversEverythingAtLowLoad) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);  // unused for routing
  auto config = quick_config(0.2);
  config.routing_mode = RoutingMode::kAdaptive;
  Network network(table, config);
  const auto metrics = network.run();
  EXPECT_DOUBLE_EQ(metrics.delivered_fraction(), 1.0);
  EXPECT_NEAR(metrics.throughput, 0.2, 0.03);
}

TEST(AdaptiveRouting, WorksOnMultiParentHosts) {
  const Xgft xgft{XgftSpec{{2, 3, 4}, {2, 2, 3}}};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  auto config = quick_config(0.15);
  config.routing_mode = RoutingMode::kAdaptive;
  Network network(table, config);
  EXPECT_DOUBLE_EQ(network.run().delivered_fraction(), 1.0);
}

TEST(AdaptiveRouting, DeterministicForFixedSeed) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  auto config = quick_config(0.5);
  config.routing_mode = RoutingMode::kAdaptive;
  const auto a = Network(table, config).run();
  const auto b = Network(table, config).run();
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_DOUBLE_EQ(a.message_delay.mean(), b.message_delay.mean());
}

TEST(AdaptiveRouting, BeatsDmodkOnPersistentPermutations) {
  // Under a fixed pairing, persistent d-mod-k collisions throttle flows;
  // the adaptive router spreads them and must sustain clearly more
  // traffic at a load beyond d-mod-k's saturation.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  auto oblivious = quick_config(0.8);
  auto adaptive = quick_config(0.8);
  adaptive.routing_mode = RoutingMode::kAdaptive;
  const double thr_obl = Network(table, oblivious).run().throughput;
  const double thr_ada = Network(table, adaptive).run().throughput;
  EXPECT_GT(thr_ada, thr_obl);
}

TEST(Hotspot, SaturatesEarlierThanUniform) {
  // 20% of traffic converging on one host caps its access link far below
  // the uniform saturation point; aggregate throughput must fall below a
  // per-message uniform run at the same offered load.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 4);
  auto hotspot = quick_config(0.6);
  hotspot.destination_mode = flit::DestinationMode::kHotspot;
  hotspot.hotspot_fraction = 0.2;
  hotspot.hotspot_target = 5;
  auto uniform = quick_config(0.6);
  uniform.destination_mode = flit::DestinationMode::kPerMessage;
  const auto hot = Network(table, hotspot).run();
  const auto uni = Network(table, uniform).run();
  EXPECT_LT(hot.throughput, uni.throughput);
  EXPECT_LT(hot.delivered_fraction(), 1.0);
}

TEST(Hotspot, ZeroFractionDegeneratesToUniform) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  auto config = quick_config(0.3);
  config.destination_mode = flit::DestinationMode::kHotspot;
  config.hotspot_fraction = 0.0;
  const auto metrics = Network(table, config).run();
  EXPECT_DOUBLE_EQ(metrics.delivered_fraction(), 1.0);
  EXPECT_NEAR(metrics.throughput, 0.3, 0.05);
}

TEST(DelayQuantiles, PopulatedAndOrdered) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  Network network(table, quick_config(0.4));
  const auto metrics = network.run();
  ASSERT_GT(metrics.message_delay_dist.sample_size(), 50u);
  EXPECT_LE(metrics.message_delay_dist.median(),
            metrics.message_delay_dist.p99());
  // The mean lies between the extremes of the distribution.
  EXPECT_GE(metrics.message_delay.mean(),
            metrics.message_delay_dist.quantile(0.0));
  EXPECT_LE(metrics.message_delay.mean(),
            metrics.message_delay_dist.quantile(1.0));
}

TEST(Reordering, SinglePathDeliversInOrder) {
  // One path per pair + FIFO buffers: no reordering possible.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  Network network(table, quick_config(0.5));
  const auto metrics = network.run();
  EXPECT_GT(metrics.packets_delivered, 1000u);
  EXPECT_EQ(metrics.packets_out_of_order, 0u);
}

TEST(Reordering, MultiPathReordersAtLoad) {
  // Any multi-path split produces out-of-order deliveries once queues
  // differ across paths.  (Empirically per-MESSAGE splitting reorders
  // even more per packet than per-packet splitting here: an overtaking
  // message displaces all of an earlier message's packets at once.)
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 4);
  for (const flit::PathSelection mode :
       {flit::PathSelection::kRandomPerPacket,
        flit::PathSelection::kRandomPerMessage}) {
    auto config = quick_config(0.6);
    config.path_selection = mode;
    const auto metrics = Network(table, config).run();
    EXPECT_GT(metrics.packets_out_of_order, 0u) << static_cast<int>(mode);
    EXPECT_LT(metrics.out_of_order_fraction(), 0.5);
  }
}

TEST(Conservation, GeneratedEqualsDeliveredPlusOutstanding) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDisjoint, 2);
  auto config = quick_config(0.3);
  config.drain_cycles = 8000;
  Network network(table, config);
  const auto metrics = network.run();
  EXPECT_EQ(metrics.packets_generated,
            metrics.packets_delivered + metrics.packets_outstanding);
  // Injection continues through the drain, so only the tail generated in
  // the last moments may remain in flight: a tiny fraction at low load.
  EXPECT_LT(metrics.packets_outstanding, metrics.packets_generated / 50);
}

TEST(Conservation, SaturationLeavesPacketsInFlight) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  Network network(table, quick_config(0.95));
  const auto metrics = network.run();
  EXPECT_GT(metrics.packets_outstanding, 0u);
  EXPECT_EQ(metrics.packets_generated,
            metrics.packets_delivered + metrics.packets_outstanding);
}

TEST(DelayQuantiles, SweepExposesPercentiles) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const RouteTable table(xgft, Heuristic::kDModK, 1);
  const auto result =
      flit::run_load_sweep(table, quick_config(0.0), {0.2, 0.5});
  for (const auto& p : result.points) {
    EXPECT_GT(p.median_message_delay, 0.0);
    EXPECT_GE(p.p99_message_delay, p.median_message_delay);
  }
}

}  // namespace
