#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "discovery/io.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using discovery::load_fabric;
using discovery::RawFabric;
using discovery::save_fabric;

TEST(FabricIo, SaveLoadRoundTrip) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 2)};
  util::Rng rng{4};
  const auto original = discovery::export_fabric(xgft, &rng);
  std::stringstream buffer;
  save_fabric(original, buffer);
  const auto loaded = load_fabric(buffer);
  EXPECT_EQ(loaded.num_nodes, original.num_nodes);
  EXPECT_EQ(loaded.hosts, original.hosts);
  EXPECT_EQ(loaded.cables, original.cables);
  // And it still recognizes.
  const auto result = discovery::recognize_xgft(loaded);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec, xgft.spec());
}

TEST(FabricIo, ParsesCommentsAndBlankLines) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "fabric 3   # trailing comment\n"
      "host 0 1\n"
      "cable 0 2\n"
      "cable 1 2\n");
  const auto fabric = load_fabric(in);
  EXPECT_EQ(fabric.num_nodes, 3u);
  EXPECT_EQ(fabric.hosts.size(), 2u);
  EXPECT_EQ(fabric.cables.size(), 2u);
}

TEST(FabricIo, RejectsMissingHeader) {
  std::stringstream in("host 0\n");
  EXPECT_THROW(load_fabric(in), std::runtime_error);
}

TEST(FabricIo, RejectsOutOfRangeIds) {
  std::stringstream in("fabric 2\nhost 0\ncable 0 5\n");
  EXPECT_THROW(load_fabric(in), std::runtime_error);
}

TEST(FabricIo, RejectsUnknownDirective) {
  std::stringstream in("fabric 2\nswitch 1\n");
  EXPECT_THROW(load_fabric(in), std::runtime_error);
}

TEST(FabricIo, RejectsDuplicateHeader) {
  std::stringstream in("fabric 2\nfabric 2\n");
  EXPECT_THROW(load_fabric(in), std::runtime_error);
}

TEST(FabricIo, ErrorsCarryLineNumbers) {
  std::stringstream in("fabric 2\nhost 0\ncable 0 9\n");
  try {
    load_fabric(in);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
