#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "discovery/io.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using discovery::load_fabric;
using discovery::RawFabric;
using discovery::save_fabric;

TEST(FabricIo, SaveLoadRoundTrip) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 2)};
  util::Rng rng{4};
  const auto original = discovery::export_fabric(xgft, &rng);
  std::stringstream buffer;
  save_fabric(original, buffer);
  const auto loaded = load_fabric(buffer);
  EXPECT_EQ(loaded.num_nodes, original.num_nodes);
  EXPECT_EQ(loaded.hosts, original.hosts);
  EXPECT_EQ(loaded.cables, original.cables);
  // And it still recognizes.
  const auto result = discovery::recognize_xgft(loaded);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec, xgft.spec());
}

TEST(FabricIo, ParsesCommentsAndBlankLines) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "fabric 3   # trailing comment\n"
      "host 0 1\n"
      "cable 0 2\n"
      "cable 1 2\n");
  const auto fabric = load_fabric(in);
  EXPECT_EQ(fabric.num_nodes, 3u);
  EXPECT_EQ(fabric.hosts.size(), 2u);
  EXPECT_EQ(fabric.cables.size(), 2u);
}

TEST(FabricIo, RejectsMissingHeader) {
  std::stringstream in("host 0\n");
  EXPECT_THROW(load_fabric(in), std::runtime_error);
}

TEST(FabricIo, RejectsOutOfRangeIds) {
  std::stringstream in("fabric 2\nhost 0\ncable 0 5\n");
  EXPECT_THROW(load_fabric(in), std::runtime_error);
}

TEST(FabricIo, RejectsUnknownDirective) {
  std::stringstream in("fabric 2\nswitch 1\n");
  EXPECT_THROW(load_fabric(in), std::runtime_error);
}

TEST(FabricIo, RejectsDuplicateHeader) {
  std::stringstream in("fabric 2\nfabric 2\n");
  EXPECT_THROW(load_fabric(in), std::runtime_error);
}

TEST(FabricIo, ErrorsCarryLineNumbers) {
  std::stringstream in("fabric 2\nhost 0\ncable 0 9\n");
  try {
    load_fabric(in);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("line 3"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Total (non-throwing) parser: try_load_fabric over a malformed corpus.
// Every case must come back ok=false with a line-numbered diagnostic --
// never crash, never throw.
// ---------------------------------------------------------------------------

discovery::FabricParseResult parse(const std::string& text) {
  std::stringstream in(text);
  return discovery::try_load_fabric(in);
}

TEST(FabricIoCorpus, TryLoadRoundTripMatchesThrowingLoader) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 2)};
  util::Rng rng{4};
  const auto original = discovery::export_fabric(xgft, &rng);
  std::stringstream buffer;
  save_fabric(original, buffer);
  const auto result = discovery::try_load_fabric(buffer);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.fabric.num_nodes, original.num_nodes);
  EXPECT_EQ(result.fabric.hosts, original.hosts);
  EXPECT_EQ(result.fabric.cables, original.cables);
  const auto recognized = discovery::recognize_xgft(result.fabric);
  ASSERT_TRUE(recognized.ok) << recognized.error;
  EXPECT_EQ(recognized.spec, xgft.spec());
}

TEST(FabricIoCorpus, TruncatedCableLine) {
  const auto result = parse("fabric 4\nhost 0 1\ncable 0\n");
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 3"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("cable"), std::string::npos) << result.error;
}

TEST(FabricIoCorpus, DuplicateCableEitherOrientation) {
  for (const char* dup : {"cable 0 2", "cable 2 0"}) {
    const auto result = parse(std::string("fabric 3\nhost 0 1\ncable 0 2\n") +
                              dup + "\n");
    ASSERT_FALSE(result.ok) << dup;
    EXPECT_NE(result.error.find("line 4"), std::string::npos) << result.error;
    EXPECT_NE(result.error.find("duplicate cable"), std::string::npos)
        << result.error;
  }
}

TEST(FabricIoCorpus, DuplicateHost) {
  const auto result = parse("fabric 3\nhost 0 1 0\ncable 0 2\n");
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("twice"), std::string::npos) << result.error;
}

TEST(FabricIoCorpus, NonNumericToken) {
  const auto result = parse("fabric 3\nhost 0 x\n");
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
}

TEST(FabricIoCorpus, MissingHeaderReportsDiagnostic) {
  const auto result = parse("host 0\n");
  ASSERT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(FabricIoCorpus, SwitchListedAsHostFailsRecognitionCleanly) {
  // Take a valid XGFT wiring and promote a switch to "host": the parser
  // accepts it (structurally fine) but recognition must reject it with a
  // diagnostic instead of crashing.
  const topo::Xgft xgft{topo::XgftSpec{{2, 2}, {1, 2}}};
  auto fabric = discovery::export_fabric(xgft);
  fabric.hosts.push_back(xgft.node_id(1, 0));
  std::stringstream buffer;
  save_fabric(fabric, buffer);
  const auto reparsed = discovery::try_load_fabric(buffer);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  const auto recognized = discovery::recognize_xgft(reparsed.fabric);
  EXPECT_FALSE(recognized.ok);
  EXPECT_FALSE(recognized.error.empty());
}

}  // namespace
