#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using lmpr::util::CiStoppingRule;
using lmpr::util::OnlineStats;
using lmpr::util::z_critical;

TEST(OnlineStats, MeanAndVarianceMatchDirectComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats stats;
  for (const double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sem(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  lmpr::util::Rng rng{3};
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10.0;
    all.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats stats;
  stats.add(1.0);
  stats.add(2.0);
  OnlineStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 1.5);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(ZCritical, KnownQuantiles) {
  EXPECT_NEAR(z_critical(0.99), 2.5758, 1e-3);
  EXPECT_NEAR(z_critical(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(z_critical(0.90), 1.6449, 1e-3);
}

TEST(OnlineStats, CiHalfWidthShrinksWithSamples) {
  lmpr::util::Rng rng{5};
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci_half_width(0.99), large.ci_half_width(0.99));
}

TEST(CiStoppingRule, RequiresInitialSamples) {
  CiStoppingRule rule;
  rule.initial_samples = 10;
  OnlineStats stats;
  for (int i = 0; i < 9; ++i) stats.add(5.0);
  EXPECT_FALSE(rule.satisfied(stats));
  stats.add(5.0);
  // Constant samples: zero CI width, immediately precise.
  EXPECT_TRUE(rule.satisfied(stats));
}

TEST(CiStoppingRule, NoisyDataNotSatisfiedEarly) {
  CiStoppingRule rule;
  rule.initial_samples = 4;
  rule.relative_precision = 0.001;  // very strict
  OnlineStats stats;
  lmpr::util::Rng rng{7};
  for (int i = 0; i < 4; ++i) stats.add(rng.uniform01());
  EXPECT_FALSE(rule.satisfied(stats));
}

TEST(CiStoppingRule, CapAlwaysStops) {
  CiStoppingRule rule;
  rule.initial_samples = 2;
  rule.max_samples = 8;
  rule.relative_precision = 1e-9;
  OnlineStats stats;
  lmpr::util::Rng rng{9};
  for (int i = 0; i < 8; ++i) stats.add(rng.uniform01() * 100.0);
  EXPECT_TRUE(rule.satisfied(stats));
}

TEST(CiStoppingRule, DoublingSchedule) {
  CiStoppingRule rule;
  rule.initial_samples = 100;
  rule.max_samples = 1000;
  EXPECT_EQ(rule.next_batch_target(0), 100u);
  EXPECT_EQ(rule.next_batch_target(100), 200u);
  EXPECT_EQ(rule.next_batch_target(150), 200u);
  EXPECT_EQ(rule.next_batch_target(200), 400u);
  EXPECT_EQ(rule.next_batch_target(400), 800u);
  EXPECT_EQ(rule.next_batch_target(800), 1000u);  // clamped to the cap
}

TEST(CiStoppingRule, CapStopsEvenWhenCiNeverConverges) {
  CiStoppingRule rule;
  rule.initial_samples = 2;
  rule.max_samples = 16;
  rule.relative_precision = 1e-12;  // unreachable precision
  OnlineStats stats;
  lmpr::util::Rng rng{11};
  for (int i = 0; i < 15; ++i) stats.add(rng.uniform01() * 100.0);
  ASSERT_FALSE(rule.satisfied(stats));  // below the cap, CI still too wide
  stats.add(rng.uniform01() * 100.0);
  EXPECT_TRUE(rule.satisfied(stats));  // exactly at the cap
  stats.add(rng.uniform01() * 100.0);
  EXPECT_TRUE(rule.satisfied(stats));  // and beyond it
}

TEST(CiStoppingRule, InitialBatchAlreadySatisfied) {
  // Low-variance data whose CI is inside the precision band as soon as
  // the initial batch completes: no doubling round should be needed.
  CiStoppingRule rule;
  rule.initial_samples = 100;
  rule.relative_precision = 0.02;
  OnlineStats stats;
  lmpr::util::Rng rng{13};
  for (int i = 0; i < 99; ++i) stats.add(50.0 + 0.01 * rng.uniform01());
  EXPECT_FALSE(rule.satisfied(stats));  // one short of the initial batch
  stats.add(50.0);
  EXPECT_TRUE(rule.satisfied(stats));
  EXPECT_EQ(stats.count(), rule.initial_samples);
}

TEST(CiStoppingRule, NegativeMeanUsesAbsoluteValue) {
  CiStoppingRule rule;
  rule.initial_samples = 100;
  OnlineStats stats;
  lmpr::util::Rng rng{15};
  for (int i = 0; i < 100; ++i) stats.add(-50.0 - 0.01 * rng.uniform01());
  EXPECT_TRUE(rule.satisfied(stats));
}

TEST(CiStoppingRule, DoublingScheduleNonPowerOfTwoInitial) {
  CiStoppingRule rule;
  rule.initial_samples = 30;
  rule.max_samples = 120;
  EXPECT_EQ(rule.next_batch_target(0), 30u);
  EXPECT_EQ(rule.next_batch_target(29), 30u);
  EXPECT_EQ(rule.next_batch_target(30), 60u);
  EXPECT_EQ(rule.next_batch_target(60), 120u);
  EXPECT_EQ(rule.next_batch_target(61), 120u);  // 122 clamps to the cap
}

TEST(CiStoppingRule, DoublingScheduleClampsAtCap) {
  CiStoppingRule rule;
  rule.initial_samples = 100;
  rule.max_samples = 1000;
  // Past the cap the schedule keeps returning the cap; satisfied() is
  // already true there, so callers never loop on it.
  EXPECT_EQ(rule.next_batch_target(1000), 1000u);
  EXPECT_EQ(rule.next_batch_target(5000), 1000u);
}

TEST(CiStoppingRule, ZeroMeanDegenerateStops) {
  CiStoppingRule rule;
  rule.initial_samples = 3;
  OnlineStats stats;
  for (int i = 0; i < 3; ++i) stats.add(0.0);
  EXPECT_TRUE(rule.satisfied(stats));
}

}  // namespace
