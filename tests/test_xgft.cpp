#include <gtest/gtest.h>

#include <set>

#include "test_support.hpp"
#include "topology/xgft.hpp"

namespace {

using lmpr::topo::Link;
using lmpr::topo::NodeId;
using lmpr::topo::Xgft;
using lmpr::topo::XgftSpec;

TEST(Xgft, HostIdsAreDense) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  EXPECT_EQ(xgft.num_hosts(), 128u);
  for (std::uint64_t i = 0; i < xgft.num_hosts(); ++i) {
    EXPECT_EQ(xgft.host(i), static_cast<NodeId>(i));
    EXPECT_TRUE(xgft.is_host(xgft.host(i)));
    EXPECT_EQ(xgft.level_of(xgft.host(i)), 0u);
    EXPECT_EQ(xgft.rank_of(xgft.host(i)), i);
  }
  EXPECT_FALSE(xgft.is_host(xgft.node_id(1, 0)));
}

TEST(Xgft, CableCountMatchesFormula) {
  // Cables = sum_l nodes(l) * w_{l+1}.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  EXPECT_EQ(xgft.num_cables(), 128u * 1 + 32u * 4 + 32u * 4);
  EXPECT_EQ(xgft.num_links(), 2 * xgft.num_cables());
}

TEST(Xgft, NcaLevelKnownPairs) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // XGFT(3;4,4,8;1,4,4)
  EXPECT_EQ(xgft.nca_level(0, 0), 0u);
  EXPECT_EQ(xgft.nca_level(0, 1), 1u);    // same leaf (hosts 0..3)
  EXPECT_EQ(xgft.nca_level(0, 4), 2u);    // same height-2 subtree (0..15)
  EXPECT_EQ(xgft.nca_level(0, 16), 3u);   // different height-2 subtrees
  EXPECT_EQ(xgft.nca_level(127, 0), 3u);
}

TEST(Xgft, NumShortestPathsMatchesProperty1) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // w = (1,4,4)
  EXPECT_EQ(xgft.num_shortest_paths(0, 1), 1u);
  EXPECT_EQ(xgft.num_shortest_paths(0, 4), 4u);
  EXPECT_EQ(xgft.num_shortest_paths(0, 127), 16u);
}

TEST(Xgft, SubtreeMembershipIsContiguous) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  EXPECT_EQ(xgft.num_subtrees(1), 32u);
  EXPECT_EQ(xgft.hosts_per_subtree(1), 4u);
  EXPECT_EQ(xgft.subtree_of(0, 1), 0u);
  EXPECT_EQ(xgft.subtree_of(3, 1), 0u);
  EXPECT_EQ(xgft.subtree_of(4, 1), 1u);
  EXPECT_EQ(xgft.subtree_of(127, 2), 7u);
}

TEST(Xgft, HostDigits) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // m = (4,4,8)
  // host 27 = 1*16 + 2*4 + 3.
  EXPECT_EQ(xgft.host_digit(27, 1), 3u);
  EXPECT_EQ(xgft.host_digit(27, 2), 2u);
  EXPECT_EQ(xgft.host_digit(27, 3), 1u);
}

TEST(Xgft, DotOutputMentionsEveryNode) {
  const Xgft xgft{XgftSpec{{2, 2}, {1, 2}}};
  const std::string dot = xgft.to_dot();
  EXPECT_NE(dot.find("graph xgft"), std::string::npos);
  for (std::uint64_t n = 0; n < xgft.num_nodes(); ++n) {
    EXPECT_NE(dot.find("n" + std::to_string(n) + " ["), std::string::npos);
  }
}

class XgftStructure : public testing::TestWithParam<XgftSpec> {};

TEST_P(XgftStructure, DegreesMatchSpec) {
  const Xgft xgft{GetParam()};
  const auto& spec = xgft.spec();
  for (std::uint64_t n = 0; n < xgft.num_nodes(); ++n) {
    const auto node = static_cast<NodeId>(n);
    const std::uint32_t level = xgft.level_of(node);
    const std::uint32_t parents =
        level < xgft.height() ? spec.w_at(level + 1) : 0;
    const std::uint32_t children = level >= 1 ? spec.m_at(level) : 0;
    EXPECT_EQ(xgft.num_parents(node), parents);
    EXPECT_EQ(xgft.num_children(node), children);
  }
}

TEST_P(XgftStructure, ParentChildAreInverse) {
  const Xgft xgft{GetParam()};
  for (std::uint64_t n = 0; n < xgft.num_nodes(); ++n) {
    const auto node = static_cast<NodeId>(n);
    for (std::uint32_t j = 0; j < xgft.num_parents(node); ++j) {
      const NodeId up = xgft.parent(node, j);
      EXPECT_EQ(xgft.level_of(up), xgft.level_of(node) + 1);
      // Some lower port of the parent leads back here.
      bool found = false;
      for (std::uint32_t c = 0; c < xgft.num_children(up); ++c) {
        found |= (xgft.child(up, c) == node);
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST_P(XgftStructure, LabelsDifferOnlyAtConnectionDigit) {
  const Xgft xgft{GetParam()};
  for (std::uint64_t n = 0; n < xgft.num_nodes(); ++n) {
    const auto node = static_cast<NodeId>(n);
    const auto label = xgft.label_of(node);
    const std::uint32_t level = label.level;
    for (std::uint32_t j = 0; j < xgft.num_parents(node); ++j) {
      const auto parent_label = xgft.label_of(xgft.parent(node, j));
      // Digit at position level+1 is the chosen port; all others match.
      EXPECT_EQ(parent_label.digits[level], j);
      for (std::size_t i = 0; i < label.digits.size(); ++i) {
        if (i != level) EXPECT_EQ(parent_label.digits[i], label.digits[i]);
      }
    }
  }
}

TEST_P(XgftStructure, LinkTablesAreConsistent) {
  const Xgft xgft{GetParam()};
  std::set<lmpr::topo::LinkId> seen;
  for (std::uint64_t n = 0; n < xgft.num_nodes(); ++n) {
    const auto node = static_cast<NodeId>(n);
    for (std::uint32_t j = 0; j < xgft.num_parents(node); ++j) {
      const auto id = xgft.up_link(node, j);
      const Link& link = xgft.link(id);
      EXPECT_TRUE(link.up);
      EXPECT_EQ(link.src, node);
      EXPECT_EQ(link.dst, xgft.parent(node, j));
      EXPECT_EQ(link.level, xgft.level_of(node));
      EXPECT_TRUE(seen.insert(id).second);
    }
    for (std::uint32_t c = 0; c < xgft.num_children(node); ++c) {
      const auto id = xgft.down_link(node, c);
      const Link& link = xgft.link(id);
      EXPECT_FALSE(link.up);
      EXPECT_EQ(link.src, node);
      EXPECT_EQ(link.dst, xgft.child(node, c));
      EXPECT_EQ(link.level, xgft.level_of(node) - 1);
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), xgft.num_links());
}

TEST_P(XgftStructure, NodeIdRoundTrip) {
  const Xgft xgft{GetParam()};
  for (std::uint64_t n = 0; n < xgft.num_nodes(); ++n) {
    const auto node = static_cast<NodeId>(n);
    EXPECT_EQ(xgft.node_id(xgft.level_of(node), xgft.rank_of(node)), node);
    EXPECT_EQ(xgft.node_of(xgft.label_of(node)), node);
  }
}

TEST_P(XgftStructure, NcaIsSymmetricAndBoundsSubtrees) {
  const Xgft xgft{GetParam()};
  const std::uint64_t hosts = xgft.num_hosts();
  const std::uint64_t step = hosts > 32 ? hosts / 17 : 1;  // sparse sweep
  for (std::uint64_t s = 0; s < hosts; s += step) {
    for (std::uint64_t d = 0; d < hosts; d += step) {
      const std::uint32_t k = xgft.nca_level(s, d);
      EXPECT_EQ(k, xgft.nca_level(d, s));
      if (s == d) {
        EXPECT_EQ(k, 0u);
        continue;
      }
      EXPECT_GE(k, 1u);
      // Same height-k subtree, different height-(k-1) subtrees.
      EXPECT_EQ(xgft.subtree_of(s, k), xgft.subtree_of(d, k));
      EXPECT_NE(xgft.subtree_of(s, k - 1), xgft.subtree_of(d, k - 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, XgftStructure,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

}  // namespace
