// GenericGraphTopology, the expander fabric builder, the topology factory
// and the discovery boundary around them: constructor totality on
// malformed cable lists, recognition totality on non-XGFT fabrics
// (recognize_xgft must report "not an XGFT", never assert or throw), and
// the save_fabric/try_load_fabric round-trip for generic fabrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "discovery/io.hpp"
#include "discovery/recognize.hpp"
#include "fabric/lft.hpp"
#include "topology/factory.hpp"
#include "topology/generic.hpp"

namespace {

using lmpr::discovery::RawFabric;
using lmpr::discovery::recognize_xgft;
using lmpr::discovery::save_fabric;
using lmpr::discovery::try_load_fabric;
using lmpr::topo::GenericGraphTopology;
using lmpr::topo::Link;
using lmpr::topo::LinkId;
using lmpr::topo::NodeId;
using lmpr::topo::build_expander_fabric;
using lmpr::topo::make_topology;
using lmpr::topo::to_raw_fabric;

/// Two hosts hanging off one switch: the smallest legal generic fabric.
RawFabric minimal_fabric() {
  RawFabric fabric;
  fabric.num_nodes = 3;
  fabric.hosts = {0, 1};
  fabric.cables = {{0, 2}, {1, 2}};
  return fabric;
}

TEST(GenericGraphTopology, MinimalFabric) {
  const GenericGraphTopology topo(minimal_fabric(), "tiny");
  EXPECT_EQ(topo.kind(), "generic");
  EXPECT_EQ(topo.name(), "tiny");
  EXPECT_EQ(topo.num_hosts(), 2u);
  EXPECT_EQ(topo.num_nodes(), 3u);
  EXPECT_EQ(topo.num_cables(), 2u);
  EXPECT_EQ(topo.num_paths(0, 1), 1u);
  EXPECT_EQ(topo.num_paths(0, 0), 1u);
  EXPECT_EQ(topo.max_paths(), 1u);
  EXPECT_EQ(topo.level_of(0), 0u);
  EXPECT_EQ(topo.level_of(2), 1u);
}

TEST(GenericGraphTopology, DefaultNameIsASizeSummary) {
  const GenericGraphTopology topo(minimal_fabric());
  EXPECT_EQ(topo.name(), "generic(2 hosts, 1 switches, 2 cables)");
}

TEST(GenericGraphTopology, CtorRejectsMalformedFabrics) {
  struct Reject {
    const char* what;
    RawFabric fabric;
  };
  std::vector<Reject> corpus;
  corpus.push_back({"empty fabric", RawFabric{}});
  {
    RawFabric f = minimal_fabric();
    f.hosts.clear();
    corpus.push_back({"no hosts", f});
  }
  {
    RawFabric f = minimal_fabric();
    f.hosts = {0, 7};
    corpus.push_back({"host id out of range", f});
  }
  {
    RawFabric f = minimal_fabric();
    f.hosts = {0, 0};
    corpus.push_back({"duplicate host", f});
  }
  {
    RawFabric f = minimal_fabric();
    f.cables = {{0, 2}, {1, 9}};
    corpus.push_back({"cable endpoint out of range", f});
  }
  {
    RawFabric f = minimal_fabric();
    f.cables = {{0, 2}, {1, 2}, {2, 2}};
    corpus.push_back({"self cable", f});
  }
  {
    RawFabric f = minimal_fabric();
    f.cables = {{0, 2}, {1, 2}, {0, 1}};
    corpus.push_back({"host-host cable", f});
  }
  {
    RawFabric f = minimal_fabric();
    f.cables = {{0, 2}, {1, 2}, {2, 1}};
    corpus.push_back({"duplicate cable (reversed)", f});
  }
  {
    // 0-2 and 1-3: each host owns a private switch, nothing joins them.
    RawFabric f;
    f.num_nodes = 4;
    f.hosts = {0, 1};
    f.cables = {{0, 2}, {1, 3}};
    corpus.push_back({"disconnected fabric", f});
  }
  for (const auto& entry : corpus) {
    EXPECT_THROW(GenericGraphTopology{entry.fabric}, std::invalid_argument)
        << entry.what;
  }
}

TEST(ExpanderFabric, ShapeAndRegularity) {
  const RawFabric fabric = build_expander_fabric(8, 4, 2);
  EXPECT_EQ(fabric.num_nodes, 24u);          // 16 hosts + 8 switches
  EXPECT_EQ(fabric.hosts.size(), 16u);
  EXPECT_EQ(fabric.cables.size(), 16u + 16u);  // host cables + 8*4/2
  // Hosts occupy the low ids and every cable is host-switch or
  // switch-switch; switch-switch degree is exactly `degree`.
  std::vector<unsigned> switch_degree(fabric.num_nodes, 0);
  std::vector<unsigned> host_cables(fabric.num_nodes, 0);
  for (const auto& [u, v] : fabric.cables) {
    const bool u_host = u < 16, v_host = v < 16;
    EXPECT_FALSE(u_host && v_host) << u << "-" << v;
    if (u_host || v_host) {
      ++host_cables[u_host ? u : v];
    } else {
      ++switch_degree[u];
      ++switch_degree[v];
    }
  }
  for (std::uint32_t h = 0; h < 16; ++h) EXPECT_EQ(host_cables[h], 1u) << h;
  for (std::uint32_t s = 16; s < 24; ++s) EXPECT_EQ(switch_degree[s], 4u) << s;
}

TEST(ExpanderFabric, DeterministicPerSeed) {
  const RawFabric a = build_expander_fabric(12, 4, 1, 7);
  const RawFabric b = build_expander_fabric(12, 4, 1, 7);
  EXPECT_EQ(a.cables, b.cables);
  EXPECT_EQ(a.hosts, b.hosts);
  const RawFabric c = build_expander_fabric(12, 4, 1, 8);
  EXPECT_NE(a.cables, c.cables) << "seed must perturb the wiring";
}

TEST(ExpanderFabric, AlwaysConnected) {
  // The offset-1 ring survives every edge swap, so construction (which
  // throws on any unreachable node) must succeed across seeds.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RawFabric fabric = build_expander_fabric(11, 4, 1, seed);
    EXPECT_NO_THROW(GenericGraphTopology{fabric}) << "seed " << seed;
  }
}

TEST(ExpanderFabric, RejectsDegenerateParameters) {
  EXPECT_THROW(build_expander_fabric(2, 1, 1), std::invalid_argument);
  EXPECT_THROW(build_expander_fabric(8, 1, 1), std::invalid_argument);
  EXPECT_THROW(build_expander_fabric(8, 8, 1), std::invalid_argument);
  EXPECT_THROW(build_expander_fabric(8, 4, 0), std::invalid_argument);
  // Odd degree needs the antipode chord, which needs an even switch count.
  EXPECT_THROW(build_expander_fabric(7, 3, 1), std::invalid_argument);
  EXPECT_NO_THROW(build_expander_fabric(8, 3, 1));
}

TEST(Recognition, TotalOnExpanderFabrics) {
  // recognize_xgft is documented total: a random regular graph is not an
  // XGFT, and the recognizer must say so without asserting or throwing.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RawFabric fabric = build_expander_fabric(8, 4, 2, seed);
    lmpr::discovery::RecognitionResult result;
    ASSERT_NO_THROW(result = recognize_xgft(fabric)) << "seed " << seed;
    EXPECT_FALSE(result.ok) << "seed " << seed;
    EXPECT_FALSE(result.error.empty()) << "seed " << seed;
  }
}

TEST(Recognition, TotalOnMinimalGenericFabric) {
  // A single switch with two hosts IS XGFT(1;2;1); adding a third dangling
  // switch in a chain is not.  Both must be answered, not crashed on.
  lmpr::discovery::RecognitionResult result;
  ASSERT_NO_THROW(result = recognize_xgft(minimal_fabric()));
  EXPECT_TRUE(result.ok) << result.error;

  // Two leaf switches joined LATERALLY (a same-level cable): legal for
  // the generic topology, impossible in any XGFT.
  RawFabric lateral;
  lateral.num_nodes = 4;
  lateral.hosts = {0, 1};
  lateral.cables = {{0, 2}, {1, 3}, {2, 3}};
  EXPECT_NO_THROW(GenericGraphTopology{lateral});
  ASSERT_NO_THROW(result = recognize_xgft(lateral));
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(GenericIo, ExpanderRoundTripsThroughFabricFiles) {
  const RawFabric fabric = build_expander_fabric(8, 4, 2, 3);
  std::stringstream stream;
  save_fabric(fabric, stream);
  const auto parsed = try_load_fabric(stream);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.fabric.num_nodes, fabric.num_nodes);
  EXPECT_EQ(parsed.fabric.hosts, fabric.hosts);
  EXPECT_EQ(parsed.fabric.cables, fabric.cables);

  // The reloaded fabric is still recognizably NOT an XGFT...
  const auto recognition = recognize_xgft(parsed.fabric);
  EXPECT_FALSE(recognition.ok);
  EXPECT_FALSE(recognition.error.empty());

  // ...and reconstructs the identical generic topology.
  const GenericGraphTopology original(fabric);
  const GenericGraphTopology reloaded(parsed.fabric);
  ASSERT_EQ(reloaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(reloaded.num_links(), original.num_links());
  EXPECT_EQ(reloaded.max_paths(), original.max_paths());
  for (std::uint64_t d = 0; d < original.num_hosts(); ++d) {
    EXPECT_EQ(reloaded.num_paths(0, d), original.num_paths(0, d)) << d;
  }
}

TEST(GenericIo, ToRawFabricIsTheIdentityExport) {
  const RawFabric fabric = build_expander_fabric(8, 4, 2, 5);
  const GenericGraphTopology topo(fabric);
  const RawFabric exported = to_raw_fabric(topo);
  EXPECT_EQ(exported.num_nodes, static_cast<std::uint32_t>(topo.num_nodes()));
  ASSERT_EQ(exported.hosts.size(), topo.num_hosts());
  for (std::uint64_t i = 0; i < topo.num_hosts(); ++i) {
    EXPECT_EQ(exported.hosts[i], topo.host(i));
  }
  ASSERT_EQ(exported.cables.size(), topo.num_cables());

  // Re-importing the export reproduces the topology link for link.
  const GenericGraphTopology round(exported);
  ASSERT_EQ(round.num_links(), topo.num_links());
  for (std::uint64_t id = 0; id < topo.num_links(); ++id) {
    const Link& a = topo.link(static_cast<LinkId>(id));
    const Link& b = round.link(static_cast<LinkId>(id));
    EXPECT_EQ(a.src, b.src) << id;
    EXPECT_EQ(a.dst, b.dst) << id;
    EXPECT_EQ(a.level, b.level) << id;
    EXPECT_EQ(a.up, b.up) << id;
  }
}

TEST(GenericGraphTopology, LinkPairingContract) {
  const GenericGraphTopology topo(build_expander_fabric(8, 4, 2));
  const std::uint64_t cables = topo.num_cables();
  for (std::uint64_t c = 0; c < cables; ++c) {
    const Link& up = topo.link(static_cast<LinkId>(c));
    const Link& down = topo.link(static_cast<LinkId>(cables + c));
    EXPECT_TRUE(up.up) << c;
    EXPECT_FALSE(down.up) << c;
    EXPECT_EQ(up.src, down.dst) << c;
    EXPECT_EQ(up.dst, down.src) << c;
    EXPECT_EQ(up.level, down.level) << c;
    EXPECT_LE(topo.level_of(up.src), topo.level_of(up.dst)) << c;
  }
}

TEST(GenericGraphTopology, CandidateLinksAndRepairOrderContracts) {
  const GenericGraphTopology topo(build_expander_fabric(8, 4, 2));
  std::vector<LinkId> candidates;
  std::vector<NodeId> order;
  for (std::uint64_t dst = 0; dst < topo.num_hosts(); dst += 5) {
    topo.repair_order(dst, order);
    ASSERT_EQ(order.size(), topo.num_nodes()) << dst;
    EXPECT_EQ(order.front(), topo.host(dst)) << dst;
    std::vector<std::size_t> position(topo.num_nodes());
    for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    for (NodeId node = 0; node < topo.num_nodes(); ++node) {
      topo.candidate_links(node, dst, candidates);
      EXPECT_EQ(candidates.empty(), node == topo.host(dst)) << node;
      for (const LinkId id : candidates) {
        const Link& link = topo.link(id);
        EXPECT_EQ(link.src, node);
        // The far endpoint resolves before the node that routes through it.
        EXPECT_LT(position[link.dst], position[node]) << node << "->" << dst;
      }
    }
  }
}

TEST(GenericGraphTopology, PathEnumerationIsDenseAndShortest) {
  const GenericGraphTopology topo(build_expander_fabric(8, 4, 2));
  std::vector<LinkId> links;
  for (std::uint64_t dst = 1; dst < topo.num_hosts(); dst += 3) {
    const std::uint64_t count = topo.num_paths(0, dst);
    ASSERT_GE(count, 1u) << dst;
    std::set<std::vector<LinkId>> distinct;
    std::size_t length = 0;
    for (std::uint64_t index = 0; index < count; ++index) {
      links.clear();
      topo.append_path_links(0, dst, index, links);
      ASSERT_FALSE(links.empty());
      // Hop-chained from host 0 to host dst, never transiting a host.
      NodeId at = topo.host(0);
      for (const LinkId id : links) {
        ASSERT_EQ(topo.link(id).src, at);
        at = topo.link(id).dst;
        if (at != topo.host(dst)) {
          EXPECT_FALSE(topo.is_host(at));
        }
      }
      EXPECT_EQ(at, topo.host(dst));
      if (index == 0) length = links.size();
      EXPECT_EQ(links.size(), length) << "all enumerated paths are shortest";
      distinct.insert(links);
    }
    EXPECT_EQ(distinct.size(), count) << dst;
  }
}

TEST(GenericGraphTopology, LftWalksDeliverEnumeratedPaths) {
  const GenericGraphTopology topo(build_expander_fabric(8, 4, 2));
  const lmpr::fabric::Lft lft(topo, topo.max_paths(),
                              lmpr::topo::LidLayout::kDisjointLayout);
  std::vector<LinkId> links;
  for (std::uint64_t dst = 1; dst < topo.num_hosts(); dst += 4) {
    std::set<std::vector<LinkId>> enumerated;
    for (std::uint64_t i = 0; i < topo.num_paths(0, dst); ++i) {
      links.clear();
      topo.append_path_links(0, dst, i, links);
      enumerated.insert(links);
    }
    for (std::uint32_t j = 0; j < lft.block(); ++j) {
      const auto walk = lft.walk(0, dst, j);
      ASSERT_TRUE(walk.delivered) << "dst " << dst << " variant " << j;
      EXPECT_EQ(enumerated.count(walk.path.links), 1u)
          << "dst " << dst << " variant " << j
          << " walked a path outside the enumeration";
    }
  }
}

TEST(TopologyFactory, DispatchesOnTheFamilyKeyword) {
  const auto xgft = make_topology("XGFT(2;4,4;2,2)");
  EXPECT_EQ(xgft->kind(), "xgft");
  EXPECT_EQ(xgft->name(), "XGFT(2;4,4;2,2)");
  EXPECT_EQ(xgft->num_hosts(), 16u);

  const auto rrg = make_topology("RRG(8;4;2)");
  EXPECT_EQ(rrg->kind(), "generic");
  EXPECT_EQ(rrg->name(), "RRG(8;4;2)");
  EXPECT_EQ(rrg->num_hosts(), 16u);

  const auto seeded = make_topology("RRG(8;4;2;7)");
  EXPECT_EQ(seeded->name(), "RRG(8;4;2;7)");
}

TEST(TopologyFactory, ToleratesWhitespaceInBothFamilies) {
  EXPECT_EQ(make_topology("  XGFT( 2 ; 4,4 ; 2,2 )")->num_hosts(), 16u);
  EXPECT_EQ(make_topology("RRG( 8 ; 4 ; 2 )")->num_hosts(), 16u);
}

TEST(TopologyFactory, SameSpecSameWiring) {
  const auto a = make_topology("RRG(12;4;1;9)");
  const auto b = make_topology("RRG(12;4;1;9)");
  ASSERT_EQ(a->num_links(), b->num_links());
  for (std::uint64_t id = 0; id < a->num_links(); ++id) {
    EXPECT_EQ(a->link(static_cast<LinkId>(id)).src,
              b->link(static_cast<LinkId>(id)).src);
    EXPECT_EQ(a->link(static_cast<LinkId>(id)).dst,
              b->link(static_cast<LinkId>(id)).dst);
  }
}

TEST(TopologyFactory, RejectsMalformedSpecs) {
  const char* corpus[] = {
      "",
      "   ",
      "TORUS(3;3)",
      "XGFT(2;4,4)",
      "RRG(8;4)",
      "RRG(8;4;2;1;9)",
      "RRG(8;x;2)",
      "RRG(8;;2)",
      "RRG(8;4;2",
      "RRG(99999999999;4;2)",
      "RRG(2;1;1)",  // degenerate expander parameters propagate
  };
  for (const char* text : corpus) {
    EXPECT_THROW(make_topology(text), std::invalid_argument) << text;
  }
}

// Every make_topology rejection echoes the offending spec, and scanner
// rejections pinpoint the failure with the XgftSpec-style line:column.
TEST(TopologyFactory, RejectionsEchoTheSpecWithPosition) {
  const struct {
    const char* spec;
    const char* needle;
  } corpus[] = {
      {"TORUS(3;3)", "unknown topology family"},
      {"XGFT(2;4,4)",
       "expected ';' between the m and w arity lists at line 1, column 11"},
      {"XGFT(2;4,0;2,2)", "m-arity must be at least 1 at line 1, column 10"},
      {"RRG(8;4)", "expected ';' after the degree at line 1, column 8"},
      {"RRG(8;x;2)",
       "expected switch-to-switch degree at line 1, column 7"},
      {"RRG(99999999999;4;2)",
       "switch count exceeds 32 bits at line 1, column 5"},
      {"RRG(8;4;2", "expected ')' after the RRG fields"},
      // Semantic failures from deeper layers get the echo prepended.
      {"RRG(2;1;1)", "expander needs at least 3 switches"},
  };
  for (const auto& entry : corpus) {
    try {
      make_topology(entry.spec);
      FAIL() << entry.spec << " was accepted";
    } catch (const std::invalid_argument& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(entry.spec), std::string::npos)
          << entry.spec << " missing from: " << what;
      EXPECT_NE(what.find(entry.needle), std::string::npos)
          << entry.needle << " missing from: " << what;
    }
  }
}

// A spec spanning lines keeps real line:column positions (the squeeze
// pass is for family dispatch only; parsing runs on the original text).
TEST(TopologyFactory, MultiLineSpecsKeepRealPositions) {
  try {
    make_topology("RRG( 8 ;\n4 ; 2");
    FAIL() << "truncated spec was accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("line 2, column 6"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
