#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace {

using lmpr::util::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng{77};
  const auto first = rng();
  rng.reseed(77);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{5};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng{5};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng{9};
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> hist(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.below(kBound)];
  for (const int count : hist) {
    EXPECT_NEAR(count, kDraws / static_cast<int>(kBound), 600);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng{11};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Range) {
  Rng rng{13};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{17};
  constexpr double kMean = 40.0;
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(kMean);
  EXPECT_NEAR(sum / kDraws, kMean, 0.5);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng{19};
  const auto perm = rng.permutation(257);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, PermutationIsNotIdentityForLargeN) {
  Rng rng{23};
  const auto perm = rng.permutation(64);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) moved += (perm[i] != i);
  EXPECT_GT(moved, 32u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng{29};
  std::vector<int> values{1, 1, 2, 3, 5, 8, 13, 21};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng{31};
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<std::size_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), 7u);
    for (const auto v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleAllElements) {
  Rng rng{37};
  const auto sample = rng.sample_without_replacement(6, 6);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, SampleZero) {
  Rng rng{41};
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{43};
  Rng child = parent.fork();
  // The child's stream must not simply mirror the parent's.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t state = 0;
  const auto a = lmpr::util::splitmix64(state);
  const auto b = lmpr::util::splitmix64(state);
  EXPECT_NE(a, b);
}

}  // namespace
