#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using lmpr::util::Cli;
using lmpr::util::Table;

TEST(Table, PrintsAlignedAscii) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "20000"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 20000 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"with\"quote", "multi\nline"});
  std::ostringstream oss;
  table.write_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::num(2.0, 1), "2.0");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

TEST(Table, CsvFileRoundTrip) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  const std::string path = testing::TempDir() + "lmpr_table_test.csv";
  ASSERT_TRUE(table.write_csv_file(path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Table, CsvFileFailureReturnsFalse) {
  Table table({"a"});
  EXPECT_FALSE(table.write_csv_file("/nonexistent-dir/x/y.csv"));
}

TEST(Table, RowArityMismatchDies) {
  Table table({"only"});
  EXPECT_DEATH(table.add_row({"a", "b"}), "precondition");
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  // A bare switch must precede another --flag (or the end) -- a following
  // plain token is consumed as its value, so positionals go first.
  const char* argv[] = {"prog", "pos1", "--k", "8",
                        "--topo=XGFT(2;4,8;1,4)", "--flag"};
  const Cli cli(6, argv);
  EXPECT_EQ(cli.get_or("k", std::int64_t{0}), 8);
  EXPECT_EQ(cli.get_or("topo", ""), "XGFT(2;4,8;1,4)");
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_TRUE(cli.get_or("flag", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, FlagConsumesFollowingPlainToken) {
  const char* argv[] = {"prog", "--name", "value"};
  const Cli cli(3, argv);
  EXPECT_EQ(cli.get_or("name", ""), "value");
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, MissingFlagsUseFallbacks) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  EXPECT_FALSE(cli.has("k"));
  EXPECT_EQ(cli.get_or("k", std::int64_t{7}), 7);
  EXPECT_DOUBLE_EQ(cli.get_or("load", 0.25), 0.25);
  EXPECT_FALSE(cli.get_or("full", false));
  EXPECT_EQ(cli.get_or("name", "dflt"), "dflt");
}

TEST(Cli, UnknownFlagsAreThePresentButNeverQueriedOnes) {
  const char* argv[] = {"prog", "--seed", "7", "--fulll", "--wrkers", "2"};
  const Cli cli(6, argv);
  EXPECT_EQ(cli.get_or("seed", std::int64_t{0}), 7);
  const auto unknown = cli.unknown_flags();
  ASSERT_EQ(unknown.size(), 2u);
  // Sorted for stable error messages.
  EXPECT_EQ(unknown[0], "fulll");
  EXPECT_EQ(unknown[1], "wrkers");
}

TEST(Cli, QueryingViaHasMarksFlagKnown) {
  const char* argv[] = {"prog", "--verbose"};
  const Cli cli(2, argv);
  EXPECT_EQ(cli.unknown_flags().size(), 1u);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.unknown_flags().empty());
}

TEST(Cli, NoFlagsMeansNoUnknownFlags) {
  const char* argv[] = {"prog", "pos1", "pos2"};
  const Cli cli(3, argv);
  EXPECT_TRUE(cli.unknown_flags().empty());
}

TEST(Cli, SwitchListKeepsFollowingPositional) {
  // `run --full fig4a`: "full" is declared a switch, so it must NOT
  // swallow the scenario name as its value.
  const char* argv[] = {"prog", "run", "--full", "fig4a"};
  const Cli cli(4, argv, {"full"});
  EXPECT_TRUE(cli.get_or("full", false));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "run");
  EXPECT_EQ(cli.positional()[1], "fig4a");
}

TEST(Cli, LastOccurrenceWins) {
  const char* argv[] = {"prog", "--k", "1", "--k", "2"};
  const Cli cli(5, argv);
  EXPECT_EQ(cli.get_or("k", std::int64_t{0}), 2);
}

TEST(Cli, BoolValueForms) {
  const char* argv[] = {"prog", "--a", "true", "--b", "0", "--c", "yes"};
  const Cli cli(7, argv);
  EXPECT_TRUE(cli.get_or("a", false));
  EXPECT_FALSE(cli.get_or("b", true));
  EXPECT_TRUE(cli.get_or("c", false));
}

}  // namespace
