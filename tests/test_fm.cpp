// Tests for the fabric-manager subsystem: the repair invariant (the
// incrementally repaired tables equal a from-scratch degraded rebuild
// after EVERY event), degraded-build semantics, disconnection and churn
// accounting, and event-level error handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fabric/degraded.hpp"
#include "fabric/lft.hpp"
#include "flow/resilience.hpp"
#include "fm/events.hpp"
#include "fm/fabric_manager.hpp"
#include "topology/spec.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace lmpr {
namespace {

using fabric::LidLayout;

/// The acceptance topologies from the issue: one 2-level fabric with
/// multi-parent hosts and one 3-level m-port-n-tree-like fabric.
std::vector<topo::XgftSpec> fm_specs() {
  return {topo::XgftSpec{{4, 4}, {2, 2}},
          topo::XgftSpec{{4, 4, 4}, {1, 2, 2}}};
}

/// Inverse of the recognition isomorphism: raw id whose canonical image
/// is the given topo node.
std::vector<std::uint32_t> raw_of(const fm::FabricManager& fm) {
  const auto& canonical = fm.canonical();
  std::vector<std::uint32_t> inverse(canonical.size(), 0);
  for (std::uint32_t raw = 0; raw < canonical.size(); ++raw) {
    inverse[static_cast<std::size_t>(canonical[raw])] = raw;
  }
  return inverse;
}

fm::Event cable_event(const fm::FabricManager& fm,
                      const std::vector<std::uint32_t>& inverse,
                      std::uint64_t cable, bool down) {
  const topo::Link& link = fm.xgft().link(static_cast<topo::LinkId>(cable));
  return {down ? fm::EventType::kCableDown : fm::EventType::kCableUp,
          inverse[static_cast<std::size_t>(link.src)],
          inverse[static_cast<std::size_t>(link.dst)]};
}

/// Ordered disconnected (s, d) pairs of a materialized table set, via the
/// delivery criterion from fabric/degraded.hpp (host entry validity).
std::uint64_t count_disconnected(const topo::Xgft& xgft,
                                 const fabric::Lft& lft,
                                 const fabric::Tables& tables) {
  std::uint64_t pairs = 0;
  for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
    const std::uint32_t lid = lft.lid_of(d, 0);
    for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
      if (s == d) continue;
      if (tables[xgft.host(s)][lid] == topo::kInvalidLink) ++pairs;
    }
  }
  return pairs;
}

std::size_t valid_entries(const fabric::Tables& tables) {
  std::size_t n = 0;
  for (const auto& row : tables) {
    n += static_cast<std::size_t>(
        std::count_if(row.begin(), row.end(), [](topo::LinkId link) {
          return link != topo::kInvalidLink;
        }));
  }
  return n;
}

TEST(DegradedBuild, HealthyBuildMatchesLftTables) {
  for (const auto& spec : fm_specs()) {
    const topo::Xgft xgft{spec};
    for (const LidLayout layout :
         {LidLayout::kDisjointLayout, LidLayout::kShiftLayout}) {
      for (const std::uint64_t k : {1u, 2u, 4u}) {
        const fabric::Lft lft{xgft, k, layout};
        const fabric::Degradation deg{xgft};
        ASSERT_TRUE(deg.healthy());
        const fabric::Tables tables = fabric::build_lft(lft, deg);
        ASSERT_EQ(tables.size(), xgft.num_nodes());
        for (topo::NodeId node = 0; node < xgft.num_nodes(); ++node) {
          ASSERT_EQ(tables[node], lft.table_for(node))
              << spec.to_string() << " node " << node << " K=" << k;
        }
      }
    }
  }
}

// The tentpole property: after ANY sequence of cable_down / cable_up /
// switch_down events, the incrementally repaired tables are
// entry-for-entry identical to a from-scratch degraded rebuild, and the
// manager's disconnected-pair count matches the tables.
TEST(FabricManager, RepairEquivalenceUnderRandomEvents) {
  for (const auto& spec : fm_specs()) {
    for (const LidLayout layout :
         {LidLayout::kDisjointLayout, LidLayout::kShiftLayout}) {
      for (const std::uint64_t k : {1u, 2u, 4u}) {
        fm::FmConfig config;
        config.k_paths = k;
        config.layout = layout;
        config.track_link_load = false;  // speed: the property is table equality
        fm::FabricManager fm{spec, config};
        ASSERT_TRUE(fm.ok()) << fm.error();
        const auto inverse = raw_of(fm);
        const topo::Xgft& xgft = fm.xgft();

        util::Rng rng{0x9e3779b97f4a7c15ull ^ (k * 2 + (layout == LidLayout::kShiftLayout))};
        std::size_t switch_kills = 0;
        for (int step = 0; step < 28; ++step) {
          const double roll = rng.uniform01();
          fm::Event event;
          if (roll < 0.55) {  // kill a random live cable
            const std::uint64_t cable = rng.below(xgft.num_cables());
            event = cable_event(fm, inverse, cable, /*down=*/true);
          } else if (roll < 0.85) {  // heal a random dead cable, if any
            std::vector<std::uint64_t> dead;
            for (std::uint64_t c = 0; c < xgft.num_cables(); ++c) {
              if (!fm.degradation().cable_ok(c)) dead.push_back(c);
            }
            if (dead.empty()) continue;
            event = cable_event(fm, inverse,
                                dead[static_cast<std::size_t>(
                                    rng.below(dead.size()))],
                                /*down=*/false);
          } else if (switch_kills < 2 && roll < 0.95) {
            const std::uint64_t num_switches =
                xgft.num_nodes() - xgft.num_hosts();
            const topo::NodeId node = static_cast<topo::NodeId>(
                xgft.num_hosts() + rng.below(num_switches));
            if (!fm.degradation().node_ok(node)) continue;
            ++switch_kills;
            event = {fm::EventType::kSwitchDown, inverse[node], 0};
          } else {  // query keeps state: exercise the mixed stream anyway
            event = {fm::EventType::kQuery,
                     static_cast<std::uint32_t>(
                         inverse[xgft.host(rng.below(xgft.num_hosts()))]),
                     static_cast<std::uint32_t>(
                         inverse[xgft.host(rng.below(xgft.num_hosts()))])};
          }

          const fm::EventRecord record = fm.apply(event);
          ASSERT_TRUE(record.ok) << record.error;

          const fabric::Tables reference =
              fabric::build_lft(fm.lft(), fm.degradation());
          ASSERT_EQ(fm.tables(), reference)
              << spec.to_string() << " K=" << k << " step " << step
              << " event " << to_string(event.type);
          EXPECT_EQ(fm.disconnected_pairs(),
                    count_disconnected(xgft, fm.lft(), reference));
        }
      }
    }
  }
}

TEST(FabricManager, HostIsolationAndHealingWindows) {
  // XGFT(3;4,4,4;1,2,2): w_1 = 1, so each host hangs off a single cable.
  const topo::XgftSpec spec{{4, 4, 4}, {1, 2, 2}};
  fm::FmConfig config;
  config.track_link_load = false;
  fm::FabricManager fm{spec, config};
  ASSERT_TRUE(fm.ok()) << fm.error();
  const auto inverse = raw_of(fm);
  const topo::Xgft& xgft = fm.xgft();
  const std::uint64_t hosts = xgft.num_hosts();
  ASSERT_EQ(hosts, 64u);

  // Isolate host 5: both directions of every pair touching it die.
  const std::uint64_t up5 = xgft.cable_of(xgft.up_link(xgft.host(5), 0));
  auto record = fm.apply(cable_event(fm, inverse, up5, /*down=*/true));
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_EQ(record.disconnected_pairs, 2 * (hosts - 1));
  EXPECT_EQ(fm.summary().current_disconnected_window, 1u);

  // An unrelated second-level fault keeps the outage window open.
  const std::uint64_t mid =
      xgft.cable_of(xgft.up_link(xgft.node_id(1, 0), 0));
  record = fm.apply(cable_event(fm, inverse, mid, /*down=*/true));
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_EQ(record.disconnected_pairs, 2 * (hosts - 1));
  EXPECT_EQ(fm.summary().current_disconnected_window, 2u);

  // Re-cabling host 5 ends the outage; the max window sticks at 2.
  record = fm.apply(cable_event(fm, inverse, up5, /*down=*/false));
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_EQ(record.disconnected_pairs, 0u);
  EXPECT_EQ(fm.summary().current_disconnected_window, 0u);
  EXPECT_EQ(fm.summary().max_disconnected_window, 2u);
  EXPECT_GT(fm.summary().total_churn, 0u);
}

TEST(FabricManager, SingleCableChurnIsIncremental) {
  const topo::XgftSpec spec{{4, 4, 4}, {1, 2, 2}};
  fm::FmConfig config;
  config.track_link_load = false;
  // K = 1: each column holds one variant, so a top cable only shows up in
  // the columns whose variant digit selects it.  (With K = X every
  // destination uses every top switch and repair rightly escalates.)
  config.k_paths = 1;
  config.full_rebuild_threshold = 1.0;
  fm::FabricManager fm{spec, config};
  ASSERT_TRUE(fm.ok()) << fm.error();
  const auto inverse = raw_of(fm);
  const std::size_t full = valid_entries(fm.tables());

  // A top-tier cable: only destinations actually routed over it repair.
  const std::uint64_t cable =
      fm.xgft().cable_of(fm.xgft().up_link(fm.xgft().node_id(2, 0), 0));
  const auto record = fm.apply(cable_event(fm, inverse, cable, /*down=*/true));
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_FALSE(record.full_rebuild);
  EXPECT_GT(record.churn, 0u);
  EXPECT_LT(record.churn, full / 4);
  EXPECT_LT(record.destinations_repaired,
            static_cast<std::size_t>(fm.xgft().num_hosts()));
  EXPECT_EQ(record.disconnected_pairs, 0u);  // redundancy absorbs the fault
}

TEST(FabricManager, TopSwitchDeathTriggersFullRebuild) {
  // Every destination routes some variant over each top switch when
  // K = X, so the affected fraction crosses the 0.5 threshold.
  const topo::XgftSpec spec{{4, 4}, {2, 2}};
  fm::FabricManager fm{spec, {}};
  ASSERT_TRUE(fm.ok()) << fm.error();
  const auto inverse = raw_of(fm);
  const topo::NodeId top = fm.xgft().node_id(2, 0);
  const fm::Event event{fm::EventType::kSwitchDown, inverse[top], 0};
  const auto record = fm.apply(event);
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_TRUE(record.full_rebuild);
  EXPECT_EQ(record.destinations_repaired,
            static_cast<std::size_t>(fm.xgft().num_hosts()));
  EXPECT_EQ(fm.summary().full_rebuilds, 1u);
  ASSERT_EQ(fm.tables(), fabric::build_lft(fm.lft(), fm.degradation()));
}

TEST(FabricManager, QueryReportsSurvivingMultipathState) {
  const topo::XgftSpec spec{{4, 4}, {2, 2}};
  fm::FmConfig config;
  config.track_link_load = false;
  fm::FabricManager fm{spec, config};
  ASSERT_TRUE(fm.ok()) << fm.error();
  const auto inverse = raw_of(fm);
  const topo::Xgft& xgft = fm.xgft();

  // Hosts 0 and 15 meet at the top: X = w1 * w2 = 4 distinct paths.
  fm::Event query{fm::EventType::kQuery, inverse[xgft.host(0)],
                  inverse[xgft.host(15)]};
  auto record = fm.apply(query);
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_TRUE(record.connected);
  EXPECT_EQ(record.usable_variants, 4u);
  EXPECT_EQ(record.distinct_paths, 4u);
  EXPECT_EQ(record.primary_hops, 4u);

  // Killing one of host 0's two up cables halves the distinct routes but
  // every variant LID still delivers via the surviving parent.
  const std::uint64_t cable = xgft.cable_of(xgft.up_link(xgft.host(0), 0));
  ASSERT_TRUE(fm.apply(cable_event(fm, inverse, cable, true)).ok);
  record = fm.apply(query);
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_TRUE(record.connected);
  EXPECT_EQ(record.usable_variants, 4u);
  EXPECT_EQ(record.distinct_paths, 2u);

  EXPECT_EQ(fm.summary().queries, 2u);
  EXPECT_EQ(fm.summary().topology_events, 1u);
}

TEST(FabricManager, RepeatedAndInvalidEventsAreHandled) {
  const topo::XgftSpec spec{{4, 4}, {2, 2}};
  fm::FmConfig config;
  config.track_link_load = false;
  fm::FabricManager fm{spec, config};
  ASSERT_TRUE(fm.ok()) << fm.error();
  const auto inverse = raw_of(fm);
  const std::uint64_t cable =
      fm.xgft().cable_of(fm.xgft().up_link(fm.xgft().host(3), 0));

  const auto first = fm.apply(cable_event(fm, inverse, cable, true));
  ASSERT_TRUE(first.ok);
  EXPECT_GT(first.churn, 0u);
  // Downing a dead cable is a recorded no-op.
  const auto again = fm.apply(cable_event(fm, inverse, cable, true));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.churn, 0u);
  EXPECT_EQ(fm.summary().topology_events, 2u);

  // No cable between two hosts.
  const auto no_cable = fm.apply({fm::EventType::kCableDown,
                                  inverse[fm.xgft().host(0)],
                                  inverse[fm.xgft().host(1)]});
  EXPECT_FALSE(no_cable.ok);
  EXPECT_NE(no_cable.error.find("no cable"), std::string::npos);

  // switch_down on a host, query on a switch, id out of range.
  EXPECT_FALSE(
      fm.apply({fm::EventType::kSwitchDown, inverse[fm.xgft().host(0)], 0})
          .ok);
  EXPECT_FALSE(fm.apply({fm::EventType::kQuery, inverse[fm.xgft().host(0)],
                         inverse[fm.xgft().node_id(1, 0)]})
                   .ok);
  const auto range = fm.apply(
      {fm::EventType::kQuery, static_cast<std::uint32_t>(1u << 20), 0});
  EXPECT_FALSE(range.ok);
  EXPECT_NE(range.error.find("out of range"), std::string::npos);

  // Errors leave the state untouched.
  EXPECT_EQ(fm.summary().topology_events, 2u);
  ASSERT_EQ(fm.tables(), fabric::build_lft(fm.lft(), fm.degradation()));
}

// Ground-truth cross-check against flow::measure_resilience: with the
// umulti heuristic (all X minimal paths) a pair survives a failure
// pattern iff SOME minimal path survives -- exactly the fabric manager's
// delivery criterion (every ascent inside the NCA block only meets
// ancestors, so degraded routes are always minimal).  The manager applied
// to each recorded trial pattern must disconnect the identical pairs.
TEST(FabricManager, AgreesWithResilienceDisconnectedPairs) {
  const topo::XgftSpec spec{{4, 4}, {2, 2}};
  const topo::Xgft xgft{spec};

  flow::ResilienceConfig rc;
  rc.heuristic = route::Heuristic::kUmulti;  // all X paths, K ignored
  rc.k_paths = 4;
  rc.cable_failure_probability = 0.25;
  rc.trials = 4;
  rc.pair_samples = 0;  // all ordered pairs
  rc.record_details = true;
  rc.seed = 11;
  const auto ground_truth = flow::measure_resilience(xgft, rc);
  ASSERT_EQ(ground_truth.trials.size(), 4u);

  for (const auto& trial : ground_truth.trials) {
    fm::FmConfig config;
    config.k_paths = 4;  // block of 4 covers every minimal path variant
    config.track_link_load = false;
    fm::FabricManager fm{spec, config};
    ASSERT_TRUE(fm.ok()) << fm.error();
    const auto inverse = raw_of(fm);
    for (const std::uint64_t cable : trial.failed_cables) {
      ASSERT_TRUE(fm.apply(cable_event(fm, inverse, cable, true)).ok);
    }

    std::vector<flow::DisconnectedPair> disconnected;
    for (std::uint64_t s = 0; s < xgft.num_hosts(); ++s) {
      for (std::uint64_t d = 0; d < xgft.num_hosts(); ++d) {
        if (s == d) continue;
        if (fm.tables()[xgft.host(s)][fm.lft().lid_of(d, 0)] ==
            topo::kInvalidLink) {
          disconnected.push_back({s, d});
        }
      }
    }
    EXPECT_EQ(disconnected, trial.disconnected);
    EXPECT_EQ(fm.disconnected_pairs(), trial.disconnected.size());
  }
}

/// Recomputes per-cable use counts from scratch off policy_tables().
std::vector<std::vector<std::uint32_t>> counts_of(
    const fm::FabricManager& fm) {
  const topo::Xgft& xgft = fm.xgft();
  const fabric::Lft& lft = fm.lft();
  std::vector<std::vector<std::uint32_t>> counts(
      static_cast<std::size_t>(xgft.num_cables()),
      std::vector<std::uint32_t>(static_cast<std::size_t>(xgft.num_hosts()),
                                 0));
  for (std::uint64_t dst = 0; dst < xgft.num_hosts(); ++dst) {
    const std::uint32_t first = lft.lid_of(dst, 0);
    for (const auto& row : fm.policy_tables()) {
      for (std::uint32_t j = 0; j < lft.block(); ++j) {
        const topo::LinkId entry = row[first + j];
        if (entry == topo::kInvalidLink) continue;
        ++counts[static_cast<std::size_t>(xgft.cable_of(entry))]
                [static_cast<std::size_t>(dst)];
      }
    }
  }
  return counts;
}

// Use-count bookkeeping edge case: a cable flap (down then up) must
// return the counts to the exact healthy baseline -- any drift here
// poisons every later affected-set computation.
TEST(FabricManager, UseCountsReturnToBaselineAfterCableFlap) {
  for (const auto policy : {fabric::RepairPolicy::kFirstSurviving,
                            fabric::RepairPolicy::kLoadAware}) {
    const topo::XgftSpec spec{{4, 4}, {3, 3}};
    fm::FmConfig config;
    config.repair_policy = policy;
    config.track_link_load = false;
    fm::FabricManager fm{spec, config};
    ASSERT_TRUE(fm.ok()) << fm.error();
    const auto inverse = raw_of(fm);
    const auto baseline = fm.use_counts();
    ASSERT_EQ(baseline, counts_of(fm));

    // Flap three different cables, one at a time and overlapping.
    const std::uint64_t a = fm.xgft().cable_of(
        fm.xgft().up_link(fm.xgft().host(10), 0));
    const std::uint64_t b = fm.xgft().cable_of(
        fm.xgft().up_link(fm.xgft().node_id(1, 2), 1));
    ASSERT_TRUE(fm.apply(cable_event(fm, inverse, a, true)).ok);
    EXPECT_EQ(fm.use_counts(), counts_of(fm));
    ASSERT_TRUE(fm.apply(cable_event(fm, inverse, b, true)).ok);
    EXPECT_EQ(fm.use_counts(), counts_of(fm));
    ASSERT_TRUE(fm.apply(cable_event(fm, inverse, a, false)).ok);
    EXPECT_EQ(fm.use_counts(), counts_of(fm));
    ASSERT_TRUE(fm.apply(cable_event(fm, inverse, b, false)).ok);

    EXPECT_EQ(fm.use_counts(), baseline)
        << to_string(policy) << ": counts drifted across a full flap";
    EXPECT_EQ(fm.use_counts(), counts_of(fm));
    EXPECT_EQ(fm.tables(), fabric::build_lft(fm.lft(), fm.degradation(),
                                             policy));
  }
}

// Repeatedly killing and reviving the SAME switch must be idempotent:
// identical tables, counts and disconnection accounting after every
// cycle, under both repair policies.
TEST(FabricManager, RepeatedSwitchDownUpIsIdempotent) {
  for (const auto policy : {fabric::RepairPolicy::kFirstSurviving,
                            fabric::RepairPolicy::kLoadAware}) {
    const topo::XgftSpec spec{{4, 4}, {3, 3}};
    fm::FmConfig config;
    config.repair_policy = policy;
    config.track_link_load = false;
    fm::FabricManager fm{spec, config};
    ASSERT_TRUE(fm.ok()) << fm.error();
    const auto inverse = raw_of(fm);
    const auto baseline = fm.use_counts();
    const fabric::Tables healthy = fm.tables();

    const topo::NodeId victim = fm.xgft().node_id(1, 4);
    std::vector<std::vector<std::uint32_t>> down_counts;
    fabric::Tables down_tables;
    for (int cycle = 0; cycle < 3; ++cycle) {
      auto record =
          fm.apply({fm::EventType::kSwitchDown, inverse[victim], 0});
      ASSERT_TRUE(record.ok) << record.error;
      EXPECT_EQ(fm.use_counts(), counts_of(fm));
      if (cycle == 0) {
        down_counts = fm.use_counts();
        down_tables = fm.tables();
      } else {
        EXPECT_EQ(fm.use_counts(), down_counts)
            << to_string(policy) << " cycle " << cycle;
        EXPECT_EQ(fm.tables(), down_tables);
      }

      record = fm.apply({fm::EventType::kSwitchUp, inverse[victim], 0});
      ASSERT_TRUE(record.ok) << record.error;
      EXPECT_EQ(fm.use_counts(), baseline)
          << to_string(policy) << " cycle " << cycle;
      EXPECT_EQ(fm.tables(), healthy);
      EXPECT_EQ(fm.disconnected_pairs(), 0u);
    }
  }
}

// switch_up heals back to the exact nominal state: after revival the
// degradation is healthy again and the tables match the healthy build.
TEST(FabricManager, SwitchUpRestoresNominalState) {
  const topo::XgftSpec spec{{4, 4, 4}, {1, 2, 2}};
  fm::FmConfig config;
  config.track_link_load = false;
  fm::FabricManager fm{spec, config};
  ASSERT_TRUE(fm.ok()) << fm.error();
  const auto inverse = raw_of(fm);
  const fabric::Tables healthy = fm.tables();

  const topo::NodeId mid = fm.xgft().node_id(2, 1);
  auto record = fm.apply({fm::EventType::kSwitchDown, inverse[mid], 0});
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_GT(record.churn, 0u);
  EXPECT_NE(fm.tables(), healthy);

  record = fm.apply({fm::EventType::kSwitchUp, inverse[mid], 0});
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_GT(record.churn, 0u);
  ASSERT_TRUE(fm.degradation().healthy());
  EXPECT_EQ(fm.tables(), healthy);

  // Reviving an already-live switch is a no-op with an ok record.
  record = fm.apply({fm::EventType::kSwitchUp, inverse[mid], 0});
  ASSERT_TRUE(record.ok) << record.error;
  EXPECT_EQ(record.churn, 0u);
  EXPECT_EQ(record.destinations_repaired, 0u);
}

TEST(FabricManager, UnrecognizableFabricReportsError) {
  discovery::RawFabric fabric;
  fabric.num_nodes = 3;
  fabric.hosts = {0, 1};
  fabric.cables = {{0, 2}};  // host 1 dangling: not an XGFT
  const fm::FabricManager fm{fabric, {}};
  EXPECT_FALSE(fm.ok());
  EXPECT_NE(fm.error().find("not recognized"), std::string::npos);
}

}  // namespace
}  // namespace lmpr
