#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/heuristics.hpp"
#include "core/single_path.hpp"
#include "fabric/lft.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using fabric::Lft;
using fabric::LidLayout;
using topo::Xgft;
using topo::XgftSpec;

TEST(Lft, LidBlocksAreContiguousAndInvertible) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // 16 max paths
  const Lft lft(xgft, 4, LidLayout::kDisjointLayout);
  EXPECT_EQ(lft.lmc(), 2u);
  EXPECT_EQ(lft.block(), 4u);
  EXPECT_EQ(lft.lid_of(0, 0), 1u);  // LID 0 reserved
  EXPECT_EQ(lft.lid_of(0, 3), 4u);
  EXPECT_EQ(lft.lid_of(1, 0), 5u);
  EXPECT_EQ(lft.lid_end(), 1u + 128 * 4);
  for (std::uint64_t d : {0ull, 7ull, 127ull}) {
    for (std::uint32_t j = 0; j < lft.block(); ++j) {
      const auto lid = lft.lid_of(d, j);
      EXPECT_EQ(lft.dst_of(lid), d);
      EXPECT_EQ(lft.variant_of(lid), j);
    }
  }
}

TEST(Lft, LmcClampsToMaxPaths) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};  // max 2 paths
  const Lft lft(xgft, 100, LidLayout::kDisjointLayout);
  EXPECT_EQ(lft.block(), 2u);
}

TEST(Lft, VariantZeroIsExactlyDmodk) {
  // j = 0 leaves the anchor untouched: the fabric's base route is d-mod-k
  // for every pair, in both layouts.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  for (const auto layout :
       {LidLayout::kDisjointLayout, LidLayout::kShiftLayout}) {
    const Lft lft(xgft, 8, layout);
    util::Rng rng{3};
    for (int trial = 0; trial < 60; ++trial) {
      const std::uint64_t s = rng.below(xgft.num_hosts());
      const std::uint64_t d = rng.below(xgft.num_hosts());
      if (s == d) continue;
      EXPECT_EQ(lft.induced_path_index(s, d, 0),
                route::dmodk_index(xgft, s, d));
    }
  }
}

class LftFabric : public testing::TestWithParam<XgftSpec> {};

TEST_P(LftFabric, WalkDeliversEveryVariantViaShortestPaths) {
  const Xgft xgft{GetParam()};
  for (const auto layout :
       {LidLayout::kDisjointLayout, LidLayout::kShiftLayout}) {
    const Lft lft(xgft, xgft.spec().num_top_switches(), layout);
    const std::uint64_t hosts = xgft.num_hosts();
    const std::uint64_t step = hosts > 24 ? hosts / 7 : 1;
    for (std::uint64_t s = 0; s < hosts; s += step) {
      for (std::uint64_t d = 0; d < hosts; d += step) {
        if (s == d) continue;
        for (std::uint32_t j = 0; j < lft.block(); ++j) {
          const auto walk = lft.walk(s, d, j);
          ASSERT_TRUE(walk.delivered)
              << "s=" << s << " d=" << d << " j=" << j;
          lmpr::test::expect_valid_path(xgft, s, d, walk.path);
          // Forwarding state and the analytic index agree.
          const auto expected = route::materialize_path(
              xgft, s, d, lft.induced_path_index(s, d, j));
          EXPECT_EQ(walk.path.links, expected.links);
        }
      }
    }
  }
}

TEST_P(LftFabric, DisjointLayoutRealizesTheDisjointHeuristic) {
  // The heuristic enumerates paths with mod-X arithmetic while
  // destination-based forwarding is digit-wise (no carries across
  // levels), so exact agreement holds at the paper's structural
  // boundaries: for every prefix K = w_1 * .. * w_l (the "level-l
  // disjoint" sets of Section 4.2.3) the first K variants induce the SAME
  // path set, and within the first w_1*w_2 variants even the order
  // matches on w_1 = 1 topologies.
  const XgftSpec& spec = GetParam();
  const Xgft xgft{spec};
  const Lft lft(xgft, spec.num_top_switches(), LidLayout::kDisjointLayout);
  util::Rng rng{5};
  const std::uint64_t hosts = xgft.num_hosts();
  const std::uint64_t step = hosts > 24 ? hosts / 9 : 1;
  for (std::uint64_t s = 0; s < hosts; s += step) {
    for (std::uint64_t d = 0; d < hosts; d += step) {
      if (s == d) continue;
      const std::uint32_t nca = xgft.nca_level(s, d);
      for (std::uint32_t l = 1; l <= nca; ++l) {
        const std::uint64_t prefix = xgft.w_prefix(l);
        const auto heuristic_set = route::select_path_indices(
            xgft, s, d, static_cast<std::size_t>(prefix),
            route::Heuristic::kDisjoint, rng);
        std::set<std::uint64_t> expected(heuristic_set.begin(),
                                         heuristic_set.end());
        std::set<std::uint64_t> induced;
        for (std::uint64_t j = 0; j < prefix; ++j) {
          induced.insert(lft.induced_path_index(
              s, d, static_cast<std::uint32_t>(j)));
        }
        EXPECT_EQ(induced, expected)
            << "s=" << s << " d=" << d << " level " << l;
      }
      if (spec.w_at(1) == 1 && nca >= 2) {
        const std::uint64_t ordered_prefix = xgft.w_prefix(2);
        const auto heuristic_set = route::select_path_indices(
            xgft, s, d, static_cast<std::size_t>(ordered_prefix),
            route::Heuristic::kDisjoint, rng);
        for (std::uint64_t j = 0; j < ordered_prefix; ++j) {
          EXPECT_EQ(lft.induced_path_index(s, d,
                                           static_cast<std::uint32_t>(j)),
                    heuristic_set[static_cast<std::size_t>(j)]);
        }
      }
    }
  }
}

TEST_P(LftFabric, DisjointLayoutCoverageIsFull) {
  // block >= X implies every pair sees all its paths (disjoint layout).
  const Xgft xgft{GetParam()};
  const Lft lft(xgft, xgft.spec().num_top_switches(),
                LidLayout::kDisjointLayout);
  util::Rng rng{7};
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t s = rng.below(xgft.num_hosts());
    const std::uint64_t d = rng.below(xgft.num_hosts());
    if (s == d) continue;
    EXPECT_EQ(lft.coverage(s, d), xgft.num_shortest_paths(s, d));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, LftFabric,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

TEST(Lft, ShiftLayoutStarvesLowPairsAtSmallBlocks) {
  // The realizability asymmetry: with a small LID budget the disjoint
  // layout gives every pair K distinct paths, while the shift layout
  // gives pairs below the top level only ONE (their variant digits sit in
  // the high bits of j).  XGFT(3;4,4,8;1,4,4), K = 4:
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const Lft disjoint(xgft, 4, LidLayout::kDisjointLayout);
  const Lft shift(xgft, 4, LidLayout::kShiftLayout);
  // NCA level 2 pair (4 paths available).
  const std::uint64_t s = 0;
  const std::uint64_t d = 8;
  ASSERT_EQ(xgft.num_shortest_paths(s, d), 4u);
  EXPECT_EQ(disjoint.coverage(s, d), 4u);
  EXPECT_EQ(shift.coverage(s, d), 1u);
  // Top-level pairs get the same diversity from both layouts.
  EXPECT_EQ(disjoint.coverage(0, 127), 4u);
  EXPECT_EQ(shift.coverage(0, 127), 4u);
}

TEST(Lft, TableForMatchesFunctionalForwarding) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const Lft lft(xgft, 2, LidLayout::kDisjointLayout);
  for (std::uint64_t n = 0; n < xgft.num_nodes(); ++n) {
    const auto node = static_cast<topo::NodeId>(n);
    const auto table = lft.table_for(node);
    ASSERT_EQ(table.size(), lft.lid_end());
    EXPECT_EQ(table[0], topo::kInvalidLink);  // LID 0 reserved
    for (std::uint32_t lid = 1; lid < lft.lid_end(); ++lid) {
      EXPECT_EQ(table[lid], lft.next_link(node, lid));
    }
  }
}

TEST(Lft, WalkLengthMatchesNcaLevel) {
  const Xgft xgft{XgftSpec{{4, 4, 4}, {1, 4, 2}}};
  const Lft lft(xgft, 8, LidLayout::kDisjointLayout);
  // Same-leaf pair: NCA 1, 2 links; full-height pair: NCA 3, 6 links.
  EXPECT_EQ(lft.walk(0, 1, 0).path.links.size(), 2u);
  EXPECT_EQ(lft.walk(0, 63, 0).path.links.size(), 6u);
}

}  // namespace
