#include <gtest/gtest.h>

#include "core/path_index.hpp"
#include "core/single_path.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using route::dmodk_index;
using route::random_single_index;
using route::smodk_index;
using topo::Xgft;
using topo::XgftSpec;

TEST(DModK, Figure3WorkedExample) {
  // Paper Section 4.2: on the Figure 3 topology the d-mod-k path for the
  // SD pair (0, 63) is Path 7.
  const Xgft xgft{XgftSpec{{4, 4, 4}, {1, 4, 2}}};
  EXPECT_EQ(dmodk_index(xgft, 0, 63), 7u);
}

TEST(DModK, PortFormulaAtEachLevel) {
  // j_{l+1} = (dst / (w_1..w_l)) mod w_{l+1}, checked digit by digit.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // w = (1,4,4)
  const std::uint64_t src = 0;
  const std::uint64_t dst = 107;  // arbitrary remote host
  const std::uint32_t nca = xgft.nca_level(src, dst);
  const auto choices =
      route::decode_path_index(xgft.spec(), nca, dmodk_index(xgft, src, dst));
  for (std::uint32_t l = 0; l < nca; ++l) {
    const std::uint64_t expected =
        (dst / xgft.w_prefix(l)) % xgft.spec().w_at(l + 1);
    EXPECT_EQ(choices[l], expected) << "level " << l;
  }
}

TEST(DModK, DependsOnlyOnDestinationWithinNcaClass) {
  // Two sources with the same NCA level relative to d get the same index.
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const std::uint64_t dst = 100;
  EXPECT_EQ(dmodk_index(xgft, 0, dst), dmodk_index(xgft, 5, dst));
  EXPECT_EQ(dmodk_index(xgft, 1, dst), dmodk_index(xgft, 14, dst));
}

TEST(SModK, MirrorsDModK) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  EXPECT_EQ(smodk_index(xgft, 63, 0), dmodk_index(xgft, 0, 63));
  EXPECT_EQ(smodk_index(xgft, 21, 98), dmodk_index(xgft, 98, 21));
}

TEST(SelfPairsAreIndexZero, AllSchemes) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 2)};
  util::Rng rng{1};
  EXPECT_EQ(dmodk_index(xgft, 9, 9), 0u);
  EXPECT_EQ(smodk_index(xgft, 9, 9), 0u);
  EXPECT_EQ(random_single_index(xgft, 9, 9, rng), 0u);
}

class SinglePathBounds : public testing::TestWithParam<XgftSpec> {};

TEST_P(SinglePathBounds, IndicesWithinPathCount) {
  const Xgft xgft{GetParam()};
  util::Rng rng{2};
  const std::uint64_t hosts = xgft.num_hosts();
  const std::uint64_t step = hosts > 24 ? hosts / 13 : 1;
  for (std::uint64_t s = 0; s < hosts; s += step) {
    for (std::uint64_t d = 0; d < hosts; d += step) {
      if (s == d) continue;
      const std::uint64_t total = xgft.num_shortest_paths(s, d);
      EXPECT_LT(dmodk_index(xgft, s, d), total);
      EXPECT_LT(smodk_index(xgft, s, d), total);
      EXPECT_LT(random_single_index(xgft, s, d, rng), total);
    }
  }
}

TEST_P(SinglePathBounds, DmodkPathsToSameDestinationMergeDownward) {
  // The defining d-mod-k property: once two packets to the same
  // destination reach the same level, they use the same switches from
  // there on -- the up-path choice depends only on d.  Check that the
  // apex (NCA switch) digit choices agree for all sources at equal NCA
  // level.
  const Xgft xgft{GetParam()};
  const std::uint64_t hosts = xgft.num_hosts();
  const std::uint64_t d = hosts - 1;
  std::vector<std::vector<std::uint32_t>> per_level(xgft.height() + 1);
  for (std::uint64_t s = 0; s + 1 < hosts; ++s) {
    const std::uint32_t nca = xgft.nca_level(s, d);
    if (nca == 0) continue;
    const auto choices =
        route::decode_path_index(xgft.spec(), nca, dmodk_index(xgft, s, d));
    auto& expected = per_level[nca];
    if (expected.empty()) {
      expected = choices;
    } else {
      EXPECT_EQ(choices, expected) << "source " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SinglePathBounds,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

}  // namespace
