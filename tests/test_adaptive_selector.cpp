// Unit tests for the adaptive multi-path variant selector (src/adaptive)
// and its flit-network integration points: policy spelling round-trips,
// the per-policy port scores, the rotating deterministic tie-break, the
// perfect-incumbent shortcut (a pure optimization -- picks must be
// IDENTICAL with and without it), the construction-time validation of
// SimConfig::select, and the engagement/degeneracy observables on real
// LFT-routed simulations (the differential kernel harnesses prove the
// counters are kernel-independent; this file proves they mean something).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "adaptive/selector.hpp"
#include "core/route_table.hpp"
#include "fabric/degraded.hpp"
#include "fabric/lft.hpp"
#include "flit/network.hpp"
#include "topology/xgft.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmpr;
using adaptive::PortState;
using adaptive::SelectPolicy;
using adaptive::VariantSelector;

TEST(SelectPolicyStrings, RoundTripsEverySpelling) {
  for (const SelectPolicy policy :
       {SelectPolicy::kOblivious, SelectPolicy::kAdaptiveCredit,
        SelectPolicy::kAdaptiveOccupancy}) {
    const auto parsed = adaptive::select_policy_from_string(
        adaptive::to_string(policy));
    ASSERT_TRUE(parsed.has_value()) << adaptive::to_string(policy);
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(adaptive::select_policy_from_string("adaptive").has_value());
  EXPECT_FALSE(adaptive::select_policy_from_string("").has_value());
}

TEST(PortScore, PoliciesWeightTheirPrimarySignalFirst) {
  // Same totals, opposite distribution: credit policy must prefer the
  // credit-rich port, occupancy policy the locally-empty one.
  const PortState credit_rich{/*credits=*/8, /*free_slots=*/2, false};
  const PortState locally_empty{/*credits=*/2, /*free_slots=*/8, false};
  EXPECT_GT(adaptive::port_score(SelectPolicy::kAdaptiveCredit, credit_rich),
            adaptive::port_score(SelectPolicy::kAdaptiveCredit,
                                 locally_empty));
  EXPECT_GT(
      adaptive::port_score(SelectPolicy::kAdaptiveOccupancy, locally_empty),
      adaptive::port_score(SelectPolicy::kAdaptiveOccupancy, credit_rich));
  // Strictly positive for any valid port (a zero can never tie a real
  // candidate), idle breaks exact ties, oblivious scores nothing.
  const PortState dead{0, 0, false};
  const PortState dead_idle{0, 0, true};
  for (const SelectPolicy policy :
       {SelectPolicy::kAdaptiveCredit, SelectPolicy::kAdaptiveOccupancy}) {
    EXPECT_GT(adaptive::port_score(policy, dead), 0u);
    EXPECT_GT(adaptive::port_score(policy, dead_idle),
              adaptive::port_score(policy, dead));
  }
  EXPECT_EQ(adaptive::port_score(SelectPolicy::kOblivious, credit_rich), 0u);
}

TEST(VariantSelectorTest, EngagesOnlyWithAdaptivePolicyAndRealChoice) {
  EXPECT_FALSE(VariantSelector(SelectPolicy::kOblivious, 4).engaged());
  EXPECT_FALSE(VariantSelector(SelectPolicy::kAdaptiveCredit, 1).engaged());
  EXPECT_TRUE(VariantSelector(SelectPolicy::kAdaptiveCredit, 2).engaged());
  EXPECT_TRUE(VariantSelector(SelectPolicy::kAdaptiveOccupancy, 4).engaged());
}

/// Candidate table helper: index -> fixed Candidate.
struct Fixture {
  std::vector<VariantSelector::Candidate> candidates;
  VariantSelector::Candidate operator()(std::uint32_t v) const {
    return candidates[v];
  }
};

VariantSelector::Candidate valid_port(std::uint32_t credits,
                                      std::uint32_t free_slots,
                                      bool idle = false) {
  return {PortState{credits, free_slots, idle}, /*valid=*/true,
          /*same_link=*/false};
}

TEST(VariantSelectorTest, IncumbentDisplacedOnlyByStrictlyBetterScore) {
  VariantSelector selector(SelectPolicy::kAdaptiveCredit, 2);
  // Equal score: the incumbent stays (no switch counted).
  Fixture equal{{valid_port(4, 4), valid_port(4, 4)}};
  EXPECT_EQ(selector.pick(0, equal, /*now=*/0), 0u);
  EXPECT_EQ(selector.stats().switches, 0u);
  // Strictly better sibling: the packet moves.
  Fixture better{{valid_port(1, 1), valid_port(4, 4)}};
  EXPECT_EQ(selector.pick(0, better, /*now=*/0), 1u);
  EXPECT_EQ(selector.stats().decisions, 2u);
  EXPECT_EQ(selector.stats().switches, 1u);
}

TEST(VariantSelectorTest, RotatingStartBreaksTiesDeterministically) {
  // Variants 1..3 all strictly beat incumbent 0 with EQUAL scores; only
  // the rotation can separate them.  The scan starts at now % block and
  // only a STRICTLY greater score displaces the current best, so the
  // winner is the first non-incumbent candidate in rotation order --
  // fully determined by `now`, identical on every rerun.
  Fixture tied{{valid_port(1, 1), valid_port(6, 6), valid_port(6, 6),
                valid_port(6, 6)}};
  const std::uint32_t expected[] = {1, 1, 2, 3};  // now % 4 = 0, 1, 2, 3
  for (std::uint64_t now = 0; now < 16; ++now) {
    VariantSelector a(SelectPolicy::kAdaptiveCredit, 4);
    VariantSelector b(SelectPolicy::kAdaptiveCredit, 4);
    const std::uint32_t pick = a.pick(0, tied, now);
    EXPECT_EQ(pick, expected[now % 4]) << "now=" << now;
    EXPECT_EQ(b.pick(0, tied, now), pick) << "now=" << now;  // rerun agrees
  }
}

TEST(VariantSelectorTest, InvalidAndSameLinkCandidatesNeverWin) {
  VariantSelector selector(SelectPolicy::kAdaptiveCredit, 4);
  Fixture fixture{{valid_port(1, 1),
                   {PortState{9, 9, true}, /*valid=*/false, false},
                   {PortState{9, 9, true}, /*valid=*/true, /*same_link=*/true},
                   valid_port(2, 2)}};
  // Variants 1 (down entry) and 2 (same output port as the incumbent)
  // score higher but are not legal rewrite targets; 3 wins.
  EXPECT_EQ(selector.pick(0, fixture, /*now=*/0), 3u);
  // With 3 invalid too, the incumbent survives even at score 1+4+2=7.
  fixture.candidates[3].valid = false;
  EXPECT_EQ(selector.pick(0, fixture, /*now=*/1), 0u);
}

TEST(VariantSelectorTest, PerfectScoreShortcutNeverChangesThePick) {
  // The shortcut skips the sibling scan when the incumbent is already
  // unbeatable.  Over random candidate sets (including ones where the
  // incumbent IS perfect) the shortcut selector and a plain selector
  // must agree on every pick and every counter.
  constexpr std::uint32_t kBlock = 4;
  constexpr std::uint32_t kMaxCredits = 3;
  const PortState ideal{kMaxCredits, kMaxCredits, true};
  for (const SelectPolicy policy :
       {SelectPolicy::kAdaptiveCredit, SelectPolicy::kAdaptiveOccupancy}) {
    VariantSelector with(policy, kBlock, adaptive::port_score(policy, ideal));
    VariantSelector without(policy, kBlock);
    util::Rng rng{2024};
    for (int trial = 0; trial < 2000; ++trial) {
      Fixture fixture;
      for (std::uint32_t v = 0; v < kBlock; ++v) {
        VariantSelector::Candidate c;
        c.valid = rng.below(8) != 0;
        c.same_link = rng.below(8) == 0;
        // Draw ports at the ideal ceiling often enough that perfect
        // incumbents actually occur.
        c.port.credits = kMaxCredits -
                         static_cast<std::uint32_t>(rng.below(kMaxCredits));
        c.port.free_slots = kMaxCredits -
                            static_cast<std::uint32_t>(rng.below(kMaxCredits));
        c.port.idle = rng.below(2) == 0;
        fixture.candidates.push_back(c);
      }
      const auto incumbent = static_cast<std::uint32_t>(rng.below(kBlock));
      const std::uint64_t now = rng.below(1u << 20);
      EXPECT_EQ(with.pick(incumbent, fixture, now),
                without.pick(incumbent, fixture, now))
          << "trial " << trial;
    }
    EXPECT_EQ(with.stats(), without.stats());
    EXPECT_GT(with.stats().switches, 0u);  // the draws exercised real moves
  }
}

// -- flit-network integration -----------------------------------------

flit::SimConfig adaptive_config(double load) {
  flit::SimConfig config;
  config.warmup_cycles = 400;
  config.measure_cycles = 2000;
  config.drain_cycles = 600;
  config.offered_load = load;
  config.seed = 7;
  config.select = SelectPolicy::kAdaptiveCredit;
  return config;
}

TEST(AdaptiveNetworkValidation, SelectRequiresLftRouting) {
  // Route-table packets carry explicit paths -- there is no sibling
  // variant to switch to, so the config is rejected up front rather than
  // silently ignored.
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(4, 2)};
  const route::RouteTable table(xgft, route::Heuristic::kDisjoint, 2, 11);
  EXPECT_THROW(flit::Network(table, adaptive_config(0.3)),
               std::invalid_argument);
}

TEST(AdaptiveNetworkValidation, SelectExcludesAllPortsAdaptiveRouting) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(4, 2)};
  const fabric::Lft lft(xgft, 2, fabric::LidLayout::kDisjointLayout);
  const fabric::Tables tables =
      fabric::build_lft(lft, fabric::Degradation(xgft));
  flit::SimConfig config = adaptive_config(0.3);
  config.routing_mode = flit::RoutingMode::kAdaptive;
  EXPECT_THROW(flit::Network(lft, tables, config), std::invalid_argument);
}

TEST(AdaptiveNetwork, EngagesUnderHotspotAndIsDeterministic) {
  const topo::Xgft xgft{topo::XgftSpec{{4, 4, 4}, {1, 2, 2}}};
  const fabric::Lft lft(xgft, 4, fabric::LidLayout::kDisjointLayout);
  const fabric::Tables tables =
      fabric::build_lft(lft, fabric::Degradation(xgft));
  flit::SimConfig config = adaptive_config(0.5);
  config.destination_mode = flit::DestinationMode::kHotspot;
  config.hotspot_target = 3;
  config.hotspot_fraction = 0.3;

  flit::Network first(lft, tables, config);
  const flit::SimMetrics metrics = first.run();
  EXPECT_GT(metrics.packets_delivered, 0u);
  // Degeneracy guard: the run must have evaluated real decision points
  // AND moved packets off their incumbent variant, or "adaptive" tested
  // nothing.
  EXPECT_GT(first.selector_stats().decisions, 0u);
  EXPECT_GT(first.selector_stats().switches, 0u);

  // Same seed, same counters: the selector consumes no RNG and rotates
  // on the cycle counter only.
  flit::Network second(lft, tables, config);
  (void)second.run();
  EXPECT_EQ(first.selector_stats(), second.selector_stats());

  // The oblivious policy never reaches a decision point at all.
  config.select = SelectPolicy::kOblivious;
  flit::Network oblivious(lft, tables, config);
  (void)oblivious.run();
  EXPECT_EQ(oblivious.selector_stats().decisions, 0u);
  EXPECT_EQ(oblivious.selector_stats().switches, 0u);
}

TEST(AdaptiveNetwork, SingleVariantNeverEngages) {
  // K=1 installs one LID per destination: engaged() is false and the
  // adaptive run must be decision-free (and therefore byte-identical to
  // oblivious -- compare the full metrics to prove it).
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(4, 2)};
  const fabric::Lft lft(xgft, 1, fabric::LidLayout::kDisjointLayout);
  const fabric::Tables tables =
      fabric::build_lft(lft, fabric::Degradation(xgft));
  flit::SimConfig config = adaptive_config(0.4);
  flit::Network adaptive_net(lft, tables, config);
  const flit::SimMetrics adaptive_metrics = adaptive_net.run();
  EXPECT_EQ(adaptive_net.selector_stats().decisions, 0u);
  config.select = SelectPolicy::kOblivious;
  const flit::SimMetrics oblivious_metrics =
      flit::Network(lft, tables, config).run();
  EXPECT_EQ(adaptive_metrics.throughput, oblivious_metrics.throughput);
  EXPECT_EQ(adaptive_metrics.packets_delivered,
            oblivious_metrics.packets_delivered);
  EXPECT_EQ(adaptive_metrics.message_delay.mean(),
            oblivious_metrics.message_delay.mean());
}

TEST(AdaptiveNetwork, ShiftTrafficEngagesOnUpwardHops) {
  // Cross-leaf shift traffic climbs the tree, so arrival-time decision
  // points at switches fire (not just injection-time ones at the NICs).
  const topo::Xgft xgft{topo::XgftSpec{{2, 3, 4}, {2, 2, 3}}};
  const fabric::Lft lft(xgft, 2, fabric::LidLayout::kShiftLayout);
  const fabric::Tables tables =
      fabric::build_lft(lft, fabric::Degradation(xgft));
  flit::SimConfig config = adaptive_config(0.5);
  config.select = SelectPolicy::kAdaptiveOccupancy;
  config.destination_mode = flit::DestinationMode::kShift;
  config.shift_distance = 5;  // past the leaf radix: every message climbs
  flit::Network network(lft, tables, config);
  const flit::SimMetrics metrics = network.run();
  EXPECT_GT(metrics.packets_delivered, 0u);
  EXPECT_GT(network.selector_stats().decisions, 0u);
  EXPECT_GT(network.selector_stats().switches, 0u);
}

TEST(AdaptiveNetwork, LinkFaultsRefreshTheSelectorGate) {
  // Kill an up link mid-run and heal it later: the per-link gate must
  // stop offering the dead link's variants (the run keeps delivering and
  // never routes into the mask), then resume after the heal.  Two
  // identical runs agree on every counter, fault path included.
  const topo::Xgft xgft{topo::XgftSpec{{4, 4, 4}, {1, 2, 2}}};
  const fabric::Lft lft(xgft, 4, fabric::LidLayout::kDisjointLayout);
  const fabric::Tables tables =
      fabric::build_lft(lft, fabric::Degradation(xgft));
  flit::SimConfig config = adaptive_config(0.4);
  config.drop_policy = flit::DropPolicy::kRerouteAtSwitch;

  // First up link out of the first leaf switch.
  topo::LinkId victim = topo::kInvalidLink;
  for (topo::LinkId id = 0; id < xgft.num_links(); ++id) {
    const topo::Link& link = xgft.link(id);
    if (link.up && !xgft.is_host(link.src)) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, topo::kInvalidLink);

  const auto run_once = [&](flit::Network& network) {
    network.run_until(1000);
    (void)network.take_link_down(victim);
    network.run_until(2000);
    network.bring_link_up(victim);
    network.run_until(network.horizon());
    return network.finalize();
  };
  flit::Network first(lft, tables, config);
  const flit::SimMetrics a = run_once(first);
  EXPECT_GT(a.packets_delivered, 0u);
  EXPECT_GT(first.selector_stats().switches, 0u);
  flit::Network second(lft, tables, config);
  const flit::SimMetrics b = run_once(second);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(first.selector_stats(), second.selector_stats());
}

}  // namespace
