#include <gtest/gtest.h>

#include "core/lid_cost.hpp"

namespace {

using namespace lmpr;
using route::lid_cost;
using topo::Xgft;
using topo::XgftSpec;

TEST(LidCost, SinglePathNeedsOneLidPerHost) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const auto cost = lid_cost(xgft, 1);
  EXPECT_EQ(cost.effective_paths, 1u);
  EXPECT_EQ(cost.lmc, 0u);
  EXPECT_EQ(cost.total_lids, 128u);
  EXPECT_TRUE(cost.realizable);
}

TEST(LidCost, LmcIsCeilLog2) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // max 16 paths
  EXPECT_EQ(lid_cost(xgft, 2).lmc, 1u);
  EXPECT_EQ(lid_cost(xgft, 3).lmc, 2u);
  EXPECT_EQ(lid_cost(xgft, 4).lmc, 2u);
  EXPECT_EQ(lid_cost(xgft, 5).lmc, 3u);
  EXPECT_EQ(lid_cost(xgft, 16).lmc, 4u);
}

TEST(LidCost, KIsClampedToMaxPaths) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // max 16 paths
  const auto cost = lid_cost(xgft, 1000);
  EXPECT_EQ(cost.effective_paths, 16u);
  EXPECT_EQ(cost.lmc, 4u);
}

TEST(LidCost, RangerScaleUnlimitedMultipathIsNotRealizable) {
  // The paper's Section 4.1 motivation: on the 24-port 3-tree
  // (TACC Ranger), 144 paths per pair exceed what LMC can express
  // (needs 2^8 block > LMC max 7) -- unlimited multi-path cannot be
  // realized on InfiniBand.
  const Xgft xgft{XgftSpec::m_port_n_tree(24, 3)};
  const auto unlimited = lid_cost(xgft, 144);
  EXPECT_EQ(unlimited.lmc, 8u);
  EXPECT_FALSE(unlimited.realizable);
  // Limited multi-path with modest K stays realizable.
  const auto limited = lid_cost(xgft, 8);
  EXPECT_TRUE(limited.realizable);
  EXPECT_EQ(limited.total_lids, 3456u * 8);
}

TEST(LidCost, LidSpaceExhaustionFlagged) {
  // 16-port 3-tree has 1024 hosts; K = 128 -> 131072 LIDs > 49151.
  const Xgft xgft{XgftSpec::m_port_n_tree(16, 3)};  // max 64 paths
  const auto cost = lid_cost(xgft, 64);
  EXPECT_EQ(cost.lmc, 6u);
  EXPECT_EQ(cost.total_lids, 1024u * 64);
  EXPECT_FALSE(cost.realizable);  // 65536 > 49151
}

}  // namespace
