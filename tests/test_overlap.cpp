#include <gtest/gtest.h>

#include <vector>

#include "core/heuristics.hpp"
#include "core/overlap.hpp"
#include "core/path_index.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using route::analyze_path_set;
using route::Heuristic;
using route::Path;
using topo::Xgft;
using topo::XgftSpec;

std::vector<Path> materialize_set(const Xgft& xgft, std::uint64_t s,
                                  std::uint64_t d, std::size_t k,
                                  Heuristic h) {
  util::Rng rng{11};
  std::vector<Path> paths;
  for (const auto index : route::select_path_indices(xgft, s, d, k, h, rng)) {
    paths.push_back(route::materialize_path(xgft, s, d, index));
  }
  return paths;
}

TEST(Overlap, SinglePathHasNoPairs) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const auto paths = materialize_set(xgft, 0, 127, 1, Heuristic::kDModK);
  const auto stats = analyze_path_set(xgft, paths);
  EXPECT_EQ(stats.num_paths, 1u);
  EXPECT_EQ(stats.total_pairs, 0u);
  EXPECT_EQ(stats.distinct_links, 6u);  // 3 up + 3 down
}

TEST(Overlap, Shift1SharesLowerLinks) {
  // Section 4.2.2: shift-1's small-K paths differ only at the top level,
  // so every pair shares the level-0 and level-1 links on both legs
  // (w_1 = 1 makes the level-0 links shared by construction).
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const auto paths = materialize_set(xgft, 0, 127, 4, Heuristic::kShift1);
  const auto stats = analyze_path_set(xgft, paths);
  EXPECT_EQ(stats.num_paths, 4u);
  // All four paths share the same leaf uplink: one distinct level-0 up
  // link + one distinct level-0 down link.
  EXPECT_EQ(stats.distinct_links_per_level[0], 2u);
  EXPECT_EQ(stats.disjoint_pairs, 0u);
  EXPECT_GE(stats.min_pairwise_shared, 2u);
}

TEST(Overlap, DisjointForksAtTheLowestPossibleLevel) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};  // w = (1,4,4)
  const auto paths = materialize_set(xgft, 0, 127, 4, Heuristic::kDisjoint);
  const auto stats = analyze_path_set(xgft, paths);
  EXPECT_EQ(stats.num_paths, 4u);
  // w_1 = 1: the host access links are necessarily shared...
  EXPECT_EQ(stats.distinct_links_per_level[0], 2u);
  // ...but the K = w_1*w_2 = 4 paths use 4 distinct level-1 up links and
  // 4 distinct level-1 down links (they fork right above the leaf).
  EXPECT_EQ(stats.distinct_links_per_level[1], 8u);
  // Every pair shares exactly the two access links.
  EXPECT_EQ(stats.min_pairwise_shared, 2u);
  EXPECT_EQ(stats.max_pairwise_shared, 2u);
}

TEST(Overlap, DisjointBeatsShift1OnDistinctLowerLinks) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  for (const std::size_t k : {2u, 4u, 8u}) {
    const auto shift =
        analyze_path_set(xgft, materialize_set(xgft, 0, 127, k,
                                               Heuristic::kShift1));
    const auto disjoint =
        analyze_path_set(xgft, materialize_set(xgft, 0, 127, k,
                                               Heuristic::kDisjoint));
    EXPECT_GE(disjoint.distinct_links_per_level[1],
              shift.distinct_links_per_level[1])
        << "K=" << k;
    EXPECT_LE(disjoint.mean_pairwise_shared, shift.mean_pairwise_shared)
        << "K=" << k;
  }
}

TEST(Overlap, TrueDisjointnessWhenW1Exceeds1) {
  // With w_1 = 2 the disjoint heuristic can produce fully link-disjoint
  // pairs (they fork at the hosts themselves).
  const Xgft xgft{XgftSpec{{2, 3, 4}, {2, 2, 3}}};
  const auto paths = materialize_set(xgft, 0, xgft.num_hosts() - 1, 2,
                                     Heuristic::kDisjoint);
  const auto stats = analyze_path_set(xgft, paths);
  EXPECT_EQ(stats.num_paths, 2u);
  EXPECT_EQ(stats.disjoint_pairs, 1u);
  EXPECT_EQ(stats.min_pairwise_shared, 0u);
}

TEST(Overlap, UmultiCoversEveryTopSwitch) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const auto paths = materialize_set(xgft, 0, 127, 1, Heuristic::kUmulti);
  const auto stats = analyze_path_set(xgft, paths);
  EXPECT_EQ(stats.num_paths, 16u);
  EXPECT_EQ(stats.total_pairs, 16u * 15 / 2);
  // 16 paths over 16 top switches: level-2 links all distinct (16 up + 16
  // down).
  EXPECT_EQ(stats.distinct_links_per_level[2], 32u);
}

TEST(Overlap, EmptySetIsAllZero) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const auto stats = analyze_path_set(xgft, {});
  EXPECT_EQ(stats.num_paths, 0u);
  EXPECT_EQ(stats.distinct_links, 0u);
  EXPECT_EQ(stats.min_pairwise_shared, 0u);
}

}  // namespace
