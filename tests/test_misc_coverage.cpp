// Odds-and-ends coverage: export determinism, DOT output, spec factories,
// and cable indexing -- small behaviours the main suites route around.
#include <gtest/gtest.h>

#include "discovery/recognize.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using topo::Xgft;
using topo::XgftSpec;

TEST(ExportFabric, IdentityExportPreservesIds) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  const auto fabric = discovery::export_fabric(xgft);
  ASSERT_EQ(fabric.hosts.size(), xgft.num_hosts());
  for (std::uint64_t h = 0; h < xgft.num_hosts(); ++h) {
    EXPECT_EQ(fabric.hosts[static_cast<std::size_t>(h)], h);
  }
  ASSERT_EQ(fabric.cables.size(), xgft.num_cables());
  for (std::uint64_t c = 0; c < xgft.num_cables(); ++c) {
    const auto& link = xgft.link(static_cast<topo::LinkId>(c));
    EXPECT_EQ(fabric.cables[static_cast<std::size_t>(c)].first, link.src);
    EXPECT_EQ(fabric.cables[static_cast<std::size_t>(c)].second, link.dst);
  }
}

TEST(ExportFabric, ShuffleIsSeedDeterministic) {
  const Xgft xgft{XgftSpec::m_port_n_tree(4, 2)};
  util::Rng a{9};
  util::Rng b{9};
  const auto fa = discovery::export_fabric(xgft, &a);
  const auto fb = discovery::export_fabric(xgft, &b);
  EXPECT_EQ(fa.cables, fb.cables);
  EXPECT_EQ(fa.hosts, fb.hosts);
}

TEST(CableOf, BothDirectionsShareTheCable) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  for (std::uint64_t n = 0; n < xgft.num_nodes(); ++n) {
    const auto node = static_cast<topo::NodeId>(n);
    for (std::uint32_t j = 0; j < xgft.num_parents(node); ++j) {
      const topo::LinkId up = xgft.up_link(node, j);
      const topo::NodeId parent = xgft.parent(node, j);
      // Find the matching down port.
      for (std::uint32_t c = 0; c < xgft.num_children(parent); ++c) {
        if (xgft.child(parent, c) != node) continue;
        const topo::LinkId down = xgft.down_link(parent, c);
        EXPECT_EQ(xgft.cable_of(up), xgft.cable_of(down));
      }
    }
  }
}

TEST(SpecFactories, GftAllowsOversubscription) {
  const auto spec = XgftSpec::gft(3, 4, 2);  // w < m everywhere
  EXPECT_EQ(spec.num_hosts(), 64u);
  EXPECT_EQ(spec.num_top_switches(), 8u);
  const Xgft xgft{spec};  // constructs and validates
  EXPECT_EQ(xgft.num_shortest_paths(0, 63), 8u);
}

TEST(AncestorQueries, MatchSubtreeMembership) {
  const Xgft xgft{XgftSpec{{4, 4, 4}, {1, 4, 2}}};
  // A level-2 switch covers exactly its height-2 subtree's 16 hosts.
  const topo::NodeId sw = xgft.node_id(2, 5);
  std::size_t covered = 0;
  for (std::uint64_t h = 0; h < xgft.num_hosts(); ++h) {
    covered += xgft.is_ancestor_of_host(sw, h);
  }
  EXPECT_EQ(covered, 16u);
  // Hosts are ancestors only of themselves.
  EXPECT_TRUE(xgft.is_ancestor_of_host(xgft.host(3), 3));
  EXPECT_FALSE(xgft.is_ancestor_of_host(xgft.host(3), 4));
}

TEST(AncestorQueries, DownPortLeadsTowardTheHost) {
  const Xgft xgft{XgftSpec::m_port_n_tree(8, 3)};
  const topo::NodeId top = xgft.node_id(3, 7);
  topo::NodeId node = top;
  const std::uint64_t target = 101;
  while (!xgft.is_host(node)) {
    ASSERT_TRUE(xgft.is_ancestor_of_host(node, target));
    node = xgft.child(node, xgft.down_port_toward(node, target));
  }
  EXPECT_EQ(node, xgft.host(target));
}

}  // namespace
