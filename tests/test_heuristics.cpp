#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "core/heuristics.hpp"
#include "core/single_path.hpp"
#include "test_support.hpp"

namespace {

using namespace lmpr;
using route::disjoint_offset;
using route::disjoint_sequence;
using route::Heuristic;
using route::select_path_indices;
using topo::Xgft;
using topo::XgftSpec;

// ---------------------------------------------------------------------------
// Worked examples from the paper (Section 4.2, Figure 3 topology, SD (0,63)).
// ---------------------------------------------------------------------------

class Figure3Example : public testing::Test {
 protected:
  Xgft xgft_{XgftSpec{{4, 4, 4}, {1, 4, 2}}};
  util::Rng rng_{1};
};

TEST_F(Figure3Example, Shift1WithK3) {
  // "The first path chosen is path0 at index 7, the second at (7+1) mod 8
  //  = 0 and the third at (7+2) mod 8 = 1."
  const auto indices =
      select_path_indices(xgft_, 0, 63, 3, Heuristic::kShift1, rng_);
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{7, 0, 1}));
}

TEST_F(Figure3Example, DisjointLevel2Set) {
  // "The first w_1*w_2 = 4 level-2 disjoint paths are Path 7, Path 1,
  //  Path 3, and Path 5."
  const auto indices =
      select_path_indices(xgft_, 0, 63, 4, Heuristic::kDisjoint, rng_);
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{7, 1, 3, 5}));
}

TEST_F(Figure3Example, DisjointFullEnumerationIsPermutation) {
  const auto indices =
      select_path_indices(xgft_, 0, 63, 8, Heuristic::kDisjoint, rng_);
  EXPECT_EQ(indices.size(), 8u);
  std::set<std::uint64_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 8u);
  // The first four are the paper's level-2 disjoint set, in order.
  EXPECT_EQ(indices[0], 7u);
  EXPECT_EQ(indices[1], 1u);
  EXPECT_EQ(indices[2], 3u);
  EXPECT_EQ(indices[3], 5u);
}

TEST_F(Figure3Example, AnchorsAreTheDmodkPath) {
  for (const Heuristic h : {Heuristic::kShift1, Heuristic::kDisjoint}) {
    const auto indices = select_path_indices(xgft_, 0, 63, 3, h, rng_);
    EXPECT_EQ(indices.front(), route::dmodk_index(xgft_, 0, 63));
  }
}

// ---------------------------------------------------------------------------
// Disjoint enumeration algebra.
// ---------------------------------------------------------------------------

TEST(DisjointOffset, MixedRadixOrder) {
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};  // w = (1,4,2), X = 8
  // c_1 has radix 1 (skipped); c_2 varies fastest with stride w_3 = 2;
  // then c_3 with stride 1.
  EXPECT_EQ(disjoint_offset(spec, 3, 0), 0u);
  EXPECT_EQ(disjoint_offset(spec, 3, 1), 2u);
  EXPECT_EQ(disjoint_offset(spec, 3, 2), 4u);
  EXPECT_EQ(disjoint_offset(spec, 3, 3), 6u);
  EXPECT_EQ(disjoint_offset(spec, 3, 4), 1u);
  EXPECT_EQ(disjoint_offset(spec, 3, 7), 7u);
}

TEST(DisjointOffset, LowestLevelVariesFirstWhenW1Above1) {
  const XgftSpec spec{{2, 3, 4}, {2, 2, 3}};  // w = (2,2,3), X = 12
  // c_1 (radix 2) stride = w_2*w_3 = 6; so n=1 flips the level-0 choice.
  EXPECT_EQ(disjoint_offset(spec, 3, 0), 0u);
  EXPECT_EQ(disjoint_offset(spec, 3, 1), 6u);
  // n=2: c_2 = 1, stride w_3 = 3.
  EXPECT_EQ(disjoint_offset(spec, 3, 2), 3u);
  EXPECT_EQ(disjoint_offset(spec, 3, 3), 9u);
}

TEST(DisjointSequence, WrapsModuloPathCount) {
  const XgftSpec spec{{4, 4, 4}, {1, 4, 2}};
  const auto seq = disjoint_sequence(spec, 3, 7, 8);
  EXPECT_EQ(seq, (std::vector<std::uint64_t>{7, 1, 3, 5, 0, 2, 4, 6}));
}

// ---------------------------------------------------------------------------
// Heuristic contracts over the topology grid.
// ---------------------------------------------------------------------------

class HeuristicContracts : public testing::TestWithParam<XgftSpec> {};

TEST_P(HeuristicContracts, SelectionsAreDistinctValidAndSized) {
  const Xgft xgft{GetParam()};
  util::Rng rng{3};
  const std::uint64_t hosts = xgft.num_hosts();
  const std::uint64_t step = hosts > 24 ? hosts / 9 : 1;
  for (std::uint64_t s = 0; s < hosts; s += step) {
    for (std::uint64_t d = 0; d < hosts; d += step) {
      if (s == d) continue;
      const std::uint64_t total = xgft.num_shortest_paths(s, d);
      for (const Heuristic h :
           {Heuristic::kDModK, Heuristic::kSModK, Heuristic::kRandomSingle,
            Heuristic::kShift1, Heuristic::kDisjoint, Heuristic::kRandom,
            Heuristic::kUmulti}) {
        for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3},
                                    static_cast<std::size_t>(total + 5)}) {
          const auto indices = select_path_indices(xgft, s, d, k, h, rng);
          std::size_t expected;
          if (route::is_single_path(h)) {
            expected = 1;
          } else if (h == Heuristic::kUmulti) {
            expected = static_cast<std::size_t>(total);
          } else {
            expected = static_cast<std::size_t>(
                std::min<std::uint64_t>(k, total));
          }
          EXPECT_EQ(indices.size(), expected)
              << to_string(h) << " K=" << k << " (" << s << "," << d << ")";
          std::set<std::uint64_t> unique(indices.begin(), indices.end());
          EXPECT_EQ(unique.size(), indices.size()) << to_string(h);
          for (const auto index : indices) EXPECT_LT(index, total);
        }
      }
    }
  }
}

TEST_P(HeuristicContracts, LargeKEqualsUmultiSet) {
  const Xgft xgft{GetParam()};
  util::Rng rng{5};
  const std::uint64_t d = xgft.num_hosts() - 1;
  const std::uint64_t total = xgft.num_shortest_paths(0, d);
  const auto umulti = select_path_indices(
      xgft, 0, d, 1, Heuristic::kUmulti, rng);
  for (const Heuristic h :
       {Heuristic::kShift1, Heuristic::kDisjoint, Heuristic::kRandom}) {
    auto indices = select_path_indices(
        xgft, 0, d, static_cast<std::size_t>(total), h, rng);
    std::sort(indices.begin(), indices.end());
    EXPECT_EQ(indices, umulti) << to_string(h);
  }
}

TEST_P(HeuristicContracts, TwoLevelShift1EqualsDisjoint) {
  // Paper Section 5: "For 2-level trees, the shift-1 heuristic and the
  // disjoint heuristic are identical" -- this holds whenever w_1 = 1.
  const XgftSpec& spec = GetParam();
  if (spec.height() != 2 || spec.w_at(1) != 1) GTEST_SKIP();
  const Xgft xgft{spec};
  util::Rng rng{7};
  const std::uint64_t hosts = xgft.num_hosts();
  for (std::uint64_t s = 0; s < hosts; ++s) {
    for (std::uint64_t d = 0; d < hosts; ++d) {
      if (s == d) continue;
      for (std::size_t k = 1; k <= xgft.num_shortest_paths(s, d); ++k) {
        EXPECT_EQ(
            select_path_indices(xgft, s, d, k, Heuristic::kShift1, rng),
            select_path_indices(xgft, s, d, k, Heuristic::kDisjoint, rng));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, HeuristicContracts,
                         testing::ValuesIn(lmpr::test::property_grid()),
                         lmpr::test::grid_name);

// ---------------------------------------------------------------------------
// Name round-trips.
// ---------------------------------------------------------------------------

TEST(HeuristicNames, RoundTrip) {
  // all_heuristics() is the single source of truth: it must cover every
  // enumerator exactly once, and every name must parse back to its value.
  EXPECT_EQ(route::all_heuristics().size(), 7u);
  std::set<Heuristic> seen;
  for (const Heuristic h : route::all_heuristics()) {
    EXPECT_TRUE(seen.insert(h).second) << to_string(h) << " listed twice";
    const auto parsed = route::heuristic_from_string(to_string(h));
    ASSERT_TRUE(parsed.has_value()) << to_string(h);
    EXPECT_EQ(*parsed, h);
    EXPECT_EQ(route::parse_heuristic(to_string(h)), h);
    EXPECT_NE(to_string(h), "unknown");
  }
  EXPECT_FALSE(route::heuristic_from_string("bogus").has_value());
}

TEST(HeuristicNames, HyphenatedAliasesParse) {
  EXPECT_EQ(route::heuristic_from_string("d-mod-k"), Heuristic::kDModK);
  EXPECT_EQ(route::heuristic_from_string("s-mod-k"), Heuristic::kSModK);
  EXPECT_EQ(route::heuristic_from_string("shift-1"), Heuristic::kShift1);
  EXPECT_EQ(route::parse_heuristic("d-mod-k"), Heuristic::kDModK);
  EXPECT_EQ(route::parse_heuristic("s-mod-k"), Heuristic::kSModK);
  EXPECT_EQ(route::parse_heuristic("shift-1"), Heuristic::kShift1);
}

TEST(HeuristicNames, ParseErrorListsValidNames) {
  try {
    route::parse_heuristic("dmod");
    FAIL() << "parse_heuristic accepted a bad name";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown heuristic 'dmod'"), std::string::npos) << what;
    for (const Heuristic h : route::all_heuristics()) {
      EXPECT_NE(what.find(to_string(h)), std::string::npos)
          << "diagnostic misses " << to_string(h) << ": " << what;
    }
    EXPECT_NE(what.find("d-mod-k"), std::string::npos) << what;
  }
}

TEST(HeuristicNames, NameListMentionsEveryHeuristic) {
  const std::string names = route::heuristic_names();
  for (const Heuristic h : route::all_heuristics()) {
    EXPECT_NE(names.find(to_string(h)), std::string::npos) << names;
  }
  EXPECT_NE(names.find("aliases"), std::string::npos) << names;
}

TEST(HeuristicNames, SinglePathClassification) {
  EXPECT_TRUE(route::is_single_path(Heuristic::kDModK));
  EXPECT_TRUE(route::is_single_path(Heuristic::kSModK));
  EXPECT_TRUE(route::is_single_path(Heuristic::kRandomSingle));
  EXPECT_FALSE(route::is_single_path(Heuristic::kShift1));
  EXPECT_FALSE(route::is_single_path(Heuristic::kDisjoint));
  EXPECT_FALSE(route::is_single_path(Heuristic::kRandom));
  EXPECT_FALSE(route::is_single_path(Heuristic::kUmulti));
}

}  // namespace
