#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace lmpr::util {

Cli::Cli(int argc, const char* const* argv,
         std::initializer_list<std::string_view> switches) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (std::find(switches.begin(), switches.end(), name) ==
                   switches.end() &&
               i + 1 < argc &&
               std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    flags_[name] = std::move(value);
  }
}

bool Cli::has(const std::string& name) const {
  queried_.insert(name);
  return flags_.contains(name);
}

std::optional<std::string> Cli::get(const std::string& name) const {
  queried_.insert(name);
  if (auto it = flags_.find(name); it != flags_.end()) return it->second;
  return std::nullopt;
}

std::string Cli::get_or(const std::string& name, std::string fallback) const {
  if (auto v = get(name); v && !v->empty()) return *v;
  return fallback;
}

std::string Cli::get_or(const std::string& name, const char* fallback) const {
  return get_or(name, std::string(fallback));
}

std::int64_t Cli::get_or(const std::string& name, std::int64_t fallback) const {
  if (auto v = get(name); v && !v->empty()) return std::stoll(*v);
  return fallback;
}

double Cli::get_or(const std::string& name, double fallback) const {
  if (auto v = get(name); v && !v->empty()) return std::stod(*v);
  return fallback;
}

bool Cli::get_or(const std::string& name, bool fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  if (v->empty()) return true;  // bare --switch
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

std::vector<std::string> Cli::unknown_flags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    if (!queried_.contains(name)) unknown.push_back(name);
  }
  return unknown;
}

bool full_scale_requested(const Cli& cli) {
  if (cli.get_or("full", false)) return true;
  const char* env = std::getenv("LMPR_FULL");
  return env != nullptr && std::string_view(env) != "0" &&
         std::string_view(env) != "";
}

}  // namespace lmpr::util
