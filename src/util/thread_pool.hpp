// A small blocking thread pool with a deterministic parallel_for.
//
// Design rules (this is simulation infrastructure, results must not
// depend on the execution schedule):
//   * work is partitioned by INDEX, and every index derives its own RNG
//     seed at the call site -- identical results for any thread count,
//     including 0 workers (inline execution);
//   * parallel_for blocks until every index completed; exceptions from
//     workers are captured and rethrown on the calling thread;
//   * the pool is explicit (no global singleton); benches create one
//     sized by std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lmpr::util {

class ThreadPool {
 public:
  /// `workers` = number of extra threads; 0 means every parallel_for runs
  /// inline on the caller (useful for debugging and single-core hosts).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Runs body(i) for every i in [0, count).  Indices are claimed from a
  /// shared atomic counter (dynamic schedule); the call returns when all
  /// completed.  The first exception thrown by any body is rethrown here.
  /// NESTED submission -- a body calling parallel_for from a pool worker
  /// -- runs the inner loop inline on that worker instead of deadlocking
  /// on pool-internal waits (the outer batch already owns the workers);
  /// results are unchanged because execution is index-deterministic.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// A reasonable default worker count for the current machine.
  static std::size_t default_workers();

  /// Slot of the calling thread inside a parallel_for: 0 on the
  /// submitting (or any non-pool) thread, i + 1 on pool worker i.  Lets
  /// call sites keep per-thread scratch state (e.g. one evaluator per
  /// slot, indexed by worker_slot()) without locking, sized
  /// worker_count() + 1.  A nested parallel_for (which runs inline) sees
  /// the enclosing worker's slot, so per-slot scratch stays exclusive.
  static std::size_t worker_slot() noexcept;

 private:
  struct Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  void run_share(Batch& batch);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable finished_;
  Batch* current_ = nullptr;       // guarded by mutex_
  std::size_t active_ = 0;         // workers inside run_share; guarded by mutex_
  std::uint64_t epoch_ = 0;        // bumped on batch retirement; guarded by mutex_
  bool stopping_ = false;
};

}  // namespace lmpr::util
