// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects()/Ensures() (I.6, I.8).  Violations indicate programmer error,
// not recoverable conditions, so they terminate with a diagnostic.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lmpr::util::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "lmpr: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace lmpr::util::detail

/// Precondition check.  Always on: the checks guard index arithmetic that
/// would otherwise silently corrupt simulation results.
#define LMPR_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::lmpr::util::detail::contract_failure("precondition", #cond, \
                                                   __FILE__, __LINE__))

/// Postcondition check.
#define LMPR_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::lmpr::util::detail::contract_failure("postcondition", #cond, \
                                                   __FILE__, __LINE__))

/// Internal invariant check.
#define LMPR_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::lmpr::util::detail::contract_failure("invariant", #cond,  \
                                                   __FILE__, __LINE__))
