#include "util/quantiles.hpp"

#include <algorithm>
#include <cmath>

namespace lmpr::util {

double ReservoirQuantiles::quantile(double q) const {
  LMPR_EXPECTS(q >= 0.0 && q <= 1.0);
  LMPR_EXPECTS(!reservoir_.empty());
  if (!sorted_) {
    std::sort(reservoir_.begin(), reservoir_.end());
    sorted_ = true;
  }
  const auto n = reservoir_.size();
  const auto rank = static_cast<std::size_t>(
      std::min<double>(std::floor(q * static_cast<double>(n)),
                       static_cast<double>(n - 1)));
  return reservoir_[rank];
}

}  // namespace lmpr::util
