// Deterministic, seedable pseudo-random number generation.
//
// Simulation studies must be reproducible run-to-run, so the library does
// not use std::random_device or rely on the unspecified std::mt19937
// distribution implementations for cross-platform stability of *sampling
// helpers*.  The engine is xoshiro256** (Blackman & Vigna), seeded via
// splitmix64; both are public-domain reference algorithms.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/contracts.hpp"

namespace lmpr::util {

/// splitmix64 step: used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 engine.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Rejection sampling on the low bits:
  /// exactly uniform, and the rejection loop is entered with probability
  /// (2^64 mod bound) / 2^64, negligible for the path-count bounds here.
  std::uint64_t below(std::uint64_t bound) noexcept {
    LMPR_EXPECTS(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t value = (*this)();
      if (value >= threshold) return value % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    LMPR_EXPECTS(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed value with the given mean (for Poisson
  /// arrival processes: inter-arrival times are Exp(mean)).
  double exponential(double mean) noexcept {
    LMPR_EXPECTS(mean > 0.0);
    // Avoid log(0); uniform01() < 1 so 1-u > 0.
    double u = uniform01();
    return -mean * std::log1p(-u);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Random permutation of {0, .., n-1}.
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    shuffle(perm);
    return perm;
  }

  /// Sample `k` distinct values from {0, .., n-1}, order randomized.
  /// Uses a partial Fisher-Yates over an index vector: O(n) setup, fine for
  /// the path-count universes (<= a few hundred) this library deals with.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    LMPR_EXPECTS(k <= n);
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(below(n - i));
      using std::swap;
      swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

  /// Derive an independent child stream (e.g. one per simulated entity).
  Rng fork() noexcept { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lmpr::util
