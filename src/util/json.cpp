#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace lmpr::util {

Json& Json::push(Json value) {
  LMPR_EXPECTS(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  LMPR_EXPECTS(kind_ == Kind::kObject);
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::string Json::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  LMPR_ENSURES(ec == std::errc{});
  return std::string(buf, ptr);
}

std::string Json::number(std::int64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  LMPR_ENSURES(ec == std::errc{});
  return std::string(buf, ptr);
}

void Json::write_indented(std::ostream& os, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto pad = [&](int level) {
    if (pretty) {
      os << '\n';
      for (int i = 0; i < indent * level; ++i) os << ' ';
    }
  };
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kInt: os << number(int_); break;
    case Kind::kDouble: os << number(double_); break;
    case Kind::kString: os << '"' << escape(string_) << '"'; break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        pad(depth + 1);
        array_[i].write_indented(os, indent, depth + 1);
      }
      pad(depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        pad(depth + 1);
        os << '"' << escape(object_[i].first) << "\":" << (pretty ? " " : "");
        object_[i].second.write_indented(os, indent, depth + 1);
      }
      pad(depth);
      os << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_indented(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream oss;
  write(oss, indent);
  return oss.str();
}

}  // namespace lmpr::util
