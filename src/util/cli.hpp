// A tiny command-line flag parser used by the driver, bench and example
// binaries.
//
// Conventions:  --name value   or   --name=value   or bare --switch.
// Every get/has call records the flag name as KNOWN; unknown_flags()
// returns the flags that were present on the command line but never
// queried, so callers can reject typos (--fulll) instead of silently
// running with defaults.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace lmpr::util {

class Cli {
 public:
  /// Parses argv; does not take ownership.  Flags may appear at most once
  /// (the last occurrence wins).  Names in `switches` are parsed as bare
  /// boolean switches that never consume the following token, so
  /// `prog run --full name` keeps `name` positional.
  Cli(int argc, const char* const* argv,
      std::initializer_list<std::string_view> switches = {});

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, std::string fallback) const;
  /// Disambiguates string literals (which would otherwise convert to bool).
  std::string get_or(const std::string& name, const char* fallback) const;
  std::int64_t get_or(const std::string& name, std::int64_t fallback) const;
  double get_or(const std::string& name, double fallback) const;
  bool get_or(const std::string& name, bool fallback) const;

  /// Flags present on the command line that no get()/get_or()/has() call
  /// ever asked about -- almost certainly typos.  Query every supported
  /// flag first, then enforce this is empty.
  std::vector<std::string> unknown_flags() const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  /// Names some caller asked about; only flags outside this set count as
  /// unknown.  Mutable because lookups are logically const.
  mutable std::set<std::string> queried_;
};

/// Returns true when paper-scale ("full fidelity") runs were requested via
/// --full or the LMPR_FULL environment variable.  Bench binaries default to
/// scaled-down parameters so the whole suite completes on a laptop.
bool full_scale_requested(const Cli& cli);

}  // namespace lmpr::util
