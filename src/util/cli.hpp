// A tiny command-line flag parser used by the bench and example binaries.
//
// Conventions:  --name value   or   --name=value   or bare --switch.
// Unknown flags are collected so callers can reject or forward them
// (google-benchmark binaries forward the rest to the benchmark runner).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lmpr::util {

class Cli {
 public:
  /// Parses argv; does not take ownership.  Flags may appear at most once
  /// (the last occurrence wins).
  Cli(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, std::string fallback) const;
  /// Disambiguates string literals (which would otherwise convert to bool).
  std::string get_or(const std::string& name, const char* fallback) const;
  std::int64_t get_or(const std::string& name, std::int64_t fallback) const;
  double get_or(const std::string& name, double fallback) const;
  bool get_or(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Returns true when paper-scale ("full fidelity") runs were requested via
/// --full or the LMPR_FULL environment variable.  Bench binaries default to
/// scaled-down parameters so the whole suite completes on a laptop.
bool full_scale_requested(const Cli& cli);

}  // namespace lmpr::util
