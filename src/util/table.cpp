#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/contracts.hpp"

namespace lmpr::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LMPR_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LMPR_EXPECTS(cells.size() == headers_.size());
  cells_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << value;
  return oss.str();
}

std::string Table::num(std::size_t value) { return std::to_string(value); }
std::string Table::num(long long value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : cells_) emit_row(row);
}

namespace {

void csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}

void csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c != 0) os << ',';
    csv_cell(os, row[c]);
  }
  os << '\n';
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  csv_row(os, headers_);
  for (const auto& row : cells_) csv_row(os, row);
}

bool Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "lmpr: cannot open " << path << " for writing\n";
    return false;
  }
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace lmpr::util
