// A minimal JSON document builder + writer for machine-readable run
// reports.  Write-only by design (the experiment engine emits reports;
// nothing in the library needs to parse them back), ordered objects so
// emitted documents are byte-stable for golden-file tests, RFC 8259
// escaping, and round-trippable number formatting (shortest decimal via
// std::to_chars).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lmpr::util {

/// An owned JSON value: null, bool, integer, double, string, array or
/// object.  Objects preserve insertion order.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(std::nullptr_t) noexcept : kind_(Kind::kNull) {}  // NOLINT
  Json(bool value) noexcept : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  Json(double value) noexcept : kind_(Kind::kDouble), double_(value) {}  // NOLINT
  Json(std::int64_t value) noexcept : kind_(Kind::kInt), int_(value) {}  // NOLINT
  Json(int value) noexcept : Json(static_cast<std::int64_t>(value)) {}  // NOLINT
  Json(std::uint64_t value) noexcept  // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(value)) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}  // NOLINT
  Json(std::string_view value) : Json(std::string(value)) {}  // NOLINT
  Json(const char* value) : Json(std::string(value)) {}  // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const noexcept { return kind_; }

  /// Appends to an array (the value must be an array).
  Json& push(Json value);

  /// Appends a key to an object (the value must be an object).  Keys are
  /// not deduplicated; emit each key once.
  Json& set(std::string key, Json value);

  /// Serializes with 2-space indentation per level; indent < 0 emits the
  /// compact single-line form.
  std::string dump(int indent = 2) const;
  void write(std::ostream& os, int indent = 2) const;

  /// JSON string escaping of the RFC 8259 two-character forms plus \u00XX
  /// for remaining control characters.  Exposed for tests.
  static std::string escape(std::string_view text);

  /// Round-trippable number text: integers print exactly; finite doubles
  /// print the shortest decimal that parses back to the same bits
  /// (std::to_chars); non-finite doubles degrade to null (JSON has no
  /// NaN/Inf).  Exposed for tests.
  static std::string number(double value);
  static std::string number(std::int64_t value);

 private:
  void write_indented(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace lmpr::util
