// Online statistics and the confidence-interval stopping rule used by the
// paper's flow-level methodology (Section 5):
//
//   "we first sample random permutations and compute the average maximum
//    permutation load [..].  We then compute the confidence interval with
//    99% confidence level.  If the confidence interval is less than 2% of
//    the average, we stop [..] otherwise we double the number of samples."
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "util/contracts.hpp"

namespace lmpr::util {

/// Welford online accumulator for mean and variance.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double sem() const noexcept {
    return count_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
  }

  /// Half-width of the confidence interval on the mean at the given
  /// two-sided confidence level (normal approximation; the sampler below
  /// never stops before 100 samples, where z and t are indistinguishable).
  double ci_half_width(double confidence = 0.99) const noexcept;

  void merge(const OnlineStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided z critical value (inverse normal CDF of (1+confidence)/2)
/// via the Acklam rational approximation (|error| < 1.15e-9).
double z_critical(double confidence) noexcept;

/// Drives the paper's adaptive sampling loop.  Usage:
///
///   CiStoppingRule rule{...};
///   while (!rule.satisfied(stats)) stats.add(draw());
///
/// satisfied() returns true once (a) at least `initial_samples` are in and
/// (b) the CI half-width is within `relative_precision` of the mean -- or
/// once the hard `max_samples` cap is hit.  The caller controls batching;
/// next_batch_target() implements the paper's sample-doubling schedule.
struct CiStoppingRule {
  std::size_t initial_samples = 100;
  std::size_t max_samples = 12800;
  double confidence = 0.99;
  double relative_precision = 0.02;

  bool satisfied(const OnlineStats& stats) const noexcept {
    if (stats.count() < initial_samples) return false;
    if (stats.count() >= max_samples) return true;
    if (stats.mean() == 0.0) return true;  // degenerate: all-zero loads
    return stats.ci_half_width(confidence) <=
           relative_precision * std::abs(stats.mean());
  }

  /// Paper schedule: evaluate at n0, 2*n0, 4*n0, ... samples.
  std::size_t next_batch_target(std::size_t current) const noexcept {
    if (current < initial_samples) return initial_samples;
    std::size_t target = initial_samples;
    while (target <= current) target *= 2;
    return target < max_samples ? target : max_samples;
  }
};

}  // namespace lmpr::util
