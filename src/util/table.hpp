// Minimal column-oriented result table with aligned ASCII rendering and
// CSV export.  Every bench binary reports its paper table/figure through
// this type so output formats stay uniform across experiments.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace lmpr::util {

/// A rectangular table of string cells with named columns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t columns() const noexcept { return headers_.size(); }
  std::size_t rows() const noexcept { return cells_.size(); }

  /// Appends a row; must match the number of columns.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with fixed precision.
  static std::string num(double value, int precision = 3);
  static std::string num(std::size_t value);
  static std::string num(long long value);

  /// Renders an aligned ASCII table (pipe-separated, header rule).
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;

  /// Writes CSV to the given path; returns false (and logs to stderr) on
  /// I/O failure rather than throwing, since bench output is best-effort.
  bool write_csv_file(const std::string& path) const;

  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& cells() const noexcept {
    return cells_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace lmpr::util
