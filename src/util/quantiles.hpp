// Streaming quantile estimation via uniform reservoir sampling
// (Vitter's Algorithm R): O(capacity) memory, exact quantiles of a
// uniform random subsample.  Used for message-delay percentiles in the
// flit simulator, where the stream length is unbounded but a few
// thousand samples pin the tail well enough for p50..p99.
//
// Deterministic for a fixed seed, like everything else in the library.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace lmpr::util {

class ReservoirQuantiles {
 public:
  explicit ReservoirQuantiles(std::size_t capacity = 4096,
                              std::uint64_t seed = 0x5eed)
      : capacity_(capacity), rng_(seed) {
    LMPR_EXPECTS(capacity >= 1);
    reservoir_.reserve(capacity);
  }

  void add(double x) {
    ++count_;
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(x);
      sorted_ = false;
      return;
    }
    // Keep each of the `count_` elements with probability capacity/count.
    const std::uint64_t slot = rng_.below(count_);
    if (slot < capacity_) {
      reservoir_[static_cast<std::size_t>(slot)] = x;
      sorted_ = false;
    }
  }

  std::uint64_t count() const noexcept { return count_; }
  std::size_t sample_size() const noexcept { return reservoir_.size(); }

  /// Quantile q in [0, 1] of the reservoir (nearest-rank).  Expects at
  /// least one sample.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  double p99() const { return quantile(0.99); }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::uint64_t count_ = 0;
  mutable std::vector<double> reservoir_;
  mutable bool sorted_ = false;
};

}  // namespace lmpr::util
