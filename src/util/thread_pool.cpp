#include "util/thread_pool.hpp"

#include "util/contracts.hpp"

namespace lmpr::util {

namespace {
// 0 = not a pool worker (the submitting thread); i + 1 = pool worker i.
thread_local std::size_t t_worker_slot = 0;
// True while this thread executes batch bodies inside run_share --
// covering both pool workers AND the submitting thread, which takes a
// share of its own batch.  Guards against nested submission.
thread_local bool t_in_batch = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] {
      t_worker_slot = i + 1;
      worker_loop();
    });
  }
}

std::size_t ThreadPool::worker_slot() noexcept { return t_worker_slot; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::size_t ThreadPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

void ThreadPool::run_share(Batch& batch) {
  const bool was_in_batch = t_in_batch;
  t_in_batch = true;
  for (;;) {
    const std::size_t index =
        batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.count) break;
    try {
      (*batch.body)(index);
    } catch (...) {
      std::lock_guard lock(batch.error_mutex);
      if (!batch.error) batch.error = std::current_exception();
    }
    const std::size_t completed =
        batch.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (completed >= batch.count) {
      // Synchronize with the waiters' predicate check: acquiring the pool
      // mutex before notifying rules out the lost-wakeup race.
      { std::lock_guard lock(mutex_); }
      finished_.notify_all();
    }
  }
  t_in_batch = was_in_batch;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Batch* batch = nullptr;
    std::uint64_t epoch = 0;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || current_ != nullptr; });
      if (stopping_) return;
      batch = current_;
      epoch = epoch_;
      ++active_;
    }
    run_share(*batch);
    // This worker ran out of indices.  Drop out of the batch (the caller
    // must not destroy it while any worker is inside run_share) and wait
    // for retirement -- tracked by epoch, not the batch address, because
    // the next batch frequently reuses the same stack slot.
    std::unique_lock lock(mutex_);
    --active_;
    finished_.notify_all();
    finished_.wait(lock, [this, epoch] { return stopping_ || epoch_ != epoch; });
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Nested submission guard: a body already running inside a batch (on a
  // pool worker OR on the submitting thread's own share, of this pool or
  // any other's) that submits again would deadlock -- the inner call
  // would wait on workers that are themselves waiting for the outer batch
  // to retire (and tripping the current_ precondition below at best).
  // Inner parallelism is already covered by the outer batch's workers, so
  // the nested call simply runs inline on the submitting thread.
  if (threads_.empty() || t_in_batch) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.body = &body;
  {
    std::lock_guard lock(mutex_);
    LMPR_EXPECTS(current_ == nullptr);  // no nested / concurrent submit
    current_ = &batch;
  }
  wake_.notify_all();
  run_share(batch);  // the caller participates

  // Wait until every index completed AND every worker has left
  // run_share: `batch` lives on this stack frame, so returning while a
  // straggler still probes batch.next would be a use-after-free.
  {
    std::unique_lock lock(mutex_);
    finished_.wait(lock, [this, &batch] {
      return batch.done.load(std::memory_order_acquire) >= batch.count &&
             active_ == 0;
    });
    current_ = nullptr;
    ++epoch_;  // retire the batch; parked workers return to wake_
  }
  finished_.notify_all();

  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace lmpr::util
