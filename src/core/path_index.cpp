#include "core/path_index.hpp"

#include "util/contracts.hpp"

namespace lmpr::route {

std::uint64_t choice_stride(const topo::XgftSpec& spec, std::uint32_t nca,
                            std::uint32_t l) {
  LMPR_EXPECTS(nca <= spec.height());
  LMPR_EXPECTS(l < nca);
  std::uint64_t stride = 1;
  for (std::uint32_t i = l + 2; i <= nca; ++i) stride *= spec.w_at(i);
  return stride;
}

UpChoices decode_path_index(const topo::XgftSpec& spec, std::uint32_t nca,
                            std::uint64_t index) {
  LMPR_EXPECTS(nca <= spec.height());
  UpChoices choices(nca);
  // Least significant digit is the topmost choice j_k.
  for (std::uint32_t l = nca; l > 0; --l) {
    const std::uint32_t radix = spec.w_at(l);
    choices[l - 1] = static_cast<std::uint32_t>(index % radix);
    index /= radix;
  }
  LMPR_EXPECTS(index == 0);  // index < prod w_i
  return choices;
}

std::uint64_t encode_path_index(const topo::XgftSpec& spec, std::uint32_t nca,
                                const UpChoices& choices) {
  LMPR_EXPECTS(choices.size() == nca);
  std::uint64_t index = 0;
  for (std::uint32_t l = 0; l < nca; ++l) {
    const std::uint32_t radix = spec.w_at(l + 1);
    LMPR_EXPECTS(choices[l] < radix);
    index = index * radix + choices[l];
  }
  return index;
}

Path materialize_path(const topo::Topology& topology, std::uint64_t src,
                      std::uint64_t dst, std::uint64_t index) {
  Path path;
  path.index = index;
  path.nodes.push_back(topology.host(src));
  if (src == dst) {
    LMPR_EXPECTS(index == 0);
    return path;
  }
  topology.append_path_links(src, dst, index, path.links);
  for (const topo::LinkId link : path.links) {
    path.nodes.push_back(topology.link(link).dst);
  }
  LMPR_ENSURES(path.nodes.back() == topology.host(dst));
  return path;
}

void append_path_links(const topo::Topology& topology, std::uint64_t src,
                       std::uint64_t dst, std::uint64_t index,
                       std::vector<topo::LinkId>& out) {
  topology.append_path_links(src, dst, index, out);
}

}  // namespace lmpr::route
