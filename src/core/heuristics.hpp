// Limited multi-path path-selection heuristics (paper Section 4.2).
//
// Every heuristic returns min(K, X) *distinct* shortest-path indices for
// an SD pair with X available paths, converging to UMULTI (all X paths,
// provably optimal oblivious routing, Theorem 1) as K grows:
//
//   shift-1   -- the K consecutive indices starting at the d-mod-k path:
//                varies the TOP-level switch choice first, so small-K sets
//                share their lower links (the limitation Section 4.2.2
//                calls out).
//   disjoint  -- mixed-radix enumeration around the d-mod-k path that
//                varies the LOWEST-level parent choice first, then level 2,
//                etc., maximizing link-disjointness among the first K
//                paths while every "shift" remains a d-mod-k copy.
//   random    -- K distinct paths drawn uniformly at random.
//
// Traffic is split uniformly across the selected paths (f = 1/K'), as in
// the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "topology/spec.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace lmpr::route {

enum class Heuristic {
  kDModK,         ///< single-path destination-mod-k (K is ignored)
  kSModK,         ///< single-path source-mod-k (K is ignored)
  kRandomSingle,  ///< one uniformly random path (K is ignored)
  kShift1,        ///< K consecutive paths from the d-mod-k index
  kDisjoint,      ///< K maximally-disjoint d-mod-k-anchored paths
  kRandom,        ///< K distinct uniformly random paths
  kUmulti,        ///< all X paths (unlimited multi-path; K is ignored)
};

/// Every heuristic, in enum order -- the single source of truth sweeps
/// and parsers iterate.
const std::vector<Heuristic>& all_heuristics();

/// Lowercase stable names ("dmodk", "shift1", "disjoint", ...).
std::string_view to_string(Heuristic heuristic);
/// Accepts the stable names plus the paper's hyphenated spellings
/// ("d-mod-k", "s-mod-k", "shift-1"); nullopt for anything else.
std::optional<Heuristic> heuristic_from_string(std::string_view name);

/// Comma-separated list of every accepted name, for diagnostics.
std::string heuristic_names();

/// Like heuristic_from_string, but throws std::invalid_argument naming
/// the bad input and listing the valid spellings -- the parse path CLI
/// frontends surface directly.
Heuristic parse_heuristic(std::string_view name);

/// True when the scheme uses exactly one path regardless of K.
bool is_single_path(Heuristic heuristic);

/// The n-th offset of the disjoint enumeration (n in [0, X)): decompose n
/// in mixed radix with w_1 the fastest-varying digit and add each digit
/// times its path-numbering stride.  Offsets are a permutation of [0, X).
std::uint64_t disjoint_offset(const topo::XgftSpec& spec, std::uint32_t nca,
                              std::uint64_t n);

/// First `count` paths of the disjoint enumeration starting at `start`
/// (the level-k disjoint sequence of Section 4.2.3).
std::vector<std::uint64_t> disjoint_sequence(const topo::XgftSpec& spec,
                                             std::uint32_t nca,
                                             std::uint64_t start,
                                             std::uint64_t count);

/// Selects the path indices the heuristic assigns to (src, dst) with path
/// limit `k_paths`.  The result is non-empty, sorted by selection order
/// (first element is the scheme's "primary" path), and contains no
/// duplicates.  `rng` is consulted only by the randomized schemes.
std::vector<std::uint64_t> select_path_indices(const topo::Topology& topology,
                                               std::uint64_t src,
                                               std::uint64_t dst,
                                               std::size_t k_paths,
                                               Heuristic heuristic,
                                               util::Rng& rng);

}  // namespace lmpr::route
