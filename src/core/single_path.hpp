// Baseline single-path routing schemes (paper Section 3.3).
//
// d-mod-k: at a level-l node on the upward leg, take upper port
//   j_{l+1} = (dst / (w_1 * .. * w_l)) mod w_{l+1}.
// s-mod-k is the mirror image keyed on the source.  Both are "universal"
// single-path schemes for XGFTs; d-mod-k is the one InfiniBand subnet
// managers implement and the anchor for the shift-1/disjoint heuristics.
// Generic topologies supply their own deterministic equivalents through
// the Topology interface.
#pragma once

#include <cstdint>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace lmpr::route {

/// Path index selected by destination-mod-k routing for the SD pair.
std::uint64_t dmodk_index(const topo::Topology& topology, std::uint64_t src,
                          std::uint64_t dst);

/// Path index selected by source-mod-k routing.
std::uint64_t smodk_index(const topo::Topology& topology, std::uint64_t src,
                          std::uint64_t dst);

/// Uniformly random single path (the classic randomized routing of
/// Greenberg & Leiserson: pick a random NCA top-level switch).
std::uint64_t random_single_index(const topo::Topology& topology,
                                  std::uint64_t src, std::uint64_t dst,
                                  util::Rng& rng);

}  // namespace lmpr::route
