// Deadlock-freedom verification via channel dependency graphs (Dally &
// Seitz).  A routing is deadlock-free on a single virtual channel iff the
// directed graph whose nodes are network channels (directed links) and
// whose edges connect consecutive channels of some packet's path is
// acyclic.  XGFT up*/down* routing is provably acyclic (a packet never
// turns down-then-up); this module CHECKS that property for any concrete
// route table -- a safety net for future routing variants and a test
// oracle for the flit simulator's single-VC configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "core/route_table.hpp"
#include "topology/topology.hpp"

namespace lmpr::route {

struct DeadlockAnalysis {
  bool acyclic = true;
  /// Number of distinct channel-dependency edges the table induces.
  std::uint64_t dependencies = 0;
  /// When cyclic: one channel on a dependency cycle (kInvalidLink
  /// otherwise).
  topo::LinkId witness = topo::kInvalidLink;
};

/// Builds the channel dependency graph of every path in the table and
/// tests it for cycles (iterative DFS three-coloring).
DeadlockAnalysis analyze_channel_dependencies(const RouteTable& table);

/// Convenience: dependency-graph acyclicity for an explicit path list
/// (each path a sequence of directed LinkIds), against the given
/// topology's channel count.
DeadlockAnalysis analyze_channel_dependencies(
    const topo::Topology& topology,
    const std::vector<std::vector<topo::LinkId>>& paths);

}  // namespace lmpr::route
