// InfiniBand realizability model for limited multi-path routing
// (the resource constraint motivating the paper, Section 1 and the
// multiple-LID scheme of Lin et al., IPDPS'04).
//
// InfiniBand forwards by destination LID; each distinct path to a
// destination needs its own LID.  An end port is assigned a block of
// 2^LMC consecutive LIDs (LMC is a 3-bit field, so LMC <= 7), and the
// unicast LID space holds 48K addresses (0x0001..0xBFFF).  Supporting K
// paths per SD pair therefore needs LMC = ceil(log2 K), is impossible for
// K > 128, and consumes N * 2^LMC unicast LIDs.
#pragma once

#include <cstdint>

#include "topology/xgft.hpp"

namespace lmpr::route {

inline constexpr std::uint32_t kMaxLmc = 7;
inline constexpr std::uint64_t kUnicastLidSpace = 0xBFFF;  // 49151 LIDs

struct LidCost {
  /// Paths actually required per destination: min(K, max shortest paths).
  std::uint64_t effective_paths = 1;
  /// Smallest LMC with 2^LMC >= effective_paths (may exceed kMaxLmc,
  /// flagged below).
  std::uint32_t lmc = 0;
  /// LIDs consumed: num_hosts * 2^lmc.
  std::uint64_t total_lids = 0;
  /// False when the LMC field cannot express the block size or the
  /// unicast space is exhausted -- i.e. the routing is not realizable on
  /// InfiniBand, the paper's argument against unlimited multi-path.
  bool realizable = true;
};

/// Cost of supporting `k_paths` paths per SD pair on the given topology.
LidCost lid_cost(const topo::Xgft& xgft, std::uint64_t k_paths);

}  // namespace lmpr::route
