// Materialized routing tables: every SD pair's selected paths, split
// uniformly.  This is what the flit-level simulator and the path-overlap
// analyses consume; the flow-level simulator computes paths on the fly to
// stay memory-light on paper-scale (3456-host) topologies.
//
// Memory grows as hosts^2 * K * path-length; callers materialize tables
// only for flit-scale instances (the paper's flit experiments use the
// 128-host 8-port 3-tree).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/heuristics.hpp"
#include "core/path_index.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace lmpr::route {

class RouteTable {
 public:
  /// Builds the table for every ordered SD pair (self-pairs get a single
  /// empty path).  `seed` drives the randomized heuristics; the same seed
  /// reproduces the same table.
  RouteTable(const topo::Topology& topology, Heuristic heuristic,
             std::size_t k_paths, std::uint64_t seed = 1);

  const topo::Topology& topology() const noexcept { return *topo_; }
  Heuristic heuristic() const noexcept { return heuristic_; }
  std::size_t k_paths() const noexcept { return k_paths_; }

  /// All paths selected for (src, dst); at least one entry.
  std::span<const Path> paths(std::uint64_t src, std::uint64_t dst) const;

  /// Uniformly random member of paths(src, dst) -- the per-message path
  /// choice implementing the paper's uniform traffic fractions.
  const Path& pick(std::uint64_t src, std::uint64_t dst,
                   util::Rng& rng) const;

  /// Round-robin member selection keyed by a caller-maintained counter
  /// (used by the path-granularity ablation).
  const Path& pick_round_robin(std::uint64_t src, std::uint64_t dst,
                               std::uint64_t counter) const;

  /// Mean number of paths per distinct-host SD pair.
  double mean_paths_per_pair() const;

  /// Total number of stored paths.
  std::uint64_t total_paths() const noexcept { return paths_.size(); }

 private:
  std::size_t pair_slot(std::uint64_t src, std::uint64_t dst) const;

  const topo::Topology* topo_;
  Heuristic heuristic_;
  std::size_t k_paths_;
  std::uint64_t num_hosts_;
  /// first_[slot] .. first_[slot+1] indexes into paths_.
  std::vector<std::uint64_t> first_;
  std::vector<Path> paths_;
};

}  // namespace lmpr::route
