#include "core/route_table.hpp"

#include "util/contracts.hpp"

namespace lmpr::route {

RouteTable::RouteTable(const topo::Topology& topology, Heuristic heuristic,
                       std::size_t k_paths, std::uint64_t seed)
    : topo_(&topology),
      heuristic_(heuristic),
      k_paths_(k_paths),
      num_hosts_(topology.num_hosts()) {
  LMPR_EXPECTS(k_paths >= 1);
  util::Rng rng{seed};
  const std::uint64_t pairs = num_hosts_ * num_hosts_;
  first_.reserve(pairs + 1);
  first_.push_back(0);
  for (std::uint64_t src = 0; src < num_hosts_; ++src) {
    for (std::uint64_t dst = 0; dst < num_hosts_; ++dst) {
      const auto indices =
          select_path_indices(topology, src, dst, k_paths, heuristic, rng);
      for (const std::uint64_t index : indices) {
        paths_.push_back(materialize_path(topology, src, dst, index));
      }
      first_.push_back(paths_.size());
    }
  }
}

std::size_t RouteTable::pair_slot(std::uint64_t src, std::uint64_t dst) const {
  LMPR_EXPECTS(src < num_hosts_ && dst < num_hosts_);
  return static_cast<std::size_t>(src * num_hosts_ + dst);
}

std::span<const Path> RouteTable::paths(std::uint64_t src,
                                        std::uint64_t dst) const {
  const std::size_t slot = pair_slot(src, dst);
  return {paths_.data() + first_[slot],
          static_cast<std::size_t>(first_[slot + 1] - first_[slot])};
}

const Path& RouteTable::pick(std::uint64_t src, std::uint64_t dst,
                             util::Rng& rng) const {
  const auto set = paths(src, dst);
  return set[static_cast<std::size_t>(rng.below(set.size()))];
}

const Path& RouteTable::pick_round_robin(std::uint64_t src, std::uint64_t dst,
                                         std::uint64_t counter) const {
  const auto set = paths(src, dst);
  return set[static_cast<std::size_t>(counter % set.size())];
}

double RouteTable::mean_paths_per_pair() const {
  if (num_hosts_ < 2) return 0.0;
  std::uint64_t sum = 0;
  for (std::uint64_t src = 0; src < num_hosts_; ++src) {
    for (std::uint64_t dst = 0; dst < num_hosts_; ++dst) {
      if (src == dst) continue;
      const std::size_t slot = pair_slot(src, dst);
      sum += first_[slot + 1] - first_[slot];
    }
  }
  return static_cast<double>(sum) /
         static_cast<double>(num_hosts_ * (num_hosts_ - 1));
}

}  // namespace lmpr::route
