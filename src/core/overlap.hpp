// Structural analysis of a multi-path set: how link-disjoint are the K
// paths a heuristic selects?  Quantifies Section 4.2.2's observation that
// shift-1 spreads traffic only at the top level while disjoint forks as
// low as possible.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/path_index.hpp"
#include "topology/xgft.hpp"

namespace lmpr::route {

struct PathSetStats {
  std::size_t num_paths = 0;
  /// Distinct directed links used by the whole set.
  std::size_t distinct_links = 0;
  /// Distinct directed links at each level (index = level of the cable's
  /// lower endpoint, 0..h-1).
  std::vector<std::size_t> distinct_links_per_level;
  /// Shared-link counts over unordered path pairs (0 pairs => all zero).
  double mean_pairwise_shared = 0.0;
  std::size_t min_pairwise_shared = 0;
  std::size_t max_pairwise_shared = 0;
  /// Number of unordered pairs that are fully link-disjoint.
  std::size_t disjoint_pairs = 0;
  std::size_t total_pairs = 0;
};

/// Analyzes the paths of one SD pair (all paths must share endpoints).
PathSetStats analyze_path_set(const topo::Xgft& xgft,
                              std::span<const Path> paths);

}  // namespace lmpr::route
