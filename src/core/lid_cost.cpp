#include "core/lid_cost.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace lmpr::route {

LidCost lid_cost(const topo::Xgft& xgft, std::uint64_t k_paths) {
  LMPR_EXPECTS(k_paths >= 1);
  LidCost cost;
  cost.effective_paths =
      std::min<std::uint64_t>(k_paths, xgft.spec().num_top_switches());
  while ((1ULL << cost.lmc) < cost.effective_paths) ++cost.lmc;
  cost.total_lids = xgft.num_hosts() << cost.lmc;
  cost.realizable = cost.lmc <= kMaxLmc && cost.total_lids <= kUnicastLidSpace;
  return cost;
}

}  // namespace lmpr::route
