#include "core/overlap.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/contracts.hpp"

namespace lmpr::route {

PathSetStats analyze_path_set(const topo::Xgft& xgft,
                              std::span<const Path> paths) {
  PathSetStats stats;
  stats.num_paths = paths.size();
  stats.distinct_links_per_level.assign(xgft.height(), 0);

  std::unordered_set<topo::LinkId> all_links;
  std::vector<std::unordered_set<topo::LinkId>> per_level(xgft.height());
  for (const Path& path : paths) {
    for (const topo::LinkId link : path.links) {
      all_links.insert(link);
      per_level[xgft.link(link).level].insert(link);
    }
  }
  stats.distinct_links = all_links.size();
  for (std::size_t l = 0; l < per_level.size(); ++l) {
    stats.distinct_links_per_level[l] = per_level[l].size();
  }

  std::size_t shared_total = 0;
  stats.min_pairwise_shared = static_cast<std::size_t>(-1);
  for (std::size_t a = 0; a < paths.size(); ++a) {
    std::unordered_set<topo::LinkId> links_a(paths[a].links.begin(),
                                             paths[a].links.end());
    for (std::size_t b = a + 1; b < paths.size(); ++b) {
      std::size_t shared = 0;
      for (const topo::LinkId link : paths[b].links) {
        if (links_a.contains(link)) ++shared;
      }
      ++stats.total_pairs;
      shared_total += shared;
      stats.min_pairwise_shared = std::min(stats.min_pairwise_shared, shared);
      stats.max_pairwise_shared = std::max(stats.max_pairwise_shared, shared);
      if (shared == 0) ++stats.disjoint_pairs;
    }
  }
  if (stats.total_pairs == 0) {
    stats.min_pairwise_shared = 0;
  } else {
    stats.mean_pairwise_shared = static_cast<double>(shared_total) /
                                 static_cast<double>(stats.total_pairs);
  }
  return stats;
}

}  // namespace lmpr::route
