// Shortest-path enumeration for XGFTs (paper Section 4).
//
// An SD pair whose nearest common ancestor (NCA) sits at level k has
// X = w_1 * .. * w_k shortest paths (Property 1), one per top-level switch
// of the height-k subtree containing both endpoints.  The paper numbers
// paths "left to right" over those switches; pinned against the Figure 3
// worked example, that is the mixed-radix numbering
//
//   index = j_1*(w_2..w_k) + j_2*(w_3..w_k) + .. + j_{k-1}*w_k + j_k
//
// where j_{l+1} in [0, w_{l+1}) is the upward port chosen at level l.
// The level-0 choice j_1 is the MOST significant digit; the topmost choice
// j_k is the least significant.  Consequently "adjacent" path indices
// differ only in the top-level switch (the shift-1 heuristic's behaviour)
// while a stride of w_{l+1}..w_k flips the level-l choice (the backbone of
// the disjoint heuristic).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/xgft.hpp"

namespace lmpr::route {

/// Upward port choices of one shortest path: choices[l] = j_{l+1}, the
/// upper port taken at level l, for l = 0..k-1.
using UpChoices = std::vector<std::uint32_t>;

/// Stride of the level-l choice (0-based l) in the path numbering:
/// prod_{i=l+2..k} w_i.  The level-(k-1) (topmost) choice has stride 1.
std::uint64_t choice_stride(const topo::XgftSpec& spec, std::uint32_t nca,
                            std::uint32_t l);

/// Decodes a path index into upward port choices.
UpChoices decode_path_index(const topo::XgftSpec& spec, std::uint32_t nca,
                            std::uint64_t index);

/// Inverse of decode_path_index.
std::uint64_t encode_path_index(const topo::XgftSpec& spec, std::uint32_t nca,
                                const UpChoices& choices);

/// A fully materialized shortest path.
struct Path {
  /// Path number within the SD pair's enumeration ("Path i" in the paper).
  std::uint64_t index = 0;
  /// Directed links in traversal order: k up links then k down links.
  std::vector<topo::LinkId> links;
  /// Nodes in traversal order (2k+1 entries including both hosts).
  std::vector<topo::NodeId> nodes;
};

/// Materializes Path `index` between two hosts.  For src == dst the path is
/// the empty path (no links, single node).
Path materialize_path(const topo::Topology& topology, std::uint64_t src,
                      std::uint64_t dst, std::uint64_t index);

/// Appends the link ids of Path `index` to `out` without building node
/// lists -- the flow-level simulator's hot loop.
void append_path_links(const topo::Topology& topology, std::uint64_t src,
                       std::uint64_t dst, std::uint64_t index,
                       std::vector<topo::LinkId>& out);

}  // namespace lmpr::route
