#include "core/deadlock.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace lmpr::route {

namespace {

struct DependencyGraph {
  /// adjacency[channel] = sorted, deduplicated successor channels.
  std::vector<std::vector<topo::LinkId>> adjacency;
  std::uint64_t edges = 0;

  explicit DependencyGraph(std::size_t channels) : adjacency(channels) {}

  void finalize() {
    for (auto& successors : adjacency) {
      std::sort(successors.begin(), successors.end());
      successors.erase(std::unique(successors.begin(), successors.end()),
                       successors.end());
      edges += successors.size();
    }
  }

  /// Iterative three-color DFS cycle detection.
  topo::LinkId find_cycle_node() const {
    enum : std::uint8_t { kWhite, kGray, kBlack };
    std::vector<std::uint8_t> color(adjacency.size(), kWhite);
    std::vector<std::pair<topo::LinkId, std::size_t>> stack;
    for (std::size_t root = 0; root < adjacency.size(); ++root) {
      if (color[root] != kWhite) continue;
      stack.emplace_back(static_cast<topo::LinkId>(root), 0);
      color[root] = kGray;
      while (!stack.empty()) {
        auto& [node, next] = stack.back();
        if (next < adjacency[node].size()) {
          const topo::LinkId successor = adjacency[node][next++];
          if (color[successor] == kGray) return successor;  // back edge
          if (color[successor] == kWhite) {
            color[successor] = kGray;
            stack.emplace_back(successor, 0);
          }
        } else {
          color[node] = kBlack;
          stack.pop_back();
        }
      }
    }
    return topo::kInvalidLink;
  }
};

DeadlockAnalysis analyze(DependencyGraph& graph) {
  graph.finalize();
  DeadlockAnalysis analysis;
  analysis.dependencies = graph.edges;
  analysis.witness = graph.find_cycle_node();
  analysis.acyclic = (analysis.witness == topo::kInvalidLink);
  return analysis;
}

}  // namespace

DeadlockAnalysis analyze_channel_dependencies(const RouteTable& table) {
  const topo::Topology& topology = table.topology();
  DependencyGraph graph(static_cast<std::size_t>(topology.num_links()));
  const std::uint64_t hosts = topology.num_hosts();
  for (std::uint64_t s = 0; s < hosts; ++s) {
    for (std::uint64_t d = 0; d < hosts; ++d) {
      if (s == d) continue;
      for (const Path& path : table.paths(s, d)) {
        for (std::size_t i = 1; i < path.links.size(); ++i) {
          graph.adjacency[path.links[i - 1]].push_back(path.links[i]);
        }
      }
    }
  }
  return analyze(graph);
}

DeadlockAnalysis analyze_channel_dependencies(
    const topo::Topology& topology,
    const std::vector<std::vector<topo::LinkId>>& paths) {
  DependencyGraph graph(static_cast<std::size_t>(topology.num_links()));
  for (const auto& path : paths) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      LMPR_EXPECTS(path[i - 1] < topology.num_links());
      LMPR_EXPECTS(path[i] < topology.num_links());
      graph.adjacency[path[i - 1]].push_back(path[i]);
    }
  }
  return analyze(graph);
}

}  // namespace lmpr::route
