#include "core/heuristics.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/path_index.hpp"
#include "core/single_path.hpp"
#include "util/contracts.hpp"

namespace lmpr::route {

std::string_view to_string(Heuristic heuristic) {
  switch (heuristic) {
    case Heuristic::kDModK: return "dmodk";
    case Heuristic::kSModK: return "smodk";
    case Heuristic::kRandomSingle: return "random1";
    case Heuristic::kShift1: return "shift1";
    case Heuristic::kDisjoint: return "disjoint";
    case Heuristic::kRandom: return "random";
    case Heuristic::kUmulti: return "umulti";
  }
  return "unknown";
}

const std::vector<Heuristic>& all_heuristics() {
  static const std::vector<Heuristic> all = {
      Heuristic::kDModK,  Heuristic::kSModK,    Heuristic::kRandomSingle,
      Heuristic::kShift1, Heuristic::kDisjoint, Heuristic::kRandom,
      Heuristic::kUmulti};
  return all;
}

std::optional<Heuristic> heuristic_from_string(std::string_view name) {
  for (Heuristic h : all_heuristics()) {
    if (to_string(h) == name) return h;
  }
  if (name == "d-mod-k") return Heuristic::kDModK;
  if (name == "s-mod-k") return Heuristic::kSModK;
  if (name == "shift-1") return Heuristic::kShift1;
  return std::nullopt;
}

std::string heuristic_names() {
  std::string names;
  for (Heuristic h : all_heuristics()) {
    if (!names.empty()) names += ", ";
    names += to_string(h);
  }
  return names + " (aliases: d-mod-k, s-mod-k, shift-1)";
}

Heuristic parse_heuristic(std::string_view name) {
  if (const auto heuristic = heuristic_from_string(name)) return *heuristic;
  throw std::invalid_argument("unknown heuristic '" + std::string(name) +
                              "'; valid names: " + heuristic_names());
}

bool is_single_path(Heuristic heuristic) {
  return heuristic == Heuristic::kDModK || heuristic == Heuristic::kSModK ||
         heuristic == Heuristic::kRandomSingle;
}

std::uint64_t disjoint_offset(const topo::XgftSpec& spec, std::uint32_t nca,
                              std::uint64_t n) {
  LMPR_EXPECTS(nca >= 1 && nca <= spec.height());
  std::uint64_t offset = 0;
  std::uint64_t rest = n;
  // Digit c_l (1-based level l) varies fastest for l = 1: the level-1
  // parent choice flips first, forking the paths as low as possible.
  for (std::uint32_t l = 1; l <= nca; ++l) {
    const std::uint32_t radix = spec.w_at(l);
    const std::uint64_t digit = rest % radix;
    rest /= radix;
    offset += digit * choice_stride(spec, nca, l - 1);
  }
  LMPR_EXPECTS(rest == 0);  // n < X
  return offset;
}

std::vector<std::uint64_t> disjoint_sequence(const topo::XgftSpec& spec,
                                             std::uint32_t nca,
                                             std::uint64_t start,
                                             std::uint64_t count) {
  std::uint64_t total = 1;
  for (std::uint32_t i = 1; i <= nca; ++i) total *= spec.w_at(i);
  LMPR_EXPECTS(start < total);
  count = std::min(count, total);
  std::vector<std::uint64_t> indices;
  indices.reserve(count);
  for (std::uint64_t n = 0; n < count; ++n) {
    indices.push_back((start + disjoint_offset(spec, nca, n)) % total);
  }
  return indices;
}

std::vector<std::uint64_t> select_path_indices(const topo::Topology& topology,
                                               std::uint64_t src,
                                               std::uint64_t dst,
                                               std::size_t k_paths,
                                               Heuristic heuristic,
                                               util::Rng& rng) {
  LMPR_EXPECTS(k_paths >= 1);
  if (src == dst) return {0};

  const std::uint64_t total = topology.num_paths(src, dst);
  const std::uint64_t take = std::min<std::uint64_t>(k_paths, total);

  switch (heuristic) {
    case Heuristic::kDModK:
      return {dmodk_index(topology, src, dst)};
    case Heuristic::kSModK:
      return {smodk_index(topology, src, dst)};
    case Heuristic::kRandomSingle:
      return {random_single_index(topology, src, dst, rng)};

    case Heuristic::kShift1: {
      const std::uint64_t anchor = dmodk_index(topology, src, dst);
      std::vector<std::uint64_t> indices;
      indices.reserve(take);
      for (std::uint64_t t = 0; t < take; ++t) {
        indices.push_back((anchor + t) % total);
      }
      return indices;
    }

    case Heuristic::kDisjoint: {
      const std::uint64_t start = dmodk_index(topology, src, dst);
      std::vector<std::uint64_t> indices;
      indices.reserve(take);
      for (std::uint64_t n = 0; n < take; ++n) {
        indices.push_back(
            (start + topology.disjoint_offset(src, dst, n)) % total);
      }
      return indices;
    }

    case Heuristic::kRandom: {
      auto sampled = rng.sample_without_replacement(
          static_cast<std::size_t>(total), static_cast<std::size_t>(take));
      return {sampled.begin(), sampled.end()};
    }

    case Heuristic::kUmulti: {
      std::vector<std::uint64_t> indices(total);
      for (std::uint64_t i = 0; i < total; ++i) indices[i] = i;
      return indices;
    }
  }
  LMPR_ASSERT(false);
  return {};
}

}  // namespace lmpr::route
