#include "core/single_path.hpp"

namespace lmpr::route {

std::uint64_t dmodk_index(const topo::Topology& topology, std::uint64_t src,
                          std::uint64_t dst) {
  return topology.dmodk_index(src, dst);
}

std::uint64_t smodk_index(const topo::Topology& topology, std::uint64_t src,
                          std::uint64_t dst) {
  return topology.smodk_index(src, dst);
}

std::uint64_t random_single_index(const topo::Topology& topology,
                                  std::uint64_t src, std::uint64_t dst,
                                  util::Rng& rng) {
  if (src == dst) return 0;
  return rng.below(topology.num_paths(src, dst));
}

}  // namespace lmpr::route
