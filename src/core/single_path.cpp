#include "core/single_path.hpp"

#include "core/path_index.hpp"
#include "util/contracts.hpp"

namespace lmpr::route {

namespace {

std::uint64_t modk_index(const topo::Xgft& xgft, std::uint64_t key,
                         std::uint32_t nca) {
  UpChoices choices(nca);
  for (std::uint32_t l = 0; l < nca; ++l) {
    choices[l] = static_cast<std::uint32_t>((key / xgft.w_prefix(l)) %
                                            xgft.spec().w_at(l + 1));
  }
  return encode_path_index(xgft.spec(), nca, choices);
}

}  // namespace

std::uint64_t dmodk_index(const topo::Xgft& xgft, std::uint64_t src,
                          std::uint64_t dst) {
  if (src == dst) return 0;
  return modk_index(xgft, dst, xgft.nca_level(src, dst));
}

std::uint64_t smodk_index(const topo::Xgft& xgft, std::uint64_t src,
                          std::uint64_t dst) {
  if (src == dst) return 0;
  return modk_index(xgft, src, xgft.nca_level(src, dst));
}

std::uint64_t random_single_index(const topo::Xgft& xgft, std::uint64_t src,
                                  std::uint64_t dst, util::Rng& rng) {
  if (src == dst) return 0;
  return rng.below(xgft.num_shortest_paths(src, dst));
}

}  // namespace lmpr::route
