#include "fabric/lft.hpp"

#include <algorithm>
#include <set>

#include "util/contracts.hpp"

namespace lmpr::fabric {

Lft::Lft(const topo::Topology& topology, std::uint64_t k_paths,
         LidLayout layout)
    : topo_(&topology), layout_(layout) {
  LMPR_EXPECTS(k_paths >= 1);
  const std::uint64_t effective =
      std::min<std::uint64_t>(k_paths, topology.max_paths());
  while ((1ULL << lmc_) < effective) ++lmc_;
  LMPR_EXPECTS(lmc_ <= 16);  // model limit; IB caps LMC at 7
}

std::uint32_t Lft::lid_of(std::uint64_t dst, std::uint32_t j) const {
  LMPR_EXPECTS(dst < topo_->num_hosts());
  LMPR_EXPECTS(j < block());
  return static_cast<std::uint32_t>(1 + dst * block() + j);
}

std::uint64_t Lft::dst_of(std::uint32_t lid) const {
  LMPR_EXPECTS(lid >= 1 && lid < lid_end());
  return (lid - 1) / block();
}

std::uint32_t Lft::variant_of(std::uint32_t lid) const {
  LMPR_EXPECTS(lid >= 1 && lid < lid_end());
  return (lid - 1) % block();
}

std::uint32_t Lft::lid_end() const noexcept {
  return static_cast<std::uint32_t>(1 + topo_->num_hosts() * block());
}

std::uint32_t Lft::variant_digit(std::uint32_t level, std::uint32_t j) const {
  return topo_->variant_digit(level, j, layout_);
}

topo::LinkId Lft::next_link(topo::NodeId node, std::uint32_t lid) const {
  const std::uint64_t dst = dst_of(lid);
  const std::uint32_t j = variant_of(lid);

  std::vector<topo::LinkId> candidates;
  topo_->candidate_links(node, dst, candidates);
  if (candidates.empty()) return topo::kInvalidLink;  // the destination
  if (candidates.size() == 1) return candidates[0];   // forced descent
  // Multi-candidate: anchor perturbed by the variant digit.
  const std::uint32_t radix = static_cast<std::uint32_t>(candidates.size());
  const std::uint32_t anchor = topo_->route_anchor(node, dst);
  const std::uint32_t port =
      (anchor + variant_digit(topo_->level_of(node), j)) % radix;
  return candidates[port];
}

std::uint64_t Lft::induced_path_index(std::uint64_t src, std::uint64_t dst,
                                      std::uint32_t j) const {
  return topo_->variant_path_index(src, dst, j, layout_);
}

Lft::WalkResult Lft::walk(std::uint64_t src, std::uint64_t dst,
                          std::uint32_t j) const {
  WalkResult result;
  const std::uint32_t lid = lid_of(dst, j);
  topo::NodeId node = topo_->host(src);
  result.path.nodes.push_back(node);
  const std::size_t hop_limit = topo_->hop_limit();
  for (std::size_t hop = 0; hop <= hop_limit; ++hop) {
    const topo::LinkId link = next_link(node, lid);
    if (link == topo::kInvalidLink) {
      result.delivered = (node == topo_->host(dst));
      return result;
    }
    result.path.links.push_back(link);
    node = topo_->link(link).dst;
    result.path.nodes.push_back(node);
  }
  return result;  // hop budget exhausted: not delivered
}

std::uint64_t Lft::coverage(std::uint64_t src, std::uint64_t dst) const {
  if (src == dst) return 1;
  std::set<std::uint64_t> distinct;
  for (std::uint32_t j = 0; j < block(); ++j) {
    distinct.insert(induced_path_index(src, dst, j));
  }
  return distinct.size();
}

std::vector<topo::LinkId> Lft::table_for(topo::NodeId node) const {
  std::vector<topo::LinkId> table(lid_end(), topo::kInvalidLink);
  for (std::uint32_t lid = 1; lid < lid_end(); ++lid) {
    table[lid] = next_link(node, lid);
  }
  return table;
}

}  // namespace lmpr::fabric
