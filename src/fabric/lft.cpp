#include "fabric/lft.hpp"

#include <algorithm>
#include <set>

#include "core/single_path.hpp"
#include "util/contracts.hpp"

namespace lmpr::fabric {

std::string_view to_string(LidLayout layout) noexcept {
  return layout == LidLayout::kDisjointLayout ? "disjoint" : "shift";
}

std::optional<LidLayout> layout_from_string(std::string_view name) noexcept {
  if (name == "disjoint") return LidLayout::kDisjointLayout;
  if (name == "shift") return LidLayout::kShiftLayout;
  return std::nullopt;
}

Lft::Lft(const topo::Xgft& xgft, std::uint64_t k_paths, LidLayout layout)
    : xgft_(&xgft), layout_(layout) {
  LMPR_EXPECTS(k_paths >= 1);
  const std::uint64_t effective =
      std::min<std::uint64_t>(k_paths, xgft.spec().num_top_switches());
  while ((1ULL << lmc_) < effective) ++lmc_;
  LMPR_EXPECTS(lmc_ <= 16);  // model limit; IB caps LMC at 7
}

std::uint32_t Lft::lid_of(std::uint64_t dst, std::uint32_t j) const {
  LMPR_EXPECTS(dst < xgft_->num_hosts());
  LMPR_EXPECTS(j < block());
  return static_cast<std::uint32_t>(1 + dst * block() + j);
}

std::uint64_t Lft::dst_of(std::uint32_t lid) const {
  LMPR_EXPECTS(lid >= 1 && lid < lid_end());
  return (lid - 1) / block();
}

std::uint32_t Lft::variant_of(std::uint32_t lid) const {
  LMPR_EXPECTS(lid >= 1 && lid < lid_end());
  return (lid - 1) % block();
}

std::uint32_t Lft::lid_end() const noexcept {
  return static_cast<std::uint32_t>(1 + xgft_->num_hosts() * block());
}

std::uint32_t Lft::variant_digit(std::uint32_t level, std::uint32_t j) const {
  const auto& spec = xgft_->spec();
  const std::uint32_t h = xgft_->height();
  LMPR_EXPECTS(level < h);
  std::uint64_t rest = j;
  if (layout_ == LidLayout::kDisjointLayout) {
    // Bottom-up: c_1 = j mod w_1, c_2 = (j / w_1) mod w_2, ...
    for (std::uint32_t l = 0; l < level; ++l) rest /= spec.w_at(l + 1);
    return static_cast<std::uint32_t>(rest % spec.w_at(level + 1));
  }
  // Top-down: c_h = j mod w_h, c_{h-1} = (j / w_h) mod w_{h-1}, ...
  for (std::uint32_t l = h; l > level + 1; --l) rest /= spec.w_at(l);
  return static_cast<std::uint32_t>(rest % spec.w_at(level + 1));
}

topo::LinkId Lft::next_link(topo::NodeId node, std::uint32_t lid) const {
  const std::uint64_t dst = dst_of(lid);
  const std::uint32_t j = variant_of(lid);
  const std::uint32_t level = xgft_->level_of(node);

  if (xgft_->is_ancestor_of_host(node, dst)) {
    if (level == 0) return topo::kInvalidLink;  // this IS the destination
    return xgft_->down_link(node, xgft_->down_port_toward(node, dst));
  }
  // Upward: d-mod-k anchor perturbed by the variant digit.
  const auto& spec = xgft_->spec();
  const std::uint32_t radix = spec.w_at(level + 1);
  const std::uint32_t anchor =
      static_cast<std::uint32_t>((dst / xgft_->w_prefix(level)) % radix);
  const std::uint32_t port = (anchor + variant_digit(level, j)) % radix;
  return xgft_->up_link(node, port);
}

std::uint64_t Lft::induced_path_index(std::uint64_t src, std::uint64_t dst,
                                      std::uint32_t j) const {
  if (src == dst) return 0;
  const std::uint32_t nca = xgft_->nca_level(src, dst);
  const auto& spec = xgft_->spec();
  route::UpChoices choices(nca);
  for (std::uint32_t l = 0; l < nca; ++l) {
    const std::uint32_t radix = spec.w_at(l + 1);
    const std::uint32_t anchor =
        static_cast<std::uint32_t>((dst / xgft_->w_prefix(l)) % radix);
    choices[l] = (anchor + variant_digit(l, j)) % radix;
  }
  return route::encode_path_index(spec, nca, choices);
}

Lft::WalkResult Lft::walk(std::uint64_t src, std::uint64_t dst,
                          std::uint32_t j) const {
  WalkResult result;
  const std::uint32_t lid = lid_of(dst, j);
  topo::NodeId node = xgft_->host(src);
  result.path.nodes.push_back(node);
  const std::size_t hop_limit = 4 * xgft_->height() + 2;
  for (std::size_t hop = 0; hop <= hop_limit; ++hop) {
    const topo::LinkId link = next_link(node, lid);
    if (link == topo::kInvalidLink) {
      result.delivered = (node == xgft_->host(dst));
      return result;
    }
    result.path.links.push_back(link);
    node = xgft_->link(link).dst;
    result.path.nodes.push_back(node);
  }
  return result;  // hop budget exhausted: not delivered
}

std::uint64_t Lft::coverage(std::uint64_t src, std::uint64_t dst) const {
  if (src == dst) return 1;
  std::set<std::uint64_t> distinct;
  for (std::uint32_t j = 0; j < block(); ++j) {
    distinct.insert(induced_path_index(src, dst, j));
  }
  return distinct.size();
}

std::vector<topo::LinkId> Lft::table_for(topo::NodeId node) const {
  std::vector<topo::LinkId> table(lid_end(), topo::kInvalidLink);
  for (std::uint32_t lid = 1; lid < lid_end(); ++lid) {
    table[lid] = next_link(node, lid);
  }
  return table;
}

}  // namespace lmpr::fabric
