#include "fabric/degraded.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace lmpr::fabric {

std::string_view to_string(RepairPolicy policy) noexcept {
  switch (policy) {
    case RepairPolicy::kFirstSurviving: return "first_surviving";
    case RepairPolicy::kLoadAware: return "load_aware";
  }
  return "?";
}

std::optional<RepairPolicy> repair_policy_from_string(
    std::string_view name) noexcept {
  if (name == "first_surviving") return RepairPolicy::kFirstSurviving;
  if (name == "load_aware") return RepairPolicy::kLoadAware;
  return std::nullopt;
}

bool Degradation::healthy() const {
  return std::find(cable_dead.begin(), cable_dead.end(), true) ==
             cable_dead.end() &&
         std::find(node_dead.begin(), node_dead.end(), true) ==
             node_dead.end();
}

RebuildStats rebuild_destination(const Lft& lft, const Degradation& deg,
                                 std::uint64_t dst, Tables& tables,
                                 RebuildScratch& scratch,
                                 RepairPolicy policy) {
  const topo::Xgft& xgft = lft.xgft();
  LMPR_EXPECTS(dst < xgft.num_hosts());
  LMPR_EXPECTS(tables.size() == xgft.num_nodes());
  const auto& spec = xgft.spec();
  const std::uint32_t h = xgft.height();
  const std::uint32_t block = lft.block();
  const std::size_t num_nodes = static_cast<std::size_t>(xgft.num_nodes());

  // Phase 1a: d's ancestor cone, bottom-up.  Every level-(l+1) ancestor
  // has exactly one ancestor child (its descent step toward d), so the
  // parent sweep enumerates each ancestor exactly once.  good bit 1,
  // ancestor bit 2.
  scratch.good.assign(num_nodes, 0);
  auto& good = scratch.good;
  const topo::NodeId dst_host = xgft.host(dst);
  good[dst_host] = 1 | 2;  // the destination delivers to itself
  scratch.ancestors.assign(1, dst_host);
  auto& frontier = scratch.ancestors;
  std::vector<topo::NodeId> next;
  for (std::uint32_t level = 1; level <= h; ++level) {
    next.clear();
    for (const topo::NodeId node : frontier) {
      const std::uint32_t parents = xgft.num_parents(node);
      for (std::uint32_t p = 0; p < parents; ++p) {
        next.push_back(xgft.parent(node, p));
      }
    }
    for (const topo::NodeId node : next) {
      const std::uint32_t port = xgft.down_port_toward(node, dst);
      const topo::LinkId down = xgft.down_link(node, port);
      const topo::NodeId child = xgft.child(node, port);
      const bool ok = deg.node_ok(node) && deg.cable_ok(xgft.cable_of(down)) &&
                      (good[child] & 1) != 0;
      good[node] = static_cast<std::uint8_t>((ok ? 1 : 0) | 2);
    }
    frontier.swap(next);
  }

  // Phase 1b: non-ancestors, top level down (all level-h switches are
  // ancestors of every host).  A node is good iff some live up cable
  // reaches a live good parent.
  for (std::uint32_t level = h; level-- > 0;) {
    const std::uint64_t count = spec.nodes_at_level(level);
    for (std::uint64_t rank = 0; rank < count; ++rank) {
      const topo::NodeId node = xgft.node_id(level, rank);
      if ((good[node] & 2) != 0) continue;  // ancestor: already decided
      bool ok = false;
      if (deg.node_ok(node)) {
        const std::uint32_t parents = xgft.num_parents(node);
        for (std::uint32_t p = 0; p < parents && !ok; ++p) {
          const topo::LinkId link = xgft.up_link(node, p);
          ok = deg.cable_ok(xgft.cable_of(link)) &&
               (good[xgft.link(link).dst] & 1) != 0;
        }
      }
      good[node] = ok ? 1 : 0;
    }
  }

  // Phase 2: the column's entries, diffed against the current tables.
  RebuildStats stats;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    const topo::NodeId node = static_cast<topo::NodeId>(n);
    auto& row = tables[n];
    LMPR_EXPECTS(row.size() == lft.lid_end());
    const bool is_ancestor = (good[node] & 2) != 0;
    const std::uint32_t level = xgft.level_of(node);

    const auto write_entry = [&](std::uint32_t j, topo::LinkId entry) {
      const std::uint32_t lid = lft.lid_of(dst, j);
      if (row[lid] != entry) {
        row[lid] = entry;
        ++stats.entries_written;
      }
    };

    if (node == dst_host) {
      // Own LIDs stay invalid: the packet has arrived.
      for (std::uint32_t j = 0; j < block; ++j) {
        write_entry(j, topo::kInvalidLink);
      }
      continue;
    }
    if (!deg.node_ok(node)) {
      stats.nominal = false;  // a dead switch's row is wiped
      for (std::uint32_t j = 0; j < block; ++j) {
        write_entry(j, topo::kInvalidLink);
      }
      continue;
    }
    if (is_ancestor) {
      topo::LinkId entry = topo::kInvalidLink;
      if ((good[node] & 1) != 0) {
        entry = xgft.down_link(node, xgft.down_port_toward(node, dst));
      } else {
        stats.nominal = false;  // broken descent: unrecoverable from here
      }
      for (std::uint32_t j = 0; j < block; ++j) write_entry(j, entry);
      continue;
    }

    // Non-ancestor: an up-port candidate (live cable to a live good
    // parent) serves every variant LID alike, so delivery is variant- and
    // policy-independent; only the variant -> port assignment differs.
    const std::uint32_t radix = spec.w_at(level + 1);
    const std::uint32_t anchor = static_cast<std::uint32_t>(
        (dst / xgft.w_prefix(level)) % radix);
    scratch.port_ok.assign(radix, 0);
    bool any_ok = false;
    for (std::uint32_t p = 0; p < radix; ++p) {
      const topo::LinkId link = xgft.up_link(node, p);
      const bool ok = deg.cable_ok(xgft.cable_of(link)) &&
                      (good[xgft.link(link).dst] & 1) != 0;
      scratch.port_ok[p] = ok ? 1 : 0;
      any_ok = any_ok || ok;
    }
    if (!any_ok) {
      stats.nominal = false;
      if (xgft.is_host(node)) ++stats.disconnected_sources;
      for (std::uint32_t j = 0; j < block; ++j) {
        write_entry(j, topo::kInvalidLink);
      }
      continue;
    }

    if (policy == RepairPolicy::kFirstSurviving) {
      for (std::uint32_t j = 0; j < block; ++j) {
        const std::uint32_t base =
            (anchor + lft.variant_digit(level, j)) % radix;
        for (std::uint32_t t = 0; t < radix; ++t) {
          const std::uint32_t port = (base + t) % radix;
          if (scratch.port_ok[port] == 0) continue;
          if (t != 0) stats.nominal = false;  // surviving-variant fallback
          write_entry(j, xgft.up_link(node, port));
          break;
        }
      }
      continue;
    }

    // kLoadAware.  Pass 1: variants whose healthy port survives keep it,
    // so a healthy column stays byte-identical to the nominal layout.
    scratch.port_load.assign(radix, 0);
    scratch.chosen.assign(block, radix);  // radix marks "displaced"
    for (std::uint32_t j = 0; j < block; ++j) {
      const std::uint32_t base = (anchor + lft.variant_digit(level, j)) % radix;
      if (scratch.port_ok[base] != 0) {
        scratch.chosen[j] = base;
        ++scratch.port_load[base];
      }
    }
    // Pass 2: displaced variants go, in variant order, to the surviving
    // port carrying the fewest variants of this column (the column-local
    // estimate of the post-repair cable load); ties keep the
    // kFirstSurviving probe order so the output stays deterministic.
    for (std::uint32_t j = 0; j < block; ++j) {
      if (scratch.chosen[j] != radix) continue;
      stats.nominal = false;
      const std::uint32_t base = (anchor + lft.variant_digit(level, j)) % radix;
      std::uint32_t best = radix;
      for (std::uint32_t t = 0; t < radix; ++t) {
        const std::uint32_t port = (base + t) % radix;
        if (scratch.port_ok[port] == 0) continue;
        if (best == radix ||
            scratch.port_load[port] < scratch.port_load[best]) {
          best = port;
        }
      }
      scratch.chosen[j] = best;
      ++scratch.port_load[best];
    }
    for (std::uint32_t j = 0; j < block; ++j) {
      write_entry(j, xgft.up_link(node, scratch.chosen[j]));
    }
  }
  return stats;
}

Tables build_lft(const Lft& lft, const Degradation& deg,
                 RepairPolicy policy) {
  const topo::Xgft& xgft = lft.xgft();
  Tables tables(static_cast<std::size_t>(xgft.num_nodes()),
                std::vector<topo::LinkId>(lft.lid_end(), topo::kInvalidLink));
  RebuildScratch scratch;
  for (std::uint64_t dst = 0; dst < xgft.num_hosts(); ++dst) {
    rebuild_destination(lft, deg, dst, tables, scratch, policy);
  }
  return tables;
}

}  // namespace lmpr::fabric
