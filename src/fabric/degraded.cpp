#include "fabric/degraded.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace lmpr::fabric {

std::string_view to_string(RepairPolicy policy) noexcept {
  switch (policy) {
    case RepairPolicy::kFirstSurviving: return "first_surviving";
    case RepairPolicy::kLoadAware: return "load_aware";
  }
  return "?";
}

std::optional<RepairPolicy> repair_policy_from_string(
    std::string_view name) noexcept {
  if (name == "first_surviving") return RepairPolicy::kFirstSurviving;
  if (name == "load_aware") return RepairPolicy::kLoadAware;
  return std::nullopt;
}

bool Degradation::healthy() const {
  return std::find(cable_dead.begin(), cable_dead.end(), true) ==
             cable_dead.end() &&
         std::find(node_dead.begin(), node_dead.end(), true) ==
             node_dead.end();
}

namespace {

/// Phase-1 deliverability of one node, assuming `good` already holds the
/// answer for the far endpoint of every candidate link.
bool node_deliverable(const topo::Topology& topo, const Degradation& deg,
                      std::uint64_t dst, topo::NodeId dst_host,
                      topo::NodeId node, std::span<const std::uint8_t> good,
                      std::vector<topo::LinkId>& candidates) {
  if (node == dst_host) return true;  // the destination delivers to itself
  if (!deg.node_ok(node)) return false;
  topo.candidate_links(node, dst, candidates);
  for (const topo::LinkId link : candidates) {
    if (deg.cable_ok(topo.cable_of(link)) && good[topo.link(link).dst] != 0) {
      return true;
    }
  }
  return false;
}

/// Phase 2 for one node: rewrites its row of the destination column,
/// diffed against the current contents.  Returns entries changed and ORs
/// the node's kNode* outcome into `flags`.
std::size_t rebuild_node_row(const Lft& lft, const Degradation& deg,
                             const topo::Topology& topo, std::uint64_t dst,
                             topo::NodeId dst_host, topo::NodeId node,
                             std::span<const std::uint8_t> good,
                             Tables& tables, RebuildScratch& scratch,
                             RepairPolicy policy, std::uint8_t& flags) {
  const std::uint32_t block = lft.block();
  auto& row = tables[static_cast<std::size_t>(node)];
  LMPR_EXPECTS(row.size() == lft.lid_end());
  std::size_t written = 0;

  const auto write_entry = [&](std::uint32_t j, topo::LinkId entry) {
    const std::uint32_t lid = lft.lid_of(dst, j);
    if (row[lid] != entry) {
      row[lid] = entry;
      ++written;
    }
  };

  if (node == dst_host) {
    // Own LIDs stay invalid: the packet has arrived.
    for (std::uint32_t j = 0; j < block; ++j) {
      write_entry(j, topo::kInvalidLink);
    }
    return written;
  }
  if (!deg.node_ok(node)) {
    flags |= kNodeDeviates;  // a dead switch's row is wiped
    for (std::uint32_t j = 0; j < block; ++j) {
      write_entry(j, topo::kInvalidLink);
    }
    return written;
  }

  // A surviving candidate (live cable to a live good far endpoint)
  // serves every variant LID alike, so delivery is variant- and
  // policy-independent; only the variant -> port assignment differs.
  auto& candidates = scratch.candidates;
  topo.candidate_links(node, dst, candidates);
  const std::uint32_t radix = static_cast<std::uint32_t>(candidates.size());
  scratch.port_ok.assign(radix, 0);
  bool any_ok = false;
  for (std::uint32_t p = 0; p < radix; ++p) {
    const topo::LinkId link = candidates[p];
    const bool ok = deg.cable_ok(topo.cable_of(link)) &&
                    good[topo.link(link).dst] != 0;
    scratch.port_ok[p] = ok ? 1 : 0;
    any_ok = any_ok || ok;
  }
  if (!any_ok) {
    flags |= kNodeDeviates;
    if (topo.is_host(node)) flags |= kNodeDisconnected;
    for (std::uint32_t j = 0; j < block; ++j) {
      write_entry(j, topo::kInvalidLink);
    }
    return written;
  }

  // Single-candidate nodes (fat-tree ancestors) take their forced hop
  // for every variant; the anchor/variant machinery only matters when
  // there is a real choice.
  const std::uint32_t anchor = radix > 1 ? topo.route_anchor(node, dst) : 0;
  const std::uint32_t level = radix > 1 ? topo.level_of(node) : 0;
  const auto base_of = [&](std::uint32_t j) -> std::uint32_t {
    if (radix <= 1) return 0;
    return (anchor + lft.variant_digit(level, j)) % radix;
  };

  if (policy == RepairPolicy::kFirstSurviving) {
    for (std::uint32_t j = 0; j < block; ++j) {
      const std::uint32_t base = base_of(j);
      for (std::uint32_t t = 0; t < radix; ++t) {
        const std::uint32_t port = (base + t) % radix;
        if (scratch.port_ok[port] == 0) continue;
        if (t != 0) flags |= kNodeDeviates;  // surviving-variant fallback
        write_entry(j, candidates[port]);
        break;
      }
    }
    return written;
  }

  // kLoadAware.  Pass 1: variants whose healthy port survives keep it,
  // so a healthy column stays byte-identical to the nominal layout.
  scratch.port_load.assign(radix, 0);
  scratch.chosen.assign(block, radix);  // radix marks "displaced"
  for (std::uint32_t j = 0; j < block; ++j) {
    const std::uint32_t base = base_of(j);
    if (scratch.port_ok[base] != 0) {
      scratch.chosen[j] = base;
      ++scratch.port_load[base];
    }
  }
  // Pass 2: displaced variants go, in variant order, to the surviving
  // port carrying the fewest variants of this column (the column-local
  // estimate of the post-repair cable load); ties keep the
  // kFirstSurviving probe order so the output stays deterministic.
  for (std::uint32_t j = 0; j < block; ++j) {
    if (scratch.chosen[j] != radix) continue;
    flags |= kNodeDeviates;
    const std::uint32_t base = base_of(j);
    std::uint32_t best = radix;
    for (std::uint32_t t = 0; t < radix; ++t) {
      const std::uint32_t port = (base + t) % radix;
      if (scratch.port_ok[port] == 0) continue;
      if (best == radix ||
          scratch.port_load[port] < scratch.port_load[best]) {
        best = port;
      }
    }
    scratch.chosen[j] = best;
    ++scratch.port_load[best];
  }
  for (std::uint32_t j = 0; j < block; ++j) {
    write_entry(j, candidates[scratch.chosen[j]]);
  }
  return written;
}

}  // namespace

RebuildStats rebuild_destination(const Lft& lft, const Degradation& deg,
                                 std::uint64_t dst, Tables& tables,
                                 RebuildScratch& scratch, RepairPolicy policy,
                                 std::vector<std::uint8_t>* node_flags) {
  const topo::Topology& topo = lft.topology();
  LMPR_EXPECTS(dst < topo.num_hosts());
  LMPR_EXPECTS(tables.size() == topo.num_nodes());
  const std::size_t num_nodes = static_cast<std::size_t>(topo.num_nodes());
  const topo::NodeId dst_host = topo.host(dst);

  // Phase 1: per-node deliverability.  repair_order guarantees the far
  // endpoint of every candidate link is decided before the node itself,
  // so one pass settles the whole fabric.
  scratch.good.assign(num_nodes, 0);
  auto& good = scratch.good;
  topo.repair_order(dst, scratch.order);
  for (const topo::NodeId node : scratch.order) {
    good[node] = node_deliverable(topo, deg, dst, dst_host, node, good,
                                  scratch.candidates)
                     ? 1
                     : 0;
  }

  // Phase 2: the column's entries, diffed against the current tables.
  if (node_flags != nullptr) node_flags->assign(num_nodes, 0);
  RebuildStats stats;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    const topo::NodeId node = static_cast<topo::NodeId>(n);
    std::uint8_t flags = 0;
    stats.entries_written += rebuild_node_row(
        lft, deg, topo, dst, dst_host, node, good, tables, scratch, policy,
        flags);
    if ((flags & kNodeDeviates) != 0) stats.nominal = false;
    if ((flags & kNodeDisconnected) != 0) ++stats.disconnected_sources;
    if (node_flags != nullptr) (*node_flags)[n] = flags;
  }
  return stats;
}

RebuildStats rebuild_destination_scoped(const Lft& lft, const Degradation& deg,
                                        std::uint64_t dst, Tables& tables,
                                        std::span<const topo::NodeId> scope,
                                        std::span<std::uint8_t> good,
                                        RebuildScratch& scratch,
                                        RepairPolicy policy) {
  const topo::Topology& topo = lft.topology();
  LMPR_EXPECTS(dst < topo.num_hosts());
  LMPR_EXPECTS(tables.size() == topo.num_nodes());
  LMPR_EXPECTS(good.size() == topo.num_nodes());
  const topo::NodeId dst_host = topo.host(dst);

  // Phase 1 over the scope only; out-of-scope far endpoints read the
  // caller's cached deliverability (valid under the scoping contract).
  for (const topo::NodeId node : scope) {
    good[node] = node_deliverable(topo, deg, dst, dst_host, node, good,
                                  scratch.candidates)
                     ? 1
                     : 0;
  }

  RebuildStats stats;
  for (const topo::NodeId node : scope) {
    std::uint8_t flags = 0;
    stats.entries_written += rebuild_node_row(
        lft, deg, topo, dst, dst_host, node, good, tables, scratch, policy,
        flags);
    if ((flags & kNodeDeviates) != 0) stats.nominal = false;
    if ((flags & kNodeDisconnected) != 0) ++stats.disconnected_sources;
  }
  return stats;
}

Tables build_lft(const Lft& lft, const Degradation& deg,
                 RepairPolicy policy) {
  const topo::Topology& topo = lft.topology();
  Tables tables(static_cast<std::size_t>(topo.num_nodes()),
                std::vector<topo::LinkId>(lft.lid_end(), topo::kInvalidLink));
  RebuildScratch scratch;
  for (std::uint64_t dst = 0; dst < topo.num_hosts(); ++dst) {
    rebuild_destination(lft, deg, dst, tables, scratch, policy);
  }
  return tables;
}

}  // namespace lmpr::fabric
