// InfiniBand-style destination-based forwarding: LID blocks and linear
// forwarding tables (LFTs), the mechanism that makes (limited) multi-path
// routing deployable on real fabrics (the paper's Section 1 motivation;
// Lin et al.'s multiple-LID scheme; OpenSM's fat-tree engine).
//
// Model.  Every destination host d owns a block of 2^LMC consecutive LIDs
// starting at lid_of(d, 0); LID lid_of(d, j) addresses "path variant j".
// A switch forwards by DLID alone: at a node with more than one candidate
// link toward d, the variant digit c_l(j) perturbs the topology's route
// anchor (the d-mod-k upward choice on an XGFT),
//
//     port_l(d, j) = (anchor_l(d) + c_l(j)) mod radix,
//
// while single-candidate nodes (the unique descent of a fat-tree ancestor)
// forward unconditionally.  Because the rule depends only on (d, j, node),
// the induced routing is destination-based by construction -- every switch
// can hold it as a plain DLID-indexed table (materializable via
// table_for()).
//
// Two LID layouts decide which level the variant digit j perturbs first:
//
//   kDisjointLayout -- j decomposes bottom-up (radices w_1, w_2, ..):
//     variant 1 already forks at the lowest level; the first K variants
//     realize the paper's DISJOINT heuristic for every SD pair.
//   kShiftLayout -- j decomposes top-down (radices w_h, w_{h-1}, ..):
//     variants first differ at the top level, the shift-1 spirit.  Pairs
//     whose NCA sits below the top need LARGE j to see any path
//     diversity -- shift-style multipath is strictly more expensive to
//     realize with LIDs (quantified by coverage()).
//
// This layer deliberately reuses nothing from route::select_path_indices:
// it derives paths from forwarding state, so the test suite can check the
// two implementations against each other.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/path_index.hpp"
#include "topology/topology.hpp"

namespace lmpr::fabric {

// The layout enum lives with the topology realizability hooks; these
// aliases keep the historical fabric:: spellings working.
using topo::LidLayout;
using topo::layout_from_string;
using topo::to_string;

/// A fabric-wide LID assignment + the (functional) forwarding tables it
/// induces.  Forwarding queries are O(h); explicit per-switch tables can
/// be materialized for inspection on small fabrics.
class Lft {
 public:
  /// `k_paths` is the path limit the fabric must support; the LID block
  /// size is 2^LMC with LMC = ceil(log2(min(k_paths, max paths))), as on
  /// InfiniBand.
  Lft(const topo::Topology& topology, std::uint64_t k_paths,
      LidLayout layout);

  const topo::Topology& topology() const noexcept { return *topo_; }
  LidLayout layout() const noexcept { return layout_; }
  std::uint32_t lmc() const noexcept { return lmc_; }
  /// LIDs per destination (2^LMC).
  std::uint32_t block() const noexcept { return 1u << lmc_; }

  /// LID of destination d, path variant j (j < block()).  LID 0 is
  /// reserved (as on InfiniBand); blocks are laid out contiguously.
  std::uint32_t lid_of(std::uint64_t dst, std::uint32_t j) const;
  /// Inverse of lid_of.
  std::uint64_t dst_of(std::uint32_t lid) const;
  std::uint32_t variant_of(std::uint32_t lid) const;
  /// One past the largest assigned LID.
  std::uint32_t lid_end() const noexcept;

  /// The directed link on which `node` forwards a packet addressed to
  /// `lid`; kInvalidLink when node is the destination host itself.
  topo::LinkId next_link(topo::NodeId node, std::uint32_t lid) const;

  /// The variant digit applied at level l (0-based: the choice made when
  /// moving from level l to l+1) for path variant j.
  std::uint32_t variant_digit(std::uint32_t level, std::uint32_t j) const;

  /// Path index (in the route::PathIndex numbering for the pair's NCA
  /// level) that variant j induces between s and d.  walk() follows
  /// exactly materialize_path(s, d, induced_path_index(s, d, j)).
  std::uint64_t induced_path_index(std::uint64_t src, std::uint64_t dst,
                                   std::uint32_t j) const;

  struct WalkResult {
    bool delivered = false;
    route::Path path;  ///< hop-by-hop record of the forwarding decisions
  };
  /// Follows the forwarding tables from src toward lid_of(dst, j); gives
  /// up (delivered = false) after the topology's hop limit, which cannot
  /// happen on a well-formed fabric.
  WalkResult walk(std::uint64_t src, std::uint64_t dst,
                  std::uint32_t j) const;

  /// Number of DISTINCT paths variants j = 0..block-1 induce for (s, d):
  /// the multipath degree this LID assignment actually delivers to the
  /// pair.  For the disjoint layout this is min(block, X); for the shift
  /// layout it degrades for pairs with a low NCA.
  std::uint64_t coverage(std::uint64_t src, std::uint64_t dst) const;

  /// Explicit DLID-indexed forwarding table of one node: entry [lid] is
  /// the LinkId to forward on (kInvalidLink for unassigned LIDs and for
  /// the node's own host LIDs).  Size = lid_end(); intended for small
  /// fabrics and debugging.
  std::vector<topo::LinkId> table_for(topo::NodeId node) const;

 private:
  const topo::Topology* topo_;
  LidLayout layout_;
  std::uint32_t lmc_ = 0;
};

}  // namespace lmpr::fabric
