// Forwarding on a DEGRADED fabric: the semantics a fabric manager must
// install once cables or switches die, shared by the from-scratch
// rebuild (build_lft) and the fabric manager's incremental repair
// (fm::FabricManager), which is defined to be entry-for-entry identical.
//
// Model.  Candidate-respecting routing survives degradation as follows.
// Per destination d, call a node GOOD when it can still deliver to d:
// good(d) = 1, and any other node is good iff it is alive and some
// candidate link (topo::Topology::candidate_links) has a live cable and a
// good far endpoint.  Topology::repair_order lists nodes so one pass
// decides everyone (on an XGFT: the destination's ancestor cone bottom-up
// -- every ancestor descends through exactly one child, so a broken
// descent cannot be routed around from above -- then non-ancestors top
// level down).
//
// The degraded table entry for DLID (d, j) at a multi-candidate node is
// decided by a REPAIR POLICY.  Variants whose healthy port p_j (the
// route anchor perturbed by the variant digit c_l(j)) still reaches a
// live good candidate always keep it, so a healthy fabric reproduces
// Lft::table_for exactly under every policy.  Variants whose healthy
// port is broken are DISPLACED and re-homed per policy:
//
//   kFirstSurviving  probe ports in the order p_j, p_j+1, .., p_j+w-1
//                    (mod w) and take the first live good parent -- the
//                    cheapest repair, but displaced variants pile onto
//                    the next surviving port;
//   kLoadAware       displaced variants go, in variant order, to the
//                    surviving port carrying the fewest variants of THIS
//                    destination column (nominal keepers included) --
//                    the column-local estimate of the post-repair cable
//                    load; ties keep the kFirstSurviving probe order.
//
// Both policies are pure per-destination functions of (lft, degradation),
// so the fabric manager's incremental repair stays entry-for-entry
// identical to a from-scratch build_lft under either (the differential
// invariant tests/test_fm_property.cpp hammers with random topologies and
// event scripts).  Entries with no surviving choice, and every entry of a
// dead switch, are kInvalidLink; a pair (s, d) is deliverable iff host
// s's entry for any of d's LIDs is valid (all variants then are --
// candidate sets are variant-independent, so delivery is policy-
// independent too).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "fabric/lft.hpp"
#include "topology/topology.hpp"

namespace lmpr::fabric {

/// How displaced path variants are re-homed onto surviving ports.
enum class RepairPolicy {
  kFirstSurviving,
  kLoadAware,
};

/// "first_surviving" / "load_aware" -- the spelling `lmpr fm
/// --repair-policy` accepts.
std::string_view to_string(RepairPolicy policy) noexcept;
std::optional<RepairPolicy> repair_policy_from_string(
    std::string_view name) noexcept;

/// The failure state of a fabric: per-cable and per-node death flags
/// (hosts never die; switch_down events set node flags).
struct Degradation {
  std::vector<bool> cable_dead;  ///< size num_cables
  std::vector<bool> node_dead;   ///< size num_nodes

  explicit Degradation(const topo::Topology& topology)
      : cable_dead(static_cast<std::size_t>(topology.num_cables()), false),
        node_dead(static_cast<std::size_t>(topology.num_nodes()), false) {}

  bool cable_ok(std::uint64_t cable) const {
    return !cable_dead[static_cast<std::size_t>(cable)];
  }
  bool node_ok(topo::NodeId node) const {
    return !node_dead[static_cast<std::size_t>(node)];
  }
  bool healthy() const;
};

/// Materialized forwarding state: tables[node][lid] = next LinkId
/// (kInvalidLink for unassigned LIDs, undeliverable entries and the
/// destination's own LIDs).  Same layout as Lft::table_for per node.
using Tables = std::vector<std::vector<topo::LinkId>>;

/// Reusable per-destination buffers so repeated rebuilds do not allocate.
struct RebuildScratch {
  std::vector<std::uint8_t> good;        ///< per node: delivers to dst?
  std::vector<topo::NodeId> order;       ///< Topology::repair_order output
  std::vector<topo::LinkId> candidates;  ///< current node's candidate links
  std::vector<std::uint8_t> port_ok;     ///< per candidate of current node
  std::vector<std::uint32_t> port_load;  ///< column variants per candidate
  std::vector<std::uint32_t> chosen;     ///< per variant: its port index
};

struct RebuildStats {
  std::size_t entries_written = 0;  ///< entries whose value changed
  /// True when the rebuilt column equals the HEALTHY layout everywhere:
  /// no invalid entries where the nominal table has valid ones and no
  /// fallback variant digits in effect.  For the scoped rebuild this (and
  /// disconnected_sources) covers the SCOPE only.
  bool nominal = true;
  /// Hosts s != dst whose entry toward dst is invalid (disconnected
  /// sources for this destination).
  std::uint64_t disconnected_sources = 0;
};

/// Per-node outcome flags for rebuild_destination's optional `node_flags`
/// output (callers partitioning the fabric fold these per region).
inline constexpr std::uint8_t kNodeDeviates = 1;      ///< row differs from nominal
inline constexpr std::uint8_t kNodeDisconnected = 2;  ///< host with no survivor

/// Recomputes destination `dst`'s column (every node, every variant LID)
/// of `tables` for the degraded topology, diffing against the current
/// contents.  `tables` must have one row of size lft.lid_end() per node.
/// When `node_flags` is non-null it is resized to num_nodes and filled
/// with the kNode* flags per node (so stats.nominal == "no flag set" and
/// stats.disconnected_sources == count of kNodeDisconnected entries);
/// scratch.good is left holding the column's deliverability vector.
RebuildStats rebuild_destination(
    const Lft& lft, const Degradation& deg, std::uint64_t dst, Tables& tables,
    RebuildScratch& scratch,
    RepairPolicy policy = RepairPolicy::kFirstSurviving,
    std::vector<std::uint8_t>* node_flags = nullptr);

/// Scope-restricted column repair: recomputes deliverability and entries
/// of destination `dst`'s column ONLY for the nodes in `scope`, reading
/// `good` -- a cached full-size deliverability vector for this column --
/// for every out-of-scope far endpoint and updating the in-scope entries
/// of `good` in place.  Entries and use of out-of-scope nodes are left
/// untouched, so the caller must guarantee (a) `scope` is dependency-
/// ordered (the far endpoint of every in-scope candidate link is either
/// out of scope or listed earlier -- for an XGFT island and a REMOTE
/// destination: switches by descending level, then hosts) and (b) every
/// change the current degradation implies for this column relative to the
/// state `good`/`tables` describe is confined to `scope`.  Under that
/// contract the result is entry-for-entry identical to a full
/// rebuild_destination; the returned stats cover the scope only.
RebuildStats rebuild_destination_scoped(
    const Lft& lft, const Degradation& deg, std::uint64_t dst, Tables& tables,
    std::span<const topo::NodeId> scope, std::span<std::uint8_t> good,
    RebuildScratch& scratch,
    RepairPolicy policy = RepairPolicy::kFirstSurviving);

/// From-scratch build of the full degraded forwarding state -- the
/// reference the fabric manager's incremental repair is tested against.
Tables build_lft(const Lft& lft, const Degradation& deg,
                 RepairPolicy policy = RepairPolicy::kFirstSurviving);

}  // namespace lmpr::fabric
