// Forwarding on a DEGRADED fabric: the semantics a fabric manager must
// install once cables or switches die, shared by the from-scratch
// rebuild (build_lft) and the fabric manager's incremental repair
// (fm::FabricManager), which is defined to be entry-for-entry identical.
//
// Model.  Minimal up*/down* routing survives degradation as follows.
// Per destination d, call a node GOOD when it can still deliver to d:
//
//   * an ancestor of d is good iff it, the down cable of its unique
//     descent step and the descent child are all alive and good -- in an
//     XGFT every ancestor descends to d through exactly one child, so a
//     broken descent cannot be routed around from above (any parent of a
//     broken ancestor descends straight back into it);
//   * a non-ancestor (or source host) is good iff some live up cable
//     leads to a live good parent.
//
// The degraded table entry for DLID (d, j) at a non-ancestor node is
// decided by a REPAIR POLICY.  Variants whose healthy port p_j (the
// d-mod-k choice perturbed by the variant digit c_l(j)) still reaches a
// live good parent always keep it, so a healthy fabric reproduces
// Lft::table_for exactly under every policy.  Variants whose healthy
// port is broken are DISPLACED and re-homed per policy:
//
//   kFirstSurviving  probe ports in the order p_j, p_j+1, .., p_j+w-1
//                    (mod w) and take the first live good parent -- the
//                    cheapest repair, but displaced variants pile onto
//                    the next surviving port;
//   kLoadAware       displaced variants go, in variant order, to the
//                    surviving port carrying the fewest variants of THIS
//                    destination column (nominal keepers included) --
//                    the column-local estimate of the post-repair cable
//                    load; ties keep the kFirstSurviving probe order.
//
// Both policies are pure per-destination functions of (lft, degradation),
// so the fabric manager's incremental repair stays entry-for-entry
// identical to a from-scratch build_lft under either (the differential
// invariant tests/test_fm_property.cpp hammers with random topologies and
// event scripts).  Entries with no surviving choice, and every entry of a
// dead switch, are kInvalidLink; a pair (s, d) is deliverable iff host
// s's entry for any of d's LIDs is valid (all variants then are --
// candidate sets are variant-independent, so delivery is policy-
// independent too).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "fabric/lft.hpp"
#include "topology/xgft.hpp"

namespace lmpr::fabric {

/// How displaced path variants are re-homed onto surviving ports.
enum class RepairPolicy {
  kFirstSurviving,
  kLoadAware,
};

/// "first_surviving" / "load_aware" -- the spelling `lmpr fm
/// --repair-policy` accepts.
std::string_view to_string(RepairPolicy policy) noexcept;
std::optional<RepairPolicy> repair_policy_from_string(
    std::string_view name) noexcept;

/// The failure state of a fabric: per-cable and per-node death flags
/// (hosts never die; switch_down events set node flags).
struct Degradation {
  std::vector<bool> cable_dead;  ///< size num_cables
  std::vector<bool> node_dead;   ///< size num_nodes

  explicit Degradation(const topo::Xgft& xgft)
      : cable_dead(static_cast<std::size_t>(xgft.num_cables()), false),
        node_dead(static_cast<std::size_t>(xgft.num_nodes()), false) {}

  bool cable_ok(std::uint64_t cable) const {
    return !cable_dead[static_cast<std::size_t>(cable)];
  }
  bool node_ok(topo::NodeId node) const {
    return !node_dead[static_cast<std::size_t>(node)];
  }
  bool healthy() const;
};

/// Materialized forwarding state: tables[node][lid] = next LinkId
/// (kInvalidLink for unassigned LIDs, undeliverable entries and the
/// destination's own LIDs).  Same layout as Lft::table_for per node.
using Tables = std::vector<std::vector<topo::LinkId>>;

/// Reusable per-destination buffers so repeated rebuilds do not allocate.
struct RebuildScratch {
  std::vector<std::uint8_t> good;       ///< per node
  std::vector<topo::NodeId> ancestors;  ///< d's ancestor cone, by level
  std::vector<std::uint8_t> port_ok;    ///< per up port of the current node
  std::vector<std::uint32_t> port_load; ///< column variants per up port
  std::vector<std::uint32_t> chosen;    ///< per variant: its assigned port
};

struct RebuildStats {
  std::size_t entries_written = 0;  ///< entries whose value changed
  /// True when the rebuilt column equals the HEALTHY layout everywhere:
  /// no invalid entries where the nominal table has valid ones and no
  /// fallback variant digits in effect.
  bool nominal = true;
  /// Hosts s != dst whose entry toward dst is invalid (disconnected
  /// sources for this destination).
  std::uint64_t disconnected_sources = 0;
};

/// Recomputes destination `dst`'s column (every node, every variant LID)
/// of `tables` for the degraded topology, diffing against the current
/// contents.  `tables` must have one row of size lft.lid_end() per node.
RebuildStats rebuild_destination(
    const Lft& lft, const Degradation& deg, std::uint64_t dst, Tables& tables,
    RebuildScratch& scratch,
    RepairPolicy policy = RepairPolicy::kFirstSurviving);

/// From-scratch build of the full degraded forwarding state -- the
/// reference the fabric manager's incremental repair is tested against.
Tables build_lft(const Lft& lft, const Degradation& deg,
                 RepairPolicy policy = RepairPolicy::kFirstSurviving);

}  // namespace lmpr::fabric
