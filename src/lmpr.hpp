// Umbrella header for the lmpr library: limited multi-path routing on
// extended generalized fat-trees (Mahapatra, Yuan, Nienaber; IPDPS-W 2012).
//
// Typical usage:
//
//   #include "lmpr.hpp"
//   using namespace lmpr;
//
//   topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};
//   util::Rng rng{7};
//   flow::LoadEvaluator eval(xgft);
//   auto tm = flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
//   auto load = eval.evaluate(tm, route::Heuristic::kDisjoint, /*K=*/4, rng);
//   double ratio = flow::perf_ratio(load.max_load, flow::oload(xgft, tm).value);
#pragma once

#include "core/deadlock.hpp"
#include "core/heuristics.hpp"
#include "core/lid_cost.hpp"
#include "core/overlap.hpp"
#include "core/path_index.hpp"
#include "core/route_table.hpp"
#include "core/single_path.hpp"
#include "discovery/io.hpp"
#include "discovery/recognize.hpp"
#include "fabric/degraded.hpp"
#include "fabric/lft.hpp"
#include "flit/config.hpp"
#include "flit/metrics.hpp"
#include "flit/network.hpp"
#include "flit/sweep.hpp"
#include "flow/collectives.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/permutation_study.hpp"
#include "flow/resilience.hpp"
#include "flow/traffic.hpp"
#include "flow/traffic_aware.hpp"
#include "flow/worst_case.hpp"
#include "fm/events.hpp"
#include "fm/fabric_manager.hpp"
#include "topology/factory.hpp"
#include "topology/generic.hpp"
#include "topology/label.hpp"
#include "topology/spec.hpp"
#include "topology/topology.hpp"
#include "topology/xgft.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
