// XGFT topology specification.
//
// An extended generalized fat-tree XGFT(h; m1..mh; w1..wh) (Ohring et al.,
// IPPS'95) has h+1 levels of nodes.  Level-0 nodes are processing nodes
// (hosts); levels 1..h are switches.  Each level-i node (i < h) has w_{i+1}
// parents; each level-i node (i >= 1) has m_i children.  The network has
// prod(m_i) hosts and prod(w_i) top-level switches.
//
// Well-known fat-tree variants are XGFT special cases; the factory
// functions below build the equivalences the paper uses (Section 5):
//   m-port n-tree  ==  XGFT(n; m/2,..,m/2,m; 1,m/2,..,m/2)
//   k-ary  n-tree  ==  XGFT(n; k,..,k; 1,k,..,k)
//   GFT(h; m, w)   ==  XGFT(h; m,..,m; w,..,w)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmpr::topo {

struct XgftSpec {
  /// m[i-1] = m_i: children per level-i node, i = 1..h.
  std::vector<std::uint32_t> m;
  /// w[i-1] = w_i: parents per level-(i-1) node, i = 1..h.
  std::vector<std::uint32_t> w;

  std::size_t height() const noexcept { return m.size(); }

  /// m_i / w_i with the paper's 1-based level subscripts.
  std::uint32_t m_at(std::size_t i) const;
  std::uint32_t w_at(std::size_t i) const;

  /// prod_{i=1..h} m_i: number of processing nodes.
  std::uint64_t num_hosts() const noexcept;
  /// prod_{i=1..h} w_i: number of top-level switches; also the maximum
  /// number of shortest paths between any two hosts (Property 1 with the
  /// nearest common ancestor at level h).
  std::uint64_t num_top_switches() const noexcept;
  /// Number of nodes at level l: (prod_{i>l} m_i) * (prod_{i<=l} w_i).
  std::uint64_t nodes_at_level(std::size_t l) const;
  /// Total node count over all levels 0..h.
  std::uint64_t total_nodes() const;

  /// prod_{i=1..k} m_i (hosts per height-k subtree).
  std::uint64_t m_prefix_product(std::size_t k) const;
  /// prod_{i=1..k} w_i (shortest paths for an SD pair with NCA at level k;
  /// also top-level switches of a height-k subtree).
  std::uint64_t w_prefix_product(std::size_t k) const;
  /// TL(k) = prod_{i=1..k+1} w_i: one-directional links that connect a
  /// height-k subtree to the rest of the fabric (paper Section 4.1).
  std::uint64_t boundary_links(std::size_t k) const;

  /// Throws std::invalid_argument when the spec is malformed (empty, zero
  /// arity, mismatched lengths) or too large to index with 64-bit ids.
  void validate() const;

  /// "XGFT(3;4,4,8;1,4,4)" -- the paper's notation.
  std::string to_string() const;

  /// Parses the to_string() format (whitespace-insensitive).
  static XgftSpec parse(const std::string& text);

  static XgftSpec m_port_n_tree(std::uint32_t ports, std::size_t levels);
  static XgftSpec k_ary_n_tree(std::uint32_t arity, std::size_t levels);
  static XgftSpec gft(std::size_t height, std::uint32_t m, std::uint32_t w);

  friend bool operator==(const XgftSpec&, const XgftSpec&) = default;
};

}  // namespace lmpr::topo
