// Tuple labelling of XGFT nodes (paper Section 3.1).
//
// A node is identified by (l, a_h, a_{h-1}, .., a_1) where l is its level,
// a_i < m_i for i > l (which height-i subtree copy the node lives in) and
// a_i < w_i for i <= l (which of the level's switch replicas it is).
//
// Within a level, nodes are ranked by the mixed-radix value of the digit
// string with a_1 least significant; across levels, ids are assigned level
// 0 first, so processing node p has NodeId p -- matching the paper's host
// numbering (e.g. the SD pair "(0, 63)" of Figure 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/spec.hpp"

namespace lmpr::topo {

/// Index of a node in the instantiated topology (level-major, level 0
/// first).  Strongly typed aliases are not worth the friction here: ids
/// index into dense arrays everywhere.
using NodeId = std::uint32_t;
/// Index of a *directed* link.
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

/// Decoded label of a node.
struct Label {
  std::uint32_t level = 0;
  /// digits[i-1] = a_i, i = 1..h (a_1 first).
  std::vector<std::uint32_t> digits;

  friend bool operator==(const Label&, const Label&) = default;

  /// "(2; a_h,..,a_1)" rendering, digits most-significant first as in the
  /// paper's figures.
  std::string to_string() const;
};

/// Radix of digit position i (1-based) for a node at level `level`:
/// w_i below-or-at the level, m_i above it.
std::uint32_t digit_radix(const XgftSpec& spec, std::uint32_t level,
                          std::size_t i);

/// Rank of a label within its level (0-based).
std::uint64_t label_to_rank(const XgftSpec& spec, const Label& label);

/// Inverse of label_to_rank.
Label rank_to_label(const XgftSpec& spec, std::uint32_t level,
                    std::uint64_t rank);

}  // namespace lmpr::topo
