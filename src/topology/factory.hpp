// Topology selection by spec string -- the single entry point behind the
// CLI's `--topology` flag.
//
//   "XGFT(h; m1,..,mh; w1,..,wh)"  -> topo::Xgft (the paper's fat-tree)
//   "RRG(switches; degree; hosts_per_switch [; seed])"
//                                  -> topo::GenericGraphTopology over
//                                     build_expander_fabric()
//
// Whitespace is insignificant in both forms.  Malformed specs throw
// std::invalid_argument with a position diagnostic (see spec.cpp for the
// XGFT grammar's line:column reporting).
#pragma once

#include <memory>
#include <string_view>

#include "topology/topology.hpp"

namespace lmpr::topo {

/// Builds the topology a spec string names.  Throws std::invalid_argument
/// when the spec is malformed or names an unknown family.
std::unique_ptr<const Topology> make_topology(std::string_view spec);

}  // namespace lmpr::topo
