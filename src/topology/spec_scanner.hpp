// Cursor-based scanner shared by the topology spec grammars
// (XGFT(h;m..;w..) in spec.cpp, RRG(n;d;p[;seed]) in factory.cpp).
// Every rejection carries the 1-based line:column of the offending
// character in the ORIGINAL text plus the text itself -- specs arrive
// from CLI flags, config files and the `lmpr serve` TOPO command, so a
// "bad spec" without a position and an echo is useless.  Numbers are
// accumulated with explicit overflow bounds instead of std::stoul's
// silent truncation.
#pragma once

#include <cctype>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lmpr::topo {

class SpecScanner {
 public:
  /// `context` prefixes every diagnostic, e.g. "XgftSpec::parse".  The
  /// text is held by reference: the scanner must not outlive it.
  SpecScanner(const std::string& text, std::string context)
      : text_(text), context_(std::move(context)) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  void expect_keyword(std::string_view keyword) {
    skip_ws();
    if (text_.compare(pos_, keyword.size(), keyword) != 0) {
      fail(pos_, "expected '" + std::string{keyword} + "'");
    }
    pos_ += keyword.size();
  }

  void expect(char c, const char* what) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) fail(pos_, what);
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  /// One unsigned decimal literal, bounded to 64 bits.
  std::uint64_t number64(const char* what) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail(pos_, std::string{"expected "} + what);
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const auto digit = static_cast<std::uint64_t>(text_[pos_] - '0');
      if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        fail(start, std::string{what} + " exceeds 64 bits");
      }
      value = value * 10 + digit;
      ++pos_;
    }
    return value;
  }

  /// One unsigned decimal literal, bounded to 32 bits (checked per
  /// digit, so any overlong literal reports the 32-bit bound).
  std::uint32_t number(const char* what) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail(pos_, std::string{"expected "} + what);
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      if (value > std::numeric_limits<std::uint32_t>::max()) {
        fail(start, std::string{what} + " exceeds 32 bits");
      }
      ++pos_;
    }
    return static_cast<std::uint32_t>(value);
  }

  /// Comma-separated list of POSITIVE numbers (arities).
  std::vector<std::uint32_t> arity_list(const char* what) {
    std::vector<std::uint32_t> values;
    do {
      skip_ws();
      const std::size_t start = pos_;
      const std::uint32_t value = number(what);
      if (value == 0) {
        fail(start, std::string{what} + " must be at least 1");
      }
      values.push_back(value);
    } while (consume(','));
    return values;
  }

  std::size_t position() {
    skip_ws();
    return pos_;
  }

  [[noreturn]] void fail(std::size_t at, const std::string& what) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < at && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw std::invalid_argument(
        context_ + ": " + what + " at line " + std::to_string(line) +
        ", column " + std::to_string(column) + " of '" + text_ + "'");
  }

 private:
  const std::string& text_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace lmpr::topo
