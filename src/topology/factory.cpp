#include "topology/factory.hpp"

#include <cctype>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "topology/generic.hpp"
#include "topology/spec.hpp"
#include "topology/spec_scanner.hpp"
#include "topology/xgft.hpp"

namespace lmpr::topo {

namespace {

/// Strips every whitespace character so family dispatch sees "RRG(" even
/// in "RRG ( 18 ; ...".  Parsing proper runs on the ORIGINAL text (both
/// grammars are whitespace-insensitive) so diagnostics keep real
/// line:column positions.
std::string squeeze(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

std::unique_ptr<const Topology> make_rrg(const std::string& text) {
  SpecScanner scan(text, "RrgSpec::parse");
  scan.expect_keyword("RRG");
  scan.expect('(', "expected '(' after RRG");
  const std::uint32_t switches = scan.number("switch count");
  scan.expect(';', "expected ';' after the switch count");
  const std::uint32_t degree = scan.number("switch-to-switch degree");
  scan.expect(';', "expected ';' after the degree");
  const std::uint32_t hosts_per_switch = scan.number("hosts per switch");
  bool has_seed = false;
  std::uint64_t seed = 1;
  if (scan.consume(';')) {
    seed = scan.number64("seed");
    has_seed = true;
  }
  scan.expect(')', "expected ')' after the RRG fields "
                   "(RRG(switches;degree;hosts_per_switch[;seed]))");
  if (!scan.at_end()) {
    scan.fail(scan.position(), "trailing characters after ')'");
  }
  const discovery::RawFabric fabric =
      build_expander_fabric(switches, degree, hosts_per_switch, seed);
  std::string name = "RRG(";
  name += std::to_string(switches);
  name += ';';
  name += std::to_string(degree);
  name += ';';
  name += std::to_string(hosts_per_switch);
  if (has_seed) {
    name += ';';
    name += std::to_string(seed);
  }
  name += ')';
  return std::make_unique<GenericGraphTopology>(fabric, std::move(name));
}

std::unique_ptr<const Topology> dispatch(std::string_view spec) {
  const std::string squeezed = squeeze(spec);
  if (squeezed.empty()) {
    throw std::invalid_argument("topology spec is empty");
  }
  if (squeezed.rfind("XGFT(", 0) == 0) {
    return std::make_unique<Xgft>(XgftSpec::parse(std::string{spec}));
  }
  if (squeezed.rfind("RRG(", 0) == 0) {
    return make_rrg(std::string{spec});
  }
  throw std::invalid_argument(
      "unknown topology family (expected XGFT(...) or RRG(...))");
}

}  // namespace

std::unique_ptr<const Topology> make_topology(std::string_view spec) {
  try {
    return dispatch(spec);
  } catch (const std::invalid_argument& error) {
    // Every rejection echoes the offending spec exactly once: the parse
    // scanners already embed it ("... of '<spec>'"); semantic failures
    // thrown deeper (XgftSpec::validate, the expander builder) get it
    // prepended here.
    const std::string what = error.what();
    if (!spec.empty() && what.find(spec) != std::string::npos) throw;
    throw std::invalid_argument("topology spec '" + std::string{spec} +
                                "': " + what);
  }
}

}  // namespace lmpr::topo
