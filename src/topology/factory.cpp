#include "topology/factory.hpp"

#include <cctype>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "topology/generic.hpp"
#include "topology/spec.hpp"
#include "topology/xgft.hpp"

namespace lmpr::topo {

namespace {

/// Strips every whitespace character (both families are whitespace
/// insensitive) so "RRG( 18 ; 4 ; 3 )" parses like "RRG(18;4;3)".
std::string squeeze(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

[[noreturn]] void bad_rrg(const std::string& why) {
  throw std::invalid_argument(
      "RRG spec: " + why + " (expected RRG(switches;degree;hosts_per_switch"
      "[;seed]))");
}

std::unique_ptr<const Topology> make_rrg(const std::string& squeezed) {
  if (squeezed.back() != ')') bad_rrg("missing closing ')'");
  const std::string body = squeezed.substr(4, squeezed.size() - 5);
  std::vector<std::uint64_t> fields{0};
  std::vector<bool> has_digits{false};
  for (const char c : body) {
    if (c == ';') {
      fields.push_back(0);
      has_digits.push_back(false);
      continue;
    }
    if (c < '0' || c > '9') {
      bad_rrg(std::string{"unexpected character '"} + c + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (fields.back() > (UINT64_MAX - digit) / 10) bad_rrg("field overflows");
    fields.back() = fields.back() * 10 + digit;
    has_digits.back() = true;
  }
  if (fields.size() < 3 || fields.size() > 4) {
    bad_rrg("expected 3 or 4 ';'-separated fields, got " +
            std::to_string(fields.size()));
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (!has_digits[i]) bad_rrg("field " + std::to_string(i + 1) + " is empty");
  }
  for (std::size_t i = 0; i < 3; ++i) {
    if (fields[i] > UINT32_MAX) {
      bad_rrg("field " + std::to_string(i + 1) + " exceeds 32 bits");
    }
  }
  const auto switches = static_cast<std::uint32_t>(fields[0]);
  const auto degree = static_cast<std::uint32_t>(fields[1]);
  const auto hosts_per_switch = static_cast<std::uint32_t>(fields[2]);
  const std::uint64_t seed = fields.size() == 4 ? fields[3] : 1;
  const discovery::RawFabric fabric =
      build_expander_fabric(switches, degree, hosts_per_switch, seed);
  std::string name = "RRG(";
  name += std::to_string(switches);
  name += ';';
  name += std::to_string(degree);
  name += ';';
  name += std::to_string(hosts_per_switch);
  if (fields.size() == 4) {
    name += ';';
    name += std::to_string(seed);
  }
  name += ')';
  return std::make_unique<GenericGraphTopology>(fabric, std::move(name));
}

}  // namespace

std::unique_ptr<const Topology> make_topology(std::string_view spec) {
  const std::string squeezed = squeeze(spec);
  if (squeezed.empty()) {
    throw std::invalid_argument("topology spec is empty");
  }
  if (squeezed.rfind("XGFT(", 0) == 0) {
    return std::make_unique<Xgft>(XgftSpec::parse(std::string{spec}));
  }
  if (squeezed.rfind("RRG(", 0) == 0) {
    return make_rrg(squeezed);
  }
  throw std::invalid_argument(
      "unknown topology family in \"" + std::string{spec} +
      "\" (expected XGFT(...) or RRG(...))");
}

}  // namespace lmpr::topo
