// Instantiated XGFT topology: dense node ids, directed links, adjacency,
// port numbering, nearest-common-ancestor queries and subtree cuts.
//
// Construction cost and memory are linear in the number of nodes + links;
// all adjacency queries are O(1) and all label queries O(h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/label.hpp"
#include "topology/spec.hpp"
#include "topology/topology.hpp"

namespace lmpr::topo {

class Xgft final : public Topology {
 public:
  /// Validates the spec and materializes the topology.
  explicit Xgft(XgftSpec spec);

  const XgftSpec& spec() const noexcept { return spec_; }
  std::uint32_t height() const noexcept {
    return static_cast<std::uint32_t>(spec_.height());
  }

  // --- Topology interface -------------------------------------------------

  std::string_view kind() const noexcept override { return "xgft"; }
  std::string name() const override { return spec_.to_string(); }

  std::uint64_t num_hosts() const noexcept override { return num_hosts_; }
  std::uint64_t num_nodes() const noexcept override {
    return level_base_.back();
  }
  /// Directed link count (2x the cable count).
  std::uint64_t num_links() const noexcept override { return links_.size(); }

  /// Link-level strata == tree height.
  std::uint32_t num_levels() const noexcept override { return height(); }

  void out_links(NodeId node, std::vector<LinkId>& out) const override;
  std::size_t hop_limit() const override { return 4 * height() + 2; }

  std::uint64_t num_paths(std::uint64_t src,
                          std::uint64_t dst) const override {
    return num_shortest_paths(src, dst);
  }
  std::uint64_t max_paths() const override {
    return w_prefix_[spec_.height()];
  }
  void append_path_links(std::uint64_t src, std::uint64_t dst,
                         std::uint64_t index,
                         std::vector<LinkId>& out) const override;
  std::uint64_t dmodk_index(std::uint64_t src,
                            std::uint64_t dst) const override;
  std::uint64_t smodk_index(std::uint64_t src,
                            std::uint64_t dst) const override;
  std::uint64_t disjoint_offset(std::uint64_t src, std::uint64_t dst,
                                std::uint64_t n) const override;

  void candidate_links(NodeId node, std::uint64_t dst,
                       std::vector<LinkId>& out) const override;
  std::uint32_t route_anchor(NodeId node, std::uint64_t dst) const override;
  std::uint32_t variant_digit(std::uint32_t level, std::uint32_t j,
                              LidLayout layout) const override;
  void repair_order(std::uint64_t dst,
                    std::vector<NodeId>& out) const override;
  std::uint64_t variant_path_index(std::uint64_t src, std::uint64_t dst,
                                   std::uint32_t j,
                                   LidLayout layout) const override;

  // --- id <-> (level, rank) <-> label ------------------------------------

  NodeId node_id(std::uint32_t level, std::uint64_t rank) const;
  /// Processing node i (ids coincide: hosts occupy ids [0, num_hosts)).
  NodeId host(std::uint64_t i) const override;
  bool is_host(NodeId node) const noexcept override {
    return node < num_hosts_;
  }

  std::uint32_t level_of(NodeId node) const override;
  std::uint64_t rank_of(NodeId node) const;
  Label label_of(NodeId node) const;
  NodeId node_of(const Label& label) const;

  // --- adjacency ----------------------------------------------------------

  /// Number of parents of `node` (w_{l+1}; 0 at the top level).
  std::uint32_t num_parents(NodeId node) const;
  /// Number of children of `node` (m_l; 0 for hosts).
  std::uint32_t num_children(NodeId node) const;

  /// Parent reached through (0-based) upper port `j` -- the paper's port
  /// j+1.  Upper ports are ordered left to right, i.e. by the parent's
  /// digit at position l+1.
  NodeId parent(NodeId node, std::uint32_t j) const;
  /// Child reached through (0-based) lower port `c`, ordered by the
  /// child's digit at position l (for a node at level l).
  NodeId child(NodeId node, std::uint32_t c) const;

  /// Directed link ids for O(1) load accounting.
  LinkId up_link(NodeId node, std::uint32_t j) const;
  LinkId down_link(NodeId node, std::uint32_t c) const;

  const Link& link(LinkId id) const override;
  std::span<const Link> links() const noexcept override { return links_; }

  // --- shortest-path structure (paper Section 3.1, Property 1) ------------

  /// Level of the nearest common ancestor switches of hosts s and d
  /// (0 when s == d: the "path" stays at the host).
  std::uint32_t nca_level(std::uint64_t src_host,
                          std::uint64_t dst_host) const;

  /// Number of distinct shortest paths between two hosts:
  /// prod_{i=1..nca} w_i (Property 1).  1 when src == dst.
  std::uint64_t num_shortest_paths(std::uint64_t src_host,
                                   std::uint64_t dst_host) const;

  /// Index of the height-k subtree containing a host (hosts are grouped
  /// contiguously: subtree j holds hosts [j*M_k, (j+1)*M_k) with
  /// M_k = prod_{i<=k} m_i).
  std::uint64_t subtree_of(std::uint64_t host, std::uint32_t k) const;
  /// Number of height-k subtrees.
  std::uint64_t num_subtrees(std::uint32_t k) const;
  /// Hosts per height-k subtree.
  std::uint64_t hosts_per_subtree(std::uint32_t k) const;

  /// prod_{i<=k} m_i, cached.
  std::uint64_t m_prefix(std::uint32_t k) const;
  /// prod_{i<=k} w_i, cached.
  std::uint64_t w_prefix(std::uint32_t k) const;

  /// Digit a_i of a host's label, i in [1, h] (host digits are all
  /// m-digits).  Equals (host / m_prefix(i-1)) % m_i.
  std::uint32_t host_digit(std::uint64_t host, std::size_t i) const;

  /// True when `host` lies in the subtree below `node` (a host is an
  /// ancestor only of itself).  O(h).
  bool is_ancestor_of_host(NodeId node, std::uint64_t host) const;

  /// The lower port of `node` (a switch that is an ancestor of `host`)
  /// on the unique descent toward the host.
  std::uint32_t down_port_toward(NodeId node, std::uint64_t host) const;

  /// Emits Graphviz DOT of the topology (small instances only: intended
  /// for documentation and debugging).
  std::string to_dot() const;

 private:
  XgftSpec spec_;
  std::uint64_t num_hosts_ = 0;
  /// level_base_[l] = NodeId of the first node at level l; the extra
  /// trailing entry is the total node count.
  std::vector<NodeId> level_base_;
  /// Cached prefix products, index k = 0..h.
  std::vector<std::uint64_t> m_prefix_;
  std::vector<std::uint64_t> w_prefix_;

  /// Flat adjacency.  up_first_[node] indexes into up_cable_dst_; node has
  /// num_parents(node) consecutive entries.  The cable index doubles as
  /// the UP LinkId; DOWN LinkId = num_cables + cable index.
  std::vector<std::uint64_t> up_first_;
  std::vector<NodeId> up_cable_dst_;
  /// down_first_[node] indexes into down_cable_; entry c holds the cable
  /// index of the node's c-th lower port (whose other end is child(node,c)).
  std::vector<std::uint64_t> down_first_;
  std::vector<std::uint32_t> down_cable_;

  std::vector<Link> links_;

  std::uint64_t num_up_links() const noexcept { return links_.size() / 2; }
};

}  // namespace lmpr::topo
