#include "topology/label.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace lmpr::topo {

std::string Label::to_string() const {
  std::ostringstream oss;
  oss << '(' << level << ';';
  for (std::size_t i = digits.size(); i > 0; --i) {
    oss << ' ' << digits[i - 1];
    if (i > 1) oss << ',';
  }
  oss << ')';
  return oss.str();
}

std::uint32_t digit_radix(const XgftSpec& spec, std::uint32_t level,
                          std::size_t i) {
  LMPR_EXPECTS(level <= spec.height());
  LMPR_EXPECTS(i >= 1 && i <= spec.height());
  return i <= level ? spec.w_at(i) : spec.m_at(i);
}

std::uint64_t label_to_rank(const XgftSpec& spec, const Label& label) {
  LMPR_EXPECTS(label.digits.size() == spec.height());
  std::uint64_t rank = 0;
  for (std::size_t i = spec.height(); i >= 1; --i) {
    const std::uint32_t radix = digit_radix(spec, label.level, i);
    LMPR_EXPECTS(label.digits[i - 1] < radix);
    rank = rank * radix + label.digits[i - 1];
  }
  return rank;
}

Label rank_to_label(const XgftSpec& spec, std::uint32_t level,
                    std::uint64_t rank) {
  LMPR_EXPECTS(level <= spec.height());
  Label label{level, std::vector<std::uint32_t>(spec.height())};
  std::uint64_t rest = rank;
  for (std::size_t i = 1; i <= spec.height(); ++i) {
    const std::uint32_t radix = digit_radix(spec, level, i);
    label.digits[i - 1] = static_cast<std::uint32_t>(rest % radix);
    rest /= radix;
  }
  LMPR_EXPECTS(rest == 0);  // rank was within the level's node count
  return label;
}

}  // namespace lmpr::topo
