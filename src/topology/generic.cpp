#include "topology/generic.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace lmpr::topo {

namespace {

constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);
/// Path-count saturation bound: counts beyond this are clamped, which is
/// fine for every consumer (LID blocks take min(K, max_paths) anyway).
constexpr std::uint64_t kCountCap = 1ull << 63;

[[noreturn]] void reject(const std::string& why) {
  throw std::invalid_argument("generic topology: " + why);
}

std::uint64_t cable_key(NodeId u, NodeId v) {
  const std::uint64_t lo = std::min(u, v);
  const std::uint64_t hi = std::max(u, v);
  return (lo << 32) | hi;
}

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return (sum < a || sum > kCountCap) ? kCountCap : sum;
}

}  // namespace

GenericGraphTopology::GenericGraphTopology(const discovery::RawFabric& fabric,
                                           std::string name)
    : name_(std::move(name)) {
  const std::uint32_t n = fabric.num_nodes;
  if (n == 0) reject("no nodes");
  if (fabric.hosts.empty()) reject("no hosts");

  // Canonical ids: hosts in ascending raw-id order, then switches.
  std::vector<std::uint8_t> raw_is_host(n, 0);
  for (const std::uint32_t raw : fabric.hosts) {
    if (raw >= n) {
      reject("host id " + std::to_string(raw) + " out of range");
    }
    if (raw_is_host[raw] != 0) {
      reject("duplicate host id " + std::to_string(raw));
    }
    raw_is_host[raw] = 1;
  }
  num_hosts_ = fabric.hosts.size();
  canonical_.assign(n, kInvalidNode);
  NodeId next_host = 0;
  NodeId next_switch = static_cast<NodeId>(num_hosts_);
  for (std::uint32_t raw = 0; raw < n; ++raw) {
    canonical_[raw] = raw_is_host[raw] != 0 ? next_host++ : next_switch++;
  }

  // Cables -> adjacency, with the malformations a subnet manager can
  // actually feed us rejected up front.
  adjacency_.assign(n, {});
  std::vector<std::pair<NodeId, NodeId>> ends;
  ends.reserve(fabric.cables.size());
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(fabric.cables.size());
  for (const auto& [raw_u, raw_v] : fabric.cables) {
    if (raw_u >= n || raw_v >= n) {
      reject("cable endpoint out of range: (" + std::to_string(raw_u) + ", " +
             std::to_string(raw_v) + ")");
    }
    if (raw_u == raw_v) {
      reject("self-cable at node " + std::to_string(raw_u));
    }
    if (raw_is_host[raw_u] != 0 && raw_is_host[raw_v] != 0) {
      reject("cable between two hosts (" + std::to_string(raw_u) + ", " +
             std::to_string(raw_v) + "); hosts must attach to switches");
    }
    const NodeId u = canonical_[raw_u];
    const NodeId v = canonical_[raw_v];
    if (!seen.insert(cable_key(u, v)).second) {
      reject("duplicate cable (" + std::to_string(raw_u) + ", " +
             std::to_string(raw_v) + ")");
    }
    const auto cable = static_cast<std::uint32_t>(ends.size());
    ends.emplace_back(u, v);
    adjacency_[u].push_back(cable);
    adjacency_[v].push_back(cable);
  }

  // BFS layering from the hosts; the up direction of every cable points
  // toward the higher layer (ties toward the higher canonical id).
  layer_.assign(n, kUnreached);
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId h = 0; h < static_cast<NodeId>(num_hosts_); ++h) {
    layer_[h] = 0;
    queue.push_back(h);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const std::uint32_t cable : adjacency_[u]) {
      const auto& [a, b] = ends[cable];
      const NodeId w = a == u ? b : a;
      if (layer_[w] != kUnreached) continue;
      layer_[w] = layer_[u] + 1;
      queue.push_back(w);
    }
  }
  for (NodeId node = 0; node < n; ++node) {
    if (layer_[node] == kUnreached) {
      reject("node " + std::to_string(node) +
             " (canonical) is unreachable from every host");
    }
  }

  const std::uint64_t cables = ends.size();
  links_.resize(2 * cables);
  std::uint32_t max_link_level = 0;
  for (std::uint64_t c = 0; c < cables; ++c) {
    const auto& [a, b] = ends[c];
    const bool a_lower =
        layer_[a] != layer_[b] ? layer_[a] < layer_[b] : a < b;
    const NodeId lo = a_lower ? a : b;
    const NodeId hi = a_lower ? b : a;
    const std::uint32_t level = layer_[lo];
    links_[c] = Link{lo, hi, level, true};
    links_[cables + c] = Link{hi, lo, level, false};
    max_link_level = std::max(max_link_level, level);
  }
  num_levels_ = cables > 0 ? max_link_level + 1 : 1;

  // Per-destination shortest-path plans (distance + count DP + a repair
  // order), with full connectivity enforced: every node must reach every
  // host without transiting a foreign host.
  plans_.resize(static_cast<std::size_t>(num_hosts_));
  for (std::uint64_t dst = 0; dst < num_hosts_; ++dst) {
    Plan& plan = plans_[static_cast<std::size_t>(dst)];
    plan.dist.assign(n, kUnreached);
    plan.order.clear();
    plan.order.reserve(n);
    const auto target = static_cast<NodeId>(dst);
    plan.dist[target] = 0;
    plan.order.push_back(target);
    // Expand only through nodes that may carry transit traffic (the
    // target itself and switches); hosts still RECEIVE a distance, since
    // they originate traffic.
    std::vector<NodeId> frontier{target};
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const NodeId u = frontier[head];
      for (const std::uint32_t cable : adjacency_[u]) {
        const auto& [a, b] = ends[cable];
        const NodeId w = a == u ? b : a;
        if (plan.dist[w] != kUnreached) continue;
        plan.dist[w] = plan.dist[u] + 1;
        plan.order.push_back(w);
        if (!is_host(w)) frontier.push_back(w);
      }
    }
    for (NodeId node = 0; node < n; ++node) {
      if (plan.dist[node] == kUnreached) {
        reject("node " + std::to_string(node) +
               " (canonical) cannot reach host " + std::to_string(dst) +
               " without transiting another host");
      }
    }
    plan.count.assign(n, 0);
    plan.count[target] = 1;
    for (std::size_t at = 1; at < plan.order.size(); ++at) {
      const NodeId u = plan.order[at];
      for (const std::uint32_t cable : adjacency_[u]) {
        const auto& [a, b] = ends[cable];
        const NodeId w = a == u ? b : a;
        if (!can_transit(w, dst)) continue;
        if (plan.dist[w] + 1 != plan.dist[u]) continue;
        plan.count[u] = saturating_add(plan.count[u], plan.count[w]);
      }
      LMPR_ASSERT(plan.count[u] >= 1);
    }
    for (std::uint64_t src = 0; src < num_hosts_; ++src) {
      max_paths_ = std::max(max_paths_, plan.count[src]);
    }
  }

  if (name_.empty()) {
    std::ostringstream oss;
    oss << "generic(" << num_hosts_ << " hosts, " << (n - num_hosts_)
        << " switches, " << cables << " cables)";
    name_ = oss.str();
  }
}

NodeId GenericGraphTopology::host(std::uint64_t i) const {
  LMPR_EXPECTS(i < num_hosts_);
  return static_cast<NodeId>(i);
}

std::uint32_t GenericGraphTopology::level_of(NodeId node) const {
  LMPR_EXPECTS(node < layer_.size());
  return layer_[node];
}

const Link& GenericGraphTopology::link(LinkId id) const {
  LMPR_EXPECTS(id < links_.size());
  return links_[id];
}

void GenericGraphTopology::out_links(NodeId node,
                                     std::vector<LinkId>& out) const {
  LMPR_EXPECTS(node < layer_.size());
  for (const std::uint32_t cable : adjacency_[node]) {
    out.push_back(directed_link(node, cable));
  }
}

const GenericGraphTopology::Plan& GenericGraphTopology::plan(
    std::uint64_t dst) const {
  LMPR_EXPECTS(dst < num_hosts_);
  return plans_[static_cast<std::size_t>(dst)];
}

std::uint64_t GenericGraphTopology::num_paths(std::uint64_t src,
                                              std::uint64_t dst) const {
  LMPR_EXPECTS(src < num_hosts_);
  return plan(dst).count[static_cast<NodeId>(src)];
}

void GenericGraphTopology::append_path_links(std::uint64_t src,
                                             std::uint64_t dst,
                                             std::uint64_t index,
                                             std::vector<LinkId>& out) const {
  LMPR_EXPECTS(src < num_hosts_);
  if (src == dst) return;
  const Plan& p = plan(dst);
  NodeId node = static_cast<NodeId>(src);
  LMPR_EXPECTS(index < p.count[node]);
  // Lexicographic decode in candidate order: path `index` takes, at every
  // node, the first candidate whose shortest-path count covers the
  // remaining index.
  while (p.dist[node] > 0) {
    bool advanced = false;
    for (const std::uint32_t cable : adjacency_[node]) {
      const Link& up = links_[cable];
      const NodeId w = up.src == node ? up.dst : up.src;
      if (!can_transit(w, dst) || p.dist[w] + 1 != p.dist[node]) continue;
      if (index < p.count[w]) {
        out.push_back(directed_link(node, cable));
        node = w;
        advanced = true;
        break;
      }
      index -= p.count[w];
    }
    LMPR_ASSERT(advanced);
  }
}

std::uint64_t GenericGraphTopology::dmodk_index(std::uint64_t src,
                                                std::uint64_t dst) const {
  if (src == dst) return 0;
  return dst % num_paths(src, dst);
}

std::uint64_t GenericGraphTopology::smodk_index(std::uint64_t src,
                                                std::uint64_t dst) const {
  if (src == dst) return 0;
  return src % num_paths(src, dst);
}

std::uint64_t GenericGraphTopology::disjoint_offset(std::uint64_t src,
                                                    std::uint64_t dst,
                                                    std::uint64_t n) const {
  // No level structure to decompose over: the disjoint enumeration
  // degenerates to consecutive indices.
  if (src == dst) return 0;
  return n % num_paths(src, dst);
}

void GenericGraphTopology::candidate_links(NodeId node, std::uint64_t dst,
                                           std::vector<LinkId>& out) const {
  out.clear();
  LMPR_EXPECTS(node < layer_.size());
  const Plan& p = plan(dst);
  if (p.dist[node] == 0) return;  // node IS the destination host
  for (const std::uint32_t cable : adjacency_[node]) {
    const Link& up = links_[cable];
    const NodeId w = up.src == node ? up.dst : up.src;
    if (!can_transit(w, dst) || p.dist[w] + 1 != p.dist[node]) continue;
    out.push_back(directed_link(node, cable));
  }
}

std::uint32_t GenericGraphTopology::route_anchor(NodeId node,
                                                 std::uint64_t dst) const {
  const Plan& p = plan(dst);
  std::uint32_t count = 0;
  for (const std::uint32_t cable : adjacency_[node]) {
    const Link& up = links_[cable];
    const NodeId w = up.src == node ? up.dst : up.src;
    if (can_transit(w, dst) && p.dist[w] + 1 == p.dist[node]) ++count;
  }
  LMPR_EXPECTS(count > 0);
  // The d-mod-k analogue: spread destinations across the candidate fan.
  return static_cast<std::uint32_t>(dst % count);
}

std::uint32_t GenericGraphTopology::variant_digit(std::uint32_t level,
                                                  std::uint32_t j,
                                                  LidLayout layout) const {
  // Generic graphs have no level structure for the layouts to disagree
  // over: variant j simply advances j candidates past the anchor at
  // every branching node.
  (void)level;
  (void)layout;
  return j;
}

void GenericGraphTopology::repair_order(std::uint64_t dst,
                                        std::vector<NodeId>& out) const {
  const Plan& p = plan(dst);
  out.assign(p.order.begin(), p.order.end());
  LMPR_ENSURES(out.size() == num_nodes());
}

std::uint64_t GenericGraphTopology::variant_path_index(
    std::uint64_t src, std::uint64_t dst, std::uint32_t j,
    LidLayout layout) const {
  (void)layout;
  LMPR_EXPECTS(src < num_hosts_);
  if (src == dst) return 0;
  const Plan& p = plan(dst);
  NodeId node = static_cast<NodeId>(src);
  std::uint64_t index = 0;
  std::vector<NodeId> fan;
  // Walk the LFT's choice function and accumulate the lexicographic rank
  // of the resulting path (mirrors fabric::Lft::next_link exactly).
  while (p.dist[node] > 0) {
    fan.clear();
    for (const std::uint32_t cable : adjacency_[node]) {
      const Link& up = links_[cable];
      const NodeId w = up.src == node ? up.dst : up.src;
      if (can_transit(w, dst) && p.dist[w] + 1 == p.dist[node]) {
        fan.push_back(w);
      }
    }
    LMPR_ASSERT(!fan.empty());
    const auto count = static_cast<std::uint32_t>(fan.size());
    const std::uint32_t chosen =
        count > 1
            ? (static_cast<std::uint32_t>(dst % count) + j % count) % count
            : 0;
    for (std::uint32_t i = 0; i < chosen; ++i) index += p.count[fan[i]];
    node = fan[chosen];
  }
  return index;
}

// --- expander builder ------------------------------------------------------

discovery::RawFabric build_expander_fabric(std::uint32_t switches,
                                           std::uint32_t degree,
                                           std::uint32_t hosts_per_switch,
                                           std::uint64_t seed) {
  if (switches < 3) reject("expander needs at least 3 switches");
  if (degree < 2) reject("expander needs switch degree >= 2");
  if (degree >= switches) {
    reject("expander degree must be below the switch count");
  }
  if (degree % 2 != 0 && switches % 2 != 0) {
    reject("odd expander degree needs an even switch count");
  }
  if (hosts_per_switch == 0) reject("expander needs hosts on every switch");

  const std::uint64_t hosts =
      static_cast<std::uint64_t>(switches) * hosts_per_switch;
  discovery::RawFabric fabric;
  fabric.num_nodes = static_cast<std::uint32_t>(hosts + switches);
  fabric.hosts.reserve(static_cast<std::size_t>(hosts));
  fabric.cables.reserve(static_cast<std::size_t>(
      hosts + std::uint64_t{switches} * degree / 2));
  const auto switch_id = [&](std::uint32_t s) {
    return static_cast<std::uint32_t>(hosts) + s;
  };
  for (std::uint32_t h = 0; h < hosts; ++h) {
    fabric.hosts.push_back(h);
    fabric.cables.emplace_back(h, switch_id(h / hosts_per_switch));
  }

  // Circulant base: the offset-1 Hamiltonian ring (kept fixed so the
  // graph stays connected through every swap), then the higher-offset
  // chords (the antipode for an odd degree), expander-randomized by
  // seeded double-edge swaps over the chords only.
  std::unordered_set<std::uint64_t> edge_set;
  const auto has_edge = [&](std::uint32_t a, std::uint32_t b) {
    return edge_set.count(cable_key(a, b)) != 0;
  };
  for (std::uint32_t s = 0; s < switches; ++s) {
    const std::uint32_t t = (s + 1) % switches;
    if (edge_set.insert(cable_key(s, t)).second) {
      fabric.cables.emplace_back(switch_id(s), switch_id(t));
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> chords;
  const auto add_chord = [&](std::uint32_t a, std::uint32_t b) {
    if (a != b && edge_set.insert(cable_key(a, b)).second) {
      chords.emplace_back(a, b);
    }
  };
  for (std::uint32_t o = 2; o <= degree / 2; ++o) {
    for (std::uint32_t s = 0; s < switches; ++s) {
      add_chord(s, (s + o) % switches);
    }
  }
  if (degree % 2 != 0) {
    for (std::uint32_t s = 0; s < switches / 2; ++s) {
      add_chord(s, s + switches / 2);
    }
  }

  util::Rng rng{seed};
  const std::uint64_t attempts = 16ull * std::max<std::size_t>(chords.size(), 1);
  for (std::uint64_t t = 0; t < attempts && chords.size() >= 2; ++t) {
    const std::size_t i = static_cast<std::size_t>(rng.below(chords.size()));
    const std::size_t k = static_cast<std::size_t>(rng.below(chords.size()));
    if (i == k) continue;
    auto [a, b] = chords[i];
    auto [c, d] = chords[k];
    if (rng.below(2) == 1) std::swap(c, d);
    // Rewire (a,b),(c,d) -> (a,c),(b,d), preserving every degree.
    if (a == c || b == d || has_edge(a, c) || has_edge(b, d)) continue;
    edge_set.erase(cable_key(a, b));
    edge_set.erase(cable_key(c, d));
    edge_set.insert(cable_key(a, c));
    edge_set.insert(cable_key(b, d));
    chords[i] = {a, c};
    chords[k] = {b, d};
  }
  for (const auto& [a, b] : chords) {
    fabric.cables.emplace_back(switch_id(a), switch_id(b));
  }
  return fabric;
}

discovery::RawFabric to_raw_fabric(const Topology& topology) {
  discovery::RawFabric fabric;
  fabric.num_nodes = static_cast<std::uint32_t>(topology.num_nodes());
  fabric.hosts.reserve(static_cast<std::size_t>(topology.num_hosts()));
  for (std::uint64_t i = 0; i < topology.num_hosts(); ++i) {
    fabric.hosts.push_back(topology.host(i));
  }
  fabric.cables.reserve(static_cast<std::size_t>(topology.num_cables()));
  for (std::uint64_t c = 0; c < topology.num_cables(); ++c) {
    const Link& up = topology.link(static_cast<LinkId>(c));
    fabric.cables.emplace_back(up.src, up.dst);
  }
  return fabric;
}

}  // namespace lmpr::topo
