#include "topology/topology.hpp"

namespace lmpr::topo {

std::string_view to_string(LidLayout layout) noexcept {
  return layout == LidLayout::kDisjointLayout ? "disjoint" : "shift";
}

std::optional<LidLayout> layout_from_string(std::string_view name) noexcept {
  if (name == "disjoint") return LidLayout::kDisjointLayout;
  if (name == "shift") return LidLayout::kShiftLayout;
  return std::nullopt;
}

}  // namespace lmpr::topo
