// Topology implementation for an ARBITRARY cable list -- the escape hatch
// that lets the whole flow/flit/fm/replay stack run on fabrics that are
// not XGFTs (random regular graphs, expanders, degraded meshes, anything
// discovery::RawFabric can describe).
//
// Construction canonicalizes the fabric (hosts take ids [0, H) in raw-id
// order, switches follow) and BFS-layers it from the hosts; the up
// direction of every cable points toward the higher layer (ties break
// toward the higher canonical id).  The multipath provider enumerates
// SHORTEST host-to-host paths that never transit another host, via a
// per-destination distance field plus a path-count DP; path indices rank
// paths lexicographically in candidate (cable input) order, so the
// numbering is dense, deterministic, and cheap to decode hop by hop.
//
// LFT realizability: candidate_links(node, dst) is every incident link
// one step closer to dst (excluding links into foreign hosts), the route
// anchor is dst mod candidate-count (the d-mod-k analogue), and the
// variant digit is simply j under either LID layout -- generic graphs
// have no level structure for the layouts to disagree over.  All paths
// strictly descend the distance field, so every variant delivers and
// table walks terminate within hop_limit().
//
// Malformed fabrics (bad ids, self/duplicate/host-host cables, a node
// that cannot reach some host) throw std::invalid_argument from the
// constructor; use discovery/try_load style wrappers when the input is
// untrusted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "discovery/recognize.hpp"
#include "topology/topology.hpp"

namespace lmpr::topo {

class GenericGraphTopology final : public Topology {
 public:
  /// Canonicalizes, layers, and indexes the fabric; `name` becomes the
  /// printable identity (a size summary when empty).  Throws
  /// std::invalid_argument on malformed or not-fully-connected input.
  explicit GenericGraphTopology(const discovery::RawFabric& fabric,
                                std::string name = {});

  /// canonical()[raw] = canonical node id -- the isomorphism the fabric
  /// manager resolves raw event ids through (hosts first, raw-id order).
  const std::vector<NodeId>& canonical() const noexcept { return canonical_; }

  // --- Topology interface --------------------------------------------------
  std::string_view kind() const noexcept override { return "generic"; }
  std::string name() const override { return name_; }

  std::uint64_t num_hosts() const noexcept override { return num_hosts_; }
  std::uint64_t num_nodes() const noexcept override { return layer_.size(); }
  std::uint64_t num_links() const noexcept override { return links_.size(); }

  NodeId host(std::uint64_t i) const override;
  bool is_host(NodeId node) const noexcept override {
    return node < num_hosts_;
  }

  std::uint32_t num_levels() const noexcept override { return num_levels_; }
  std::uint32_t level_of(NodeId node) const override;

  const Link& link(LinkId id) const override;
  std::span<const Link> links() const noexcept override { return links_; }
  void out_links(NodeId node, std::vector<LinkId>& out) const override;
  std::size_t hop_limit() const override { return 2 * num_nodes() + 2; }

  std::uint64_t num_paths(std::uint64_t src,
                          std::uint64_t dst) const override;
  std::uint64_t max_paths() const override { return max_paths_; }
  void append_path_links(std::uint64_t src, std::uint64_t dst,
                         std::uint64_t index,
                         std::vector<LinkId>& out) const override;
  std::uint64_t dmodk_index(std::uint64_t src,
                            std::uint64_t dst) const override;
  std::uint64_t smodk_index(std::uint64_t src,
                            std::uint64_t dst) const override;
  std::uint64_t disjoint_offset(std::uint64_t src, std::uint64_t dst,
                                std::uint64_t n) const override;

  void candidate_links(NodeId node, std::uint64_t dst,
                       std::vector<LinkId>& out) const override;
  std::uint32_t route_anchor(NodeId node, std::uint64_t dst) const override;
  std::uint32_t variant_digit(std::uint32_t level, std::uint32_t j,
                              LidLayout layout) const override;
  void repair_order(std::uint64_t dst,
                    std::vector<NodeId>& out) const override;
  std::uint64_t variant_path_index(std::uint64_t src, std::uint64_t dst,
                                   std::uint32_t j,
                                   LidLayout layout) const override;

 private:
  /// Per-destination shortest-path structure (eager: one per host).
  struct Plan {
    /// Hops from each node to host(dst), never transiting a foreign host.
    std::vector<std::uint32_t> dist;
    /// Number of shortest such paths (saturating at 2^63).
    std::vector<std::uint64_t> count;
    /// Nodes in nondecreasing dist order -- a valid repair order.
    std::vector<NodeId> order;
  };

  /// Directed link node -> far endpoint of `cable` (by construction one
  /// of the two directions has src == node).
  LinkId directed_link(NodeId node, std::uint64_t cable) const {
    return links_[cable].src == node
               ? static_cast<LinkId>(cable)
               : static_cast<LinkId>(num_cables() + cable);
  }

  /// True when `via` may carry transit traffic toward dst: switches
  /// always, hosts only as the final hop.
  bool can_transit(NodeId via, std::uint64_t dst) const {
    return !is_host(via) || via == static_cast<NodeId>(dst);
  }

  const Plan& plan(std::uint64_t dst) const;

  std::string name_;
  std::uint64_t num_hosts_ = 0;
  std::uint32_t num_levels_ = 1;
  std::uint64_t max_paths_ = 1;
  std::vector<NodeId> canonical_;
  std::vector<std::uint32_t> layer_;   ///< BFS layer per node (hosts: 0)
  std::vector<Link> links_;            ///< up [0, C), down [C, 2C)
  /// adjacency_[node] = incident cable indices in input order.
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<Plan> plans_;            ///< one per destination host
};

/// Deterministic random-regular-graph fabric: `switches` switches on a
/// circulant base (offsets 1..degree/2, plus the antipode for odd
/// degree), expander-randomized by seeded double-edge swaps that leave
/// the offset-1 Hamiltonian ring intact (so the result is always
/// connected), with `hosts_per_switch` hosts pinned to every switch.
/// Host ids come first, cables list the host attachments first; the
/// whole construction is a pure function of its arguments.
discovery::RawFabric build_expander_fabric(std::uint32_t switches,
                                           std::uint32_t degree,
                                           std::uint32_t hosts_per_switch,
                                           std::uint64_t seed = 1);

/// Identity export of ANY topology as a RawFabric (raw ids = node ids,
/// one cable per undirected link pair) -- feeds `lmpr fm`/`lmpr replay`
/// and the recognition round-trip tests from a `--topology` selection.
discovery::RawFabric to_raw_fabric(const Topology& topology);

}  // namespace lmpr::topo
