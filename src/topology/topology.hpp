// The minimal topology abstraction the routing stack is written against.
//
// Everything downstream of topology construction -- path-index heuristics,
// LID/LFT realization, flow-level load evaluation, the flit simulator, the
// fabric manager and the replay engine -- consumes this interface, never a
// concrete implementation.  Two implementations exist: `Xgft` (the paper's
// closed-form extended generalized fat-tree) and `GenericGraphTopology`
// (any cable list, BFS-layered).
//
// Contracts shared by all implementations:
//  * Node ids are dense; hosts occupy ids [0, num_hosts()).
//  * Every physical cable yields two directed links sharing one cable
//    index: the up direction occupies LinkId = cable, the down direction
//    LinkId = num_cables() + cable.
//  * num_paths(s, d) >= 1 for every connected pair, and exactly 1 when
//    s == d (the trivial path that never leaves the host).
//  * append_path_links(s, d, i, out) emits the links of path i in hop
//    order; indices [0, num_paths(s, d)) enumerate distinct paths.
//  * candidate_links(node, dst, out) clears `out`, then emits the links a
//    forwarding entry at `node` may legally use toward host `dst`, in a
//    deterministic port order.  Empty exactly when node == host(dst) or
//    dst is unreachable from node.
//  * repair_order(dst, out) lists every node exactly once such that each
//    node appears after the far endpoints of all its candidate links --
//    the order in which per-destination reachability can be recomputed in
//    one pass.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "topology/label.hpp"

namespace lmpr::topo {

/// One *directed* link.  Every physical cable between a level-l node
/// ("lower") and a level-(l+1) node ("upper") yields two directed links:
/// an UP link lower->upper and a DOWN link upper->lower.
struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Level of the lower endpoint (0..h-1); "the link lives between level
  /// `level` and `level`+1".
  std::uint32_t level = 0;
  bool up = false;
};

/// Which level the LID variant digit j perturbs first (see fabric/lft.hpp
/// for the full story).  Lives here because variant_digit() is a topology
/// realizability hook.
enum class LidLayout {
  kDisjointLayout,
  kShiftLayout,
};

/// "disjoint" / "shift" -- the spelling `lmpr fm --layout` accepts.
std::string_view to_string(LidLayout layout) noexcept;
std::optional<LidLayout> layout_from_string(std::string_view name) noexcept;

class Topology {
 public:
  Topology() = default;
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;
  virtual ~Topology() = default;

  /// Implementation tag: "xgft" or "generic".
  virtual std::string_view kind() const noexcept = 0;
  /// Printable identity, e.g. "XGFT(2;4,4;2,2)" or "RRG(18;4;3)".
  virtual std::string name() const = 0;

  // --- enumeration --------------------------------------------------------

  virtual std::uint64_t num_hosts() const noexcept = 0;
  virtual std::uint64_t num_nodes() const noexcept = 0;
  /// Directed link count (2x the cable count).
  virtual std::uint64_t num_links() const noexcept = 0;
  std::uint64_t num_cables() const noexcept { return num_links() / 2; }

  /// Processing node i (ids coincide: hosts occupy ids [0, num_hosts)).
  virtual NodeId host(std::uint64_t i) const = 0;
  virtual bool is_host(NodeId node) const noexcept = 0;

  /// Number of link-level strata (an XGFT of height h has h; a generic
  /// graph derives strata from host BFS layers).  Per-level accumulators
  /// are sized by this.
  virtual std::uint32_t num_levels() const noexcept = 0;
  /// BFS layer (XGFT: tree level) of a node; hosts are at level 0.
  virtual std::uint32_t level_of(NodeId node) const = 0;

  // --- adjacency ----------------------------------------------------------

  virtual const Link& link(LinkId id) const = 0;
  virtual std::span<const Link> links() const noexcept = 0;

  /// Cable (undirected edge) index of a directed link; the two directions
  /// of one cable share the index (up links occupy ids [0, num_cables)).
  std::uint64_t cable_of(LinkId id) const { return id % num_cables(); }

  /// Appends every directed link leaving `node` (order deterministic but
  /// implementation-defined; callers must not rely on it).
  virtual void out_links(NodeId node, std::vector<LinkId>& out) const = 0;

  /// Upper bound on hops of any path the forwarding state can produce;
  /// table walks give up past this (which cannot happen when healthy).
  virtual std::size_t hop_limit() const = 0;

  // --- multipath provider (paper Section 3.1, Property 1) -----------------

  /// Number of distinct (shortest) paths between two hosts; 1 when
  /// src == dst.
  virtual std::uint64_t num_paths(std::uint64_t src,
                                  std::uint64_t dst) const = 0;
  /// max over all pairs of num_paths -- sizes LID blocks (XGFT: the
  /// top-switch count of Property 1).
  virtual std::uint64_t max_paths() const = 0;

  /// Appends the LinkIds of path `index` for (src, dst) in hop order.
  virtual void append_path_links(std::uint64_t src, std::uint64_t dst,
                                 std::uint64_t index,
                                 std::vector<LinkId>& out) const = 0;

  /// The paper's D-mod-K / S-mod-K single-path selections as path indices.
  virtual std::uint64_t dmodk_index(std::uint64_t src,
                                    std::uint64_t dst) const = 0;
  virtual std::uint64_t smodk_index(std::uint64_t src,
                                    std::uint64_t dst) const = 0;

  /// Offset of the n-th path in the pair's DISJOINT enumeration relative
  /// to its start (XGFT: the level-stride decomposition that makes the
  /// first K paths link-disjoint; generic graphs: identity).
  virtual std::uint64_t disjoint_offset(std::uint64_t src, std::uint64_t dst,
                                        std::uint64_t n) const = 0;

  // --- LFT realizability hooks -------------------------------------------

  /// Clears `out`, then appends the directed links a forwarding entry at
  /// `node` may use toward host `dst`, in deterministic port order.
  virtual void candidate_links(NodeId node, std::uint64_t dst,
                               std::vector<LinkId>& out) const = 0;

  /// Base rotation into candidate_links(node, dst) used for variant 0
  /// (XGFT: the d-mod-k digit).  Only meaningful when the candidate count
  /// is > 1.
  virtual std::uint32_t route_anchor(NodeId node, std::uint64_t dst) const = 0;

  /// The variant digit applied at level `level` (0-based: the choice made
  /// moving from level l to l+1) for path variant j under `layout`.  Only
  /// called for levels where the pair has > 1 candidate.
  virtual std::uint32_t variant_digit(std::uint32_t level, std::uint32_t j,
                                      LidLayout layout) const = 0;

  /// Clears `out`, then lists every node exactly once, each after the far
  /// endpoints of all its candidate links toward `dst` (so host(dst)
  /// comes first and per-destination reachability closes in one pass).
  virtual void repair_order(std::uint64_t dst,
                            std::vector<NodeId>& out) const = 0;

  /// Path index (in the append_path_links numbering) that LID variant j
  /// induces between s and d under `layout`.
  virtual std::uint64_t variant_path_index(std::uint64_t src,
                                           std::uint64_t dst, std::uint32_t j,
                                           LidLayout layout) const = 0;
};

}  // namespace lmpr::topo
