#include "topology/spec.hpp"

#include <cctype>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "topology/spec_scanner.hpp"
#include "util/contracts.hpp"

namespace lmpr::topo {

namespace {

std::uint64_t checked_product(const std::vector<std::uint32_t>& values,
                              std::size_t count) {
  LMPR_EXPECTS(count <= values.size());
  std::uint64_t product = 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t next = product * values[i];
    if (values[i] != 0 && next / values[i] != product) {
      throw std::invalid_argument("XgftSpec: arity product overflows 64 bits");
    }
    product = next;
  }
  return product;
}

}  // namespace

std::uint32_t XgftSpec::m_at(std::size_t i) const {
  LMPR_EXPECTS(i >= 1 && i <= m.size());
  return m[i - 1];
}

std::uint32_t XgftSpec::w_at(std::size_t i) const {
  LMPR_EXPECTS(i >= 1 && i <= w.size());
  return w[i - 1];
}

std::uint64_t XgftSpec::num_hosts() const noexcept {
  std::uint64_t product = 1;
  for (auto v : m) product *= v;
  return product;
}

std::uint64_t XgftSpec::num_top_switches() const noexcept {
  std::uint64_t product = 1;
  for (auto v : w) product *= v;
  return product;
}

std::uint64_t XgftSpec::nodes_at_level(std::size_t l) const {
  LMPR_EXPECTS(l <= height());
  std::uint64_t count = 1;
  for (std::size_t i = l + 1; i <= height(); ++i) count *= m_at(i);
  for (std::size_t i = 1; i <= l; ++i) count *= w_at(i);
  return count;
}

std::uint64_t XgftSpec::total_nodes() const {
  std::uint64_t total = 0;
  for (std::size_t l = 0; l <= height(); ++l) total += nodes_at_level(l);
  return total;
}

std::uint64_t XgftSpec::m_prefix_product(std::size_t k) const {
  return checked_product(m, k);
}

std::uint64_t XgftSpec::w_prefix_product(std::size_t k) const {
  return checked_product(w, k);
}

std::uint64_t XgftSpec::boundary_links(std::size_t k) const {
  LMPR_EXPECTS(k < height());
  return w_prefix_product(k + 1);
}

void XgftSpec::validate() const {
  if (m.empty()) {
    throw std::invalid_argument("XgftSpec: height must be at least 1");
  }
  if (m.size() != w.size()) {
    throw std::invalid_argument(
        "XgftSpec: m and w must have the same length (the tree height)");
  }
  for (auto v : m) {
    if (v == 0) throw std::invalid_argument("XgftSpec: every m_i must be >= 1");
  }
  for (auto v : w) {
    if (v == 0) throw std::invalid_argument("XgftSpec: every w_i must be >= 1");
  }
  // Triggers the overflow check and bounds total size: an instantiated
  // topology must be indexable and allocatable.
  const std::uint64_t hosts = checked_product(m, m.size());
  const std::uint64_t tops = checked_product(w, w.size());
  constexpr std::uint64_t kMaxNodes = 1ULL << 32;
  if (hosts >= kMaxNodes || tops >= kMaxNodes || total_nodes() >= kMaxNodes) {
    throw std::invalid_argument("XgftSpec: topology exceeds 2^32 nodes");
  }
}

std::string XgftSpec::to_string() const {
  std::ostringstream oss;
  oss << "XGFT(" << height() << ';';
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i != 0) oss << ',';
    oss << m[i];
  }
  oss << ';';
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i != 0) oss << ',';
    oss << w[i];
  }
  oss << ')';
  return oss.str();
}

XgftSpec XgftSpec::parse(const std::string& text) {
  SpecScanner scan(text, "XgftSpec::parse");
  scan.expect_keyword("XGFT");
  scan.expect('(', "expected '(' after XGFT");
  const std::size_t height_at = scan.position();
  const std::uint32_t h = scan.number("height");
  if (h == 0) scan.fail(height_at, "height must be at least 1");
  scan.expect(';', "expected ';' after the height");
  const std::size_t m_at = scan.position();
  XgftSpec spec;
  spec.m = scan.arity_list("m-arity");
  scan.expect(';', "expected ';' between the m and w arity lists");
  const std::size_t w_at = scan.position();
  spec.w = scan.arity_list("w-arity");
  scan.expect(')', "expected ')' after the w arity list");
  if (!scan.at_end()) {
    scan.fail(scan.position(), "trailing characters after ')'");
  }
  if (spec.m.size() != h) {
    scan.fail(m_at, "expected " + std::to_string(h) + " m-arities (the " +
                        "height), got " + std::to_string(spec.m.size()));
  }
  if (spec.w.size() != h) {
    scan.fail(w_at, "expected " + std::to_string(h) + " w-arities (the " +
                        "height), got " + std::to_string(spec.w.size()));
  }
  spec.validate();
  return spec;
}

XgftSpec XgftSpec::m_port_n_tree(std::uint32_t ports, std::size_t levels) {
  if (ports % 2 != 0) {
    throw std::invalid_argument("m-port n-tree requires an even port count");
  }
  if (levels == 0) {
    throw std::invalid_argument("m-port n-tree requires at least one level");
  }
  const std::uint32_t half = ports / 2;
  XgftSpec spec;
  spec.m.assign(levels, half);
  spec.m.back() = ports;  // top-level switches use all ports downward
  spec.w.assign(levels, half);
  spec.w.front() = 1;  // each host attaches to exactly one leaf switch
  spec.validate();
  return spec;
}

XgftSpec XgftSpec::k_ary_n_tree(std::uint32_t arity, std::size_t levels) {
  if (levels == 0) {
    throw std::invalid_argument("k-ary n-tree requires at least one level");
  }
  XgftSpec spec;
  spec.m.assign(levels, arity);
  spec.w.assign(levels, arity);
  spec.w.front() = 1;
  spec.validate();
  return spec;
}

XgftSpec XgftSpec::gft(std::size_t height, std::uint32_t m, std::uint32_t w) {
  XgftSpec spec;
  spec.m.assign(height, m);
  spec.w.assign(height, w);
  spec.validate();
  return spec;
}

}  // namespace lmpr::topo
