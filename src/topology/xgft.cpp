#include "topology/xgft.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace lmpr::topo {

Xgft::Xgft(XgftSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  const std::size_t h = spec_.height();

  m_prefix_.resize(h + 1);
  w_prefix_.resize(h + 1);
  for (std::size_t k = 0; k <= h; ++k) {
    m_prefix_[k] = spec_.m_prefix_product(k);
    w_prefix_[k] = spec_.w_prefix_product(k);
  }
  num_hosts_ = m_prefix_[h];

  level_base_.resize(h + 2);
  level_base_[0] = 0;
  for (std::size_t l = 0; l <= h; ++l) {
    level_base_[l + 1] = static_cast<NodeId>(level_base_[l] +
                                             spec_.nodes_at_level(l));
  }

  const std::uint64_t total = level_base_[h + 1];
  up_first_.assign(total + 1, 0);
  down_first_.assign(total + 1, 0);

  // Pass 1: count cables per node (up for lower endpoint, down for upper).
  std::uint64_t num_cables = 0;
  for (std::size_t l = 0; l < h; ++l) {
    num_cables += spec_.nodes_at_level(l) * spec_.w_at(l + 1);
  }
  // Prefix sums for the flat arrays.
  {
    std::uint64_t up_off = 0;
    std::uint64_t down_off = 0;
    for (std::uint64_t node = 0; node < total; ++node) {
      up_first_[node] = up_off;
      down_first_[node] = down_off;
      const std::uint32_t l = level_of(static_cast<NodeId>(node));
      if (l < h) up_off += spec_.w_at(l + 1);
      if (l >= 1) down_off += spec_.m_at(l);
    }
    up_first_[total] = up_off;
    down_first_[total] = down_off;
    LMPR_ASSERT(up_off == num_cables);
    LMPR_ASSERT(down_off == num_cables);
  }

  up_cable_dst_.assign(num_cables, kInvalidNode);
  down_cable_.assign(num_cables, kInvalidLink);
  links_.resize(2 * num_cables);

  // Pass 2: enumerate cables.  Cable ids follow (level, lower-node rank,
  // upper port) lexicographic order; the cable id is also the UP LinkId.
  std::uint64_t cable = 0;
  for (std::uint32_t l = 0; l < h; ++l) {
    const std::uint64_t count = spec_.nodes_at_level(l);
    const std::uint32_t parents = spec_.w_at(l + 1);
    for (std::uint64_t rank = 0; rank < count; ++rank) {
      const NodeId lower = node_id(l, rank);
      Label lab = rank_to_label(spec_, l, rank);
      const std::uint32_t child_digit = lab.digits[l];  // a_{l+1} of lower
      lab.level = l + 1;
      for (std::uint32_t j = 0; j < parents; ++j) {
        lab.digits[l] = j;  // parent's digit at position l+1
        const NodeId upper = node_id(l + 1, label_to_rank(spec_, lab));
        up_cable_dst_[up_first_[lower] + j] = upper;
        down_cable_[down_first_[upper] + child_digit] =
            static_cast<std::uint32_t>(cable);
        links_[cable] = Link{lower, upper, l, /*up=*/true};
        links_[num_cables + cable] = Link{upper, lower, l, /*up=*/false};
        ++cable;
      }
    }
  }
  LMPR_ENSURES(cable == num_cables);
}

NodeId Xgft::node_id(std::uint32_t level, std::uint64_t rank) const {
  LMPR_EXPECTS(level <= height());
  LMPR_EXPECTS(rank < spec_.nodes_at_level(level));
  return static_cast<NodeId>(level_base_[level] + rank);
}

NodeId Xgft::host(std::uint64_t i) const {
  LMPR_EXPECTS(i < num_hosts_);
  return static_cast<NodeId>(i);
}

std::uint32_t Xgft::level_of(NodeId node) const {
  LMPR_EXPECTS(node < num_nodes());
  std::uint32_t l = 0;
  while (node >= level_base_[l + 1]) ++l;
  return l;
}

std::uint64_t Xgft::rank_of(NodeId node) const {
  return node - level_base_[level_of(node)];
}

Label Xgft::label_of(NodeId node) const {
  const std::uint32_t l = level_of(node);
  return rank_to_label(spec_, l, node - level_base_[l]);
}

NodeId Xgft::node_of(const Label& label) const {
  return node_id(label.level, label_to_rank(spec_, label));
}

std::uint32_t Xgft::num_parents(NodeId node) const {
  const std::uint32_t l = level_of(node);
  return l < height() ? spec_.w_at(l + 1) : 0;
}

std::uint32_t Xgft::num_children(NodeId node) const {
  const std::uint32_t l = level_of(node);
  return l >= 1 ? spec_.m_at(l) : 0;
}

NodeId Xgft::parent(NodeId node, std::uint32_t j) const {
  LMPR_EXPECTS(j < num_parents(node));
  return up_cable_dst_[up_first_[node] + j];
}

NodeId Xgft::child(NodeId node, std::uint32_t c) const {
  LMPR_EXPECTS(c < num_children(node));
  return links_[down_cable_[down_first_[node] + c]].src;
}

LinkId Xgft::up_link(NodeId node, std::uint32_t j) const {
  LMPR_EXPECTS(j < num_parents(node));
  return static_cast<LinkId>(up_first_[node] + j);
}

LinkId Xgft::down_link(NodeId node, std::uint32_t c) const {
  LMPR_EXPECTS(c < num_children(node));
  return static_cast<LinkId>(num_up_links() +
                             down_cable_[down_first_[node] + c]);
}

const Link& Xgft::link(LinkId id) const {
  LMPR_EXPECTS(id < links_.size());
  return links_[id];
}

std::uint32_t Xgft::nca_level(std::uint64_t src_host,
                              std::uint64_t dst_host) const {
  LMPR_EXPECTS(src_host < num_hosts_ && dst_host < num_hosts_);
  if (src_host == dst_host) return 0;
  for (std::uint32_t k = 1; k <= height(); ++k) {
    if (src_host / m_prefix_[k] == dst_host / m_prefix_[k]) return k;
  }
  LMPR_ASSERT(false);  // the whole fabric is a height-h subtree
  return height();
}

std::uint64_t Xgft::num_shortest_paths(std::uint64_t src_host,
                                       std::uint64_t dst_host) const {
  return w_prefix_[nca_level(src_host, dst_host)];
}

std::uint64_t Xgft::subtree_of(std::uint64_t host, std::uint32_t k) const {
  LMPR_EXPECTS(host < num_hosts_);
  LMPR_EXPECTS(k <= height());
  return host / m_prefix_[k];
}

std::uint64_t Xgft::num_subtrees(std::uint32_t k) const {
  LMPR_EXPECTS(k <= height());
  return num_hosts_ / m_prefix_[k];
}

std::uint64_t Xgft::hosts_per_subtree(std::uint32_t k) const {
  LMPR_EXPECTS(k <= height());
  return m_prefix_[k];
}

std::uint64_t Xgft::m_prefix(std::uint32_t k) const {
  LMPR_EXPECTS(k <= height());
  return m_prefix_[k];
}

std::uint64_t Xgft::w_prefix(std::uint32_t k) const {
  LMPR_EXPECTS(k <= height());
  return w_prefix_[k];
}

std::uint32_t Xgft::host_digit(std::uint64_t host, std::size_t i) const {
  LMPR_EXPECTS(host < num_hosts_);
  LMPR_EXPECTS(i >= 1 && i <= height());
  return static_cast<std::uint32_t>((host / m_prefix_[i - 1]) % spec_.m_at(i));
}

bool Xgft::is_ancestor_of_host(NodeId node, std::uint64_t host) const {
  LMPR_EXPECTS(host < num_hosts_);
  const std::uint32_t level = level_of(node);
  if (level == 0) return node == this->host(host);
  // A level-l switch covers exactly the hosts whose label digits above l
  // match its own (the switch's w-digits at <= l select a replica, not a
  // different host set).
  const Label label = label_of(node);
  for (std::size_t i = level + 1; i <= height(); ++i) {
    if (label.digits[i - 1] != host_digit(host, i)) return false;
  }
  return true;
}

std::uint32_t Xgft::down_port_toward(NodeId node, std::uint64_t host) const {
  const std::uint32_t level = level_of(node);
  LMPR_EXPECTS(level >= 1);
  LMPR_EXPECTS(is_ancestor_of_host(node, host));
  return host_digit(host, level);
}

// --- Topology interface ---------------------------------------------------

void Xgft::out_links(NodeId node, std::vector<LinkId>& out) const {
  const std::uint32_t parents = num_parents(node);
  for (std::uint32_t j = 0; j < parents; ++j) out.push_back(up_link(node, j));
  const std::uint32_t children = num_children(node);
  for (std::uint32_t c = 0; c < children; ++c) {
    out.push_back(down_link(node, c));
  }
}

void Xgft::append_path_links(std::uint64_t src, std::uint64_t dst,
                             std::uint64_t index,
                             std::vector<LinkId>& out) const {
  if (src == dst) return;
  const std::uint32_t nca = nca_level(src, dst);
  // Decode the mixed-radix path index; the least significant digit is the
  // topmost choice j_nca (see core/path_index.hpp).
  std::vector<std::uint32_t> choices(nca);
  for (std::uint32_t l = nca; l > 0; --l) {
    const std::uint32_t radix = spec_.w_at(l);
    choices[l - 1] = static_cast<std::uint32_t>(index % radix);
    index /= radix;
  }
  LMPR_EXPECTS(index == 0);  // index < prod w_i
  NodeId node = host(src);
  for (std::uint32_t l = 0; l < nca; ++l) {
    out.push_back(up_link(node, choices[l]));
    node = parent(node, choices[l]);
  }
  for (std::uint32_t l = nca; l >= 1; --l) {
    const std::uint32_t port = host_digit(dst, l);
    out.push_back(down_link(node, port));
    node = child(node, port);
  }
}

std::uint64_t Xgft::dmodk_index(std::uint64_t src, std::uint64_t dst) const {
  if (src == dst) return 0;
  const std::uint32_t nca = nca_level(src, dst);
  std::uint64_t index = 0;
  for (std::uint32_t l = 0; l < nca; ++l) {
    const std::uint32_t radix = spec_.w_at(l + 1);
    index = index * radix + (dst / w_prefix_[l]) % radix;
  }
  return index;
}

std::uint64_t Xgft::smodk_index(std::uint64_t src, std::uint64_t dst) const {
  if (src == dst) return 0;
  const std::uint32_t nca = nca_level(src, dst);
  std::uint64_t index = 0;
  for (std::uint32_t l = 0; l < nca; ++l) {
    const std::uint32_t radix = spec_.w_at(l + 1);
    index = index * radix + (src / w_prefix_[l]) % radix;
  }
  return index;
}

std::uint64_t Xgft::disjoint_offset(std::uint64_t src, std::uint64_t dst,
                                    std::uint64_t n) const {
  if (src == dst) return 0;
  const std::uint32_t nca = nca_level(src, dst);
  // Digit l of n (radix w_l, bottom-up) scales the stride of the
  // level-(l-1) choice, prod_{i=l+1..nca} w_i, so consecutive n first
  // exhaust the lowest-level choice -- the paper's DISJOINT enumeration.
  std::uint64_t offset = 0;
  std::uint64_t rest = n;
  for (std::uint32_t l = 1; l <= nca; ++l) {
    const std::uint32_t digit =
        static_cast<std::uint32_t>(rest % spec_.w_at(l));
    rest /= spec_.w_at(l);
    std::uint64_t stride = 1;
    for (std::uint32_t i = l + 1; i <= nca; ++i) stride *= spec_.w_at(i);
    offset += digit * stride;
  }
  return offset;
}

void Xgft::candidate_links(NodeId node, std::uint64_t dst,
                           std::vector<LinkId>& out) const {
  out.clear();
  if (is_ancestor_of_host(node, dst)) {
    if (level_of(node) == 0) return;  // node IS the destination host
    out.push_back(down_link(node, down_port_toward(node, dst)));
    return;
  }
  const std::uint32_t parents = num_parents(node);
  for (std::uint32_t j = 0; j < parents; ++j) out.push_back(up_link(node, j));
}

std::uint32_t Xgft::route_anchor(NodeId node, std::uint64_t dst) const {
  // Only reached at non-ancestor nodes (candidate count > 1), which never
  // sit at the top level, so w_{level+1} exists.
  const std::uint32_t level = level_of(node);
  const std::uint32_t radix = spec_.w_at(level + 1);
  return static_cast<std::uint32_t>((dst / w_prefix_[level]) % radix);
}

std::uint32_t Xgft::variant_digit(std::uint32_t level, std::uint32_t j,
                                  LidLayout layout) const {
  const std::uint32_t h = height();
  LMPR_EXPECTS(level < h);
  std::uint64_t rest = j;
  if (layout == LidLayout::kDisjointLayout) {
    // Bottom-up: c_1 = j mod w_1, c_2 = (j / w_1) mod w_2, ...
    for (std::uint32_t l = 0; l < level; ++l) rest /= spec_.w_at(l + 1);
    return static_cast<std::uint32_t>(rest % spec_.w_at(level + 1));
  }
  // Top-down: c_h = j mod w_h, c_{h-1} = (j / w_h) mod w_{h-1}, ...
  for (std::uint32_t l = h; l > level + 1; --l) rest /= spec_.w_at(l);
  return static_cast<std::uint32_t>(rest % spec_.w_at(level + 1));
}

void Xgft::repair_order(std::uint64_t dst, std::vector<NodeId>& out) const {
  LMPR_EXPECTS(dst < num_hosts_);
  out.clear();
  out.reserve(num_nodes());
  std::vector<bool> ancestor(num_nodes(), false);

  // Destination's ancestor cone bottom-up: every candidate link of an
  // ancestor points into the cone one level below.  Parent sets of
  // distinct same-level ancestors are disjoint (they differ in a digit
  // the parents inherit), so the frontier never needs deduplication.
  std::vector<NodeId> frontier{host(dst)};
  std::vector<NodeId> next;
  ancestor[frontier[0]] = true;
  out.push_back(frontier[0]);
  for (std::uint32_t l = 0; l < height(); ++l) {
    next.clear();
    for (const NodeId node : frontier) {
      const std::uint32_t parents = num_parents(node);
      for (std::uint32_t j = 0; j < parents; ++j) {
        const NodeId up = parent(node, j);
        ancestor[up] = true;
        next.push_back(up);
        out.push_back(up);
      }
    }
    frontier.swap(next);
  }

  // Non-ancestors top-down: their candidates are up links, whose far
  // endpoints sit one level higher and are already listed.  (Every
  // top-level switch is an ancestor, so levels h-1..0 suffice.)
  for (std::uint32_t l = height(); l-- > 0;) {
    for (NodeId node = level_base_[l]; node < level_base_[l + 1]; ++node) {
      if (!ancestor[node]) out.push_back(node);
    }
  }
  LMPR_ENSURES(out.size() == num_nodes());
}

std::uint64_t Xgft::variant_path_index(std::uint64_t src, std::uint64_t dst,
                                       std::uint32_t j,
                                       LidLayout layout) const {
  if (src == dst) return 0;
  const std::uint32_t nca = nca_level(src, dst);
  std::uint64_t index = 0;
  for (std::uint32_t l = 0; l < nca; ++l) {
    const std::uint32_t radix = spec_.w_at(l + 1);
    const std::uint32_t anchor =
        static_cast<std::uint32_t>((dst / w_prefix_[l]) % radix);
    index = index * radix + (anchor + variant_digit(l, j, layout)) % radix;
  }
  return index;
}

std::string Xgft::to_dot() const {
  std::ostringstream oss;
  oss << "graph xgft {\n  rankdir=BT;\n";
  for (std::uint64_t node = 0; node < num_nodes(); ++node) {
    const auto id = static_cast<NodeId>(node);
    oss << "  n" << node << " [label=\"" << label_of(id).to_string()
        << "\", shape=" << (is_host(id) ? "circle" : "box") << "];\n";
  }
  for (std::uint64_t c = 0; c < num_cables(); ++c) {
    const Link& link = links_[c];
    oss << "  n" << link.src << " -- n" << link.dst << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace lmpr::topo
