// Event-kernel support: the host wake heap (SimConfig::kernel = kEvent).
//
// The event kernel (DESIGN §14) reuses the active-set per-cycle phases
// but makes the injector event-driven: a host whose source queue is
// empty sleeps here, keyed by the first integer cycle at which its next
// Poisson arrival is due (ceil of the double-precision arrival time, so
// the reference kernel's `next_arrival <= now` comparison fires at
// exactly the same cycle).  Between pops the host costs nothing -- the
// reference/active kernels instead test every host NIC every cycle.
//
// Pop order among equal wake cycles is unspecified; the caller re-sorts
// woken hosts into its ascending active-host list, which is what fixes
// the service order (and with it packet/message id allocation order) to
// the reference kernel's host scan.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace lmpr::flit {

/// Binary min-heap of (wake cycle, host).  push/pop are O(log sleepers);
/// the common idle-cycle operation is the O(1) top_cycle() peek.
class HostWakeQueue {
 public:
  void reserve(std::size_t n) { heap_.reserve(n); }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  /// Earliest wake cycle over all sleeping hosts; empty() must be false.
  std::uint64_t top_cycle() const noexcept { return heap_.front().when; }

  void push(std::uint64_t when, std::uint64_t host) {
    heap_.push_back(Entry{when, host});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Removes and returns the host with the earliest wake cycle.
  std::uint64_t pop_host() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const std::uint64_t host = heap_.back().host;
    heap_.pop_back();
    return host;
  }

 private:
  struct Entry {
    std::uint64_t when;
    std::uint64_t host;
  };
  /// Ordering by later wake cycle turns std::push_heap's max-heap into
  /// the min-heap we want.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.when > b.when;
    }
  };
  std::vector<Entry> heap_;
};

}  // namespace lmpr::flit
