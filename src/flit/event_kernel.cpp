// Event kernel (SimConfig::kernel = kEvent): the active-set phases driven
// by an event scheduler instead of an unconditional tick (DESIGN §14).
//
// Two mechanisms, both conservative so that bit-identity with the
// reference kernel is an invariant, not a tolerance:
//
// 1. Event-driven injection.  In the reference scan a host whose source
//    queue is empty and whose next Poisson arrival lies in the future is
//    a strict no-op.  Such hosts sleep on a wake heap keyed by
//    ceil(next_arrival) -- the exact first cycle at which the reference
//    test `next_arrival <= now` turns true -- and only due or backlogged
//    hosts are serviced, in ascending host id: the reference scan order
//    restricted to hosts that can act.  That fixes the global
//    packet/message freelist allocation order, which calendar event
//    arguments and metric accumulation order depend on.
//
// 2. Quiescence fast-forward.  After a simulated cycle, if no host is
//    active and both active-set membership lists are empty, then no
//    state outside the calendar and the wake heap can change until one
//    of them fires: every unblocking transition in the simulator is a
//    calendar event (credit return, output slot free, delivery) or a
//    host wake.  The clock therefore jumps straight to the earlier of
//    the two (clamped to the run_until bound, so replay epoch
//    boundaries still land on exact cycles).  The reference kernel
//    would have executed the skipped cycles as pure no-ops: empty
//    calendar buckets, no due arrivals, empty input channels, and links
//    with nothing queued.  Membership lists may briefly over-approximate
//    (drained entries are pruned lazily by the phases), which only
//    delays a skip -- never permits an unsound one.
#include <algorithm>
#include <cmath>

#include "flit/network.hpp"
#include "util/contracts.hpp"

namespace lmpr::flit {

void Network::activate_host(std::uint64_t host) {
  const auto slot = static_cast<std::size_t>(host);
  if (host_active_[slot]) return;
  host_active_[slot] = 1;
  active_hosts_.insert(
      std::lower_bound(active_hosts_.begin(), active_hosts_.end(), host),
      host);
}

void Network::wake_due_hosts(Cycle now) {
  while (!host_wake_.empty() && host_wake_.top_cycle() <= now) {
    activate_host(host_wake_.pop_host());
  }
}

void Network::inject_event(Cycle now) {
  wake_due_hosts(now);
  std::size_t w = 0;
  for (const std::uint64_t host : active_hosts_) {
    service_host(host, now);
    const auto slot = static_cast<std::size_t>(host);
    if (source_queue_[slot].empty()) {
      // Nothing left to push: sleep until the next arrival is due.  The
      // arrival loop in service_host ran to next_arrival > now, so the
      // wake cycle is strictly in the future.
      host_active_[slot] = 0;
      host_wake_.push(
          static_cast<Cycle>(std::ceil(next_arrival_[slot])), host);
      continue;
    }
    active_hosts_[w++] = host;
  }
  active_hosts_.resize(w);
}

Cycle Network::next_activity_cycle(Cycle end) const {
  Cycle next = end;
  if (!host_wake_.empty() && host_wake_.top_cycle() < next) {
    next = host_wake_.top_cycle();
  }
  // All pending calendar events lie within one ring revolution of the
  // current cycle (schedule() asserts the horizon), and process_events
  // clears whole buckets -- so the first non-empty bucket at residue
  // (current + d) % size holds events for exactly cycle current + d.
  const std::size_t size = calendar_.size();
  for (Cycle d = 0; d < static_cast<Cycle>(size); ++d) {
    const Cycle when = current_cycle_ + d;
    if (when >= next) break;  // scanning further cannot improve
    if (!calendar_[static_cast<std::size_t>(when % size)].empty()) {
      next = when;
      break;
    }
  }
  return next;
}

void Network::run_cycles_event(Cycle end) {
  while (current_cycle_ < end) {
    process_events(current_cycle_);
    inject_event(current_cycle_);
    crossbar_active(current_cycle_);
    start_transmissions_active(current_cycle_);
    ++current_cycle_;
    if (current_cycle_ >= end) break;
    // Quiescence test on the raw membership lists: O(1), and safe even
    // when they hold stale (drained) entries -- staleness only costs a
    // ticked no-op cycle until the phase prunes catch up.
    if (!active_hosts_.empty() || !active_inputs_.empty() ||
        !active_links_.empty()) {
      continue;
    }
    const Cycle next = next_activity_cycle(end);
    LMPR_ASSERT(next >= current_cycle_);
    cycles_skipped_ += next - current_cycle_;
    current_cycle_ = next;
  }
}

}  // namespace lmpr::flit
