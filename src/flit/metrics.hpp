// Measurement results of one flit-level simulation run.
#pragma once

#include <cstdint>
#include <vector>

#include "util/quantiles.hpp"
#include "util/stats.hpp"

namespace lmpr::flit {

struct SimMetrics {
  /// Offered load the run was configured with (flits/cycle/host).
  double offered_load = 0.0;

  /// Flits delivered inside the measurement window divided by
  /// (measure_cycles * hosts): normalized accepted throughput.
  double throughput = 0.0;

  /// Message delay statistics (cycles, generation -> last flit delivered)
  /// over messages generated inside the measurement window and delivered
  /// by the end of the run (including drain).
  util::OnlineStats message_delay;

  /// Packet delay statistics (cycles), same accounting.
  util::OnlineStats packet_delay;

  /// Message-delay distribution (reservoir-sampled); use
  /// message_delay_dist.median() / .p99() for percentiles.
  util::ReservoirQuantiles message_delay_dist;

  std::uint64_t messages_generated = 0;  ///< in the measurement window
  std::uint64_t messages_delivered = 0;  ///< of those, delivered by the end
  std::uint64_t flits_delivered = 0;     ///< inside the window (all flits)

  /// Packet deliveries (any window) and how many arrived behind an
  /// already-delivered later packet of the same (src, dst) flow.
  /// Multi-path routing trades bandwidth for reordering; per-message path
  /// selection keeps a message's packets in order but messages may still
  /// interleave.  InfiniBand requires in-order delivery per path, so this
  /// is the resequencing burden a multi-path receiver would carry.
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_out_of_order = 0;

  /// Packets still queued or in flight when the simulation ended
  /// (conservation check: generated = delivered + dropped + outstanding).
  std::uint64_t packets_outstanding = 0;
  std::uint64_t packets_generated = 0;

  /// Fault-replay accounting (always 0 outside LFT mode): packets lost to
  /// a killed cable / dead forwarding entry, packets salvaged onto
  /// another path variant, and measured messages that can never complete
  /// because at least one of their packets dropped.
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_rerouted = 0;
  std::uint64_t messages_lost = 0;

  double out_of_order_fraction() const noexcept {
    return packets_delivered == 0
               ? 0.0
               : static_cast<double>(packets_out_of_order) /
                     static_cast<double>(packets_delivered);
  }

  /// Mean and max utilization (flits per cycle, i.e. fraction of
  /// capacity) over the measurement window, per cable level and
  /// direction: [level] indexes the lower endpoint's level.  Lets the
  /// flow-level static prediction be cross-checked against what the flit
  /// simulator actually transmitted.
  std::vector<double> mean_up_utilization;
  std::vector<double> mean_down_utilization;
  std::vector<double> max_up_utilization;
  std::vector<double> max_down_utilization;

  /// messages_delivered / messages_generated; < 1 signals saturation
  /// (source queues growing without bound).
  double delivered_fraction() const noexcept {
    return messages_generated == 0
               ? 1.0
               : static_cast<double>(messages_delivered) /
                     static_cast<double>(messages_generated);
  }
};

/// One epoch window of a replayed run: the metrics accumulated between
/// two Network::harvest_window() calls (SimConfig::window_metrics).  All
/// divisions are guarded -- a window in which zero messages complete
/// reports 0 delay, not NaN -- and every field is an exact function of
/// the simulation state, so windows compare bit-identically across the
/// two flit kernels and across reruns with the same seed.
struct WindowMetrics {
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;

  /// Measured messages whose last flit landed inside the window.
  std::uint64_t messages_delivered = 0;
  /// Flits delivered inside the window (all traffic, measured or not).
  std::uint64_t flits_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_rerouted = 0;

  /// Mean / p99 (nearest-rank over the exact delay set, not a reservoir)
  /// message delay of the completions above; 0 when none completed.
  double mean_message_delay = 0.0;
  double p99_message_delay = 0.0;

  /// flits_delivered / (window length * hosts): accepted throughput.
  double throughput = 0.0;
  /// Peak per-directed-link utilization inside the window.
  double max_link_utilization = 0.0;

  friend bool operator==(const WindowMetrics&,
                         const WindowMetrics&) = default;
};

}  // namespace lmpr::flit
