// Cycle-driven flit-level network simulator.
//
// Architecture (paper Section 5, plus the knobs its methodology implies):
//
//   host NIC --up link--> [input buf | crossbar | output buf] --link--> ...
//
// * Every directed link carries `num_vcs` virtual channels; each (link,
//   VC) pair has an input and an output buffer `buffer_packets` deep.
//   The paper runs with ONE virtual channel ("we run our simulations
//   using only one virtual channel"); more VCs reduce head-of-line
//   blocking and are exposed for the VC ablation.
// * Credit-based flow control per (link, VC): an output channel starts
//   transmitting a packet only while it holds a credit (a free slot in
//   the downstream input buffer of the same VC).  Credits return when
//   the packet has fully arrived downstream and cleared the input stage
//   -- the virtual cut-through discipline: space for the WHOLE packet is
//   required before the head advances.
// * Cut-through timing: a packet's head may be switched and re-
//   transmitted before its tail arrives.  Since every stage moves one
//   flit per cycle, a head that departs no earlier than one cycle after
//   it arrived can never overrun its own tail, so per-flit positions
//   need not be simulated; per-packet head-arrival timestamps carry full
//   timing.
// * The crossbar grants at most one packet per input channel and per
//   output LINK per cycle, with rotating priority; the input stage is a
//   buffered crossbar (any buffered packet whose head has arrived may be
//   switched), the discipline InfiniBand-class switches approximate --
//   a strict FIFO would cap uniform throughput at the ~58.6% HOL bound.
// * Routing is either OBLIVIOUS (each packet follows a path drawn from
//   the route table, the paper's model) or ADAPTIVE (at each switch the
//   upward port with the most downstream credits wins -- the classic
//   credit-based adaptive fat-tree scheme of the paper's related work);
//   the downward leg is the unique descent either way.
// * Blocked packets wait in place, producing the backpressure / tree
//   saturation the paper discusses for loads beyond saturation.
//
// Kernels.  The per-cycle phases exist in three implementations selected
// by SimConfig::kernel:
//
//   reference -- the original full scans: crossbar walks every
//     (link, VC) input channel, start_transmissions walks every link.
//     Per-cycle cost O(num_links * num_vcs) even when the fabric idles.
//   active-set (default) -- intrusive membership lists iterate only work
//     that can progress this cycle: input channels holding at least one
//     buffered packet, and links that are idle with queued output.  A
//     transmitting link leaves its list for the whole serialization and
//     is re-armed by the kOutputSlotFree event at the cycle it frees.
//     Per-cycle cost O(in-flight traffic).
//   event -- the active-set phases plus an event-driven scheduler
//     (DESIGN §14).  Hosts with nothing to inject sleep on a wake heap
//     keyed by their next Poisson arrival cycle, so the injector visits
//     only hosts that can act; and when the whole fabric is provably
//     quiescent (no active host, input channel, or sendable link) the
//     clock fast-forwards to the next calendar event or host wake
//     instead of ticking.  Cost O(events), independent of idle time.
//
//   The lists are kept sorted by channel/link id and iterated with the
//   same rotating offset the reference scan applies, so the service
//   order is the reference order restricted to members -- and since a
//   skipped (empty / busy) channel performs no state change and
//   schedules no event in the reference scan either, both kernels grant
//   the same packets in the same order, schedule the same calendar
//   events in the same bucket order, and therefore produce bit-identical
//   SimMetrics.  The event kernel extends the argument to whole cycles:
//   a cycle is skipped only when every phase would have been a no-op in
//   the reference kernel too (every unblocking transition is a calendar
//   event or a host wake, both of which bound the jump), so the skipped
//   stretch changes no state there either.  test_flit_kernel_equivalence
//   proves all of this over a grid of shapes x loads x routing modes,
//   and the `kernel_diff` property harness over randomized fault replays.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "adaptive/selector.hpp"
#include "core/route_table.hpp"
#include "fabric/degraded.hpp"
#include "flit/config.hpp"
#include "flit/event_kernel.hpp"
#include "flit/metrics.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace lmpr::flit {

using Cycle = std::uint64_t;

/// Simulates the topology under the configured traffic, routed by `table`
/// (oblivious mode), adaptively, or by InfiniBand-style LFTs.  One
/// instance runs one offered-load point; construct anew per point
/// (construction is cheap next to simulation).
///
/// LFT mode (the fabric::Lft constructor) makes the router destination-
/// based: every packet carries a DLID drawn from its destination's LID
/// block and each switch forwards by the CURRENT `fabric::Tables` entry
/// for that DLID.  That is what makes live degradation simulable -- the
/// replay engine swaps repaired tables in with set_tables(), masks killed
/// cables with take_link_down()/bring_link_up(), and flags dead switches
/// with set_switch_state(); all such mutations are asserted to happen at
/// cycle boundaries (never mid-cycle), so a swap is atomic with respect
/// to the per-cycle phases and every kernel observes the identical
/// routing function every cycle.
class Network {
 public:
  Network(const route::RouteTable& table, const SimConfig& config);
  /// LFT-routed construction: `tables` must have one row of
  /// lft.lid_end() entries per node (fabric::build_lft /
  /// fm::FabricManager::tables() layout) and must outlive the Network (or
  /// be replaced via set_tables before the next run_until).  Routing is
  /// oblivious by the tables' DLID entries; RoutingMode::kAdaptive
  /// instead scores all candidate ports live (the all-ports baseline),
  /// and SimConfig::select adds the in-between: oblivious tables with
  /// adaptive choice among the K variant DLIDs (DESIGN §16).
  Network(const fabric::Lft& lft, const fabric::Tables& tables,
          const SimConfig& config);

  /// Runs warmup + measurement + drain and returns the metrics
  /// (equivalent to run_until(horizon()) + finalize()).
  SimMetrics run();

  /// Advances the simulation to `end` (exclusive; monotone, at most
  /// horizon()).  Between calls the simulation sits at a cycle boundary
  /// where the mutation API below may be used.
  void run_until(Cycle end);
  /// Whole-run metric aggregation; call once, after run_until(horizon()).
  SimMetrics finalize();
  Cycle now() const noexcept { return current_cycle_; }
  Cycle horizon() const noexcept {
    return config_.warmup_cycles + config_.measure_cycles +
           config_.drain_cycles;
  }

  // -- degraded-fabric mutation API (LFT mode, cycle boundaries only) ----

  /// Atomically swaps the forwarding state all switches route by (e.g.
  /// the fabric manager's repaired tables).  Buffered packets re-route
  /// through the new tables from their current position.
  void set_tables(const fabric::Tables& tables);
  /// Marks a switch dead/alive for the fault bookkeeping (a dead switch's
  /// buffers drop wholesale when its links are taken down).  Hosts never
  /// die.
  void set_switch_state(topo::NodeId node, bool alive);

  struct FaultStats {
    std::uint64_t dropped = 0;
    std::uint64_t rerouted = 0;
  };
  /// Kills one directed link: masks it from routing, then per
  /// SimConfig::drop_policy drops or re-homes the packets queued on it,
  /// severs packets whose tail is still streaming over the wire, and
  /// (for a dead downstream switch) drops everything buffered behind it.
  FaultStats take_link_down(topo::LinkId link);
  /// Re-enables a healed link (its buffers drained when it was killed).
  void bring_link_up(topo::LinkId link);

  /// Snapshots and resets the epoch-window accumulators
  /// (SimConfig::window_metrics); the window spans [previous harvest,
  /// now()).
  WindowMetrics harvest_window();

  /// Idle cycles the event kernel fast-forwarded over (0 for the other
  /// kernels).  Not part of SimMetrics -- kernel-dependent by design;
  /// tests use it to prove the skip path actually engaged.
  Cycle cycles_skipped() const noexcept { return cycles_skipped_; }

  /// Adaptive variant-selection counters (SimConfig::select; zero under
  /// the oblivious policy).  Unlike cycles_skipped() these are
  /// kernel-INDEPENDENT observables: the differential harnesses assert
  /// they match bit-for-bit across the three kernels and are non-zero on
  /// adaptive configurations (the degeneracy guard).
  const adaptive::SelectorStats& selector_stats() const noexcept {
    return selector_.stats();
  }

 private:
  using PacketId = std::uint32_t;
  using MessageId = std::uint32_t;
  using ChannelId = std::uint32_t;  ///< link * num_vcs + vc
  static constexpr PacketId kNone = static_cast<PacketId>(-1);

  struct Packet {
    const route::Path* path = nullptr;  ///< null in adaptive / LFT mode
    std::uint64_t dst = 0;
    std::uint64_t flow = 0;      ///< src * num_hosts + dst
    std::uint64_t seq = 0;       ///< per-flow sequence number
    std::uint32_t hop = 0;       ///< next path link (oblivious mode)
    std::uint32_t vc = 0;        ///< virtual channel, fixed along the path
    std::uint32_t lid = 0;       ///< DLID the switches forward by (LFT mode)
    /// Last link of the packet's route, recorded when its final
    /// transmission starts, so a terminal-cable kill can sever the
    /// pending delivery (LFT mode).
    topo::LinkId terminal_link = 0;
    Cycle head_arrival = 0;      ///< head flit arrival at current stage
    Cycle gen_cycle = 0;
    MessageId message = 0;
    PacketId next_free = kNone;
  };

  struct Message {
    Cycle gen_cycle = 0;
    std::uint32_t remaining = 0;
    bool measured = false;
    bool lost = false;  ///< a packet dropped; can never count delivered
    MessageId next_free = static_cast<MessageId>(-1);
  };

  /// Active-kernel input-buffer entry.  Everything the crossbar scan
  /// tests is constant while the packet sits buffered (the VC is fixed
  /// along the path, the head has arrived by construction once the scan
  /// reaches it, and in oblivious mode the output link is a pure
  /// function of the packet's hop), so it is snapshotted at enqueue and
  /// the saturated-fabric rescan of blocked packets stays inside this
  /// contiguous vector instead of chasing `packets_`.  Under all-ports
  /// adaptive routing (see recompute_route_) `out_link` is recomputed
  /// per cycle instead; an engaged variant selector needs NO recompute
  /// because its decision is baked into pkt.lid at arrival, before the
  /// snapshot is taken.
  struct InputSlot {
    PacketId id = kNone;         ///< kNone marks a hole left by a grant
    topo::LinkId out_link = 0;   ///< oblivious-mode output (constant)
    std::uint32_t vc = 0;
    Cycle head_arrival = 0;
  };

  struct InputChannel {
    /// Reference kernel: arrived / arriving packets, FIFO with mid-deque
    /// erase on grant (the seed implementation, kept verbatim).
    std::deque<PacketId> fifo;
    /// Active-set kernel: the same FIFO as a hole-marked vector.  Live
    /// entries sit in [head, slots.size()) in arrival order; a granted
    /// packet becomes a kNone hole in O(1) instead of an O(n) erase.
    /// Leading holes advance `head`; interior holes are compacted away
    /// once they outnumber the live entries (amortized O(1) per grant).
    std::vector<InputSlot> slots;
    std::size_t head = 0;  ///< first possibly-live slot
    std::size_t live = 0;  ///< non-hole entries in [head, slots.size())
  };

  struct OutputChannel {
    std::deque<PacketId> fifo;   ///< packets granted the crossbar
    std::uint32_t occupancy = 0; ///< slots held (granted, tail not departed)
    std::uint32_t credits = 0;   ///< free downstream input slots (this VC)
  };

  struct OutputLink {
    Cycle busy_until = 0;        ///< physical channel serialization
    Cycle last_grant = ~0ULL;    ///< crossbar one-grant-per-cycle guard
    std::uint32_t next_vc = 0;   ///< round-robin VC service pointer
    std::uint32_t queued = 0;    ///< packets across this link's output VCs
  };

  enum class EventKind : std::uint8_t {
    kCreditReturn,    ///< arg = ChannelId regaining one credit
    kOutputSlotFree,  ///< arg = ChannelId whose output frees one slot
    kDeliver,         ///< arg = PacketId delivered at its destination
  };
  struct Event {
    EventKind kind;
    std::uint32_t arg;
  };

  // -- per-cycle phases -----------------------------------------------------
  void process_events(Cycle now);
  void inject(Cycle now);
  void crossbar_reference(Cycle now);
  void start_transmissions_reference(Cycle now);
  void crossbar_active(Cycle now);
  void start_transmissions_active(Cycle now);

  /// One host's slice of the injection phase: drain due Poisson arrivals
  /// into the source queue, then let the NIC move at most one packet into
  /// an uplink output buffer.  Shared verbatim by inject() (all hosts,
  /// every cycle) and inject_event() (active hosts only).
  void service_host(std::uint64_t host, Cycle now);

  // -- event kernel (event_kernel.cpp) --------------------------------------
  /// Event-driven injection: wakes due hosts off the heap, services the
  /// active hosts in ascending id order (the reference scan order), and
  /// puts hosts whose queue drained back to sleep.
  void inject_event(Cycle now);
  void wake_due_hosts(Cycle now);
  /// Sorted-insert into active_hosts_ iff not already a member.
  void activate_host(std::uint64_t host);
  /// Earliest cycle >= current_cycle_ at which anything can happen: the
  /// next non-empty calendar bucket or the earliest host wake, clamped
  /// to `end`.  Only meaningful when the fabric is quiescent.
  Cycle next_activity_cycle(Cycle end) const;
  /// The event kernel's run_until loop body.
  void run_cycles_event(Cycle end);

  /// Grants `pkt_id` (buffered at input channel `in_ch`, position decided
  /// by the caller) onto output link `out_link`: shared tail of both
  /// crossbar kernels once a packet has won arbitration.
  void grant(PacketId pkt_id, ChannelId in_ch, topo::LinkId out_link,
             Cycle now);
  /// Transmits the head packet of output channel `ch` on `link_idx`:
  /// shared tail of both start_transmissions kernels.
  void transmit(PacketId pkt_id, ChannelId ch, topo::LinkId link_idx,
                std::uint32_t vc, Cycle now);

  /// Queues a packet into an output channel (NIC injection or crossbar
  /// grant), maintaining the link's queued count and active membership.
  void enqueue_output(ChannelId ch, topo::LinkId link, PacketId pkt);
  /// Queues a forwarded packet into the downstream input channel,
  /// maintaining active membership (kernel-dependent storage).
  void enqueue_input(ChannelId ch, PacketId pkt);
  /// Active kernel: removes slot `pos` of `in` via hole-marking.
  void erase_input_slot(InputChannel& in, std::size_t pos);
  /// Inserts into the sorted membership list iff not already a member.
  void activate_input(ChannelId ch);
  void activate_link(topo::LinkId link);

  void schedule(Cycle when, Event event);
  void generate_message(std::uint64_t host, Cycle now);
  void deliver(PacketId packet, Cycle now);

  // -- LFT-mode fault machinery ---------------------------------------------
  /// Valid table entry over an enabled link.
  bool usable(topo::LinkId link) const noexcept {
    return link != topo::kInvalidLink && link_enabled_[link] != 0;
  }
  /// Scans the destination's LID block (ascending variant order) for an
  /// entry at `node` that still delivers; rewrites pkt.lid and returns
  /// its link, or kInvalidLink when the pair is cut off at this node.
  topo::LinkId salvage_variant(topo::NodeId node, Packet& pkt);
  /// Accounts one lost packet: counters, message loss, storage.
  void drop_packet(PacketId pkt_id);
  /// Drops a packet the caller removed from input channel `in_ch`,
  /// returning the upstream credit when its tail has streamed through
  /// (same timing a grant would have used).
  void drop_from_input(PacketId pkt_id, ChannelId in_ch, Cycle now);
  /// take_link_down helpers: re-home one output-queued packet through the
  /// current tables; drop severed (or, for a dead switch, all) packets of
  /// one input channel; cancel deliveries pending on a killed terminal
  /// cable.
  bool requeue_output(PacketId pkt_id, topo::NodeId node);
  void purge_input_channel(ChannelId ch, bool everything);
  void purge_pending_delivers(topo::LinkId link);

  /// Output link the packet must leave `node` on.  Oblivious: the next
  /// path hop (LFT mode: the current table entry for the packet's DLID).
  /// Adaptive: among the topology's candidate links toward the
  /// destination, a forced hop routes deterministically and a multi-way
  /// choice goes to the candidate with the best credit score (LFT mode
  /// additionally masks killed cables; kInvalidLink when every candidate
  /// is down, resolved by the caller through the drop policy).
  topo::LinkId route_output(topo::NodeId node, const Packet& packet,
                            Cycle now) const;
  topo::LinkId adaptive_route(topo::NodeId node, const Packet& packet,
                              Cycle now) const;

  /// The LFT-mode NIC's injection decision point: route_output plus,
  /// when SimConfig::select is adaptive, the variant selector's chance
  /// to rewrite the packet's DLID to a sibling variant (select_variant;
  /// the per-HOP decisions happen at arrival, in enqueue_input).  May
  /// return an unusable link exactly when route_output would (the
  /// selector never engages on one), so the caller's salvage/drop
  /// handling is unchanged.
  topo::LinkId forward_link(topo::NodeId node, Packet& pkt, Cycle now);
  /// Re-scores the K variant entries of pkt's destination at `node`
  /// against live output credit/occupancy (src/adaptive).  `cur` is the
  /// packet's current usable table entry; engages only when `cur` points
  /// up (the descent is variant-independent), considers only usable+up
  /// sibling entries, commits by rewriting pkt.lid and returns the chosen
  /// entry (== `cur` unless a sibling scored strictly better).
  topo::LinkId select_variant(topo::NodeId node, Packet& pkt,
                              topo::LinkId cur, Cycle now);
  /// Recomputes node_variant_diverse_ and selector_gate_ from the current
  /// tables (ctor and set_tables; no-op when the selector is disengaged).
  void refresh_variant_diversity();
  /// Re-derives one link's selector_gate_ byte (link kill / revive).
  void refresh_selector_gate(topo::LinkId link);

  ChannelId channel(topo::LinkId link, std::uint32_t vc) const {
    return static_cast<ChannelId>(link * config_.num_vcs + vc);
  }

  PacketId alloc_packet();
  void free_packet(PacketId id);
  MessageId alloc_message();
  void free_message(MessageId id);

  bool in_measure_window(Cycle cycle) const noexcept {
    return cycle >= config_.warmup_cycles &&
           cycle < config_.warmup_cycles + config_.measure_cycles;
  }

  /// Shared constructor body: exactly one of `table` (route-table mode)
  /// and `lft` + `tables` (LFT mode) is non-null.
  Network(const route::RouteTable* table, const fabric::Lft* lft,
          const fabric::Tables* tables, const SimConfig& config);

  const route::RouteTable* table_;
  const fabric::Lft* lft_;             ///< null outside LFT mode
  const fabric::Tables* lft_tables_;   ///< current forwarding state
  const topo::Topology* topo_;
  SimConfig config_;
  std::uint64_t num_hosts_;
  Kernel kernel_;           ///< config_.kernel
  bool active_sets_;        ///< kernel_ != Kernel::kReference
  bool lft_mode_;           ///< routing by lft_tables_ instead of table_
  bool windowed_;           ///< config_.window_metrics
  /// True when the crossbar must recompute a buffered packet's output
  /// per cycle instead of trusting the InputSlot snapshot: all-ports
  /// adaptive routing only (the variant selector decides at arrival and
  /// bakes its choice into pkt.lid, so snapshots stay valid under it).
  bool recompute_route_ = false;
  bool in_cycle_ = false;   ///< inside a run_until cycle (mutation guard)
  double mean_interval_;    ///< message_flits / offered_load, loop-invariant

  /// Adaptive variant selection among the K installed LFT variants
  /// (SimConfig::select; disengaged outside LFT mode / under oblivious).
  adaptive::VariantSelector selector_;
  /// block() - 1 (LFT mode): lets select_variant recover a destination's
  /// LID-block base from the packet's own LID by mask arithmetic.
  std::uint32_t variant_mask_ = 0;
  /// node -> 1 iff some destination block in the node's LFT row maps its
  /// variants to >= 2 DISTINCT output links (engaged selector only).  A
  /// non-diverse node -- every host NIC (single uplink), plus any switch
  /// whose variants collapsed -- can never switch a packet's variant, so
  /// its decision points are skipped wholesale: the selector's hot-path
  /// cost concentrates on the arrivals where a choice actually exists.
  /// Refreshed by set_tables (repair can change which rows diverge).
  std::vector<std::uint8_t> node_variant_diverse_;
  /// link -> 1 iff a packet whose current table entry is this link is
  /// worth a variant scan: link enabled, link points up, and the node it
  /// forwards FROM (link.src) is variant-diverse.  Folds the selector's
  /// three-array reject chain into one byte read on the per-arrival hot
  /// path.  Engaged selector only; maintained by refresh_variant_diversity
  /// (ctor / set_tables) and the link kill / revive transitions.
  std::vector<std::uint8_t> selector_gate_;

  std::vector<InputChannel> inputs_;    ///< indexed by ChannelId
  std::vector<OutputChannel> outputs_;  ///< indexed by ChannelId
  std::vector<OutputLink> links_;       ///< indexed by LinkId

  /// Active-set membership (unused under the reference kernel).  Both
  /// lists are sorted ascending; the byte flags give O(1) dedup on
  /// insertion and are the single source of truth for membership.
  /// Drained / busy entries are pruned lazily at the start of the phase
  /// that iterates them, which keeps removal O(1) amortized.
  std::vector<ChannelId> active_inputs_;
  std::vector<std::uint8_t> input_active_;
  std::vector<topo::LinkId> active_links_;
  std::vector<std::uint8_t> link_active_;

  /// Event-kernel injection state (kEvent only).  A host is either
  /// active (in the sorted active_hosts_ list: queued packets to push)
  /// or asleep on the wake heap keyed by its next arrival cycle --
  /// never both; host_active_ flags give O(1) membership dedup.
  std::vector<std::uint64_t> active_hosts_;
  std::vector<std::uint8_t> host_active_;
  HostWakeQueue host_wake_;
  Cycle cycles_skipped_ = 0;

  /// Hot-loop lookup tables (active kernel): channel -> link avoids the
  /// runtime division by num_vcs, link -> switching node avoids the Link
  /// indirection, and link -> is-terminal-hop folds the lands-at-a-host
  /// test into one byte.  Pure functions of the topology.
  std::vector<topo::LinkId> channel_link_;
  std::vector<topo::NodeId> link_node_;
  std::vector<std::uint8_t> link_terminal_;
  /// link -> points-up flag (LFT mode only): the selector's cheap gate
  /// for "the packet is on its upward leg".
  std::vector<std::uint8_t> link_up_;
  /// Scratch for adaptive routing's candidate query (route_output is
  /// called from const phases, hence mutable).
  mutable std::vector<topo::LinkId> route_scratch_;

  /// Per-host injection state.
  std::vector<std::deque<PacketId>> source_queue_;
  std::vector<double> next_arrival_;
  std::vector<std::uint64_t> fixed_dst_;
  std::vector<util::Rng> host_rng_;
  std::vector<std::uint64_t> rr_counter_;  ///< per-host round-robin cursor

  /// Per-(src,dst) flow sequence state for the reordering metric: next
  /// sequence to stamp at generation, and the highest sequence delivered.
  std::vector<std::uint64_t> flow_next_seq_;
  std::vector<std::uint64_t> flow_max_delivered_;

  /// Calendar queue: ring of event buckets (horizon <= packet_flits + 2).
  std::vector<std::vector<Event>> calendar_;
  Cycle current_cycle_ = 0;

  /// Flits transmitted per directed link inside the measurement window.
  std::vector<std::uint64_t> link_flits_;

  /// LFT-mode fault state: per-link routing mask and per-node death flags
  /// (empty vectors outside LFT mode; hosts never die).
  std::vector<std::uint8_t> link_enabled_;
  std::vector<std::uint8_t> switch_dead_;

  /// Epoch-window accumulators (windowed_ only), reset by
  /// harvest_window().  Delays are kept exactly (sorted at harvest) so
  /// the per-window p99 is deterministic and kernel-independent.
  Cycle window_start_ = 0;
  std::vector<double> window_delays_;
  std::uint64_t window_flits_ = 0;
  std::uint64_t window_dropped_ = 0;
  std::uint64_t window_rerouted_ = 0;
  std::vector<std::uint64_t> window_link_flits_;

  std::vector<Packet> packets_;
  PacketId free_packet_ = kNone;
  std::vector<Message> messages_;
  MessageId free_message_ = static_cast<MessageId>(-1);

  SimMetrics metrics_;
};

}  // namespace lmpr::flit
