// Offered-load sweeps and saturation-throughput extraction (the paper's
// Table 1 "maximum throughput achieved" and Figure 5 delay-vs-load curves).
#pragma once

#include <vector>

#include "core/route_table.hpp"
#include "fabric/degraded.hpp"
#include "flit/config.hpp"
#include "flit/metrics.hpp"

namespace lmpr::util {
class ThreadPool;
}  // namespace lmpr::util

namespace lmpr::flit {

struct SweepPoint {
  double offered_load = 0.0;
  double throughput = 0.0;
  double mean_message_delay = 0.0;  ///< cycles; NaN when nothing delivered
  double mean_packet_delay = 0.0;
  double median_message_delay = 0.0;  ///< p50 (reservoir estimate)
  double p99_message_delay = 0.0;     ///< p99 (reservoir estimate)
  double delivered_fraction = 1.0;
  double out_of_order_fraction = 0.0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  /// max over points of measured throughput: the paper's
  /// "maximum throughput achieved" (normalized, 1.0 == capacity).
  double max_throughput = 0.0;
};

/// Runs one simulation at `config.offered_load` with `config.seed` used
/// as-is and condenses the metrics into a SweepPoint.  The unit of work
/// both run_load_sweep and engine::measure_saturation parallelize over.
SweepPoint simulate_load_point(const route::RouteTable& table,
                               const SimConfig& config);
/// LFT-routed load point (destination-based forwarding; required for
/// SimConfig::select, the adaptive variant selector).  `tables` is the
/// healthy forwarding state (fabric::build_lft / fm tables layout).
SweepPoint simulate_load_point(const fabric::Lft& lft,
                               const fabric::Tables& tables,
                               const SimConfig& config);

/// Runs one simulation per offered load in `loads` (each load gets an
/// independent, deterministic seed derived from config.seed).  When
/// `pool` is non-null the load points run concurrently; results are
/// merged in index order, so the output is identical for any worker
/// count including none.
SweepResult run_load_sweep(const route::RouteTable& table,
                           const SimConfig& base_config,
                           const std::vector<double>& loads,
                           util::ThreadPool* pool = nullptr);
/// LFT-routed sweep, same seeding and index-ordered merge.
SweepResult run_load_sweep(const fabric::Lft& lft,
                           const fabric::Tables& tables,
                           const SimConfig& base_config,
                           const std::vector<double>& loads,
                           util::ThreadPool* pool = nullptr);

/// Evenly spaced loads in [lo, hi] (inclusive), `count` >= 2 points.
std::vector<double> linspace_loads(double lo, double hi, std::size_t count);

}  // namespace lmpr::flit
