#include "flit/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/contracts.hpp"

namespace lmpr::flit {

Network::Network(const route::RouteTable& table, const SimConfig& config)
    : Network(&table, nullptr, nullptr, config) {}

Network::Network(const fabric::Lft& lft, const fabric::Tables& tables,
                 const SimConfig& config)
    : Network(nullptr, &lft, &tables, config) {}

Network::Network(const route::RouteTable* table, const fabric::Lft* lft,
                 const fabric::Tables* tables, const SimConfig& config)
    : table_(table),
      lft_(lft),
      lft_tables_(tables),
      topo_(table != nullptr ? &table->topology() : &lft->topology()),
      config_(config),
      num_hosts_(topo_->num_hosts()),
      kernel_(config.kernel),
      active_sets_(config.kernel != Kernel::kReference),
      lft_mode_(lft != nullptr),
      windowed_(config.window_metrics),
      mean_interval_(static_cast<double>(config.message_flits()) /
                     config.offered_load) {
  LMPR_EXPECTS(config_.packet_flits >= 1);
  LMPR_EXPECTS(config_.message_packets >= 1);
  LMPR_EXPECTS(config_.buffer_packets >= 1);
  LMPR_EXPECTS(config_.num_vcs >= 1);
  LMPR_EXPECTS(config_.offered_load > 0.0 && config_.offered_load <= 1.0);
  LMPR_EXPECTS(num_hosts_ >= 2);
  // Traffic/policy parameters come from user-facing configuration (CLI
  // flags, replay scripts), so misconfiguration is a recoverable error
  // with a message, not a contract violation.
  if (config_.destination_mode == DestinationMode::kHotspot) {
    if (config_.hotspot_target >= num_hosts_) {
      throw std::invalid_argument(
          "flit: hotspot_target " + std::to_string(config_.hotspot_target) +
          " must name a host (fabric has " + std::to_string(num_hosts_) +
          " hosts)");
    }
    if (!(config_.hotspot_fraction >= 0.0 &&
          config_.hotspot_fraction <= 1.0)) {
      throw std::invalid_argument(
          "flit: hotspot_fraction " +
          std::to_string(config_.hotspot_fraction) + " must be in [0, 1]");
    }
  }
  if (config_.destination_mode == DestinationMode::kShift &&
      config_.shift_distance % num_hosts_ == 0) {
    throw std::invalid_argument(
        "flit: shift_distance " + std::to_string(config_.shift_distance) +
        " is 0 mod " + std::to_string(num_hosts_) +
        " hosts; a zero shift pairs every source with itself");
  }
  if (config_.select != SelectPolicy::kOblivious) {
    if (!lft_mode_) {
      throw std::invalid_argument(
          "flit: adaptive variant selection (SimConfig::select) requires "
          "LFT-routed construction; route-table packets carry explicit "
          "paths with no sibling variants to switch to");
    }
    if (config_.routing_mode != RoutingMode::kOblivious) {
      throw std::invalid_argument(
          "flit: SimConfig::select and RoutingMode::kAdaptive are mutually "
          "exclusive (the all-ports baseline already ignores the tables)");
    }
  }
  if (lft_mode_) {
    LMPR_EXPECTS(lft_tables_->size() ==
                 static_cast<std::size_t>(topo_->num_nodes()));
    link_enabled_.assign(static_cast<std::size_t>(topo_->num_links()), 1);
    switch_dead_.assign(static_cast<std::size_t>(topo_->num_nodes()), 0);
    // The perfect score -- full credits, empty output buffer, idle
    // serializer -- lets pick() skip the sibling scan when the incumbent
    // port is completely healthy (the common case at moderate load).
    const adaptive::PortState ideal{config_.buffer_packets,
                                    config_.buffer_packets, true};
    selector_ = adaptive::VariantSelector(
        config_.select, static_cast<std::uint32_t>(lft_->block()),
        adaptive::port_score(config_.select, ideal));
    variant_mask_ = static_cast<std::uint32_t>(lft_->block()) - 1;
  }
  // Only the all-ports adaptive mode routes from per-CYCLE credit state
  // and must bypass the active crossbar's enqueue-time snapshots.  The
  // variant selector decides once per hop at arrival (enqueue_input), so
  // its decision is baked into pkt.lid and the snapshots stay valid --
  // that is what keeps its hot-path overhead within the tracked budget.
  recompute_route_ = config_.routing_mode == RoutingMode::kAdaptive;
  if (windowed_) {
    window_link_flits_.assign(static_cast<std::size_t>(topo_->num_links()),
                              0);
  }

  const std::size_t channels =
      static_cast<std::size_t>(topo_->num_links()) * config_.num_vcs;
  inputs_.resize(channels);
  outputs_.resize(channels);
  for (OutputChannel& out : outputs_) out.credits = config_.buffer_packets;
  links_.resize(static_cast<std::size_t>(topo_->num_links()));
  if (active_sets_) {
    input_active_.assign(channels, 0);
    link_active_.assign(links_.size(), 0);
    channel_link_.resize(channels);
    for (std::size_t ch = 0; ch < channels; ++ch) {
      channel_link_[ch] = static_cast<topo::LinkId>(ch / config_.num_vcs);
    }
  }
  link_node_.resize(links_.size());
  link_terminal_.resize(links_.size());
  if (lft_mode_) link_up_.resize(links_.size());
  for (std::size_t id = 0; id < links_.size(); ++id) {
    const topo::Link& link = topo_->link(static_cast<topo::LinkId>(id));
    link_node_[id] = link.dst;
    link_terminal_[id] =
        static_cast<std::uint8_t>(topo_->is_host(link.dst));
    if (lft_mode_) link_up_[id] = static_cast<std::uint8_t>(link.up);
  }
  // After link_up_ / link_enabled_ exist: the selector's diversity map
  // and per-link gate derive from them and the installed tables.
  refresh_variant_diversity();

  source_queue_.resize(static_cast<std::size_t>(num_hosts_));
  next_arrival_.resize(static_cast<std::size_t>(num_hosts_));
  rr_counter_.assign(static_cast<std::size_t>(num_hosts_), 0);
  util::Rng seeder{config_.seed};
  host_rng_.reserve(static_cast<std::size_t>(num_hosts_));
  for (std::uint64_t h = 0; h < num_hosts_; ++h) {
    host_rng_.push_back(seeder.fork());
    next_arrival_[static_cast<std::size_t>(h)] =
        host_rng_.back().exponential(mean_interval_);
  }
  if (kernel_ == Kernel::kEvent) {
    // Every host starts asleep with an empty source queue; it wakes at
    // the first integer cycle its arrival is due (ceil matches the
    // reference kernel's `next_arrival <= now` test exactly).
    host_active_.assign(static_cast<std::size_t>(num_hosts_), 0);
    host_wake_.reserve(static_cast<std::size_t>(num_hosts_));
    for (std::uint64_t h = 0; h < num_hosts_; ++h) {
      host_wake_.push(
          static_cast<Cycle>(
              std::ceil(next_arrival_[static_cast<std::size_t>(h)])),
          h);
    }
  }
  if (config_.destination_mode == DestinationMode::kFixedPermutation) {
    if (!config_.fixed_destinations.empty()) {
      LMPR_EXPECTS(config_.fixed_destinations.size() == num_hosts_);
      fixed_dst_ = config_.fixed_destinations;
      for (const auto dst : fixed_dst_) LMPR_EXPECTS(dst < num_hosts_);
    } else {
      const auto perm =
          seeder.permutation(static_cast<std::size_t>(num_hosts_));
      fixed_dst_.assign(perm.begin(), perm.end());
    }
  } else if (config_.destination_mode == DestinationMode::kShift) {
    // The shift permutation is a fixed pairing, so it reuses the
    // kFixedPermutation injection machinery (no per-message RNG draw).
    fixed_dst_.resize(static_cast<std::size_t>(num_hosts_));
    for (std::uint64_t h = 0; h < num_hosts_; ++h) {
      fixed_dst_[static_cast<std::size_t>(h)] =
          (h + config_.shift_distance) % num_hosts_;
    }
  }

  calendar_.resize(config_.packet_flits + 4);
  metrics_.message_delay_dist =
      util::ReservoirQuantiles(4096, config_.seed ^ 0xd15707ULL);

  const std::size_t flows =
      static_cast<std::size_t>(num_hosts_) * static_cast<std::size_t>(num_hosts_);
  flow_next_seq_.assign(flows, 0);
  flow_max_delivered_.assign(flows, 0);
  link_flits_.assign(static_cast<std::size_t>(topo_->num_links()), 0);
}

Network::PacketId Network::alloc_packet() {
  if (free_packet_ != kNone) {
    const PacketId id = free_packet_;
    free_packet_ = packets_[id].next_free;
    return id;
  }
  packets_.emplace_back();
  return static_cast<PacketId>(packets_.size() - 1);
}

void Network::free_packet(PacketId id) {
  packets_[id].next_free = free_packet_;
  free_packet_ = id;
}

Network::MessageId Network::alloc_message() {
  if (free_message_ != static_cast<MessageId>(-1)) {
    const MessageId id = free_message_;
    free_message_ = messages_[id].next_free;
    return id;
  }
  messages_.emplace_back();
  return static_cast<MessageId>(messages_.size() - 1);
}

void Network::free_message(MessageId id) {
  messages_[id].next_free = free_message_;
  free_message_ = id;
}

void Network::schedule(Cycle when, Event event) {
  LMPR_ASSERT(when > current_cycle_);
  LMPR_ASSERT(when - current_cycle_ < calendar_.size());
  calendar_[static_cast<std::size_t>(when % calendar_.size())].push_back(
      event);
}

void Network::activate_input(ChannelId ch) {
  if (input_active_[ch]) return;
  input_active_[ch] = 1;
  active_inputs_.insert(
      std::lower_bound(active_inputs_.begin(), active_inputs_.end(), ch), ch);
}

void Network::activate_link(topo::LinkId link) {
  if (link_active_[link]) return;
  link_active_[link] = 1;
  active_links_.insert(
      std::lower_bound(active_links_.begin(), active_links_.end(), link),
      link);
}

void Network::enqueue_output(ChannelId ch, topo::LinkId link, PacketId pkt) {
  OutputChannel& out = outputs_[ch];
  out.fifo.push_back(pkt);
  ++out.occupancy;
  ++links_[link].queued;
  // A busy link re-arms itself through the kOutputSlotFree event it
  // scheduled for the cycle its current serialization ends.
  if (active_sets_ && links_[link].busy_until <= current_cycle_) {
    activate_link(link);
  }
}

void Network::enqueue_input(ChannelId ch, PacketId pkt) {
  InputChannel& in = inputs_[ch];
  Packet& packet = packets_[pkt];
  // Per-hop decision point of the variant selector: re-pick among the K
  // installed variants from live output state ONCE per arrival, baking
  // the choice into packet.lid.  Every kernel funnels arrivals through
  // here (transmit() is shared machinery), so the decision sequence --
  // and with it the selector counters -- is kernel-independent, and the
  // enqueue-time snapshot stays trustworthy for the active crossbar.
  // The selector never engages on a dead entry: the salvage/drop path
  // must stay entry-for-entry identical to an oblivious run.
  if (!active_sets_) {
    if (selector_.engaged()) {
      const auto in_link = static_cast<topo::LinkId>(ch / config_.num_vcs);
      const topo::NodeId node = link_node_[in_link];
      const topo::LinkId cur = (*lft_tables_)[node][packet.lid];
      // selector_gate_ folds enabled + points-up + node-diverse into one
      // byte; the sentinel compare guards the indexing.
      if (cur != topo::kInvalidLink && selector_gate_[cur] != 0) {
        select_variant(node, packet, cur, current_cycle_);
      }
    }
    in.fifo.push_back(pkt);
    return;
  }
  topo::LinkId out_link;
  if (lft_mode_) {
    // One table read serves both the selector's decision and the route
    // snapshot (select_variant returns the post-rewrite entry).  The
    // selector_gate_ byte keeps the out-of-line scan off the descent,
    // disabled-entry and collapsed-variant arrivals in a single read:
    // entry enabled, entry points up, node offers >= 2 distinct variant
    // links (the sentinel compare guards the indexing).
    const topo::NodeId node = link_node_[channel_link_[ch]];
    out_link = (*lft_tables_)[node][packet.lid];
    if (selector_.engaged() && out_link != topo::kInvalidLink &&
        selector_gate_[out_link] != 0) {
      out_link = select_variant(node, packet, out_link, current_cycle_);
    }
  } else {
    out_link = config_.routing_mode == RoutingMode::kOblivious
                   ? packet.path->links[packet.hop]
                   : topo::LinkId{0};  // recomputed per cycle from credits
  }
  in.slots.push_back(InputSlot{pkt, out_link, packet.vc,
                               packet.head_arrival});
  ++in.live;
  activate_input(ch);
}

void Network::erase_input_slot(InputChannel& in, std::size_t pos) {
  in.slots[pos].id = kNone;
  --in.live;
  if (in.live == 0) {
    in.slots.clear();
    in.head = 0;
    return;
  }
  if (pos == in.head) {
    do {
      ++in.head;
    } while (in.slots[in.head].id == kNone);
  }
  // Compact once holes outnumber live entries (amortized O(1) per grant;
  // the live order -- and with it the scan order -- is preserved).
  if (in.slots.size() - in.head > 2 * in.live + 8) {
    std::size_t w = 0;
    for (std::size_t r = in.head; r < in.slots.size(); ++r) {
      if (in.slots[r].id != kNone) in.slots[w++] = in.slots[r];
    }
    in.slots.resize(w);
    in.head = 0;
  }
}

void Network::process_events(Cycle now) {
  auto& bucket = calendar_[static_cast<std::size_t>(now % calendar_.size())];
  for (const Event& event : bucket) {
    switch (event.kind) {
      case EventKind::kCreditReturn:
        ++outputs_[event.arg].credits;
        break;
      case EventKind::kOutputSlotFree: {
        LMPR_ASSERT(outputs_[event.arg].occupancy > 0);
        --outputs_[event.arg].occupancy;
        if (active_sets_) {
          // The transmission that scheduled this event ends now: the link
          // is free again, so put it back on duty if work queued up.
          const topo::LinkId link = channel_link_[event.arg];
          if (links_[link].queued > 0 && links_[link].busy_until <= now) {
            activate_link(link);
          }
        }
        break;
      }
      case EventKind::kDeliver:
        deliver(event.arg, now);
        break;
    }
  }
  bucket.clear();
}

void Network::generate_message(std::uint64_t host, Cycle now) {
  util::Rng& rng = host_rng_[static_cast<std::size_t>(host)];
  std::uint64_t dst;
  if (config_.destination_mode == DestinationMode::kFixedPermutation ||
      config_.destination_mode == DestinationMode::kShift) {
    dst = fixed_dst_[static_cast<std::size_t>(host)];
    if (dst == host) return;  // permutation fixed point: silent source
  } else if (config_.destination_mode == DestinationMode::kHotspot &&
             host != config_.hotspot_target &&
             rng.uniform01() < config_.hotspot_fraction) {
    dst = config_.hotspot_target;
  } else {
    // Fresh uniform random destination, excluding self.
    dst = rng.below(num_hosts_ - 1);
    if (dst >= host) ++dst;
  }

  const MessageId msg_id = alloc_message();
  Message& msg = messages_[msg_id];
  msg.gen_cycle = now;
  msg.remaining = config_.message_packets;
  msg.measured = in_measure_window(now);
  msg.lost = false;
  if (msg.measured) ++metrics_.messages_generated;

  const bool adaptive = config_.routing_mode == RoutingMode::kAdaptive;
  const route::Path* message_path = nullptr;
  std::uint32_t message_lid = 0;
  if (lft_mode_) {
    // Path selection maps onto variant-LID selection: the DLID is the
    // multipath choice a destination-based fabric actually exposes.
    const std::uint64_t block = lft_->block();
    if (config_.path_selection == PathSelection::kRoundRobinPerMessage) {
      message_lid = lft_->lid_of(
          dst, static_cast<std::uint32_t>(
                   rr_counter_[static_cast<std::size_t>(host)]++ % block));
    } else if (config_.path_selection == PathSelection::kRandomPerMessage) {
      message_lid = lft_->lid_of(
          dst, static_cast<std::uint32_t>(rng.below(block)));
    }
  } else if (!adaptive) {
    if (config_.path_selection == PathSelection::kRandomPerMessage) {
      message_path = &table_->pick(host, dst, rng);
    } else if (config_.path_selection ==
               PathSelection::kRoundRobinPerMessage) {
      message_path = &table_->pick_round_robin(
          host, dst, rr_counter_[static_cast<std::size_t>(host)]++);
    }
  }

  for (std::uint32_t i = 0; i < config_.message_packets; ++i) {
    const PacketId pkt_id = alloc_packet();
    Packet& pkt = packets_[pkt_id];
    if (lft_mode_) {
      pkt.path = nullptr;
      pkt.lid = config_.path_selection == PathSelection::kRandomPerPacket
                    ? lft_->lid_of(dst, static_cast<std::uint32_t>(
                                            rng.below(lft_->block())))
                    : message_lid;
    } else if (adaptive) {
      pkt.path = nullptr;
    } else {
      pkt.path = message_path != nullptr ? message_path
                                         : &table_->pick(host, dst, rng);
      LMPR_ASSERT(!pkt.path->links.empty());
    }
    pkt.dst = dst;
    pkt.flow = host * num_hosts_ + dst;
    pkt.seq = ++flow_next_seq_[static_cast<std::size_t>(pkt.flow)];
    pkt.hop = 0;
    pkt.vc = static_cast<std::uint32_t>(rng.below(config_.num_vcs));
    pkt.head_arrival = now;
    pkt.gen_cycle = now;
    pkt.message = msg_id;
    ++metrics_.packets_generated;
    source_queue_[static_cast<std::size_t>(host)].push_back(pkt_id);
  }
}

topo::LinkId Network::adaptive_route(topo::NodeId node, const Packet& packet,
                                     Cycle now) const {
  topo_->candidate_links(node, packet.dst, route_scratch_);
  const std::size_t count = route_scratch_.size();
  LMPR_ASSERT(count > 0);  // only the destination host has no way forward
  // LFT mode can degrade (killed cables mask candidates); the route-table
  // fabric never does, and its link_enabled_ vector is empty.
  const bool masked = lft_mode_;
  if (count == 1) {
    // Forced hop (e.g. descent); a masked forced hop has no way around
    // and resolves through the caller's drop policy.
    const topo::LinkId only = route_scratch_[0];
    return !masked || usable(only) ? only : topo::kInvalidLink;
  }
  topo::LinkId best = topo::kInvalidLink;
  std::uint64_t best_score = 0;
  // Rotating tie-break keeps the choice fair across cycles.
  for (std::size_t i = 0; i < count; ++i) {
    const topo::LinkId link =
        route_scratch_[static_cast<std::size_t>((i + now) % count)];
    if (masked && !usable(link)) continue;
    const OutputChannel& out = outputs_[channel(link, packet.vc)];
    // Prefer downstream credit headroom, then free output slots, then an
    // idle physical channel: 'least congested candidate first'.
    const std::uint64_t score =
        1 + out.credits * 4ull +
        (config_.buffer_packets - out.occupancy) * 2ull +
        (links_[link].busy_until <= now ? 1ull : 0ull);
    if (score > best_score) {
      best_score = score;
      best = link;
    }
  }
  return best;  // kInvalidLink when every candidate is masked
}

topo::LinkId Network::route_output(topo::NodeId node, const Packet& packet,
                                   Cycle now) const {
  if (lft_mode_) {
    if (config_.routing_mode == RoutingMode::kAdaptive) {
      // The all-ports adaptive baseline on an LFT fabric: live candidate
      // scoring replaces the tables entirely (the DLID still identifies
      // the destination for salvage accounting).
      return adaptive_route(node, packet, now);
    }
    // Destination-based forwarding: the current tables decide, and the
    // entry may be kInvalidLink / masked (the crossbars resolve that
    // through the drop policy).
    return (*lft_tables_)[node][packet.lid];
  }
  if (config_.routing_mode == RoutingMode::kOblivious) {
    return packet.path->links[packet.hop];
  }
  return adaptive_route(node, packet, now);
}

void Network::refresh_variant_diversity() {
  if (!selector_.engaged()) return;
  node_variant_diverse_.assign(
      static_cast<std::size_t>(topo_->num_nodes()), 0);
  const std::uint32_t block = variant_mask_ + 1;
  for (std::size_t node = 0; node < lft_tables_->size(); ++node) {
    const auto& row = (*lft_tables_)[node];
    // LID 0 is reserved; destination blocks start at 1 and are contiguous.
    for (std::size_t base = 1; base + block <= row.size() + 1;
         base += block) {
      const topo::LinkId first = row[base];
      for (std::uint32_t j = 1; j < block; ++j) {
        if (row[base + j] != first) {
          node_variant_diverse_[node] = 1;
          break;
        }
      }
      if (node_variant_diverse_[node] != 0) break;
    }
  }
  selector_gate_.assign(links_.size(), 0);
  for (std::size_t id = 0; id < links_.size(); ++id) {
    refresh_selector_gate(static_cast<topo::LinkId>(id));
  }
}

void Network::refresh_selector_gate(topo::LinkId link) {
  if (selector_gate_.empty()) return;
  selector_gate_[link] = static_cast<std::uint8_t>(
      link_enabled_[link] != 0 && link_up_[link] != 0 &&
      node_variant_diverse_[topo_->link(link).src] != 0);
}

topo::LinkId Network::select_variant(topo::NodeId node, Packet& pkt,
                                     topo::LinkId cur, Cycle now) {
  // The descent is variant-independent (all ancestors of a node at a
  // level cover the same subtree), so only the upward leg offers a
  // choice.  On generic fabrics every candidate-respecting hop strictly
  // decreases the BFS distance to the destination, so rewriting the DLID
  // mid-route can never loop there either.
  if (link_up_[cur] == 0) return cur;
  // Lft's LID layout is a contiguous 1-based block per destination of
  // size 2^LMC (lid_of(d, j) == lid_of(d, 0) + j), so the block base
  // falls out of the packet's own LID by mask arithmetic -- no
  // out-of-line lid_of call on the selector's hot path.
  const std::uint32_t base = ((pkt.lid - 1) & ~variant_mask_) + 1;
  const std::uint32_t incumbent = (pkt.lid - 1) & variant_mask_;
  const auto& row = (*lft_tables_)[node];
  const auto candidate = [&](std::uint32_t j) {
    adaptive::VariantSelector::Candidate c;
    const topo::LinkId link = row[base + j];
    if (j != incumbent && link == cur) {
      // A sibling forwarding through the incumbent's port can never
      // score strictly better than the incumbent: skip it.
      c.same_link = true;
      return c;
    }
    c.valid = j == incumbent || (usable(link) && link_up_[link] != 0);
    if (c.valid) {
      const OutputChannel& out = outputs_[channel(link, pkt.vc)];
      c.port.credits = out.credits;
      c.port.free_slots = config_.buffer_packets - out.occupancy;
      c.port.idle = links_[link].busy_until <= now;
    }
    return c;
  };
  const std::uint32_t chosen = selector_.pick(incumbent, candidate, now);
  if (chosen == incumbent) return cur;
  pkt.lid = base + chosen;
  return row[pkt.lid];
}

topo::LinkId Network::forward_link(topo::NodeId node, Packet& pkt,
                                   Cycle now) {
  // The selector's INJECTION decision point (per-hop decisions live in
  // enqueue_input).  Engaged only in LFT mode under oblivious table
  // routing (validated at construction).  The selector never engages on
  // an unusable entry -- the fault path (salvage/drop) must stay
  // entry-for-entry identical to an oblivious run.
  if (selector_.engaged()) {
    const topo::LinkId cur = (*lft_tables_)[node][pkt.lid];
    // Same single-byte gate as the arrival path: an unusable entry falls
    // through untouched (the caller's salvage/drop handling sees exactly
    // what route_output would have returned).
    if (cur == topo::kInvalidLink || selector_gate_[cur] == 0) return cur;
    return select_variant(node, pkt, cur, now);
  }
  return route_output(node, pkt, now);
}

void Network::service_host(std::uint64_t host, Cycle now) {
  const auto slot = static_cast<std::size_t>(host);
  while (next_arrival_[slot] <= static_cast<double>(now)) {
    generate_message(host, now);
    next_arrival_[slot] += host_rng_[slot].exponential(mean_interval_);
  }
  // NIC moves at most one packet per cycle into an uplink output buffer.
  auto& queue = source_queue_[slot];
  if (queue.empty()) return;
  if (lft_mode_) {
    // Undeliverable head-of-queue packets (entry dead, no salvageable
    // variant) drop instead of jamming the NIC; the first routable
    // packet then gets the cycle's injection slot.
    const topo::NodeId src_node = topo_->host(host);
    while (!queue.empty()) {
      const PacketId pkt_id = queue.front();
      Packet& pkt = packets_[pkt_id];
      // Injection is the selector's first decision point (a single-uplink
      // NIC degenerates to the table entry, but the decision is counted
      // so the observables stay kernel-independent).
      topo::LinkId link = forward_link(src_node, pkt, now);
      if (!usable(link)) {
        link = config_.drop_policy == DropPolicy::kRerouteAtSwitch
                   ? salvage_variant(src_node, pkt)
                   : topo::kInvalidLink;
        if (link == topo::kInvalidLink) {
          queue.pop_front();
          drop_packet(pkt_id);
          continue;
        }
        ++metrics_.packets_rerouted;
        if (windowed_) ++window_rerouted_;
      }
      OutputChannel& out = outputs_[channel(link, pkt.vc)];
      if (out.occupancy >= config_.buffer_packets) break;  // NIC blocked
      queue.pop_front();
      pkt.head_arrival = now;
      enqueue_output(channel(link, pkt.vc), link, pkt_id);
      break;
    }
    return;
  }
  const PacketId pkt_id = queue.front();
  Packet& pkt = packets_[pkt_id];
  const topo::LinkId link =
      config_.routing_mode == RoutingMode::kOblivious
          ? pkt.path->links[0]
          : adaptive_route(topo_->host(host), pkt, now);
  OutputChannel& out = outputs_[channel(link, pkt.vc)];
  if (out.occupancy >= config_.buffer_packets) return;
  queue.pop_front();
  pkt.head_arrival = now;
  enqueue_output(channel(link, pkt.vc), link, pkt_id);
}

void Network::inject(Cycle now) {
  for (std::uint64_t host = 0; host < num_hosts_; ++host) {
    service_host(host, now);
  }
}

void Network::grant(PacketId pkt_id, ChannelId in_ch, topo::LinkId out_link,
                    Cycle now) {
  Packet& pkt = packets_[pkt_id];
  enqueue_output(channel(out_link, pkt.vc), out_link, pkt_id);
  links_[out_link].last_grant = now;
  // The input slot clears once the tail flit has streamed through; only
  // then does the upstream sender regain its credit.
  const Cycle full_arrival = pkt.head_arrival + config_.packet_flits - 1;
  const Cycle release = (full_arrival > now ? full_arrival : now) + 1;
  schedule(release, Event{EventKind::kCreditReturn, in_ch});
}

void Network::crossbar_reference(Cycle now) {
  const std::size_t count = inputs_.size();
  // Rotating start index gives long-run fairness across input channels.
  const std::size_t offset = static_cast<std::size_t>(now % count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx = (i + offset) % count;
    InputChannel& in = inputs_[idx];
    if (in.fifo.empty()) continue;
    const auto in_link =
        static_cast<topo::LinkId>(idx / config_.num_vcs);
    const topo::NodeId node = topo_->link(in_link).dst;
    // Buffered-crossbar input stage: ANY buffered packet whose head has
    // arrived may be switched, not only the FIFO head.  At most one grant
    // per input channel and per output link per cycle.
    for (std::size_t pos = 0; pos < in.fifo.size(); ++pos) {
      const PacketId pkt_id = in.fifo[pos];
      Packet& pkt = packets_[pkt_id];
      if (pkt.head_arrival > now) break;  // later packets arrive later
      // The selector's hop decision already happened at arrival
      // (enqueue_input rewrote pkt.lid), so this is a pure table read --
      // identical to the active kernel's enqueue-time snapshot.
      topo::LinkId out_link = route_output(node, pkt, now);
      if (lft_mode_ && !usable(out_link)) {
        // The route died under the packet: salvage another variant or
        // drop, per policy; either way the channel's crossbar service is
        // spent on this packet.
        out_link = config_.drop_policy == DropPolicy::kRerouteAtSwitch
                       ? salvage_variant(node, pkt)
                       : topo::kInvalidLink;
        if (out_link == topo::kInvalidLink) {
          in.fifo.erase(in.fifo.begin() + static_cast<std::ptrdiff_t>(pos));
          drop_from_input(pkt_id, static_cast<ChannelId>(idx), now);
          break;
        }
        ++metrics_.packets_rerouted;
        if (windowed_) ++window_rerouted_;
      }
      if (links_[out_link].last_grant == now) continue;  // one per output
      OutputChannel& out = outputs_[channel(out_link, pkt.vc)];
      if (out.occupancy >= config_.buffer_packets) continue;
      in.fifo.erase(in.fifo.begin() + static_cast<std::ptrdiff_t>(pos));
      grant(pkt_id, static_cast<ChannelId>(idx), out_link, now);
      break;  // one grant per input channel per cycle
    }
  }
}

void Network::crossbar_active(Cycle now) {
  // Prune channels drained since the last cycle, preserving the sorted
  // order; then serve members in the reference scan's rotated order.
  std::size_t w = 0;
  for (const ChannelId ch : active_inputs_) {
    if (inputs_[ch].live == 0) {
      input_active_[ch] = 0;
      continue;
    }
    active_inputs_[w++] = ch;
  }
  active_inputs_.resize(w);
  if (active_inputs_.empty()) return;

  const auto offset =
      static_cast<ChannelId>(now % static_cast<Cycle>(inputs_.size()));
  const std::size_t start = static_cast<std::size_t>(
      std::lower_bound(active_inputs_.begin(), active_inputs_.end(), offset) -
      active_inputs_.begin());
  const std::size_t active = active_inputs_.size();
  for (std::size_t n = 0; n < active; ++n) {
    const std::size_t at = start + n;
    const ChannelId idx = active_inputs_[at < active ? at : at - active];
    InputChannel& in = inputs_[idx];
    const std::size_t size = in.slots.size();
    for (std::size_t pos = in.head; pos < size; ++pos) {
      const InputSlot& slot = in.slots[pos];
      if (slot.id == kNone) continue;  // hole left by an earlier grant
      if (slot.head_arrival > now) break;  // later packets arrive later
      topo::LinkId out_link =
          !recompute_route_ ? slot.out_link
                            : route_output(link_node_[channel_link_[idx]],
                                           packets_[slot.id], now);
      if (lft_mode_ && !usable(out_link)) {
        // Mirrors the reference kernel: the snapshot equals the current
        // table entry (set_tables refreshes it), so both kernels resolve
        // the dead route identically.
        Packet& pkt = packets_[slot.id];
        out_link = config_.drop_policy == DropPolicy::kRerouteAtSwitch
                       ? salvage_variant(link_node_[channel_link_[idx]], pkt)
                       : topo::kInvalidLink;
        if (out_link == topo::kInvalidLink) {
          const PacketId lost = slot.id;
          erase_input_slot(in, pos);
          drop_from_input(lost, idx, now);
          break;
        }
        ++metrics_.packets_rerouted;
        if (windowed_) ++window_rerouted_;
        in.slots[pos].out_link = out_link;
      }
      if (links_[out_link].last_grant == now) continue;  // one per output
      OutputChannel& out = outputs_[channel(out_link, slot.vc)];
      if (out.occupancy >= config_.buffer_packets) continue;
      const PacketId pkt_id = slot.id;
      erase_input_slot(in, pos);
      grant(pkt_id, idx, out_link, now);
      break;  // one grant per input channel per cycle
    }
  }
}

void Network::transmit(PacketId pkt_id, ChannelId ch, topo::LinkId link_idx,
                       std::uint32_t vc, Cycle now) {
  OutputLink& link_state = links_[link_idx];
  OutputChannel& out = outputs_[ch];
  Packet& pkt = packets_[pkt_id];
  out.fifo.pop_front();
  --out.credits;
  --link_state.queued;
  if (in_measure_window(now)) {
    // Attribute the whole packet's serialization to this cycle's
    // window; edge effects at the window boundary are one packet.
    link_flits_[link_idx] += config_.packet_flits;
  }
  if (windowed_) window_link_flits_[link_idx] += config_.packet_flits;
  link_state.busy_until = now + config_.packet_flits;
  // vc + 1 <= num_vcs, so the wrap is a compare, not a division.
  link_state.next_vc = vc + 1 == config_.num_vcs ? 0 : vc + 1;
  schedule(link_state.busy_until, Event{EventKind::kOutputSlotFree, ch});
  pkt.head_arrival = now + 1;
  ++pkt.hop;
  if (link_terminal_[link_idx]) {
    // Downstream is the destination host: the packet completes when
    // its tail flit lands; the host input slot frees one cycle later.
    LMPR_ASSERT(topo_->link(link_idx).dst == topo_->host(pkt.dst));
    pkt.terminal_link = link_idx;
    const Cycle done = now + config_.packet_flits;  // (now+1) + F - 1
    schedule(done, Event{EventKind::kDeliver, pkt_id});
    schedule(done + 1, Event{EventKind::kCreditReturn, ch});
  } else {
    enqueue_input(ch, pkt_id);
  }
}

void Network::start_transmissions_reference(Cycle now) {
  for (std::size_t link_idx = 0; link_idx < links_.size(); ++link_idx) {
    OutputLink& link_state = links_[link_idx];
    if (link_state.busy_until > now) continue;
    // Round-robin over VCs for the physical channel.
    for (std::uint32_t v = 0; v < config_.num_vcs; ++v) {
      const std::uint32_t vc =
          (link_state.next_vc + v) % config_.num_vcs;
      const ChannelId ch =
          channel(static_cast<topo::LinkId>(link_idx), vc);
      OutputChannel& out = outputs_[ch];
      if (out.fifo.empty() || out.credits == 0) continue;
      const PacketId pkt_id = out.fifo.front();
      if (packets_[pkt_id].head_arrival + 1 > now) continue;  // router stage
      transmit(pkt_id, ch, static_cast<topo::LinkId>(link_idx), vc, now);
      break;  // one packet per physical link per cycle
    }
  }
}

void Network::start_transmissions_active(Cycle now) {
  // Prune links that drained or went busy since the last cycle (a busy
  // link's kOutputSlotFree event re-arms it the cycle it frees), then
  // serve the free members in ascending id order -- the reference scan's
  // order restricted to links that can actually send.
  std::size_t w = 0;
  for (const topo::LinkId link : active_links_) {
    const OutputLink& state = links_[link];
    if (state.queued == 0 || state.busy_until > now) {
      link_active_[link] = 0;
      continue;
    }
    active_links_[w++] = link;
  }
  active_links_.resize(w);
  const std::uint32_t num_vcs = config_.num_vcs;
  for (const topo::LinkId link_idx : active_links_) {
    OutputLink& link_state = links_[link_idx];
    // Round-robin over VCs for the physical channel.  Both addends are
    // < num_vcs, so the rotation is a compare-subtract, not a division.
    for (std::uint32_t v = 0; v < num_vcs; ++v) {
      const std::uint32_t sum = link_state.next_vc + v;
      const std::uint32_t vc = sum >= num_vcs ? sum - num_vcs : sum;
      const ChannelId ch = channel(link_idx, vc);
      OutputChannel& out = outputs_[ch];
      if (out.fifo.empty() || out.credits == 0) continue;
      const PacketId pkt_id = out.fifo.front();
      if (packets_[pkt_id].head_arrival + 1 > now) continue;  // router stage
      transmit(pkt_id, ch, link_idx, vc, now);
      break;  // one packet per physical link per cycle
    }
  }
}

void Network::deliver(PacketId pkt_id, Cycle now) {
  Packet& pkt = packets_[pkt_id];
  if (in_measure_window(now)) {
    metrics_.flits_delivered += config_.packet_flits;
  }
  if (windowed_) window_flits_ += config_.packet_flits;
  ++metrics_.packets_delivered;
  auto& max_seq = flow_max_delivered_[static_cast<std::size_t>(pkt.flow)];
  if (pkt.seq < max_seq) {
    ++metrics_.packets_out_of_order;
  } else {
    max_seq = pkt.seq;
  }
  Message& msg = messages_[pkt.message];
  if (msg.measured) {
    metrics_.packet_delay.add(static_cast<double>(now - pkt.gen_cycle));
  }
  LMPR_ASSERT(msg.remaining > 0);
  if (--msg.remaining == 0) {
    if (msg.measured) {
      if (msg.lost) {
        // A sibling packet dropped earlier: the message never completes
        // at the transport level even though its remaining packets land.
        ++metrics_.messages_lost;
      } else {
        const double delay = static_cast<double>(now - msg.gen_cycle);
        metrics_.message_delay.add(delay);
        metrics_.message_delay_dist.add(delay);
        ++metrics_.messages_delivered;
        if (windowed_) window_delays_.push_back(delay);
      }
    }
    free_message(pkt.message);
  }
  free_packet(pkt_id);
}

SimMetrics Network::run() {
  run_until(horizon());
  return finalize();
}

void Network::run_until(Cycle end) {
  LMPR_EXPECTS(end <= horizon());
  LMPR_EXPECTS(end >= current_cycle_);
  in_cycle_ = true;
  switch (kernel_) {
    case Kernel::kReference:
      for (; current_cycle_ < end; ++current_cycle_) {
        process_events(current_cycle_);
        inject(current_cycle_);
        crossbar_reference(current_cycle_);
        start_transmissions_reference(current_cycle_);
      }
      break;
    case Kernel::kActiveSet:
      for (; current_cycle_ < end; ++current_cycle_) {
        process_events(current_cycle_);
        inject(current_cycle_);
        crossbar_active(current_cycle_);
        start_transmissions_active(current_cycle_);
      }
      break;
    case Kernel::kEvent:
      run_cycles_event(end);
      break;
  }
  in_cycle_ = false;
}

SimMetrics Network::finalize() {
  LMPR_EXPECTS(current_cycle_ == horizon());
  metrics_.offered_load = config_.offered_load;
  metrics_.packets_outstanding = metrics_.packets_generated -
                                 metrics_.packets_delivered -
                                 metrics_.packets_dropped;
  // Per-level utilization aggregation.
  const std::uint32_t levels = topo_->num_levels();
  metrics_.mean_up_utilization.assign(levels, 0.0);
  metrics_.mean_down_utilization.assign(levels, 0.0);
  metrics_.max_up_utilization.assign(levels, 0.0);
  metrics_.max_down_utilization.assign(levels, 0.0);
  std::vector<std::uint64_t> up_count(levels, 0);
  std::vector<std::uint64_t> down_count(levels, 0);
  for (std::size_t id = 0; id < link_flits_.size(); ++id) {
    const topo::Link& link = topo_->link(static_cast<topo::LinkId>(id));
    const double util = static_cast<double>(link_flits_[id]) /
                        static_cast<double>(config_.measure_cycles);
    auto& mean = link.up ? metrics_.mean_up_utilization
                         : metrics_.mean_down_utilization;
    auto& peak = link.up ? metrics_.max_up_utilization
                         : metrics_.max_down_utilization;
    auto& count = link.up ? up_count : down_count;
    mean[link.level] += util;
    peak[link.level] = std::max(peak[link.level], util);
    ++count[link.level];
  }
  for (std::uint32_t l = 0; l < levels; ++l) {
    if (up_count[l] > 0) {
      metrics_.mean_up_utilization[l] /= static_cast<double>(up_count[l]);
    }
    if (down_count[l] > 0) {
      metrics_.mean_down_utilization[l] /= static_cast<double>(down_count[l]);
    }
  }
  metrics_.throughput =
      static_cast<double>(metrics_.flits_delivered) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(num_hosts_));
  return metrics_;
}

// -- LFT-mode fault machinery -----------------------------------------------

topo::LinkId Network::salvage_variant(topo::NodeId node, Packet& pkt) {
  const std::uint32_t base = lft_->lid_of(pkt.dst, 0);
  const std::uint32_t block = lft_->block();
  for (std::uint32_t j = 0; j < block; ++j) {
    const topo::LinkId cand = (*lft_tables_)[node][base + j];
    if (usable(cand)) {
      pkt.lid = base + j;
      return cand;
    }
  }
  return topo::kInvalidLink;
}

void Network::drop_packet(PacketId pkt_id) {
  ++metrics_.packets_dropped;
  if (windowed_) ++window_dropped_;
  const Packet& pkt = packets_[pkt_id];
  Message& msg = messages_[pkt.message];
  msg.lost = true;
  LMPR_ASSERT(msg.remaining > 0);
  if (--msg.remaining == 0) {
    if (msg.measured) ++metrics_.messages_lost;
    free_message(pkt.message);
  }
  free_packet(pkt_id);
}

void Network::drop_from_input(PacketId pkt_id, ChannelId in_ch, Cycle now) {
  // The input slot clears once the tail flit has streamed through -- the
  // same credit release a grant of this packet would have produced.
  const Packet& pkt = packets_[pkt_id];
  const Cycle full_arrival = pkt.head_arrival + config_.packet_flits - 1;
  const Cycle release = (full_arrival > now ? full_arrival : now) + 1;
  schedule(release, Event{EventKind::kCreditReturn, in_ch});
  drop_packet(pkt_id);
}

bool Network::requeue_output(PacketId pkt_id, topo::NodeId node) {
  if (config_.drop_policy != DropPolicy::kRerouteAtSwitch) return false;
  Packet& pkt = packets_[pkt_id];
  topo::LinkId link = (*lft_tables_)[node][pkt.lid];
  if (!usable(link)) link = salvage_variant(node, pkt);
  if (link == topo::kInvalidLink) return false;
  const ChannelId ch = channel(link, pkt.vc);
  if (outputs_[ch].occupancy >= config_.buffer_packets) return false;
  pkt.head_arrival = current_cycle_;  // re-enters this switch's router stage
  enqueue_output(ch, link, pkt_id);
  ++metrics_.packets_rerouted;
  if (windowed_) ++window_rerouted_;
  return true;
}

void Network::purge_input_channel(ChannelId ch, bool everything) {
  InputChannel& in = inputs_[ch];
  const Cycle now = current_cycle_;
  const auto severed = [&](const Packet& pkt) {
    // Tail still streaming over the wire when it died.
    return everything || pkt.head_arrival + config_.packet_flits - 1 >= now;
  };
  if (!active_sets_) {
    std::deque<PacketId> keep;
    for (const PacketId pkt_id : in.fifo) {
      if (severed(packets_[pkt_id])) {
        ++outputs_[ch].credits;  // the slot frees; dead wire, so immediate
        drop_packet(pkt_id);
      } else {
        keep.push_back(pkt_id);
      }
    }
    in.fifo.swap(keep);
    return;
  }
  std::vector<InputSlot> keep;
  keep.reserve(in.live);
  for (std::size_t pos = in.head; pos < in.slots.size(); ++pos) {
    const InputSlot& slot = in.slots[pos];
    if (slot.id == kNone) continue;
    if (severed(packets_[slot.id])) {
      ++outputs_[ch].credits;
      drop_packet(slot.id);
    } else {
      keep.push_back(slot);
    }
  }
  in.slots.swap(keep);
  in.head = 0;
  in.live = in.slots.size();
}

void Network::purge_pending_delivers(topo::LinkId link) {
  // Packets whose final transmission started before the kill exist only
  // as calendar kDeliver events; sever the ones crossing this wire.
  for (auto& bucket : calendar_) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < bucket.size(); ++r) {
      const Event event = bucket[r];
      if (event.kind == EventKind::kDeliver &&
          packets_[event.arg].terminal_link == link) {
        drop_packet(event.arg);
        continue;
      }
      bucket[w++] = event;
    }
    bucket.resize(w);
  }
}

Network::FaultStats Network::take_link_down(topo::LinkId link) {
  LMPR_EXPECTS(lft_mode_);
  LMPR_EXPECTS(!in_cycle_);
  FaultStats stats;
  if (link_enabled_[link] == 0) return stats;  // already down
  const std::uint64_t dropped_before = metrics_.packets_dropped;
  const std::uint64_t rerouted_before = metrics_.packets_rerouted;
  link_enabled_[link] = 0;
  refresh_selector_gate(link);
  const topo::Link& edge = topo_->link(link);
  const bool src_dead =
      !topo_->is_host(edge.src) && switch_dead_[edge.src] != 0;
  const bool dst_dead =
      !topo_->is_host(edge.dst) && switch_dead_[edge.dst] != 0;
  for (std::uint32_t vc = 0; vc < config_.num_vcs; ++vc) {
    const ChannelId ch = channel(link, vc);
    // Packets queued at the upstream node but not yet departed: re-home
    // them through the current tables or drop, per policy.  A packet
    // mid-serialization already left this fifo and lives downstream.
    OutputChannel& out = outputs_[ch];
    while (!out.fifo.empty()) {
      const PacketId pkt_id = out.fifo.front();
      out.fifo.pop_front();
      --out.occupancy;
      --links_[link].queued;
      if (src_dead || !requeue_output(pkt_id, edge.src)) {
        drop_packet(pkt_id);
      }
    }
    purge_input_channel(ch, dst_dead);
  }
  if (link_terminal_[link]) purge_pending_delivers(link);
  stats.dropped = metrics_.packets_dropped - dropped_before;
  stats.rerouted = metrics_.packets_rerouted - rerouted_before;
  return stats;
}

void Network::bring_link_up(topo::LinkId link) {
  LMPR_EXPECTS(lft_mode_);
  LMPR_EXPECTS(!in_cycle_);
  if (link_enabled_[link] != 0) return;
  link_enabled_[link] = 1;
  refresh_selector_gate(link);
  // Nothing routes onto a masked link, so its output queues stayed empty
  // between the kill and the revival.
  LMPR_ASSERT(links_[link].queued == 0);
}

void Network::set_switch_state(topo::NodeId node, bool alive) {
  LMPR_EXPECTS(lft_mode_);
  LMPR_EXPECTS(!in_cycle_);
  LMPR_EXPECTS(!topo_->is_host(node));
  switch_dead_[node] = alive ? 0 : 1;
}

void Network::set_tables(const fabric::Tables& tables) {
  LMPR_EXPECTS(lft_mode_);
  LMPR_EXPECTS(!in_cycle_);
  LMPR_EXPECTS(tables.size() == static_cast<std::size_t>(topo_->num_nodes()));
  lft_tables_ = &tables;
  // Repair can merge or split variant entries, changing which nodes
  // offer the selector a real choice.
  refresh_variant_diversity();
  if (!active_sets_) return;
  // Refresh the routing snapshots the active crossbar scans so the
  // invariant slot.out_link == tables[node][pkt.lid] keeps holding.
  for (std::size_t ch = 0; ch < inputs_.size(); ++ch) {
    InputChannel& in = inputs_[ch];
    if (in.live == 0) continue;
    const topo::NodeId node =
        link_node_[channel_link_[static_cast<ChannelId>(ch)]];
    for (std::size_t pos = in.head; pos < in.slots.size(); ++pos) {
      InputSlot& slot = in.slots[pos];
      if (slot.id == kNone) continue;
      slot.out_link = (*lft_tables_)[node][packets_[slot.id].lid];
    }
  }
}

WindowMetrics Network::harvest_window() {
  LMPR_EXPECTS(windowed_);
  LMPR_EXPECTS(!in_cycle_);
  WindowMetrics window;
  window.start_cycle = window_start_;
  window.end_cycle = current_cycle_;
  window.messages_delivered = window_delays_.size();
  window.flits_delivered = window_flits_;
  window.packets_dropped = window_dropped_;
  window.packets_rerouted = window_rerouted_;
  if (!window_delays_.empty()) {
    std::sort(window_delays_.begin(), window_delays_.end());
    double sum = 0.0;
    for (const double delay : window_delays_) sum += delay;
    const std::size_t n = window_delays_.size();
    window.mean_message_delay = sum / static_cast<double>(n);
    const std::size_t rank = (n * 99 + 99) / 100;  // ceil(0.99 n), >= 1
    window.p99_message_delay = window_delays_[rank - 1];
  }
  const Cycle len = current_cycle_ - window_start_;
  if (len > 0) {
    window.throughput =
        static_cast<double>(window_flits_) /
        (static_cast<double>(len) * static_cast<double>(num_hosts_));
    std::uint64_t peak = 0;
    for (const std::uint64_t flits : window_link_flits_) {
      peak = std::max(peak, flits);
    }
    window.max_link_utilization =
        static_cast<double>(peak) / static_cast<double>(len);
  }
  window_start_ = current_cycle_;
  window_delays_.clear();
  window_flits_ = 0;
  window_dropped_ = 0;
  window_rerouted_ = 0;
  std::fill(window_link_flits_.begin(), window_link_flits_.end(), 0);
  return window;
}

}  // namespace lmpr::flit
