#include "flit/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flit/network.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lmpr::flit {

namespace {

SweepPoint condense(const SimMetrics& metrics);

}  // namespace

SweepPoint simulate_load_point(const route::RouteTable& table,
                               const SimConfig& config) {
  Network network(table, config);
  return condense(network.run());
}

SweepPoint simulate_load_point(const fabric::Lft& lft,
                               const fabric::Tables& tables,
                               const SimConfig& config) {
  Network network(lft, tables, config);
  return condense(network.run());
}

namespace {

SweepPoint condense(const SimMetrics& metrics) {
  SweepPoint point;
  point.offered_load = metrics.offered_load;
  point.throughput = metrics.throughput;
  point.mean_message_delay =
      metrics.message_delay.count() > 0
          ? metrics.message_delay.mean()
          : std::numeric_limits<double>::quiet_NaN();
  point.mean_packet_delay =
      metrics.packet_delay.count() > 0
          ? metrics.packet_delay.mean()
          : std::numeric_limits<double>::quiet_NaN();
  if (metrics.message_delay_dist.sample_size() > 0) {
    point.median_message_delay = metrics.message_delay_dist.median();
    point.p99_message_delay = metrics.message_delay_dist.p99();
  } else {
    point.median_message_delay = std::numeric_limits<double>::quiet_NaN();
    point.p99_message_delay = std::numeric_limits<double>::quiet_NaN();
  }
  point.delivered_fraction = metrics.delivered_fraction();
  point.out_of_order_fraction = metrics.out_of_order_fraction();
  return point;
}

/// Shared sweep driver: `point_fn(config)` runs one load point.
template <typename PointFn>
SweepResult sweep_impl(const SimConfig& base_config,
                       const std::vector<double>& loads,
                       util::ThreadPool* pool, PointFn&& point_fn) {
  SweepResult result;
  result.points.resize(loads.size());
  const auto run_point = [&](std::size_t i) {
    SimConfig config = base_config;
    config.offered_load = loads[i];
    // Independent but reproducible randomness per load point.
    std::uint64_t mix = base_config.seed + i;
    config.seed = util::splitmix64(mix);
    result.points[i] = point_fn(config);
  };
  if (pool != nullptr) {
    pool->parallel_for(loads.size(), run_point);
  } else {
    for (std::size_t i = 0; i < loads.size(); ++i) run_point(i);
  }
  // Index-ordered reduction: identical for any worker count.
  for (const SweepPoint& point : result.points) {
    result.max_throughput = std::max(result.max_throughput, point.throughput);
  }
  return result;
}

}  // namespace

SweepResult run_load_sweep(const route::RouteTable& table,
                           const SimConfig& base_config,
                           const std::vector<double>& loads,
                           util::ThreadPool* pool) {
  return sweep_impl(base_config, loads, pool, [&](const SimConfig& config) {
    return simulate_load_point(table, config);
  });
}

SweepResult run_load_sweep(const fabric::Lft& lft,
                           const fabric::Tables& tables,
                           const SimConfig& base_config,
                           const std::vector<double>& loads,
                           util::ThreadPool* pool) {
  return sweep_impl(base_config, loads, pool, [&](const SimConfig& config) {
    return simulate_load_point(lft, tables, config);
  });
}

std::vector<double> linspace_loads(double lo, double hi, std::size_t count) {
  LMPR_EXPECTS(count >= 2);
  LMPR_EXPECTS(lo > 0.0 && hi <= 1.0 && lo <= hi);
  std::vector<double> loads(count);
  for (std::size_t i = 0; i < count; ++i) {
    loads[i] = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(count - 1);
  }
  return loads;
}

}  // namespace lmpr::flit
