// Flit-level simulator configuration (paper Section 5, flit experiments).
//
// The simulator models virtual cut-through switching with credit-based
// flow control and a single virtual channel, "to closely resemble
// InfiniBand networks":
//   * links carry one flit per cycle (capacity 1.0 == 1 flit/cycle/host);
//   * a packet may begin its next hop as soon as its head flit has
//     arrived AND the downstream input buffer has space for the whole
//     packet (the VCT condition); otherwise it blocks in place, which is
//     what produces tree saturation beyond the saturation point;
//   * message arrivals per host follow a Poisson process whose mean is
//     set by the offered load; each message is a fixed number of packets.
//
// The paper's packet/message/buffer sizes were lost to OCR damage; the
// defaults below are BookSim-era conventions and are fully configurable
// (DESIGN.md "Parameter reconstruction").
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "adaptive/selector.hpp"

namespace lmpr::flit {

/// The adaptive variant-selection policy lives in src/adaptive (the
/// subsystem owns scoring, tie-break and counters); the flit config just
/// names it the way it names the other per-run policies.
using SelectPolicy = adaptive::SelectPolicy;

/// What happens to a packet whose forwarding entry dies under it (LFT
/// mode only -- the replay engine's fault model; see DESIGN §11).
enum class DropPolicy {
  /// The packet is lost: counted in packets_dropped, and its message can
  /// never complete (messages_lost).  Models an unreliable fabric /
  /// transport-level retry outside the simulation.
  kDrop,
  /// The switch holding the packet re-homes it onto another path variant
  /// whose table entry still delivers (counted in packets_rerouted);
  /// packets already serializing over the severed wire still drop.
  kRerouteAtSwitch,
};

inline std::string_view to_string(DropPolicy policy) noexcept {
  switch (policy) {
    case DropPolicy::kDrop: return "drop";
    case DropPolicy::kRerouteAtSwitch: return "reroute_at_switch";
  }
  return "?";
}

/// "drop" / "reroute_at_switch" -- the spelling `lmpr replay
/// --drop-policy` accepts.
inline std::optional<DropPolicy> drop_policy_from_string(
    std::string_view name) noexcept {
  if (name == "drop") return DropPolicy::kDrop;
  if (name == "reroute_at_switch") return DropPolicy::kRerouteAtSwitch;
  return std::nullopt;
}

/// Which cycle-loop implementation drives the simulation.  All three
/// produce bit-identical SimMetrics / WindowMetrics (proven by
/// test_flit_kernel_equivalence and the `kernel_diff` property harness);
/// they differ only in how much work an idle cycle costs.
enum class Kernel {
  /// The original full scans: the crossbar walks every (link, VC) input
  /// channel and start_transmissions walks every link, every cycle.
  /// Per-cycle cost O(num_links * num_vcs).  Kept as the oracle the
  /// differential tests compare against.
  kReference,
  /// Sorted intrusive membership lists iterate only work that can
  /// progress this cycle.  Per-cycle cost O(in-flight traffic), but the
  /// loop still ticks every cycle (and scans every host NIC).
  kActiveSet,
  /// The active-set machinery plus an event-driven scheduler: hosts
  /// sleep on a wake heap between Poisson arrivals, and when the fabric
  /// is provably quiescent the clock fast-forwards to the next calendar
  /// event or host wake, skipping idle cycles entirely.  Cost O(events),
  /// independent of how long the fabric idles between them.
  kEvent,
};

inline std::string_view to_string(Kernel kernel) noexcept {
  switch (kernel) {
    case Kernel::kReference: return "reference";
    case Kernel::kActiveSet: return "active_set";
    case Kernel::kEvent: return "event";
  }
  return "?";
}

/// "reference" / "active_set" / "event" -- the spelling `lmpr replay
/// --kernel` accepts.
inline std::optional<Kernel> kernel_from_string(
    std::string_view name) noexcept {
  if (name == "reference") return Kernel::kReference;
  if (name == "active_set") return Kernel::kActiveSet;
  if (name == "event") return Kernel::kEvent;
  return std::nullopt;
}

/// How a multi-path route table is exercised by traffic.
enum class PathSelection {
  kRandomPerMessage,  ///< one uniform pick per message (paper's model)
  kRandomPerPacket,   ///< one uniform pick per packet (ablation)
  kRoundRobinPerMessage,  ///< deterministic rotation per SD pair (ablation)
};

/// Routing discipline inside the fabric.
enum class RoutingMode {
  /// Packets follow paths drawn from the RouteTable (the paper's
  /// traffic-oblivious model).
  kOblivious,
  /// At each switch on the upward leg the packet takes the upward port
  /// with the most downstream credits (ties broken round-robin); the
  /// downward leg is the unique descent.  The credit-based adaptive
  /// baseline of the paper's related work (Gomez et al., IPDPS'07).
  kAdaptive,
};

inline std::string_view to_string(RoutingMode mode) noexcept {
  switch (mode) {
    case RoutingMode::kOblivious: return "oblivious";
    case RoutingMode::kAdaptive: return "adaptive";
  }
  return "?";
}

/// "oblivious" / "adaptive" -- the spelling `lmpr replay --routing`
/// accepts.
inline std::optional<RoutingMode> routing_mode_from_string(
    std::string_view name) noexcept {
  if (name == "oblivious") return RoutingMode::kOblivious;
  if (name == "adaptive") return RoutingMode::kAdaptive;
  return std::nullopt;
}

/// How each message's destination is chosen.
///
/// The paper's flit experiments use "uniform random traffic, where each
/// source sends traffic to a randomly selected destination node such that
/// each node in the network has an equal probability of being the
/// destination".  Reproduction note (DESIGN.md): only the FIXED reading --
/// one uniformly random destination per source, held for the whole run,
/// i.e. a random permutation -- yields the paper's Table 1 shape, because
/// with a fresh destination per message every deterministic scheme is
/// statically balanced and multi-path has nothing to win.  Persistent
/// flows are what limited multi-path routing exists to spread.
enum class DestinationMode {
  kFixedPermutation,  ///< random permutation drawn at t=0 (paper's Table 1)
  kPerMessage,        ///< fresh uniform destination per message (ablation)
  kHotspot,           ///< hotspot_fraction of messages hit hotspot_target,
                      ///< the rest uniform (classic endpoint congestion)
  kShift,             ///< fixed pairing dst = (src + shift_distance) mod
                      ///< hosts: the adversarial shift permutation (shift-1
                      ///< concentrates every leaf's traffic on one uplink
                      ///< column under deterministic single-path routing)
};

inline std::string_view to_string(DestinationMode mode) noexcept {
  switch (mode) {
    case DestinationMode::kFixedPermutation: return "fixed_permutation";
    case DestinationMode::kPerMessage: return "per_message";
    case DestinationMode::kHotspot: return "hotspot";
    case DestinationMode::kShift: return "shift";
  }
  return "?";
}

struct SimConfig {
  std::uint32_t packet_flits = 16;     ///< flits per packet
  std::uint32_t message_packets = 4;   ///< packets per message
  std::uint32_t buffer_packets = 8;    ///< input/output buffer capacity
  /// Virtual channels per link; the paper evaluates with 1.  Each VC has
  /// its own buffers and credits; packets keep their VC along the path
  /// (InfiniBand SL->VL style).
  std::uint32_t num_vcs = 1;

  std::uint64_t warmup_cycles = 10'000;
  std::uint64_t measure_cycles = 30'000;
  /// Extra cycles after the measurement window so in-flight measured
  /// messages can complete (their delays are recorded on delivery).
  std::uint64_t drain_cycles = 10'000;

  /// Offered load in flits/cycle/host, in (0, 1].
  double offered_load = 0.5;

  std::uint64_t seed = 42;
  RoutingMode routing_mode = RoutingMode::kOblivious;
  PathSelection path_selection = PathSelection::kRandomPerMessage;
  DestinationMode destination_mode = DestinationMode::kFixedPermutation;

  /// Adaptive variant selection among the K installed LFT variants (LFT
  /// mode only; rejected at Network construction in route-table mode,
  /// where packets carry explicit paths with no sibling variants, and
  /// alongside RoutingMode::kAdaptive, which ignores the tables).
  /// `path_selection` still draws the INITIAL variant; the adaptive
  /// policies may then rewrite the packet's DLID to a sibling variant at
  /// injection and at each upward hop (DESIGN §16).
  SelectPolicy select = SelectPolicy::kOblivious;

  /// kHotspot parameters.  Validated at Network construction:
  /// hotspot_target must name a host and hotspot_fraction must be in
  /// [0, 1] (std::invalid_argument otherwise).
  std::uint64_t hotspot_target = 0;
  double hotspot_fraction = 0.2;

  /// kShift parameter: dst = (src + shift_distance) mod hosts.  A
  /// distance that is 0 mod hosts pairs every source with itself and
  /// silences all traffic, so it is rejected at construction.
  std::uint64_t shift_distance = 1;

  /// Kernel selection (see Kernel).  All three kernels produce
  /// bit-identical SimMetrics / WindowMetrics; the choice only trades
  /// implementation complexity against idle-cycle cost.  The active-set
  /// kernel stays the default: the event kernel is strictly faster at low
  /// load but younger, and the differential harnesses exist to keep all
  /// three honest.
  Kernel kernel = Kernel::kActiveSet;

  /// LFT-mode fault handling: what becomes of packets caught on a killed
  /// cable or pointed at a dead forwarding entry (ignored in route-table
  /// mode, where the fabric never degrades).
  DropPolicy drop_policy = DropPolicy::kDrop;

  /// Maintain epoch-window accumulators so Network::harvest_window() can
  /// snapshot per-window throughput/delay/utilization between run_until()
  /// calls.  Off by default: whole-run metrics stay bit-identical and the
  /// hot loop skips the window bookkeeping.
  bool window_metrics = false;

  /// Optional explicit pairing for kFixedPermutation (fixed_destinations[s]
  /// is host s's destination; s itself silences the source).  When empty, a
  /// random permutation is drawn from `seed`.  Letting the caller pin the
  /// pairing makes flit runs comparable across heuristics and lets the
  /// flow-level analysis see the identical traffic matrix.
  std::vector<std::uint64_t> fixed_destinations;

  std::uint32_t message_flits() const noexcept {
    return packet_flits * message_packets;
  }
};

}  // namespace lmpr::flit
