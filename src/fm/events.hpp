// The fabric manager's event stream: the deterministic, replayable
// command language `lmpr fm` consumes (one event per line, '#' starts a
// comment):
//
//   cable_down <u> <v>    # the cable between nodes u and v dies
//   cable_up <u> <v>      # it is re-cabled / heals
//   switch_down <s>       # switch s dies with every incident cable
//   switch_up <s>         # switch s is replaced / reboots
//   query <src> <dst>     # report the current multipath state of a pair
//
// Node ids are RAW fabric ids (the subnet's view, as in discovery::
// RawFabric); the manager translates them through the recognition
// mapping.  Parsing is total: malformed scripts produce ok = false with
// a line-numbered diagnostic instead of exceptions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lmpr::fm {

enum class EventType { kCableDown, kCableUp, kSwitchDown, kSwitchUp, kQuery };

std::string_view to_string(EventType type) noexcept;

struct Event {
  EventType type = EventType::kQuery;
  /// cable_down/cable_up: the raw endpoints; switch_down/switch_up: a in
  /// use only; query: a = src host, b = dst host.
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  bool topology_event() const noexcept { return type != EventType::kQuery; }
  friend bool operator==(const Event&, const Event&) = default;
};

struct EventScript {
  bool ok = false;
  std::string error;  ///< line-numbered diagnostic when !ok
  std::vector<Event> events;
};

EventScript parse_event_script(std::istream& in);
EventScript parse_event_script(const std::string& text);

}  // namespace lmpr::fm
