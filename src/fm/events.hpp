// The fabric manager's event stream: the deterministic, replayable
// command language `lmpr fm` and `lmpr replay` consume (one event per
// line, '#' starts a comment):
//
//   cable_down <u> <v>    # the cable between nodes u and v dies
//   cable_up <u> <v>      # it is re-cabled / heals
//   switch_down <s>       # switch s dies with every incident cable
//   switch_up <s>         # switch s is replaced / reboots
//   query <src> <dst>     # report the current multipath state of a pair
//
// Any event line may carry an optional leading timestamp token `@<cycle>`
// (e.g. `@2500 cable_down 0 16`): the simulation cycle, relative to the
// start of the measurement window, at which the replay engine fires the
// event.  Timestamps must be non-decreasing in script order -- a script
// whose explicit stamps go backwards is rejected with a line-numbered
// diagnostic (events at the same cycle are fine and apply in script
// order).  `lmpr fm` ignores the stamps (event time is script order).
//
// Node ids are RAW fabric ids (the subnet's view, as in discovery::
// RawFabric); the manager translates them through the recognition
// mapping.  Parsing is total: malformed scripts produce ok = false with
// a line-numbered diagnostic instead of exceptions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lmpr::fm {

enum class EventType { kCableDown, kCableUp, kSwitchDown, kSwitchUp, kQuery };

std::string_view to_string(EventType type) noexcept;

struct Event {
  EventType type = EventType::kQuery;
  /// cable_down/cable_up: the raw endpoints; switch_down/switch_up: a in
  /// use only; query: a = src host, b = dst host.
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  /// Replay cycle (offset into the measurement window) when `timed`;
  /// untimed events are spread over the timeline by stamp_events().
  std::uint64_t at = 0;
  bool timed = false;

  bool topology_event() const noexcept { return type != EventType::kQuery; }
  friend bool operator==(const Event&, const Event&) = default;
};

struct EventScript {
  bool ok = false;
  std::string error;  ///< line-numbered diagnostic when !ok
  std::vector<Event> events;
};

EventScript parse_event_script(std::istream& in);
EventScript parse_event_script(const std::string& text);

/// One event pinned to a simulation cycle (offset into the measurement
/// window) -- the cycle-stamped view of a script the replay engine walks.
struct TimedEvent {
  Event event;
  std::uint64_t cycle = 0;
  friend bool operator==(const TimedEvent&, const TimedEvent&) = default;
};

/// Stamps every event of a parsed (`script.ok`) script with a cycle.
/// Explicitly timed events keep their `@` stamps; each run of untimed
/// events is spread evenly over the open interval between the enclosing
/// stamps (script start = 0, script end = `horizon`), so a stamp-free
/// script becomes `horizon / (n + 1)`-spaced -- and the result is
/// non-decreasing whenever the script parsed (the parser rejects
/// backward explicit stamps).
std::vector<TimedEvent> stamp_events(const EventScript& script,
                                     std::uint64_t horizon);

}  // namespace lmpr::fm
