#include "fm/fabric_manager.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>

#include "topology/generic.hpp"
#include "util/contracts.hpp"

namespace lmpr::fm {

namespace {

constexpr std::uint64_t kNoCable = static_cast<std::uint64_t>(-1);

std::uint64_t pair_key(topo::NodeId u, topo::NodeId v) {
  const std::uint64_t lo = std::min(u, v);
  const std::uint64_t hi = std::max(u, v);
  return (lo << 32) | hi;
}

}  // namespace

bool follow_route(const topo::Topology& topology, const fabric::Lft& lft,
                  const fabric::Tables& tables, std::uint64_t src,
                  std::uint64_t dst, std::uint32_t j,
                  std::vector<topo::LinkId>& links) {
  links.clear();
  if (src == dst) return true;
  const std::uint32_t lid = lft.lid_of(dst, j);
  const topo::NodeId target = topology.host(dst);
  topo::NodeId node = topology.host(src);
  const std::size_t hop_limit = topology.hop_limit();
  for (std::size_t hop = 0; hop <= hop_limit; ++hop) {
    const topo::LinkId link = tables[node][lid];
    if (link == topo::kInvalidLink) return node == target;
    links.push_back(link);
    node = topology.link(link).dst;
  }
  return false;  // hop budget exhausted: cannot happen
}

double reference_max_load(const topo::Topology& topology,
                          const fabric::Lft& lft,
                          const fabric::Tables& tables,
                          flow::LoadEvaluator& eval) {
  const std::uint64_t hosts = topology.num_hosts();
  if (hosts < 2) return 0.0;
  // Reference permutation: cyclic shift by half the fabric, so every
  // demand crosses the upper levels.
  const std::uint64_t shift = std::max<std::uint64_t>(1, hosts / 2);
  std::vector<topo::LinkId> links;
  eval.begin();
  for (std::uint64_t s = 0; s < hosts; ++s) {
    const std::uint64_t d = (s + shift) % hosts;
    std::uint32_t usable = 0;
    for (std::uint32_t j = 0; j < lft.block(); ++j) {
      usable += follow_route(topology, lft, tables, s, d, j, links);
    }
    if (usable == 0) continue;  // disconnected pair: no load placed
    const double fraction = 1.0 / static_cast<double>(usable);
    for (std::uint32_t j = 0; j < lft.block(); ++j) {
      if (!follow_route(topology, lft, tables, s, d, j, links)) continue;
      for (const topo::LinkId link : links) eval.add_load(link, fraction);
    }
  }
  return eval.end().max_load;
}

double reference_max_load(const topo::Topology& topology,
                          const fabric::Lft& lft,
                          const fabric::Tables& tables) {
  flow::LoadEvaluator eval{topology};
  return reference_max_load(topology, lft, tables, eval);
}

fabric::Tables build_managed_tables(const topo::Topology& topology,
                                    const fabric::Lft& lft,
                                    const fabric::Degradation& degradation,
                                    fabric::RepairPolicy policy) {
  fabric::Tables own = fabric::build_lft(lft, degradation, policy);
  if (policy == fabric::RepairPolicy::kFirstSurviving) return own;
  fabric::Tables first = fabric::build_lft(
      lft, degradation, fabric::RepairPolicy::kFirstSurviving);
  flow::LoadEvaluator eval{topology};
  const double own_load = reference_max_load(topology, lft, own, eval);
  const double first_load = reference_max_load(topology, lft, first, eval);
  return own_load <= first_load ? own : first;
}

FabricManager::FabricManager(const discovery::RawFabric& fabric,
                             const FmConfig& config, DeferShadow)
    : config_(config) {
  LMPR_EXPECTS(config.k_paths >= 1);
  LMPR_EXPECTS(config.full_rebuild_threshold > 0.0);
  const auto recognition = discovery::recognize_xgft(fabric);
  if (recognition.ok) {
    canonical_ = recognition.canonical;
    topo_ = std::make_unique<topo::Xgft>(recognition.spec);
  } else if (config.allow_generic) {
    try {
      auto generic = std::make_unique<topo::GenericGraphTopology>(fabric);
      canonical_ = generic->canonical();
      topo_ = std::move(generic);
    } catch (const std::exception& e) {
      error_ = std::string{"generic topology rejected: "} + e.what();
      return;
    }
  } else {
    error_ = "fabric not recognized as an XGFT: " + recognition.error;
    return;
  }
  lft_ = std::make_unique<fabric::Lft>(*topo_, config.k_paths, config.layout);
  degradation_ = std::make_unique<fabric::Degradation>(*topo_);
  load_eval_ = std::make_unique<flow::LoadEvaluator>(*topo_);
  tables_ = fabric::build_lft(*lft_, *degradation_, config.repair_policy);
  index_cables();
  const std::size_t hosts = static_cast<std::size_t>(topo_->num_hosts());
  degraded_.assign(hosts, 0);
  disconnected_sources_.assign(hosts, 0);
  rebuild_use_counts();
}

FmConfig FabricManager::shadow_config(const FmConfig& config) {
  FmConfig shadow = config;
  shadow.repair_policy = fabric::RepairPolicy::kFirstSurviving;
  // The twin never reports; we read its tables and compute both loads
  // ourselves during arbitration.
  shadow.track_link_load = false;
  return shadow;
}

void FabricManager::adopt_shadow(std::unique_ptr<FabricManager> twin) {
  LMPR_EXPECTS(config_.repair_policy == fabric::RepairPolicy::kLoadAware);
  LMPR_EXPECTS(shadow_ == nullptr && twin != nullptr && twin->ok());
  shadow_ = std::move(twin);
}

FabricManager::FabricManager(const discovery::RawFabric& fabric,
                             const FmConfig& config)
    : FabricManager(fabric, config, DeferShadow{}) {
  if (ok() && config.repair_policy == fabric::RepairPolicy::kLoadAware) {
    adopt_shadow(
        std::make_unique<FabricManager>(fabric, shadow_config(config)));
  }
}

FabricManager::FabricManager(const topo::XgftSpec& spec,
                             const FmConfig& config)
    : FabricManager(discovery::export_fabric(topo::Xgft{spec}), config) {}

const topo::Xgft& FabricManager::xgft() const {
  LMPR_EXPECTS(topo_ != nullptr && topo_->kind() == "xgft");
  return static_cast<const topo::Xgft&>(*topo_);
}

void FabricManager::index_cables() {
  cable_index_.reserve(static_cast<std::size_t>(topo_->num_cables()));
  for (std::uint64_t c = 0; c < topo_->num_cables(); ++c) {
    const topo::Link& link = topo_->link(static_cast<topo::LinkId>(c));
    cable_index_[pair_key(link.src, link.dst)] = c;
  }
}

std::uint64_t FabricManager::cable_between(topo::NodeId u,
                                           topo::NodeId v) const {
  const auto it = cable_index_.find(pair_key(u, v));
  return it == cable_index_.end() ? kNoCable : it->second;
}

void FabricManager::rebuild_use_counts() {
  use_counts_.assign(
      static_cast<std::size_t>(topo_->num_cables()),
      std::vector<std::uint32_t>(static_cast<std::size_t>(topo_->num_hosts()),
                                 0));
  for (std::uint64_t dst = 0; dst < topo_->num_hosts(); ++dst) {
    adjust_use(dst, +1);
  }
}

void FabricManager::adjust_use(std::uint64_t dst, int delta) {
  const std::uint32_t block = lft_->block();
  const std::uint32_t first = lft_->lid_of(dst, 0);
  for (const auto& row : tables_) {
    for (std::uint32_t j = 0; j < block; ++j) {
      const topo::LinkId entry = row[first + j];
      if (entry == topo::kInvalidLink) continue;
      auto& count =
          use_counts_[static_cast<std::size_t>(topo_->cable_of(entry))]
                     [static_cast<std::size_t>(dst)];
      if (delta > 0) {
        ++count;
      } else {
        LMPR_ASSERT(count > 0);
        --count;
      }
    }
  }
}

void FabricManager::adjust_use_scoped(std::uint64_t dst,
                                      std::span<const topo::NodeId> rows,
                                      int delta) {
  const std::uint32_t block = lft_->block();
  const std::uint32_t first = lft_->lid_of(dst, 0);
  for (const topo::NodeId node : rows) {
    const auto& row = tables_[static_cast<std::size_t>(node)];
    for (std::uint32_t j = 0; j < block; ++j) {
      const topo::LinkId entry = row[first + j];
      if (entry == topo::kInvalidLink) continue;
      auto& count =
          use_counts_[static_cast<std::size_t>(topo_->cable_of(entry))]
                     [static_cast<std::size_t>(dst)];
      if (delta > 0) {
        ++count;
      } else {
        LMPR_ASSERT(count > 0);
        --count;
      }
    }
  }
}

void FabricManager::repair(const std::vector<std::uint64_t>& affected,
                           EventRecord& record) {
  if (affected.empty()) return;
  const std::uint64_t hosts = topo_->num_hosts();
  const bool full =
      static_cast<double>(affected.size()) >=
      config_.full_rebuild_threshold * static_cast<double>(hosts);
  record.full_rebuild = full;

  const auto repair_one = [&](std::uint64_t dst) {
    adjust_use(dst, -1);
    const auto stats =
        fabric::rebuild_destination(*lft_, *degradation_, dst, tables_,
                                    scratch_, config_.repair_policy);
    adjust_use(dst, +1);
    degraded_[static_cast<std::size_t>(dst)] = !stats.nominal;
    auto& old_disc = disconnected_sources_[static_cast<std::size_t>(dst)];
    summary_.disconnected_pairs -= old_disc;
    summary_.disconnected_pairs += stats.disconnected_sources;
    old_disc = stats.disconnected_sources;
    record.churn += stats.entries_written;
  };

  if (full) {
    for (std::uint64_t dst = 0; dst < hosts; ++dst) repair_one(dst);
    record.destinations_repaired = static_cast<std::size_t>(hosts);
  } else {
    for (const std::uint64_t dst : affected) repair_one(dst);
    record.destinations_repaired = affected.size();
  }
}

void FabricManager::finish_topology_event(EventRecord& record) {
  ++summary_.events;
  ++summary_.topology_events;
  summary_.total_churn += record.churn;
  summary_.destinations_repaired += record.destinations_repaired;
  if (record.full_rebuild) ++summary_.full_rebuilds;
  summary_.total_repair_seconds += record.repair_seconds;
  record.disconnected_pairs = summary_.disconnected_pairs;
  if (summary_.disconnected_pairs > 0) {
    ++summary_.current_disconnected_window;
    summary_.max_disconnected_window =
        std::max(summary_.max_disconnected_window,
                 summary_.current_disconnected_window);
  } else {
    summary_.current_disconnected_window = 0;
  }
  if (shadow_ != nullptr) {
    // Arbitrate: expose whichever rebuild carries the reference
    // permutation with the lower max link load (ties prefer our greedy
    // spread).  Both loads are pure functions of the degradation state,
    // so the winner is too.
    const double own_load =
        reference_max_load(*topo_, *lft_, tables_, *load_eval_);
    const double shadow_load =
        reference_max_load(*topo_, *lft_, shadow_->tables_, *load_eval_);
    prefer_own_ = own_load <= shadow_load;
    if (config_.track_link_load) {
      record.max_link_load = prefer_own_ ? own_load : shadow_load;
    }
  } else if (config_.track_link_load) {
    record.max_link_load =
        reference_max_load(*topo_, *lft_, tables_, *load_eval_);
  }
}

FabricManager::Walk FabricManager::walk(std::uint64_t src, std::uint64_t dst,
                                        std::uint32_t j) const {
  Walk result;
  result.delivered = follow_route(*topo_, *lft_, tables(), src, dst, j,
                                 result.links);
  return result;
}

EventRecord FabricManager::apply(const Event& event) {
  EventRecord record;
  record.event = event;
  if (!ok()) {
    record.ok = false;
    record.error = "fabric manager not initialized: " + error_;
    return record;
  }
  const auto resolve = [&](std::uint32_t raw,
                           topo::NodeId& out) -> bool {
    if (raw >= canonical_.size()) {
      record.ok = false;
      record.error =
          "raw node id " + std::to_string(raw) + " out of range";
      return false;
    }
    out = canonical_[raw];
    return true;
  };

  using Clock = std::chrono::steady_clock;

  switch (event.type) {
    case EventType::kCableDown:
    case EventType::kCableUp: {
      topo::NodeId u = 0;
      topo::NodeId v = 0;
      if (!resolve(event.a, u) || !resolve(event.b, v)) return record;
      const std::uint64_t cable = cable_between(u, v);
      if (cable == kNoCable) {
        record.ok = false;
        record.error = "no cable between nodes " + std::to_string(event.a) +
                       " and " + std::to_string(event.b);
        return record;
      }
      const bool down = event.type == EventType::kCableDown;
      const std::size_t c = static_cast<std::size_t>(cable);
      if (shadow_ != nullptr) shadow_->apply(event);
      if (degradation_->cable_dead[c] != down) {
        const auto start = Clock::now();
        std::vector<std::uint64_t> affected;
        if (down) {
          degradation_->cable_dead[c] = true;
          const auto& uses = use_counts_[c];
          for (std::uint64_t d = 0; d < uses.size(); ++d) {
            if (uses[static_cast<std::size_t>(d)] > 0) affected.push_back(d);
          }
        } else {
          degradation_->cable_dead[c] = false;
          // Healing can only improve destinations that currently deviate
          // from the healthy layout somewhere.
          for (std::uint64_t d = 0; d < degraded_.size(); ++d) {
            if (degraded_[static_cast<std::size_t>(d)]) affected.push_back(d);
          }
        }
        repair(affected, record);
        if (!config_.zero_timings) {
          record.repair_seconds =
              std::chrono::duration<double>(Clock::now() - start).count();
        }
      }
      finish_topology_event(record);
      return record;
    }

    case EventType::kSwitchDown:
    case EventType::kSwitchUp: {
      topo::NodeId node = 0;
      if (!resolve(event.a, node)) return record;
      if (topo_->is_host(node)) {
        record.ok = false;
        record.error = "node " + std::to_string(event.a) +
                       " is a host, not a switch";
        return record;
      }
      const bool down = event.type == EventType::kSwitchDown;
      if (shadow_ != nullptr) shadow_->apply(event);
      if (degradation_->node_ok(node) == down) {
        const auto start = Clock::now();
        degradation_->node_dead[static_cast<std::size_t>(node)] = down;
        std::vector<std::uint64_t> affected;
        if (down) {
          // Destinations routed over any cable incident to the switch.
          std::vector<bool> seen(
              static_cast<std::size_t>(topo_->num_hosts()), false);
          const auto mark_cable = [&](topo::LinkId link) {
            const auto& uses =
                use_counts_[static_cast<std::size_t>(topo_->cable_of(link))];
            for (std::uint64_t d = 0; d < uses.size(); ++d) {
              if (uses[static_cast<std::size_t>(d)] > 0 &&
                  !seen[static_cast<std::size_t>(d)]) {
                seen[static_cast<std::size_t>(d)] = true;
                affected.push_back(d);
              }
            }
          };
          std::vector<topo::LinkId> incident;
          topo_->out_links(node, incident);
          for (const topo::LinkId link : incident) mark_cable(link);
          std::sort(affected.begin(), affected.end());
        } else {
          // Healing can only improve destinations that currently deviate
          // from the healthy layout somewhere (as for cable_up).
          for (std::uint64_t d = 0; d < degraded_.size(); ++d) {
            if (degraded_[static_cast<std::size_t>(d)]) affected.push_back(d);
          }
        }
        repair(affected, record);
        if (!config_.zero_timings) {
          record.repair_seconds =
              std::chrono::duration<double>(Clock::now() - start).count();
        }
      }
      finish_topology_event(record);
      return record;
    }

    case EventType::kQuery: {
      topo::NodeId src = 0;
      topo::NodeId dst = 0;
      if (!resolve(event.a, src) || !resolve(event.b, dst)) return record;
      if (!topo_->is_host(src) || !topo_->is_host(dst)) {
        record.ok = false;
        record.error = "query endpoints must be hosts";
        return record;
      }
      std::set<std::vector<topo::LinkId>> routes;
      for (std::uint32_t j = 0; j < lft_->block(); ++j) {
        const Walk w = walk(src, dst, j);
        if (!w.delivered) continue;
        if (record.usable_variants == 0) record.primary_hops = w.links.size();
        ++record.usable_variants;
        routes.insert(w.links);
      }
      record.connected = record.usable_variants > 0;
      record.distinct_paths = routes.size();
      record.disconnected_pairs = summary_.disconnected_pairs;
      ++summary_.events;
      ++summary_.queries;
      return record;
    }
  }
  record.ok = false;
  record.error = "unhandled event type";
  return record;
}

}  // namespace lmpr::fm
