#include "fm/events.hpp"

#include <charconv>
#include <sstream>

#include "util/contracts.hpp"

namespace lmpr::fm {

std::string_view to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kCableDown: return "cable_down";
    case EventType::kCableUp: return "cable_up";
    case EventType::kSwitchDown: return "switch_down";
    case EventType::kSwitchUp: return "switch_up";
    case EventType::kQuery: return "query";
  }
  return "?";
}

namespace {

EventScript fail(std::size_t line, const std::string& message) {
  EventScript script;
  script.ok = false;
  script.error = "event script line " + std::to_string(line) + ": " + message;
  return script;
}

}  // namespace

EventScript parse_event_script(std::istream& in) {
  EventScript script;
  std::string line;
  std::size_t line_no = 0;
  bool have_prev_stamp = false;
  std::uint64_t prev_stamp = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream iss(line);
    std::string keyword;
    if (!(iss >> keyword)) continue;  // blank / comment-only line

    Event event;
    if (keyword.front() == '@') {
      // Optional leading timestamp: "@<cycle>", non-decreasing across the
      // script's timed events.
      const char* first = keyword.data() + 1;
      const char* last = keyword.data() + keyword.size();
      std::uint64_t cycle = 0;
      const auto [ptr, ec] = std::from_chars(first, last, cycle);
      if (ec != std::errc{} || ptr != last || first == last) {
        return fail(line_no, "bad timestamp '" + keyword +
                                 "' (expected @<cycle>)");
      }
      if (have_prev_stamp && cycle < prev_stamp) {
        return fail(line_no, "timestamp @" + std::to_string(cycle) +
                                 " goes backwards (previous event was @" +
                                 std::to_string(prev_stamp) + ")");
      }
      have_prev_stamp = true;
      prev_stamp = cycle;
      event.at = cycle;
      event.timed = true;
      if (!(iss >> keyword)) {
        return fail(line_no, "timestamp '@" + std::to_string(cycle) +
                                 "' without an event");
      }
    }

    std::size_t operands = 2;
    if (keyword == "cable_down") {
      event.type = EventType::kCableDown;
    } else if (keyword == "cable_up") {
      event.type = EventType::kCableUp;
    } else if (keyword == "switch_down") {
      event.type = EventType::kSwitchDown;
      operands = 1;
    } else if (keyword == "switch_up") {
      event.type = EventType::kSwitchUp;
      operands = 1;
    } else if (keyword == "query") {
      event.type = EventType::kQuery;
    } else {
      return fail(line_no, "unknown event '" + keyword +
                               "' (expected cable_down, cable_up, "
                               "switch_down, switch_up or query)");
    }

    std::uint64_t values[2] = {0, 0};
    for (std::size_t i = 0; i < operands; ++i) {
      if (!(iss >> values[i])) {
        return fail(line_no, "'" + keyword + "' expects " +
                                 std::to_string(operands) + " node id" +
                                 (operands == 1 ? "" : "s"));
      }
      if (values[i] > 0xffffffffULL) {
        return fail(line_no, "node id " + std::to_string(values[i]) +
                                 " out of range");
      }
    }
    std::string extra;
    if (iss >> extra) {
      return fail(line_no, "trailing token '" + extra + "' after '" +
                               keyword + "'");
    }
    event.a = static_cast<std::uint32_t>(values[0]);
    event.b = static_cast<std::uint32_t>(values[1]);
    script.events.push_back(event);
  }
  script.ok = true;
  return script;
}

EventScript parse_event_script(const std::string& text) {
  std::istringstream in(text);
  return parse_event_script(in);
}

std::vector<TimedEvent> stamp_events(const EventScript& script,
                                     std::uint64_t horizon) {
  LMPR_EXPECTS(script.ok);
  const auto& events = script.events;
  std::vector<TimedEvent> out(events.size());
  std::size_t i = 0;
  std::uint64_t prev = 0;  // cycle assigned to the last placed event
  while (i < events.size()) {
    if (events[i].timed) {
      out[i] = {events[i], events[i].at};
      prev = events[i].at;
      ++i;
      continue;
    }
    // Spread the untimed run [i, j) evenly between the enclosing stamps.
    std::size_t j = i;
    while (j < events.size() && !events[j].timed) ++j;
    const std::uint64_t left = prev;
    std::uint64_t right = j < events.size() ? events[j].at : horizon;
    if (right < left) right = left;  // stamp-free tail past a late stamp
    const std::uint64_t run = j - i;
    for (std::size_t n = 0; n < run; ++n) {
      out[i + n] = {events[i + n],
                    left + (right - left) * (n + 1) / (run + 1)};
    }
    prev = out[j - 1].cycle;
    i = j;
  }
  return out;
}

}  // namespace lmpr::fm
