// The fabric-manager subsystem: the long-running control loop a real
// subnet manager runs on top of the static machinery in this repo.  It
// ingests a RawFabric exactly as a subnet manager sees one (opaque ids +
// cables), PROVES it is an XGFT via discovery::recognize_xgft (or, when
// FmConfig::allow_generic is set, falls back to a BFS-layered
// topo::GenericGraphTopology for fabrics that are not XGFTs), installs
// multipath LFTs for a path limit K (fabric::Lft, either LID layout),
// and then consumes a deterministic event stream (fm/events.hpp).
//
// After every topology event it performs INCREMENTAL LFT REPAIR: only
// destinations whose forwarding state can have changed are recomputed --
//
//   cable_down   destinations with at least one table entry currently
//                routed over the cable (tracked by per-cable use counts);
//   switch_down  destinations routed over any cable incident to the
//                switch;
//   cable_up /   destinations whose state deviates anywhere from the
//   switch_up    healthy layout (healing cannot affect a destination that
//                is already nominal everywhere);
//
// each via fabric::rebuild_destination with the configured
// fabric::RepairPolicy, so the repaired tables are BY CONSTRUCTION
// entry-for-entry identical to a from-scratch fabric::build_lft on the
// degraded topology under the same policy (the repair invariant the tests
// enforce independently -- both policies are pure per-destination
// functions of the degradation).  first_surviving re-homes each broken
// variant onto the next surviving port; load_aware spreads a column's
// displaced variants across surviving ports by their current variant
// counts, minimizing the estimated post-repair max link load (ties keep
// the d-mod-k order, so output stays deterministic).
//
// The greedy spread is column-local, and a column-local rule cannot see
// how its placement collides with OTHER destinations' traffic (when more
// variants survive than distinct routes, the forced double-up may land on
// a link that background traffic already saturates).  So under load_aware
// the manager additionally maintains a first_surviving SHADOW table set in
// lockstep and ARBITRATES after every topology event: tables() exposes
// whichever rebuild yields the lower reference-permutation max link load
// (ties prefer the greedy).  Both candidate tables and both loads are pure
// functions of the degradation state, so the exposed tables still equal a
// from-scratch build (fm::build_managed_tables) after every event, and
// load_aware is never worse than first_surviving on the reference load --
// the two guarantees the property harness asserts per event.
// When an event implicates more than full_rebuild_threshold of all
// destinations -- e.g. a switch death wiping a whole level's redundancy
// -- the manager falls back to a full recompute and says so in the event
// record.
//
// Every event yields an EventRecord with the churn metrics the paper's
// deployment story needs: LFT entries rewritten, destinations repaired,
// repair wall-clock, the post-event disconnected-pair count, and the
// max link load of a reference permutation routed over the surviving
// variants (flow::LoadEvaluator).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "discovery/recognize.hpp"
#include "fabric/degraded.hpp"
#include "fabric/lft.hpp"
#include "flow/link_load.hpp"
#include "fm/events.hpp"
#include "topology/topology.hpp"
#include "topology/xgft.hpp"

namespace lmpr::fm {

struct FmConfig {
  std::uint64_t k_paths = 4;
  fabric::LidLayout layout = fabric::LidLayout::kDisjointLayout;
  /// How repair re-homes displaced path variants (fabric/degraded.hpp).
  fabric::RepairPolicy repair_policy = fabric::RepairPolicy::kFirstSurviving;
  /// Affected-destination fraction at or above which repair falls back
  /// to a full recompute of every destination.
  double full_rebuild_threshold = 0.5;
  /// Evaluate the reference-permutation max link load after every
  /// topology event (skip for pure churn studies).
  bool track_link_load = true;
  /// Report all wall-clock fields as 0 so run reports are byte-stable
  /// (golden-file tests, CI diffs).
  bool zero_timings = false;
  /// When the fabric is not a well-formed XGFT, manage it anyway through
  /// a BFS-layered topo::GenericGraphTopology instead of failing
  /// construction.  Off by default: recognition failure stays an error
  /// for callers that require the XGFT proof.
  bool allow_generic = false;
};

struct EventRecord {
  Event event;
  bool ok = true;
  std::string error;  ///< semantic diagnostic when !ok (unknown cable, ..)

  // Topology events.
  std::size_t churn = 0;  ///< LFT entries rewritten by the repair
  std::size_t destinations_repaired = 0;
  bool full_rebuild = false;
  double repair_seconds = 0.0;
  /// Reference-permutation MLOAD over the surviving variants (0 when
  /// link-load tracking is off or for query events).
  double max_link_load = 0.0;

  // Both kinds.
  std::uint64_t disconnected_pairs = 0;  ///< ordered (s,d) pairs, post-event

  // Query events.
  bool connected = false;
  std::uint32_t usable_variants = 0;  ///< variants that still deliver
  std::uint64_t distinct_paths = 0;   ///< distinct surviving routes
  std::size_t primary_hops = 0;       ///< hop count of the first usable variant
};

struct FmSummary {
  std::size_t events = 0;
  std::size_t topology_events = 0;
  std::size_t queries = 0;
  std::size_t total_churn = 0;
  std::size_t full_rebuilds = 0;
  std::size_t destinations_repaired = 0;
  /// Longest run of consecutive topology events after which at least one
  /// pair was disconnected -- the outage time-window in event time.
  std::size_t max_disconnected_window = 0;
  std::size_t current_disconnected_window = 0;
  std::uint64_t disconnected_pairs = 0;  ///< current
  double total_repair_seconds = 0.0;
};

class FabricManager {
 public:
  /// Recognizes the fabric and installs the healthy tables.  On failure
  /// ok() is false and only error() is meaningful.
  FabricManager(const discovery::RawFabric& fabric, const FmConfig& config);
  /// Convenience: exports the spec's topology (identity ids) and routes
  /// it through the same recognition path.
  FabricManager(const topo::XgftSpec& spec, const FmConfig& config);

  FabricManager(const FabricManager&) = delete;
  FabricManager& operator=(const FabricManager&) = delete;
  virtual ~FabricManager() = default;

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }

  /// The managed topology (XGFT or generic).
  const topo::Topology& topology() const { return *topo_; }
  /// Checked downcast for XGFT-specific callers; requires
  /// topology().kind() == "xgft" (always true unless allow_generic
  /// admitted a non-XGFT fabric).
  const topo::Xgft& xgft() const;
  const fabric::Lft& lft() const { return *lft_; }
  const fabric::Degradation& degradation() const { return *degradation_; }
  /// The forwarding state the fabric routes on; invariant: equals
  /// fm::build_managed_tables(xgft(), lft(), degradation(),
  /// config().repair_policy) after every event.  Under load_aware this is
  /// the arbitration winner and may alias shadow_tables().
  const fabric::Tables& tables() const {
    return prefer_own_ ? tables_ : shadow_->tables_;
  }
  /// The manager's own policy rebuild -- invariant: equals
  /// fabric::build_lft(lft(), degradation(), config().repair_policy).
  /// Identical to tables() except under load_aware when arbitration
  /// prefers the first_surviving shadow.
  const fabric::Tables& policy_tables() const noexcept { return tables_; }
  /// The first_surviving shadow maintained for arbitration; null unless
  /// config().repair_policy is load_aware.  Invariant: equals
  /// fabric::build_lft(lft(), degradation(), kFirstSurviving).
  const fabric::Tables* shadow_tables() const noexcept {
    return shadow_ == nullptr ? nullptr : &shadow_->tables_;
  }
  /// use_counts()[cable][dst]: table entries of dst routed over the cable
  /// in policy_tables() -- the bookkeeping incremental repair keys its
  /// affected sets on (tests assert it stays consistent with
  /// policy_tables()).
  const std::vector<std::vector<std::uint32_t>>& use_counts() const noexcept {
    return use_counts_;
  }
  const FmConfig& config() const noexcept { return config_; }
  const FmSummary& summary() const noexcept { return summary_; }
  /// The proven raw-id -> topo-id isomorphism from recognition.
  const std::vector<topo::NodeId>& canonical() const noexcept {
    return canonical_;
  }

  /// Applies one event (raw node ids) and returns its record.  Events
  /// with !record.ok leave the state untouched.
  EventRecord apply(const Event& event);

  /// Ordered pairs (s, d), s != d, with no surviving variant.
  std::uint64_t disconnected_pairs() const noexcept {
    return summary_.disconnected_pairs;
  }

  struct Walk {
    bool delivered = false;
    std::vector<topo::LinkId> links;
  };
  /// Follows the EXPOSED tables (see tables()) from src toward
  /// lid_of(dst, j).
  Walk walk(std::uint64_t src, std::uint64_t dst, std::uint32_t j) const;

 protected:
  /// Tag for derived classes: construct WITHOUT the load_aware shadow
  /// twin (the derived constructor adopts a twin of its own kind via
  /// adopt_shadow, since virtual dispatch is unavailable here).
  struct DeferShadow {};
  FabricManager(const discovery::RawFabric& fabric, const FmConfig& config,
                DeferShadow);
  /// Installs the first_surviving arbitration twin a deferred-shadow
  /// construction skipped; requires load_aware policy and no shadow yet.
  void adopt_shadow(std::unique_ptr<FabricManager> twin);
  /// The config the arbitration twin runs: same knobs, first_surviving,
  /// no per-event load evaluation (arbitration reads its tables only).
  static FmConfig shadow_config(const FmConfig& config);

  void index_cables();
  void rebuild_use_counts();
  void adjust_use(std::uint64_t dst, int delta);
  /// adjust_use restricted to the given table rows -- the bookkeeping
  /// counterpart of fabric::rebuild_destination_scoped (only in-scope
  /// rows of the column can have changed).
  void adjust_use_scoped(std::uint64_t dst,
                         std::span<const topo::NodeId> rows, int delta);
  /// Repairs the given destinations (or all, past the threshold),
  /// filling the record's churn fields.  The virtual hook the sharded
  /// manager overrides: everything else (event validation, degradation
  /// flips, affected-set computation, summary/arbitration upkeep) is
  /// shared base behavior.  Overrides must preserve the base invariants:
  /// tables_/use_counts_/degraded_/disconnected_sources_ consistent and
  /// record.churn/destinations_repaired/full_rebuild as the base computes
  /// them.
  virtual void repair(const std::vector<std::uint64_t>& affected,
                      EventRecord& record);
  void finish_topology_event(EventRecord& record);
  std::uint64_t cable_between(topo::NodeId u, topo::NodeId v) const;

  FmConfig config_;
  std::string error_;
  std::unique_ptr<const topo::Topology> topo_;
  std::unique_ptr<fabric::Lft> lft_;
  std::unique_ptr<fabric::Degradation> degradation_;
  std::unique_ptr<flow::LoadEvaluator> load_eval_;
  std::vector<topo::NodeId> canonical_;  ///< raw id -> topo id
  /// (min topo id << 32 | max topo id) -> cable index.
  std::unordered_map<std::uint64_t, std::uint64_t> cable_index_;
  fabric::Tables tables_;
  fabric::RebuildScratch scratch_;
  /// use_counts_[cable][dst]: table entries of dst routed over the cable.
  std::vector<std::vector<std::uint32_t>> use_counts_;
  /// Per destination: deviates from nominal.  Bytes, not vector<bool>:
  /// the sharded repair writes disjoint destinations from concurrent
  /// tasks, which bit-packing would turn into a data race.
  std::vector<std::uint8_t> degraded_;
  std::vector<std::uint64_t> disconnected_sources_;  ///< per destination
  FmSummary summary_;
  /// First-surviving twin fed the same topology events, so arbitration
  /// can compare rebuilds; null unless repair_policy is load_aware.
  std::unique_ptr<FabricManager> shadow_;
  /// Arbitration outcome: tables() exposes tables_ when true, the
  /// shadow's tables when false.  Always true without a shadow.
  bool prefer_own_ = true;
};

/// Follows `tables` from src toward lid_of(dst, j), appending the links
/// taken; returns whether the walk reached the destination host.  A pure
/// function of its arguments with no FabricManager state -- the off-thread
/// repair hook `lmpr serve` queries through: readers walk a PRIVATE
/// snapshot copy of the exposed tables while the ingest thread repairs the
/// manager's own set (topology and LFT are immutable after construction,
/// so sharing those across threads is safe).
bool follow_route(const topo::Topology& topology, const fabric::Lft& lft,
                  const fabric::Tables& tables, std::uint64_t src,
                  std::uint64_t dst, std::uint32_t j,
                  std::vector<topo::LinkId>& links);

/// Max link load of the reference permutation (cyclic shift by half the
/// fabric) routed over the given tables' surviving variants, each pair's
/// unit demand split evenly across its usable variants.  This is the
/// quantity load_aware arbitration minimizes and EventRecord reports as
/// max_link_load.
double reference_max_load(const topo::Topology& topology,
                          const fabric::Lft& lft,
                          const fabric::Tables& tables);
/// Same, reusing the caller's evaluator (no per-call allocation).
double reference_max_load(const topo::Topology& topology,
                          const fabric::Lft& lft,
                          const fabric::Tables& tables,
                          flow::LoadEvaluator& eval);

/// From-scratch build of what FabricManager::tables() exposes for the
/// policy on this degradation state: the pure fabric::build_lft for
/// first_surviving, and for load_aware whichever of the greedy and
/// first_surviving rebuilds has the lower reference_max_load (ties prefer
/// the greedy).  The property harness diffs the manager's incrementally
/// repaired tables against this after every event.
fabric::Tables build_managed_tables(const topo::Topology& topology,
                                    const fabric::Lft& lft,
                                    const fabric::Degradation& degradation,
                                    fabric::RepairPolicy policy);

}  // namespace lmpr::fm
