#include "shard/sharded_manager.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace lmpr::shard {

ShardedFabricManager::ShardedFabricManager(const discovery::RawFabric& fabric,
                                           const ShardConfig& config)
    : fm::FabricManager(fabric, config.fm, DeferShadow{}),
      shard_config_(config) {
  if (!ok()) return;
  map_ = std::make_unique<IslandMap>(*topo_, config.shards);
  init_shard_state();
  if (config.fm.repair_policy == fabric::RepairPolicy::kLoadAware) {
    // The arbitration twin shards the same way, so its repairs enjoy the
    // same island scoping (and the same bit-identity guarantee).
    ShardConfig twin = config;
    twin.fm = shadow_config(config.fm);
    adopt_shadow(std::make_unique<ShardedFabricManager>(fabric, twin));
  }
}

ShardedFabricManager::ShardedFabricManager(const topo::XgftSpec& spec,
                                           const ShardConfig& config)
    : ShardedFabricManager(discovery::export_fabric(topo::Xgft{spec}),
                           config) {}

void ShardedFabricManager::init_shard_state() {
  shard_stats_.assign(map_->num_shards(), ShardStats{});
  slot_scratch_.resize(1);
  slot_flags_.resize(1);
  if (map_->single()) return;  // monolithic fallback: no caches needed
  const std::size_t num_nodes = static_cast<std::size_t>(topo_->num_nodes());
  const std::size_t hosts = static_cast<std::size_t>(topo_->num_hosts());
  good_stride_ = num_nodes;
  // Healthy start: a connected XGFT delivers everywhere, so every cached
  // deliverability bit begins 1 and every segment begins nominal.
  good_cache_.assign(hosts * num_nodes, 1);
  seg_deviates_.assign(hosts * segments(), 0);
  seg_disc_.assign(hosts * segments(), 0);
}

std::size_t ShardedFabricManager::owning_segment(
    const fm::Event& event) const {
  switch (event.type) {
    case fm::EventType::kCableDown:
    case fm::EventType::kCableUp: {
      const topo::NodeId u = canonical_[event.a];
      const topo::NodeId v = canonical_[event.b];
      return map_->island_of_cable(cable_between(u, v));
    }
    case fm::EventType::kSwitchDown:
    case fm::EventType::kSwitchUp:
      return map_->island_of_node(canonical_[event.a]);
    default:
      LMPR_ASSERT(false);  // queries never reach repair
      return IslandMap::kSpine;
  }
}

void ShardedFabricManager::repair(const std::vector<std::uint64_t>& affected,
                                  fm::EventRecord& record) {
  if (map_->single()) {
    fm::FabricManager::repair(affected, record);
    if (affected.empty()) return;
    ShardStats& ss = shard_stats_[0];
    ++ss.events;
    ss.churn += record.churn;
    ss.columns_full += record.destinations_repaired;
    if (record.churn > 0) ++ss.generation;
    ss.disconnected_pairs = summary_.disconnected_pairs;
    return;
  }
  // Classification counter: every topology event the spine owns counts,
  // including no-ops where the dead element carried no route (the event
  // still serialized against the shards).
  const std::size_t event_segment = owning_segment(record.event);
  if (event_segment == IslandMap::kSpine) ++spine_events_;
  if (affected.empty()) return;

  const std::uint64_t hosts = topo_->num_hosts();
  const bool full =
      static_cast<double>(affected.size()) >=
      config_.full_rebuild_threshold * static_cast<double>(hosts);
  record.full_rebuild = full;

  // The worklist, ascending by destination (as the base repair visits
  // it); a threshold escalation repairs every column but REMOTE columns
  // still repair island-scoped -- the event's changes remain confined to
  // its island, whatever the affected-set size.
  std::vector<std::uint64_t> all;
  const std::vector<std::uint64_t>* work = &affected;
  if (full) {
    all.resize(static_cast<std::size_t>(hosts));
    std::iota(all.begin(), all.end(), 0);
    work = &all;
  }
  record.destinations_repaired = work->size();

  // Contiguous per-shard ranges: islands (and so shards) are ascending in
  // the destination id, so each shard owns at most one range.
  struct Range {
    std::size_t shard = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<Range> ranges;
  for (std::size_t i = 0; i < work->size();) {
    const std::size_t shard =
        map_->shard_of_island(map_->island_of_host((*work)[i]));
    std::size_t j = i + 1;
    while (j < work->size() &&
           map_->shard_of_island(map_->island_of_host((*work)[j])) == shard) {
      ++j;
    }
    ranges.push_back({shard, i, j});
    i = j;
  }

  util::ThreadPool* pool = shard_config_.pool;
  const std::size_t slots =
      (pool != nullptr ? pool->worker_count() : 0) + 1;
  if (slot_scratch_.size() < slots) {
    slot_scratch_.resize(slots);
    slot_flags_.resize(slots);
  }

  struct TaskResult {
    std::uint64_t churn = 0;
    std::int64_t disc_delta = 0;
    std::uint64_t cols_full = 0;
    std::uint64_t cols_scoped = 0;
  };
  std::vector<TaskResult> results(ranges.size());
  const std::size_t num_segments = segments();
  const std::size_t num_nodes = static_cast<std::size_t>(topo_->num_nodes());

  // One shard's columns.  Everything touched is destination-indexed
  // (table LID slices, use-count columns, caches, degraded flags), so
  // concurrent ranges write disjoint state and the merged result is
  // schedule-independent.
  const auto run_range = [&](std::size_t r) {
    const Range& range = ranges[r];
    TaskResult& out = results[r];
    const std::size_t slot = util::ThreadPool::worker_slot();
    fabric::RebuildScratch& scratch = slot_scratch_[slot];
    std::vector<std::uint8_t>& flags = slot_flags_[slot];
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const std::uint64_t dst = (*work)[i];
      const std::size_t dst_island = map_->island_of_host(dst);
      std::uint8_t* dev = seg_deviates(dst);
      std::uint32_t* disc = seg_disc(dst);
      std::uint64_t new_total = 0;
      std::uint64_t written = 0;
      if (event_segment == IslandMap::kSpine || dst_island == event_segment) {
        // Local column (or spine event): full rebuild, then refresh the
        // deliverability cache and the per-segment state wholesale.
        adjust_use(dst, -1);
        const auto stats = fabric::rebuild_destination(
            *lft_, *degradation_, dst, tables_, scratch,
            config_.repair_policy, &flags);
        adjust_use(dst, +1);
        std::copy(scratch.good.begin(), scratch.good.end(), good_cache(dst));
        std::fill(dev, dev + num_segments, 0);
        std::fill(disc, disc + num_segments, 0);
        for (std::size_t n = 0; n < num_nodes; ++n) {
          if (flags[n] == 0) continue;
          std::size_t seg =
              map_->island_of_node(static_cast<topo::NodeId>(n));
          if (seg == IslandMap::kSpine) seg = num_segments - 1;
          if ((flags[n] & fabric::kNodeDeviates) != 0) dev[seg] = 1;
          if ((flags[n] & fabric::kNodeDisconnected) != 0) ++disc[seg];
        }
        new_total = stats.disconnected_sources;
        written = stats.entries_written;
        ++out.cols_full;
      } else {
        // Remote column: only the event island's rows can have changed.
        const auto& scope = map_->island(event_segment).nodes;
        const std::span<std::uint8_t> good{good_cache(dst), num_nodes};
        adjust_use_scoped(dst, scope, -1);
        const auto stats = fabric::rebuild_destination_scoped(
            *lft_, *degradation_, dst, tables_, scope, good, scratch,
            config_.repair_policy);
        adjust_use_scoped(dst, scope, +1);
        const std::uint64_t old_seg = disc[event_segment];
        dev[event_segment] = stats.nominal ? 0 : 1;
        disc[event_segment] =
            static_cast<std::uint32_t>(stats.disconnected_sources);
        new_total = disconnected_sources_[static_cast<std::size_t>(dst)] -
                    old_seg + stats.disconnected_sources;
        written = stats.entries_written;
        ++out.cols_scoped;
      }
      bool any_dev = false;
      for (std::size_t s = 0; s < num_segments; ++s) {
        any_dev = any_dev || dev[s] != 0;
      }
      degraded_[static_cast<std::size_t>(dst)] = any_dev ? 1 : 0;
      auto& old_total = disconnected_sources_[static_cast<std::size_t>(dst)];
      out.disc_delta += static_cast<std::int64_t>(new_total) -
                        static_cast<std::int64_t>(old_total);
      old_total = new_total;
      out.churn += written;
    }
  };

  if (pool != nullptr && pool->worker_count() > 0 && ranges.size() > 1) {
    pool->parallel_for(ranges.size(), run_range);
  } else {
    for (std::size_t r = 0; r < ranges.size(); ++r) run_range(r);
  }

  // Deterministic merge in shard order, whatever the execution schedule.
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    const TaskResult& result = results[r];
    record.churn += static_cast<std::size_t>(result.churn);
    summary_.disconnected_pairs = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(summary_.disconnected_pairs) +
        result.disc_delta);
    ShardStats& ss = shard_stats_[ranges[r].shard];
    ++ss.events;
    ss.churn += result.churn;
    ss.columns_full += result.cols_full;
    ss.columns_scoped += result.cols_scoped;
    if (result.churn > 0) ++ss.generation;
    ss.disconnected_pairs = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(ss.disconnected_pairs) +
        result.disc_delta);
  }
}

ShardStats ShardedFabricManager::aggregate() const {
  ShardStats total;
  for (const ShardStats& ss : shard_stats_) {
    total.events += ss.events;
    total.generation += ss.generation;
    total.columns_full += ss.columns_full;
    total.columns_scoped += ss.columns_scoped;
    total.churn += ss.churn;
    total.disconnected_pairs += ss.disconnected_pairs;
  }
  return total;
}

}  // namespace lmpr::shard
