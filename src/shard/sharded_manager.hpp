// ShardedFabricManager: the fm::FabricManager whose repair cost stops
// scaling with fabric size.  It partitions the XGFT into islands (see
// island_map.hpp), routes every fault event to its owning island via the
// coordinate mapper, and repairs each affected destination column at the
// cheapest sound granularity:
//
//   * columns LOCAL to the event's island (and every column of a SPINE
//     event -- a top-level switch fault, which serializes against all
//     islands) get the full fabric::rebuild_destination;
//   * columns REMOTE to the event's island get
//     fabric::rebuild_destination_scoped over the island's nodes only --
//     O(island) instead of O(fabric) rows, entry-for-entry identical by
//     the island-partition theorem (island_map.hpp).
//
// Per destination column the manager caches the deliverability vector
// (refreshed by every full rebuild, patched in place by scoped ones) and
// per-SEGMENT deviation/disconnect state (one segment per island plus the
// spine), so the base manager's degraded_ flag and disconnected-pair
// accounting stay bit-identical to the monolithic manager's.
//
// Destination columns are disjoint state -- tables rows' LID slices, use
// counts, degraded flags, caches are all indexed by destination -- so the
// per-shard column groups repair concurrently on an optional
// util::ThreadPool (inline without one, or on single-core hosts; results
// are schedule-independent either way).  tables(), summaries, walks and
// the load_aware shadow arbitration are inherited base behavior on the
// merged state, so `lmpr fm` / `lmpr serve` reports are byte-compatible
// with the monolithic manager; per-shard churn/columns/generation
// counters are exposed through shard_stats() and fold into the base
// FmSummary via the aggregate() cross-check.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fm/fabric_manager.hpp"
#include "shard/island_map.hpp"
#include "util/thread_pool.hpp"

namespace lmpr::shard {

struct ShardConfig {
  fm::FmConfig fm;
  /// Repair task groups: 0 = "auto" (one shard per island); otherwise
  /// clamped to [1, islands].  1 still uses island-scoped column repair
  /// -- only the concurrency width collapses.
  std::size_t shards = 0;
  /// Optional pool for island-parallel dispatch (not owned; may be
  /// shared).  Null = shard groups run inline on the calling thread.
  util::ThreadPool* pool = nullptr;
};

/// Per-shard repair metrics, merged into the base FmSummary by
/// construction (aggregate() is the cross-check the tests pin).
struct ShardStats {
  std::uint64_t events = 0;      ///< events whose repair touched this shard
  std::uint64_t generation = 0;  ///< repairs that changed this shard's state
  std::uint64_t columns_full = 0;    ///< whole-column rebuilds
  std::uint64_t columns_scoped = 0;  ///< island-scoped rebuilds
  std::uint64_t churn = 0;           ///< entries rewritten by this shard
  /// Current disconnected (s, d) pairs over destinations this shard owns.
  std::uint64_t disconnected_pairs = 0;
};

class ShardedFabricManager : public fm::FabricManager {
 public:
  ShardedFabricManager(const discovery::RawFabric& fabric,
                       const ShardConfig& config);
  ShardedFabricManager(const topo::XgftSpec& spec, const ShardConfig& config);

  const IslandMap& islands() const noexcept { return *map_; }
  const ShardConfig& shard_config() const noexcept { return shard_config_; }
  const std::vector<ShardStats>& shard_stats() const noexcept {
    return shard_stats_;
  }
  /// Spine events (top-level switch faults): global full rebuilds that
  /// serialized against every island.
  std::uint64_t spine_events() const noexcept { return spine_events_; }
  /// The thin aggregator: per-shard metrics summed.  Invariants the
  /// equivalence harness asserts: aggregate().churn ==
  /// summary().total_churn and aggregate().disconnected_pairs ==
  /// summary().disconnected_pairs after every event.
  ShardStats aggregate() const;

 protected:
  void repair(const std::vector<std::uint64_t>& affected,
              fm::EventRecord& record) override;

 private:
  void init_shard_state();
  /// Segment owning `record.event`'s repair: an island id, or
  /// IslandMap::kSpine for top-level switch events.
  std::size_t owning_segment(const fm::Event& event) const;

  std::size_t segments() const noexcept { return map_->num_islands() + 1; }
  std::uint8_t* seg_deviates(std::uint64_t dst) {
    return seg_deviates_.data() + static_cast<std::size_t>(dst) * segments();
  }
  std::uint32_t* seg_disc(std::uint64_t dst) {
    return seg_disc_.data() + static_cast<std::size_t>(dst) * segments();
  }
  std::uint8_t* good_cache(std::uint64_t dst) {
    return good_cache_.data() +
           static_cast<std::size_t>(dst) * good_stride_;
  }

  ShardConfig shard_config_;
  std::unique_ptr<IslandMap> map_;
  /// Per destination column, flattened [dst * num_nodes + node]: the
  /// cached phase-1 deliverability vector scoped rebuilds read for
  /// out-of-scope nodes.  Refreshed whole by full rebuilds, in scope by
  /// scoped ones; valid because every event that could change a column's
  /// out-of-island deliverability repairs that column full (island
  /// events repair their local columns full, spine events repair
  /// everything full).
  std::vector<std::uint8_t> good_cache_;
  std::size_t good_stride_ = 0;
  /// [dst * segments + segment]: column deviates-from-nominal within the
  /// segment (islands 0..n-1, spine last).  degraded_[dst] == OR of the
  /// row -- exactly the monolithic flag, segment by segment.
  std::vector<std::uint8_t> seg_deviates_;
  /// [dst * segments + segment]: disconnected sources within the segment.
  std::vector<std::uint32_t> seg_disc_;
  /// Per ThreadPool slot (worker_slot()), so concurrent shard tasks never
  /// share rebuild scratch.
  std::vector<fabric::RebuildScratch> slot_scratch_;
  std::vector<std::vector<std::uint8_t>> slot_flags_;
  std::vector<ShardStats> shard_stats_;
  std::uint64_t spine_events_ = 0;
};

}  // namespace lmpr::shard
