// The coordinate mapper behind the sharded fabric manager: partitions a
// topology into repair ISLANDS plus a SPINE, and groups islands into the
// shards whose repairs may run concurrently.
//
// Island rule (DESIGN §15).  For an XGFT of height h >= 2 with m_h > 1,
// the islands are the m_h height-(h-1) subtrees rooted below the top
// level: island I owns the contiguous host range [I*M_{h-1},
// (I+1)*M_{h-1}) and every switch at levels 1..h-1 whose top label digit
// a_h equals I.  The top-level switches form the SPINE -- the only nodes
// reachable from more than one island, and so the only place inter-island
// variants meet.  Anything else (generic graphs, height-1 XGFTs, m_h = 1)
// degenerates to a single island, where the sharded manager falls back to
// the monolithic repair path.
//
// The partition is what makes island-scoped column repair sound: for a
// fault INSIDE island I and a destination OUTSIDE it, only island-I rows
// of that destination's column can change (island-J != I nodes route up
// within J, and a top switch's descent toward the destination never
// traverses I), so fabric::rebuild_destination_scoped over island I's
// nodes reproduces the full rebuild entry-for-entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace lmpr::shard {

class IslandMap {
 public:
  /// Segment id of the spine (top-level switches).
  static constexpr std::size_t kSpine = static_cast<std::size_t>(-1);

  /// Builds the natural island partition of `topology` and groups the
  /// islands into `shards` contiguous shards (0 = "auto": one shard per
  /// island; otherwise clamped to [1, islands]).  The topology reference
  /// must outlive the map.
  IslandMap(const topo::Topology& topology, std::size_t shards);

  std::size_t num_islands() const noexcept { return islands_.size(); }
  std::size_t num_shards() const noexcept { return num_shards_; }
  /// Single-island partitions carry no concurrency or scoping structure;
  /// the sharded manager delegates to the monolithic repair loop.
  bool single() const noexcept { return islands_.size() <= 1; }
  std::uint64_t hosts_per_island() const noexcept { return hosts_per_island_; }
  std::size_t spine_switches() const noexcept { return spine_switches_; }

  std::size_t island_of_host(std::uint64_t host) const {
    return static_cast<std::size_t>(host / hosts_per_island_);
  }
  /// kSpine for top-level switches.
  std::size_t island_of_node(topo::NodeId node) const {
    return node_island_[static_cast<std::size_t>(node)];
  }
  /// The island owning a cable's repair: the island of its LOWER
  /// endpoint.  Level-(h-1) cables touch the spine but attribute to the
  /// island side -- for a remote destination only island rows change in
  /// either link direction (the top endpoint's descent avoids the
  /// island), so island scoping stays sound.  Never kSpine: top switches
  /// have no up links, so every cable's lower endpoint sits below the
  /// top level.
  std::size_t island_of_cable(std::uint64_t cable) const;
  std::size_t shard_of_island(std::size_t island) const {
    return island * num_shards_ / islands_.size();
  }

  struct Island {
    std::size_t shard = 0;
    std::uint64_t first_host = 0;
    std::uint64_t host_count = 0;
    std::uint64_t num_switches = 0;
    /// The island's nodes in the dependency order
    /// fabric::rebuild_destination_scoped requires for REMOTE destination
    /// columns: switches by descending level, then hosts (every in-scope
    /// candidate link points to a higher level, i.e. earlier in the list
    /// or out of scope at the spine).
    std::vector<topo::NodeId> nodes;
  };
  const Island& island(std::size_t i) const { return islands_[i]; }

 private:
  const topo::Topology& topology_;
  std::vector<Island> islands_;
  /// Per node: owning island, kSpine for top-level switches.
  std::vector<std::size_t> node_island_;
  std::uint64_t hosts_per_island_ = 0;
  std::size_t spine_switches_ = 0;
  std::size_t num_shards_ = 1;
};

/// The partition table `lmpr fm --list-islands` prints: one row per
/// island (shard id, host range, switch id ranges) plus the spine row.
std::string render_island_table(const IslandMap& map,
                                const topo::Topology& topology);

}  // namespace lmpr::shard
