#include "shard/island_map.hpp"

#include <algorithm>
#include <sstream>

#include "topology/xgft.hpp"
#include "util/contracts.hpp"
#include "util/table.hpp"

namespace lmpr::shard {

namespace {

/// "a-b,c,d-e" compression of a sorted id list.
std::string render_ranges(const std::vector<topo::NodeId>& ids) {
  if (ids.empty()) return "-";
  std::ostringstream oss;
  std::size_t i = 0;
  while (i < ids.size()) {
    std::size_t j = i;
    while (j + 1 < ids.size() && ids[j + 1] == ids[j] + 1) ++j;
    if (i > 0) oss << ",";
    oss << ids[i];
    if (j > i) oss << "-" << ids[j];
    i = j + 1;
  }
  return oss.str();
}

}  // namespace

IslandMap::IslandMap(const topo::Topology& topology, std::size_t shards)
    : topology_(topology) {
  const std::size_t num_nodes =
      static_cast<std::size_t>(topology.num_nodes());
  const std::uint64_t num_hosts = topology.num_hosts();
  node_island_.assign(num_nodes, 0);

  std::size_t islands = 1;
  const topo::Xgft* xgft = nullptr;
  if (topology.kind() == "xgft") {
    xgft = static_cast<const topo::Xgft*>(&topology);
    const std::uint32_t h = xgft->height();
    // Islands are the height-(h-1) subtrees; one per top m-digit.  A
    // height-1 tree has no subtree below the top that contains switches,
    // and m_h = 1 leaves nothing to split.
    if (h >= 2) islands = static_cast<std::size_t>(xgft->num_subtrees(h - 1));
  }
  if (islands <= 1 || num_hosts == 0) {
    // Degenerate single-island partition: everything in island 0, no
    // spine (scoped repair is never used; the manager runs monolithic).
    islands_.resize(1);
    islands_[0].host_count = num_hosts;
    hosts_per_island_ = num_hosts > 0 ? num_hosts : 1;
    num_shards_ = 1;
    auto& nodes = islands_[0].nodes;
    nodes.reserve(num_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n) {
      nodes.push_back(static_cast<topo::NodeId>(n));
      if (!topology.is_host(static_cast<topo::NodeId>(n))) {
        ++islands_[0].num_switches;
      }
    }
    return;
  }

  const std::uint32_t h = xgft->height();
  hosts_per_island_ = xgft->hosts_per_subtree(h - 1);
  islands_.resize(islands);
  num_shards_ = shards == 0 ? islands
                            : std::min(std::max<std::size_t>(shards, 1),
                                       islands);
  for (std::size_t i = 0; i < islands; ++i) {
    islands_[i].shard = shard_of_island(i);
    islands_[i].first_host = static_cast<std::uint64_t>(i) * hosts_per_island_;
    islands_[i].host_count = hosts_per_island_;
  }

  // Bucket switches by (island, level) so each island's scope list comes
  // out in descending-level dependency order, then append the hosts.
  // digits[h-1] = a_h, the top m-digit, names the island of every node
  // below the top level.
  std::vector<std::vector<topo::NodeId>> by_island_level(
      islands * static_cast<std::size_t>(h));
  for (std::size_t n = 0; n < num_nodes; ++n) {
    const topo::NodeId node = static_cast<topo::NodeId>(n);
    const std::uint32_t level = xgft->level_of(node);
    if (level == h) {
      node_island_[n] = kSpine;
      ++spine_switches_;
      continue;
    }
    std::size_t island;
    if (level == 0) {
      island = island_of_host(static_cast<std::uint64_t>(n));
    } else {
      island = xgft->label_of(node).digits[h - 1];
    }
    node_island_[n] = island;
    by_island_level[island * h + level].push_back(node);
  }
  for (std::size_t i = 0; i < islands; ++i) {
    auto& out = islands_[i].nodes;
    for (std::uint32_t level = h - 1; level >= 1; --level) {
      const auto& bucket = by_island_level[i * h + level];
      islands_[i].num_switches += bucket.size();
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
    const auto& hosts = by_island_level[i * h + 0];
    out.insert(out.end(), hosts.begin(), hosts.end());
  }
}

std::size_t IslandMap::island_of_cable(std::uint64_t cable) const {
  // The UP LinkId of a cable IS the cable index, and its src is the
  // lower endpoint (topology.hpp contract).
  const topo::Link& link =
      topology_.link(static_cast<topo::LinkId>(cable));
  const std::size_t island = island_of_node(link.src);
  LMPR_ASSERT(island != kSpine);
  return island;
}

std::string render_island_table(const IslandMap& map,
                                const topo::Topology& topology) {
  std::ostringstream oss;
  oss << "island partition of " << topology.name() << ": "
      << map.num_islands() << " island(s), " << map.num_shards()
      << " shard(s), " << map.spine_switches() << " spine switch(es)\n";
  util::Table table({"island", "shard", "hosts", "switches", "switch_ids"});
  for (std::size_t i = 0; i < map.num_islands(); ++i) {
    const auto& island = map.island(i);
    std::vector<topo::NodeId> switches;
    switches.reserve(static_cast<std::size_t>(island.num_switches));
    for (const topo::NodeId node : island.nodes) {
      if (!topology.is_host(node)) switches.push_back(node);
    }
    std::sort(switches.begin(), switches.end());
    const std::string hosts =
        island.host_count == 0
            ? std::string{"-"}
            : std::to_string(island.first_host) + ".." +
                  std::to_string(island.first_host + island.host_count - 1);
    table.add_row({util::Table::num(i), util::Table::num(island.shard),
                   hosts, util::Table::num(island.num_switches),
                   render_ranges(switches)});
  }
  if (map.spine_switches() > 0) {
    std::vector<topo::NodeId> spine;
    for (std::uint64_t n = 0; n < topology.num_nodes(); ++n) {
      const topo::NodeId node = static_cast<topo::NodeId>(n);
      if (map.island_of_node(node) == IslandMap::kSpine) {
        spine.push_back(node);
      }
    }
    table.add_row({"spine", "-", "-", util::Table::num(spine.size()),
                   render_ranges(spine)});
  }
  table.print(oss);
  return oss.str();
}

}  // namespace lmpr::shard
