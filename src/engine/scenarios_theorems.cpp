// Theorem 1 (PERF(UMULTI) = 1 on any XGFT) and Theorem 2 (d-mod-k can be
// a factor prod(w_i) off optimal; limited multi-path recovers as W/K).
#include <string_view>

#include "engine/registry.hpp"
#include "engine/study.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/traffic.hpp"
#include "util/rng.hpp"

namespace lmpr::engine {

namespace {

void run_theorem1(const RunContext& ctx, Report& report) {
  const std::vector<topo::XgftSpec> specs = {
      topo::XgftSpec::m_port_n_tree(8, 2),
      topo::XgftSpec::m_port_n_tree(8, 3),
      topo::XgftSpec{{4, 4, 4}, {1, 4, 2}},
      topo::XgftSpec{{2, 3, 4}, {2, 2, 3}},
      topo::XgftSpec::gft(2, 4, 2),
  };
  const int trials = ctx.full() ? 50 : 10;

  util::Table table({"topology", "traffic", "worst PERF(umulti)",
                     "worst PERF(dmodk)", "trials"});
  util::Rng rng{ctx.seed()};
  double overall_worst_umulti = 0.0;
  for (const auto& spec : specs) {
    const topo::Xgft xgft{spec};
    flow::LoadEvaluator eval(xgft);
    struct TrafficCase {
      const char* name;
      bool randomized;
    };
    for (const auto& tc : {TrafficCase{"permutation", true},
                           TrafficCase{"random-matrix", true},
                           TrafficCase{"hotspot", false}}) {
      double worst_umulti = 0.0;
      double worst_dmodk = 0.0;
      const int reps = tc.randomized ? trials : 1;
      for (int t = 0; t < reps; ++t) {
        flow::TrafficMatrix tm(xgft.num_hosts());
        if (std::string_view(tc.name) == "permutation") {
          tm = flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
        } else if (std::string_view(tc.name) == "random-matrix") {
          for (int f = 0; f < 64; ++f) {
            tm.add(rng.below(xgft.num_hosts()), rng.below(xgft.num_hosts()),
                   rng.uniform01() * 3.0);
          }
        } else {
          tm = flow::TrafficMatrix::hotspot(xgft.num_hosts(), 0);
        }
        const double opt = flow::oload(xgft, tm).value;
        const double umulti =
            eval.evaluate(tm, route::Heuristic::kUmulti, 1, rng).max_load;
        const double dmodk =
            eval.evaluate(tm, route::Heuristic::kDModK, 1, rng).max_load;
        worst_umulti = std::max(worst_umulti, flow::perf_ratio(umulti, opt));
        worst_dmodk = std::max(worst_dmodk, flow::perf_ratio(dmodk, opt));
      }
      table.add_row({spec.to_string(), tc.name,
                     util::Table::num(worst_umulti),
                     util::Table::num(worst_dmodk),
                     util::Table::num(static_cast<std::size_t>(reps))});
      overall_worst_umulti = std::max(overall_worst_umulti, worst_umulti);
    }
  }
  report.add_config("topologies", std::to_string(specs.size()));
  report.add_config("trials_per_randomized_case", std::to_string(trials));
  report.add_metric("worst_perf_umulti", overall_worst_umulti);
  report.samples = static_cast<std::size_t>(trials);
  report.add_section("Theorem 1: UMULTI attains the optimal oblivious ratio 1",
                     std::move(table));
}

void run_theorem2(const RunContext& ctx, Report& report) {
  struct Shape {
    std::size_t height;
    std::uint32_t spread;
  };
  const std::vector<Shape> shapes = ctx.full()
      ? std::vector<Shape>{{2, 2}, {2, 4}, {2, 8}, {3, 2}, {3, 4}, {4, 2}}
      : std::vector<Shape>{{2, 4}, {3, 2}, {3, 4}};

  util::Table table({"topology", "W=prod(w)", "PERF(dmodk)",
                     "PERF(disjoint,2)", "PERF(disjoint,4)",
                     "PERF(disjoint,W)", "PERF(umulti)"});
  util::Rng rng{ctx.seed()};
  double worst_gap = 0.0;
  for (const auto& shape : shapes) {
    const auto spec =
        flow::adversarial_dmodk_topology(shape.height, shape.spread);
    const topo::Xgft xgft{spec};
    const auto tm = flow::adversarial_dmodk_traffic(xgft);
    flow::LoadEvaluator eval(xgft);
    const double opt = flow::oload(xgft, tm).value;
    auto perf_of = [&](route::Heuristic h, std::size_t k) {
      return flow::perf_ratio(eval.evaluate(tm, h, k, rng).max_load, opt);
    };
    const auto w_total = xgft.spec().num_top_switches();
    const double dmodk_perf = perf_of(route::Heuristic::kDModK, 1);
    worst_gap = std::max(worst_gap, dmodk_perf);
    table.add_row(
        {spec.to_string(), util::Table::num(w_total),
         util::Table::num(dmodk_perf),
         util::Table::num(perf_of(route::Heuristic::kDisjoint, 2)),
         util::Table::num(perf_of(route::Heuristic::kDisjoint, 4)),
         util::Table::num(perf_of(route::Heuristic::kDisjoint,
                                  static_cast<std::size_t>(w_total))),
         util::Table::num(perf_of(route::Heuristic::kUmulti, 1))});
  }
  report.add_config("shapes", std::to_string(shapes.size()));
  report.add_metric("worst_perf_dmodk", worst_gap);
  report.samples = shapes.size();
  report.add_section(
      "Theorem 2: adversarial pattern, PERF(d-mod-k) >= prod(w_i)",
      std::move(table));
}

}  // namespace

void register_theorem_scenarios(ScenarioRegistry& registry) {
  Scenario t1;
  t1.name = "theorem1";
  t1.artifact = "Theorem 1";
  t1.family = Family::kFlow;
  t1.description = "PERF(UMULTI) = 1 on every topology family and traffic "
                   "class (optimal oblivious routing)";
  t1.quick_params = "5 topologies x 3 traffic classes, 10 trials";
  t1.full_params = "5 topologies x 3 traffic classes, 50 trials";
  t1.run = run_theorem1;
  registry.add(t1);

  Scenario t2;
  t2.name = "theorem2";
  t2.artifact = "Theorem 2";
  t2.family = Family::kFlow;
  t2.description = "Constructive adversarial pattern: PERF(d-mod-k) hits "
                   "prod(w_i); disjoint recovers as W/K";
  t2.quick_params = "3 tree shapes";
  t2.full_params = "6 tree shapes";
  t2.run = run_theorem2;
  registry.add(t2);
}

}  // namespace lmpr::engine
