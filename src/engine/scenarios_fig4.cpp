// Figure 4(a)-(d) and the oversubscribed-tree extension: average maximum
// permutation load vs number of paths K, flow level.
#include "engine/registry.hpp"
#include "engine/study.hpp"

namespace lmpr::engine {

namespace {

void run_fig4(const RunContext& ctx, Report& report, const char* figure,
              std::uint32_t ports, std::size_t levels) {
  const auto spec =
      ctx.topo_or(topo::XgftSpec::m_port_n_tree(ports, levels));
  const topo::Xgft xgft{spec};
  const auto ks = k_sweep(xgft, ctx.full());
  auto run = run_figure4(xgft, ks, ctx);
  report.add_config("topology", spec.to_string());
  {
    std::string k_list;
    for (const auto k : ks) {
      if (!k_list.empty()) k_list += ",";
      k_list += std::to_string(k);
    }
    report.add_config("k_values", k_list);
  }
  report.samples = run.samples;
  report.converged = run.converged;
  report.add_section(std::string("Figure 4(") + figure +
                         "): avg max permutation load, " + spec.to_string() +
                         " (" + std::to_string(ports) + "-port " +
                         std::to_string(levels) + "-tree)",
                     std::move(run.table));
}

Scenario fig4_scenario(const char* name, const char* figure,
                       std::uint32_t ports, std::size_t levels) {
  Scenario s;
  s.name = name;
  s.artifact = std::string("Figure 4(") + figure + ")";
  s.family = Family::kFlow;
  s.description = "Avg max permutation load vs K on the " +
                  std::to_string(ports) + "-port " + std::to_string(levels) +
                  "-tree (dmodk/shift1/disjoint/random)";
  s.quick_params = "CI rule 30..120 samples, thinned K sweep";
  s.full_params = "paper stopping rule (99% CI <= 2%, 100..12800 samples), "
                  "all K values";
  s.run = [figure, ports, levels](const RunContext& ctx, Report& report) {
    run_fig4(ctx, report, figure, ports, levels);
  };
  return s;
}

void run_oversubscribed(const RunContext& ctx, Report& report) {
  for (const char* text : {"XGFT(2;8,8;1,4)",     // 2:1 at the leaf level
                           "XGFT(2;8,8;1,2)",     // 4:1
                           "XGFT(3;4,4,8;1,2,4)"  // 2:1 at level 1 only
                          }) {
    const auto spec = topo::XgftSpec::parse(text);
    const topo::Xgft xgft{spec};
    auto run = run_figure4(xgft, k_sweep(xgft, ctx.full()), ctx);
    report.add_config("topology", spec.to_string());
    report.samples = std::max(report.samples, run.samples);
    report.converged = report.converged && run.converged;
    report.add_section(std::string("Oversubscribed tree: ") + spec.to_string(),
                       std::move(run.table));
  }
}

}  // namespace

void register_fig4_scenarios(ScenarioRegistry& registry) {
  registry.add(fig4_scenario("fig4a", "a", 16, 2));
  registry.add(fig4_scenario("fig4b", "b", 16, 3));
  registry.add(fig4_scenario("fig4c", "c", 24, 2));
  registry.add(fig4_scenario("fig4d", "d", 24, 3));

  Scenario oversub;
  oversub.name = "oversubscribed_tree";
  oversub.artifact = "extension";
  oversub.family = Family::kFlow;
  oversub.description =
      "Figure-4 study on 2:1/4:1 oversubscribed GFTs: heuristics still "
      "reach the UMULTI optimum at K = prod(w)";
  oversub.quick_params = "3 slimmed trees, CI rule 30..120 samples";
  oversub.full_params = "3 slimmed trees, paper stopping rule, full K sweep";
  oversub.run = run_oversubscribed;
  registry.add(oversub);
}

}  // namespace lmpr::engine
