// Shared fabric-manager report builder: runs an fm::FabricManager over an
// event script and renders the result as an engine::Report (per-event log
// section + summary metrics).  Used by the `lmpr fm` driver subcommand,
// the fm_* scenarios and the golden-file test, so all three emit the
// identical schema through the existing sink layer.
#pragma once

#include <string>

#include "discovery/recognize.hpp"
#include "engine/report.hpp"
#include "fm/events.hpp"
#include "fm/fabric_manager.hpp"
#include "topology/spec.hpp"

namespace lmpr::engine {

struct FmRunOptions {
  /// Topology to export and manage (used when `fabric` is null).
  topo::XgftSpec spec{{4, 4}, {2, 2}};
  /// Externally supplied fabric (e.g. `lmpr fm --fabric FILE`); overrides
  /// `spec` when non-null.
  const discovery::RawFabric* fabric = nullptr;
  /// Printable name for `fabric` (e.g. the --topology spec); when empty
  /// the report falls back to a node-count summary.
  std::string topology_name;
  fm::FmConfig config;
  /// Shard count for the fabric manager: 1 = monolithic (default), 0 =
  /// auto (one shard per island), N = that many shards.  Sharded runs
  /// emit byte-identical reports -- no config echo changes -- so golden
  /// comparisons against monolithic output stay valid.
  std::size_t shards = 1;
};

/// Runs the script through a FabricManager and fills `report` with the
/// schema-stable fm run report: identity stamp ("fm" / analysis), config
/// echo, the per-event log table, and the summary metrics the acceptance
/// criteria name (event count, total churn, max disconnected window,
/// per-event repair timings).  Returns false with `error` set when the
/// fabric is not a recognizable XGFT; event-level semantic errors are
/// recorded in the log and counted in the `event_errors` metric instead.
bool run_fm_events(const FmRunOptions& options, const fm::EventScript& script,
                   Report& report, std::string& error);

}  // namespace lmpr::engine
