// Entry point for the legacy per-figure bench binaries.  Each binary is
// a 3-line main() delegating to shim_main with its scenario name, so
// `./build/bench/fig4a_linkload_16port_2tree --full --csv out.csv` keeps
// working byte-for-byte while the logic lives in the scenario registry.
#pragma once

namespace lmpr::engine {

/// Parses the historical flag set (--full, --csv PATH, --seed N,
/// --workers N, --topo SPEC), rejects unknown flags, runs the named
/// scenario and prints it in the historical format.  Returns the process
/// exit code.
int shim_main(int argc, const char* const* argv, const char* scenario_name);

}  // namespace lmpr::engine
