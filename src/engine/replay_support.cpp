#include "engine/replay_support.hpp"

#include <string>
#include <utility>

#include "util/table.hpp"

namespace lmpr::engine {

namespace {

std::string event_operands(const fm::Event& event) {
  if (event.type == fm::EventType::kSwitchDown ||
      event.type == fm::EventType::kSwitchUp) {
    return std::to_string(event.a);
  }
  return std::to_string(event.a) + " " + std::to_string(event.b);
}

}  // namespace

bool run_replay(const ReplayRunOptions& options, const fm::EventScript& script,
                Report& report, std::string& error) {
  if (!script.ok) {
    error = script.error;
    return false;
  }
  replay::ReplayEngine engine =
      options.fabric != nullptr
          ? replay::ReplayEngine(*options.fabric, options.config)
          : replay::ReplayEngine(options.spec, options.config);
  if (!engine.ok()) {
    error = engine.error();
    return false;
  }
  const std::string topology_name = options.fabric != nullptr
                                        ? options.topology_name
                                        : options.spec.to_string();
  const replay::ReplayResult result = engine.run(script);
  if (!result.ok) {
    error = result.error;
    return false;
  }
  const replay::ReplayConfig& config = engine.config();

  report.scenario = "replay";
  report.artifact = "fault replay";
  report.family = std::string(to_string(Family::kFlit));
  report.add_config("topology", topology_name);
  report.add_config("k_paths", std::to_string(config.fm.k_paths));
  report.add_config("layout", std::string(to_string(config.fm.layout)));
  report.add_config("repair_policy",
                    std::string(to_string(config.fm.repair_policy)));
  report.add_config("drop_policy",
                    std::string(to_string(config.sim.drop_policy)));
  report.add_config("routing",
                    std::string(to_string(config.sim.routing_mode)));
  report.add_config("select", std::string(to_string(config.sim.select)));
  report.add_config("offered_load",
                    util::Table::num(config.sim.offered_load, 2));
  report.add_config("seed", std::to_string(config.sim.seed));
  report.add_config("cycles",
                    std::to_string(config.sim.warmup_cycles) + "+" +
                        std::to_string(config.sim.measure_cycles) + "+" +
                        std::to_string(config.sim.drain_cycles));
  report.add_config("window_cycles", std::to_string(config.window_cycles));
  report.add_config("events", std::to_string(script.events.size()));

  util::Table epochs({"epoch", "start", "end", "events", "delivered",
                      "mean_delay", "p99_delay", "throughput", "max_util",
                      "dropped", "rerouted", "severed_at_swap",
                      "salvaged_at_swap"});
  util::Table events({"cycle", "event", "operands", "ok", "churn", "repaired",
                      "full_rebuild", "disc_pairs", "note"});
  std::size_t total_events = 0;
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const replay::Epoch& epoch = result.epochs[i];
    const flit::WindowMetrics& window = epoch.window;
    epochs.add_row(
        {util::Table::num(i), util::Table::num(window.start_cycle),
         util::Table::num(window.end_cycle),
         util::Table::num(epoch.records.size()),
         util::Table::num(window.messages_delivered),
         util::Table::num(window.mean_message_delay, 1),
         util::Table::num(window.p99_message_delay, 1),
         util::Table::num(window.throughput),
         util::Table::num(window.max_link_utilization),
         util::Table::num(window.packets_dropped),
         util::Table::num(window.packets_rerouted),
         util::Table::num(epoch.dropped_at_swap),
         util::Table::num(epoch.rerouted_at_swap)});
    for (const fm::EventRecord& record : epoch.records) {
      ++total_events;
      events.add_row({util::Table::num(epoch.start_cycle),
                      std::string(to_string(record.event.type)),
                      event_operands(record.event), record.ok ? "yes" : "no",
                      util::Table::num(record.churn),
                      util::Table::num(record.destinations_repaired),
                      record.full_rebuild ? "yes" : "no",
                      util::Table::num(static_cast<std::size_t>(
                          record.disconnected_pairs)),
                      record.ok ? std::string() : record.error});
    }
  }

  const flit::SimMetrics& overall = result.overall;
  report.add_metric("epochs", static_cast<double>(result.epochs.size()));
  report.add_metric("events", static_cast<double>(total_events));
  report.add_metric("event_errors",
                    static_cast<double>(result.event_errors));
  report.add_metric("messages_generated",
                    static_cast<double>(overall.messages_generated));
  report.add_metric("messages_delivered",
                    static_cast<double>(overall.messages_delivered));
  report.add_metric("messages_lost",
                    static_cast<double>(overall.messages_lost));
  report.add_metric("packets_dropped",
                    static_cast<double>(overall.packets_dropped));
  report.add_metric("packets_rerouted",
                    static_cast<double>(overall.packets_rerouted));
  report.add_metric("throughput", overall.throughput);
  report.add_metric("mean_message_delay", overall.message_delay.mean());
  report.add_metric("baseline_delay", result.baseline_delay);
  report.add_metric("peak_delay", result.peak_delay);
  report.add_metric("recovered", result.recovered ? 1.0 : 0.0);
  report.add_metric("recovery_cycles",
                    static_cast<double>(result.recovery_cycles));
  report.add_metric("selector_decisions",
                    static_cast<double>(result.selector.decisions));
  report.add_metric("selector_switches",
                    static_cast<double>(result.selector.switches));
  report.add_metric("total_churn",
                    static_cast<double>(result.fm_summary.total_churn));
  report.add_metric("disconnected_pairs",
                    static_cast<double>(result.fm_summary.disconnected_pairs));
  report.samples = result.epochs.size();
  report.converged = result.event_errors == 0 && result.recovered;
  report.add_section("Epoch windows, " + topology_name + ", " +
                         std::string(to_string(config.fm.repair_policy)) +
                         " repair, " +
                         std::string(to_string(config.sim.drop_policy)) +
                         " drop policy",
                     std::move(epochs));
  report.add_section("Replayed events (cycle = epoch start edge)",
                     std::move(events));
  return true;
}

replay::ReplayConfig quick_replay_config() {
  replay::ReplayConfig config;
  config.sim.warmup_cycles = 2'000;
  config.sim.measure_cycles = 16'000;
  config.sim.drain_cycles = 4'000;
  config.sim.offered_load = 0.5;
  config.sim.seed = 42;
  config.fm.zero_timings = true;
  config.window_cycles = 2'000;
  return config;
}

std::string_view replay_quick_script() noexcept {
  return "# Replay smoke storm for XGFT(2;4,4;2,2), raw fabric ids.\n"
         "# Offsets are cycles into the measurement window.\n"
         "@1000 query 0 9\n"
         "@3000 cable_down 16 24\n"
         "@5000 cable_down 0 17\n"
         "@9000 cable_up 0 17\n"
         "@12000 cable_up 16 24\n"
         "@15000 query 0 9\n";
}

}  // namespace lmpr::engine
