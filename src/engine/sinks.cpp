#include "engine/sinks.hpp"

#include <fstream>
#include <iostream>
#include <ostream>

namespace lmpr::engine {

void TextSink::consume(const Report& report) {
  for (const auto& section : report.sections) {
    os_ << "== " << section.title
        << (report.full_scale
                ? " [full scale]"
                : " [quick scale; pass --full for paper scale]")
        << " ==\n";
    section.table.print(os_);
    os_ << std::flush;
  }
}

void CsvDirSink::consume(const Report& report) {
  for (std::size_t i = 0; i < report.sections.size(); ++i) {
    std::string path = dir_;
    path += '/';
    path += report.scenario;
    if (report.sections.size() > 1) {
      path += '_';
      path += std::to_string(i + 1);
    }
    path += ".csv";
    if (!report.sections[i].table.write_csv_file(path)) {
      std::cerr << "lmpr: csv export to " << path << " failed\n";
    }
  }
}

void LegacyCsvSink::consume(const Report& report) {
  for (const auto& section : report.sections) {
    if (section.table.write_csv_file(path_)) {
      os_ << "csv written to " << path_ << "\n";
    }
  }
}

util::Json JsonSink::to_json(const Report& report) {
  auto config = util::Json::object();
  config.set("full", report.full_scale);
  config.set("seed", report.seed);
  config.set("workers", static_cast<std::uint64_t>(report.workers));
  for (const auto& [key, value] : report.config) config.set(key, value);

  auto metrics = util::Json::object();
  for (const auto& metric : report.metrics) {
    metrics.set(metric.name, metric.value);
  }

  auto series = util::Json::array();
  for (const auto& section : report.sections) {
    auto columns = util::Json::array();
    for (const auto& header : section.table.headers()) columns.push(header);
    auto rows = util::Json::array();
    for (const auto& row : section.table.cells()) {
      auto cells = util::Json::array();
      for (const auto& cell : row) cells.push(cell);
      rows.push(std::move(cells));
    }
    series.push(util::Json::object()
                    .set("title", section.title)
                    .set("columns", std::move(columns))
                    .set("rows", std::move(rows)));
  }

  auto run = util::Json::object();
  run.set("scenario", report.scenario);
  run.set("artifact", report.artifact);
  run.set("family", report.family);
  run.set("scale", report.full_scale ? "full" : "quick");
  run.set("seed", report.seed);
  run.set("samples", static_cast<std::uint64_t>(report.samples));
  run.set("converged", report.converged);
  run.set("duration_seconds", report.duration_seconds);
  run.set("config", std::move(config));
  run.set("metrics", std::move(metrics));
  run.set("series", std::move(series));
  return run;
}

util::Json JsonSink::document(const std::vector<Report>& reports) {
  auto runs = util::Json::array();
  for (const auto& report : reports) runs.push(to_json(report));
  return util::Json::object()
      .set("schema", "lmpr-run-report/v1")
      .set("runs", std::move(runs));
}

void JsonSink::consume(const Report& report) { runs_.push(to_json(report)); }

void JsonSink::finish() {
  auto doc = util::Json::object()
                 .set("schema", "lmpr-run-report/v1")
                 .set("runs", std::move(runs_));
  std::ofstream out(path_);
  if (!out) {
    std::cerr << "lmpr: cannot open " << path_ << " for writing\n";
    ok_ = false;
    return;
  }
  doc.write(out, 2);
  out << "\n";
  ok_ = out.good();
}

}  // namespace lmpr::engine
