#include "engine/runner.hpp"

#include <chrono>
#include <string>

namespace lmpr::engine {

std::vector<Report> run_scenarios(const std::vector<const Scenario*>& scenarios,
                                  const CommonOptions& options,
                                  const std::vector<ReportSink*>& sinks) {
  std::vector<Report> reports;
  reports.reserve(scenarios.size());
  const RunContext ctx(options);
  for (const Scenario* scenario : scenarios) {
    Report report;
    report.scenario = scenario->name;
    report.artifact = scenario->artifact;
    report.family = std::string(to_string(scenario->family));
    report.full_scale = ctx.full();
    report.seed = ctx.seed();
    report.workers = ctx.workers();
    const auto start = std::chrono::steady_clock::now();
    scenario->run(ctx, report);
    report.duration_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (ReportSink* sink : sinks) sink->consume(report);
    reports.push_back(std::move(report));
  }
  for (ReportSink* sink : sinks) sink->finish();
  return reports;
}

Report run_scenario(const Scenario& scenario, const CommonOptions& options,
                    const std::vector<ReportSink*>& sinks) {
  auto reports = run_scenarios({&scenario}, options, sinks);
  return std::move(reports.front());
}

}  // namespace lmpr::engine
