// Sharded-fabric-manager scaling scenario: the tentpole measurement of
// per-island repair domains.  A seeded island-local cable storm is
// replayed through the monolithic manager and the sharded manager in
// lockstep; the scenario reports the wall-clock ratio (the sharded side
// repairs remote destination columns island-scoped instead of
// fabric-wide) and asserts the two runs were bit-identical -- a speedup
// bought by computing something else would be a bug, not a result.
#include <string>

#include "engine/registry.hpp"
#include "engine/shard_support.hpp"

namespace lmpr::engine {

namespace {

void run_fm_shard_scaling(const RunContext& ctx, Report& report) {
  ShardBenchOptions options;
  options.spec = ctx.full() ? topo::XgftSpec{{12, 12, 24}, {1, 12, 12}}
                            : topo::XgftSpec{{4, 4, 4}, {1, 2, 2}};
  options.events = ctx.full() ? 12 : 24;
  options.seed = ctx.derived_seed("fm_shard_scaling");
  options.pool = &ctx.pool();
  const ShardBenchResult result = run_shard_bench(options);
  if (!result.ok) {
    report.add_config("error", result.error);
    report.converged = false;
    return;
  }

  util::Table table({"manager", "events", "columns_full", "columns_scoped",
                     "total_churn", "seconds", "events_per_sec"});
  const double mono_eps =
      result.monolithic_seconds > 0.0
          ? static_cast<double>(result.events) / result.monolithic_seconds
          : 0.0;
  table.add_row({"monolithic", util::Table::num(result.events),
                 util::Table::num(result.columns_full +
                                  result.columns_scoped),
                 "0", util::Table::num(result.total_churn),
                 util::Table::num(result.monolithic_seconds, 3),
                 util::Table::num(mono_eps, 1)});
  table.add_row({"sharded", util::Table::num(result.events),
                 util::Table::num(result.columns_full),
                 util::Table::num(result.columns_scoped),
                 util::Table::num(result.total_churn),
                 util::Table::num(result.sharded_seconds, 3),
                 util::Table::num(result.sharded_events_per_sec, 1)});

  report.add_config("topology", options.spec.to_string());
  report.add_config("islands", std::to_string(result.islands));
  report.add_config("shards", std::to_string(result.shards));
  report.add_config("events", std::to_string(result.events));
  report.add_metric("speedup", result.speedup);
  report.add_metric("identical", result.identical ? 1.0 : 0.0);
  report.add_metric("monolithic_seconds", result.monolithic_seconds);
  report.add_metric("sharded_seconds", result.sharded_seconds);
  report.add_metric("sharded_events_per_sec", result.sharded_events_per_sec);
  report.add_metric("columns_scoped",
                    static_cast<double>(result.columns_scoped));
  report.samples = result.events;
  report.converged = report.converged && result.identical;
  report.add_section("Monolithic vs sharded repair under one island-local "
                         "cable storm, " +
                         options.spec.to_string(),
                     std::move(table));
}

}  // namespace

void register_shard_scenarios(ScenarioRegistry& registry) {
  Scenario scaling;
  scaling.name = "fm_shard_scaling";
  scaling.artifact = "extension";
  scaling.family = Family::kAnalysis;
  scaling.description = "Repair wall-clock of the sharded fabric manager "
                        "(per-island repair domains) against the monolithic "
                        "manager under one island-local cable storm, with a "
                        "bit-identity cross-check";
  scaling.quick_params = "XGFT(3;4,4,4;1,2,2), 24 events, auto shards";
  scaling.full_params = "XGFT(3;12,12,24;1,12,12), 12 events, auto shards";
  scaling.run = run_fm_shard_scaling;
  registry.add(scaling);
}

}  // namespace lmpr::engine
