// Pluggable report sinks: the classic aligned-ASCII table stream, one
// CSV file per scenario, and the machine-readable JSON run report that
// stamps every run with its full provenance.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "util/json.hpp"

namespace lmpr::engine {

class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void consume(const Report& report) = 0;
  /// Called once after the last report (file sinks flush here).
  virtual void finish() {}
};

/// Prints each section exactly like the historical bench binaries:
///   == <title> [quick scale; pass --full for paper scale] ==
///   <aligned table>
/// so driver/shim output stays byte-compatible with the per-figure
/// binaries' quick- and full-scale runs.
class TextSink : public ReportSink {
 public:
  explicit TextSink(std::ostream& os) : os_(os) {}
  void consume(const Report& report) override;

 private:
  std::ostream& os_;
};

/// Writes <dir>/<scenario>.csv (single-section scenarios) or
/// <dir>/<scenario>_<i>.csv (multi-section).  Failures are reported to
/// stderr and skipped; CSV export is best-effort like Table::write_csv_file.
class CsvDirSink : public ReportSink {
 public:
  explicit CsvDirSink(std::string dir) : dir_(std::move(dir)) {}
  void consume(const Report& report) override;

 private:
  std::string dir_;
};

/// Legacy `--csv PATH` behaviour of the per-figure binaries: every
/// section is written to the same path in order (the last section wins
/// for multi-section scenarios), with the historical confirmation line.
class LegacyCsvSink : public ReportSink {
 public:
  LegacyCsvSink(std::string path, std::ostream& os)
      : path_(std::move(path)), os_(os) {}
  void consume(const Report& report) override;

 private:
  std::string path_;
  std::ostream& os_;
};

/// Accumulates every run into one JSON document and writes it on
/// finish().  Schema: {"schema": "lmpr-run-report/v1", "runs": [...]}.
class JsonSink : public ReportSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}
  void consume(const Report& report) override;
  void finish() override;

  /// False when finish() could not write the report file.
  bool ok() const noexcept { return ok_; }

  /// The JSON object for one report (exposed for tests and embedding).
  static util::Json to_json(const Report& report);
  /// The full document for a set of reports.
  static util::Json document(const std::vector<Report>& reports);

 private:
  std::string path_;
  util::Json runs_ = util::Json::array();
  bool ok_ = true;
};

}  // namespace lmpr::engine
