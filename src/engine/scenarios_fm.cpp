// Fabric-manager scenarios: layout-vs-layout churn under a seeded fault
// storm, repair-policy head-to-head on post-repair link load, and the
// incremental-repair scaling argument (churn ratio of a single-cable
// fault against a from-scratch rebuild).
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "fm/fabric_manager.hpp"
#include "util/rng.hpp"

namespace lmpr::engine {

namespace {

using fabric::LidLayout;
using fabric::RepairPolicy;

/// Inverse of the recognition isomorphism of `manager`.
std::vector<std::uint32_t> inverse_canonical(const fm::FabricManager& manager) {
  const auto& canonical = manager.canonical();
  std::vector<std::uint32_t> inverse(canonical.size(), 0);
  for (std::uint32_t raw = 0; raw < canonical.size(); ++raw) {
    inverse[static_cast<std::size_t>(canonical[raw])] = raw;
  }
  return inverse;
}

fm::Event cable_event(const fm::FabricManager& manager,
                      const std::vector<std::uint32_t>& inverse,
                      std::uint64_t cable, bool down) {
  const topo::Link& link =
      manager.xgft().link(static_cast<topo::LinkId>(cable));
  return {down ? fm::EventType::kCableDown : fm::EventType::kCableUp,
          inverse[static_cast<std::size_t>(link.src)],
          inverse[static_cast<std::size_t>(link.dst)]};
}

/// A seeded kill/heal storm over the probe manager's cable set: each step
/// kills a random live cable with probability 0.6 (always when nothing is
/// dead yet) and re-cables a random dead one otherwise.  The sequence
/// depends only on (cable count, seed), so every layout/K combination
/// replays the identical storm.
std::vector<fm::Event> cable_storm(const fm::FabricManager& probe,
                                   std::size_t count, util::Rng& rng) {
  const auto inverse = inverse_canonical(probe);
  const std::uint64_t cables = probe.xgft().num_cables();
  std::vector<bool> dead(static_cast<std::size_t>(cables), false);
  std::vector<std::uint64_t> dead_list;
  std::vector<fm::Event> events;
  events.reserve(count);
  while (events.size() < count) {
    const bool kill = dead_list.empty() ||
                      (dead_list.size() < cables && rng.uniform01() < 0.6);
    if (kill) {
      std::uint64_t cable = rng.below(cables);
      while (dead[static_cast<std::size_t>(cable)]) {
        cable = rng.below(cables);
      }
      dead[static_cast<std::size_t>(cable)] = true;
      dead_list.push_back(cable);
      events.push_back(cable_event(probe, inverse, cable, /*down=*/true));
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.below(dead_list.size()));
      const std::uint64_t cable = dead_list[pick];
      dead_list[pick] = dead_list.back();
      dead_list.pop_back();
      dead[static_cast<std::size_t>(cable)] = false;
      events.push_back(cable_event(probe, inverse, cable, /*down=*/false));
    }
  }
  return events;
}

std::size_t valid_entries(const fabric::Tables& tables) {
  std::size_t n = 0;
  for (const auto& row : tables) {
    n += static_cast<std::size_t>(
        std::count_if(row.begin(), row.end(), [](topo::LinkId link) {
          return link != topo::kInvalidLink;
        }));
  }
  return n;
}

void run_churn_disjoint_vs_shift(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(ctx.full()
                                    ? topo::XgftSpec{{4, 4, 8}, {1, 4, 4}}
                                    : topo::XgftSpec{{4, 4}, {2, 2}});
  const std::size_t num_events = ctx.full() ? 120 : 40;

  // One storm for everyone: the comparison is layout-vs-layout under the
  // identical fault sequence.
  fm::FmConfig probe_config;
  probe_config.track_link_load = false;
  const fm::FabricManager probe{spec, probe_config};
  if (!probe.ok()) {
    report.add_config("error", probe.error());
    report.converged = false;
    return;
  }
  util::Rng rng{ctx.derived_seed("fm_churn")};
  const auto events = cable_storm(probe, num_events, rng);

  util::Table table({"layout", "K", "events", "total_churn", "repaired",
                     "full_rebuilds", "max_disc_window", "final_disc_pairs",
                     "mean_max_load"});
  for (const LidLayout layout :
       {LidLayout::kDisjointLayout, LidLayout::kShiftLayout}) {
    for (const std::uint64_t k : {2u, 4u}) {
      fm::FmConfig config;
      config.k_paths = k;
      config.layout = layout;
      config.zero_timings = true;
      fm::FabricManager manager{spec, config};
      double load_sum = 0.0;
      std::size_t load_count = 0;
      for (const auto& event : events) {
        const auto record = manager.apply(event);
        if (record.ok && record.event.topology_event()) {
          load_sum += record.max_link_load;
          ++load_count;
        }
      }
      const auto& summary = manager.summary();
      table.add_row(
          {std::string(to_string(layout)), util::Table::num(k),
           util::Table::num(summary.topology_events),
           util::Table::num(summary.total_churn),
           util::Table::num(summary.destinations_repaired),
           util::Table::num(summary.full_rebuilds),
           util::Table::num(summary.max_disconnected_window),
           util::Table::num(static_cast<std::size_t>(
               summary.disconnected_pairs)),
           util::Table::num(load_count > 0
                                ? load_sum / static_cast<double>(load_count)
                                : 0.0)});
      report.add_metric("total_churn_" + std::string(to_string(layout)) +
                            "_k" + std::to_string(k),
                        static_cast<double>(summary.total_churn));
      report.add_metric("max_disc_window_" + std::string(to_string(layout)) +
                            "_k" + std::to_string(k),
                        static_cast<double>(summary.max_disconnected_window));
    }
  }
  report.add_config("topology", spec.to_string());
  report.add_config("events", std::to_string(num_events));
  report.samples = num_events;
  report.add_section("Repair churn under an identical cable storm, " +
                         spec.to_string(),
                     std::move(table));
}

void run_repair_scaling(const RunContext& ctx, Report& report) {
  std::vector<topo::XgftSpec> specs = {topo::XgftSpec{{4, 4}, {2, 2}},
                                       topo::XgftSpec{{4, 4, 4}, {1, 2, 2}}};
  if (ctx.full()) specs.push_back(topo::XgftSpec{{4, 4, 8}, {1, 4, 4}});

  util::Table table({"policy", "topology", "cables", "faults", "full_entries",
                     "mean_churn", "churn_ratio", "mean_repaired", "hosts",
                     "mean_repair_ms"});
  double worst_ratio = 0.0;
  std::size_t total_faults = 0;
  for (const RepairPolicy policy :
       {RepairPolicy::kFirstSurviving, RepairPolicy::kLoadAware}) {
    double policy_worst = 0.0;
    for (const auto& spec : specs) {
      fm::FmConfig config;
      config.track_link_load = false;
      config.repair_policy = policy;
      // Observe the pure incremental path: no escalation, so the ratio
      // measures affected-set repair against a from-scratch rebuild.
      config.full_rebuild_threshold = 1.0;
      fm::FabricManager manager{spec, config};
      if (!manager.ok()) {
        report.add_config("error", manager.error());
        report.converged = false;
        return;
      }
      const auto inverse = inverse_canonical(manager);
      const std::uint64_t cables = manager.xgft().num_cables();
      const std::size_t full_entries = valid_entries(manager.tables());

      std::vector<std::uint64_t> faults;
      if (ctx.full() || cables <= 16) {
        for (std::uint64_t c = 0; c < cables; ++c) faults.push_back(c);
      } else {
        util::Rng rng{ctx.derived_seed("fm_repair_scaling")};
        for (int i = 0; i < 12; ++i) faults.push_back(rng.below(cables));
      }

      std::size_t churn = 0;
      std::size_t repaired = 0;
      double seconds = 0.0;
      for (const std::uint64_t cable : faults) {
        // Fault, measure, then re-cable so every fault hits a healthy
        // fabric (the heal leg restores the nominal tables exactly).
        const auto down =
            manager.apply(cable_event(manager, inverse, cable, /*down=*/true));
        churn += down.churn;
        repaired += down.destinations_repaired;
        seconds += down.repair_seconds;
        manager.apply(cable_event(manager, inverse, cable, /*down=*/false));
      }
      const double n = static_cast<double>(faults.size());
      const double ratio = static_cast<double>(churn) /
                           (n * static_cast<double>(full_entries));
      policy_worst = std::max(policy_worst, ratio);
      total_faults += faults.size();
      table.add_row({std::string(to_string(policy)), spec.to_string(),
                     util::Table::num(cables),
                     util::Table::num(faults.size()),
                     util::Table::num(full_entries),
                     util::Table::num(static_cast<double>(churn) / n, 1),
                     util::Table::num(ratio),
                     util::Table::num(static_cast<double>(repaired) / n, 1),
                     util::Table::num(manager.xgft().num_hosts()),
                     util::Table::num(seconds * 1e3 / n)});
    }
    worst_ratio = std::max(worst_ratio, policy_worst);
    report.add_metric("churn_ratio_worst_" + std::string(to_string(policy)),
                      policy_worst);
  }
  report.add_config("k_paths", "4");
  report.add_config("layout", "disjoint");
  report.add_metric("churn_ratio_worst", worst_ratio);
  report.samples = total_faults;
  report.add_section(
      "Incremental repair churn vs from-scratch rebuild, single-cable "
      "faults, per repair policy",
      std::move(table));
}

// Head-to-head of the repair policies on one seeded cable storm: both
// managers replay the identical events; after every topology event the
// post-repair reference-permutation max link load is compared.  The
// paper's point applied to repair: WHICH surviving variant you re-home a
// broken path onto decides the congestion the degraded fabric serves, so
// load_aware must never lose to first_surviving (the `regressions`
// metric the tests pin to zero) while rewriting a comparable number of
// entries.
void run_rebalance_vs_first(const RunContext& ctx, Report& report) {
  // Quick default is a width-3 tree: with K=4 variants over radix-3
  // switches the greedy has genuine spreading choices, so the comparison
  // is not vacuous.
  const auto spec = ctx.topo_or(ctx.full()
                                    ? topo::XgftSpec{{4, 4, 8}, {1, 4, 4}}
                                    : topo::XgftSpec{{4, 4}, {3, 3}});
  const std::size_t num_events = ctx.full() ? 120 : 40;

  fm::FmConfig probe_config;
  probe_config.track_link_load = false;
  const fm::FabricManager probe{spec, probe_config};
  if (!probe.ok()) {
    report.add_config("error", probe.error());
    report.converged = false;
    return;
  }
  util::Rng rng{ctx.derived_seed("fm_rebalance")};
  const auto events = cable_storm(probe, num_events, rng);

  struct PolicyRun {
    RepairPolicy policy;
    std::unique_ptr<fm::FabricManager> manager;
    double load_sum = 0.0;
    double load_worst = 0.0;
  };
  std::vector<PolicyRun> runs;
  for (const RepairPolicy policy :
       {RepairPolicy::kFirstSurviving, RepairPolicy::kLoadAware}) {
    fm::FmConfig config;
    config.repair_policy = policy;
    config.zero_timings = true;
    runs.push_back({policy, std::make_unique<fm::FabricManager>(spec, config)});
    if (!runs.back().manager->ok()) {
      report.add_config("error", runs.back().manager->error());
      report.converged = false;
      return;
    }
  }

  // Lockstep replay: per event, the load_aware load may never exceed the
  // first_surviving load (beyond rounding).
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t load_events = 0;
  for (const auto& event : events) {
    double first_load = 0.0;
    for (auto& run : runs) {
      const auto record = run.manager->apply(event);
      if (!record.ok || !record.event.topology_event()) continue;
      run.load_sum += record.max_link_load;
      run.load_worst = std::max(run.load_worst, record.max_link_load);
      if (run.policy == RepairPolicy::kFirstSurviving) {
        first_load = record.max_link_load;
        ++load_events;
      } else {
        if (record.max_link_load > first_load + 1e-9) ++regressions;
        if (record.max_link_load < first_load - 1e-9) ++improvements;
      }
    }
  }

  util::Table table({"policy", "events", "total_churn", "repaired",
                     "full_rebuilds", "mean_max_load", "worst_max_load",
                     "final_disc_pairs"});
  for (const auto& run : runs) {
    const auto& summary = run.manager->summary();
    const double n = static_cast<double>(
        std::max<std::size_t>(1, summary.topology_events));
    table.add_row({std::string(to_string(run.policy)),
                   util::Table::num(summary.topology_events),
                   util::Table::num(summary.total_churn),
                   util::Table::num(summary.destinations_repaired),
                   util::Table::num(summary.full_rebuilds),
                   util::Table::num(run.load_sum / n),
                   util::Table::num(run.load_worst),
                   util::Table::num(static_cast<std::size_t>(
                       summary.disconnected_pairs))});
    report.add_metric("mean_max_load_" + std::string(to_string(run.policy)),
                      run.load_sum / n);
    report.add_metric("total_churn_" + std::string(to_string(run.policy)),
                      static_cast<double>(summary.total_churn));
  }
  report.add_metric("regressions", static_cast<double>(regressions));
  report.add_metric("improvements", static_cast<double>(improvements));
  report.add_config("topology", spec.to_string());
  report.add_config("events", std::to_string(num_events));
  report.add_config("k_paths", "4");
  report.add_config("layout", "disjoint");
  report.samples = load_events;
  report.converged = report.converged && regressions == 0;
  report.add_section("Post-repair reference load, load_aware vs "
                         "first_surviving under one cable storm, " +
                         spec.to_string(),
                     std::move(table));
}

}  // namespace

void register_fm_scenarios(ScenarioRegistry& registry) {
  Scenario churn;
  churn.name = "fm_churn_disjoint_vs_shift";
  churn.artifact = "extension";
  churn.family = Family::kAnalysis;
  churn.description = "Fabric-manager repair churn, outage windows and "
                      "surviving-load under one seeded cable storm, per "
                      "LID layout and K";
  churn.quick_params = "XGFT(2;4,4;2,2), 40 events";
  churn.full_params = "XGFT(3;4,4,8;1,4,4), 120 events";
  churn.run = run_churn_disjoint_vs_shift;
  registry.add(churn);

  Scenario scaling;
  scaling.name = "fm_repair_scaling";
  scaling.artifact = "extension";
  scaling.family = Family::kAnalysis;
  scaling.description = "Single-cable-fault churn of incremental repair "
                        "against a from-scratch LFT rebuild (churn ratio), "
                        "per repair policy";
  scaling.quick_params = "2 topologies x 2 policies, 12 sampled faults each";
  scaling.full_params = "3 topologies x 2 policies, every cable";
  scaling.run = run_repair_scaling;
  registry.add(scaling);

  Scenario rebalance;
  rebalance.name = "fm_rebalance_vs_first";
  rebalance.artifact = "extension";
  rebalance.family = Family::kAnalysis;
  rebalance.description = "Post-repair reference link load of load_aware vs "
                          "first_surviving repair under one seeded cable "
                          "storm (regressions must be zero)";
  rebalance.quick_params = "XGFT(2;4,4;3,3), 40 events";
  rebalance.full_params = "XGFT(3;4,4,8;1,4,4), 120 events";
  rebalance.run = run_rebalance_vs_first;
  registry.add(rebalance);
}

}  // namespace lmpr::engine
