#include "engine/serve_support.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "topology/factory.hpp"

namespace lmpr::engine {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ServeThroughputResult run_serve_throughput(
    const ServeThroughputOptions& options) {
  ServeThroughputResult result;

  serve::ServeConfig config;
  config.fm.k_paths = options.k_paths;
  serve::RoutingService service(config);
  const serve::LoadOutcome loaded = service.load_spec(options.spec);
  if (!loaded.ok) {
    result.error = loaded.error;
    return result;
  }

  // The service's id space is the identity export of this same factory
  // spec, so the topology's link endpoints are valid raw event ids.
  const auto topology = topo::make_topology(options.spec);
  const std::uint64_t hosts = topology->num_hosts();
  if (hosts < 2) {
    result.error = "spec has fewer than 2 hosts";
    return result;
  }
  std::vector<std::uint64_t> cables(
      static_cast<std::size_t>(topology->num_cables()));
  std::iota(cables.begin(), cables.end(), 0);
  std::mt19937_64 rng(options.seed);
  std::shuffle(cables.begin(), cables.end(), rng);
  const std::size_t storm = std::min<std::size_t>(
      cables.size(), static_cast<std::size_t>(options.storm_cables));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> inconsistent{0};
  std::vector<std::thread> readers;
  readers.reserve(options.readers);
  for (unsigned r = 0; r < options.readers; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t done = 0;
      std::uint64_t bad = 0;
      std::uint64_t last_generation = 0;
      std::uint64_t cursor = r;  // distinct per-thread pair streams
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t src = cursor % hosts;
        const std::uint64_t dst = (cursor + 1 + r) % hosts;
        cursor += 7;
        if (src == dst) continue;
        const serve::PathResult path = service.query_path(src, dst);
        ++done;
        // Torn-snapshot detectors: every answer must come from one
        // consistent published generation.
        if (!path.ok || path.generation < last_generation ||
            path.usable > path.variants) {
          ++bad;
          continue;
        }
        last_generation = path.generation;
        const topo::NodeId target = topology->host(dst);
        for (const serve::VariantWalk& walk : path.walks) {
          if (walk.delivered &&
              (walk.nodes.empty() || walk.nodes.back() != target)) {
            ++bad;
          }
        }
      }
      queries.fetch_add(done, std::memory_order_relaxed);
      inconsistent.fetch_add(bad, std::memory_order_relaxed);
    });
  }

  const auto start = Clock::now();
  std::uint64_t applied = 0;
  bool events_ok = true;
  for (std::size_t i = 0; i < storm; ++i) {
    const topo::Link& link =
        topology->link(static_cast<topo::LinkId>(cables[i]));
    fm::Event event;
    event.a = link.src;
    event.b = link.dst;
    event.type = fm::EventType::kCableDown;
    events_ok = service.apply_event(event).record.ok && events_ok;
    ++applied;
    event.type = fm::EventType::kCableUp;
    events_ok = service.apply_event(event).record.ok && events_ok;
    ++applied;
  }
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  if (!events_ok) {
    result.error = "a storm event was rejected";
    return result;
  }
  result.ok = true;
  result.queries = queries.load();
  result.events = applied;
  result.inconsistent = inconsistent.load();
  result.final_generation = service.generation();
  if (result.seconds > 0.0) {
    result.queries_per_sec =
        static_cast<double>(result.queries) / result.seconds;
    result.events_per_sec =
        static_cast<double>(result.events) / result.seconds;
  }
  return result;
}

}  // namespace lmpr::engine
