// Shared monolithic-vs-sharded fabric-manager benchmark: replays one
// seeded island-local cable storm through a monolithic fm::FabricManager
// and a shard::ShardedFabricManager in lockstep, times both repair
// paths, and proves the sharded run produced bit-identical results
// (per-event records and the final forwarding tables).  Used by the
// fm_shard_scaling scenario and the perf_baseline fm_shard section so
// both report the same measurement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "fm/fabric_manager.hpp"
#include "topology/spec.hpp"
#include "util/thread_pool.hpp"

namespace lmpr::engine {

struct ShardBenchOptions {
  topo::XgftSpec spec{{4, 4, 4}, {1, 2, 2}};
  /// Cable storm length (kill/heal events; cables only, so every event
  /// is island-owned -- spine serialization is exercised by the tests,
  /// not the benchmark).
  std::size_t events = 12;
  std::uint64_t seed = 0;
  std::uint64_t k_paths = 4;
  fabric::RepairPolicy policy = fabric::RepairPolicy::kFirstSurviving;
  /// Shard count for the sharded side (0 = auto, one shard per island).
  std::size_t shards = 0;
  /// Worker pool for the sharded side (may be null or empty: ranges then
  /// run inline, which is also where the single-core speedup comes from
  /// -- island scoping is algorithmic, not thread parallelism).
  util::ThreadPool* pool = nullptr;
};

struct ShardBenchResult {
  bool ok = false;
  std::string error;
  /// Every per-event record and the final tables matched the monolithic
  /// manager bit-for-bit.
  bool identical = false;
  std::size_t events = 0;
  std::size_t islands = 0;
  std::size_t shards = 0;
  double monolithic_seconds = 0.0;
  double sharded_seconds = 0.0;
  double speedup = 0.0;
  double sharded_events_per_sec = 0.0;
  std::uint64_t columns_full = 0;    ///< sharded-side full column rebuilds
  std::uint64_t columns_scoped = 0;  ///< sharded-side island-scoped rebuilds
  std::uint64_t total_churn = 0;
};

ShardBenchResult run_shard_bench(const ShardBenchOptions& options);

}  // namespace lmpr::engine
