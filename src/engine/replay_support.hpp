// Shared replay report builder: runs a replay::ReplayEngine over an event
// script and renders the result as an engine::Report (epoch table, event
// log, recovery metrics).  Used by the `lmpr replay` driver subcommand,
// the replay_* scenarios and the golden-file test, so all three emit the
// identical schema through the existing sink layer.
#pragma once

#include <string>
#include <string_view>

#include "engine/report.hpp"
#include "fm/events.hpp"
#include "replay/replay.hpp"
#include "topology/spec.hpp"

namespace lmpr::engine {

struct ReplayRunOptions {
  topo::XgftSpec spec{{4, 4}, {2, 2}};
  /// Externally supplied fabric (`lmpr replay --topology SPEC`); overrides
  /// `spec` when non-null.  Generic fabrics additionally need
  /// config.fm.allow_generic.
  const discovery::RawFabric* fabric = nullptr;
  /// Printable name for `fabric` (the --topology spec).
  std::string topology_name;
  replay::ReplayConfig config;
};

/// Replays the script over live traffic and fills `report` with the
/// schema-stable replay run report: identity stamp ("replay" / flit),
/// config echo, the per-epoch window table, the per-event repair log and
/// the recovery metrics the acceptance criteria name.  Returns false with
/// `error` set when the fabric is not recognizable or the script is
/// malformed / stamped beyond the measurement window; event-level
/// semantic errors are recorded in the log and counted in the
/// `event_errors` metric instead.  `report.converged` additionally
/// requires the run to recover within the tolerance.
bool run_replay(const ReplayRunOptions& options, const fm::EventScript& script,
                Report& report, std::string& error);

/// The canonical replay smoke script (XGFT(2;4,4;2,2) raw ids): a level-1
/// cable dies mid-measurement, then a host uplink, then both heal.  The
/// identical text ships as scripts/replay_smoke.script for the CLI; the
/// replay test pins file and constant together.
std::string_view replay_quick_script() noexcept;

/// The pinned replay parameters `lmpr replay` defaults to (2+16+4 kcycle
/// timeline, 2 kcycle windows, load 0.5, seed 42, zeroed fm timings);
/// replay_quick, the golden file and the CI smoke step all share them.
replay::ReplayConfig quick_replay_config();

}  // namespace lmpr::engine
