#include "engine/registry.hpp"

#include "engine/scenarios.hpp"
#include "util/contracts.hpp"

namespace lmpr::engine {

std::string_view to_string(Family family) noexcept {
  switch (family) {
    case Family::kFlow: return "flow";
    case Family::kFlit: return "flit";
    case Family::kAnalysis: return "analysis";
  }
  return "?";
}

bool glob_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative glob with single-star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

void ScenarioRegistry::add(Scenario scenario) {
  LMPR_EXPECTS(!scenario.name.empty());
  LMPR_EXPECTS(find(scenario.name) == nullptr);
  LMPR_EXPECTS(scenario.run != nullptr);
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const noexcept {
  for (const auto& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::match(
    std::string_view glob) const {
  std::vector<const Scenario*> matched;
  for (const auto& scenario : scenarios_) {
    if (glob_match(glob, scenario.name)) matched.push_back(&scenario);
  }
  return matched;
}

void register_builtin_scenarios(ScenarioRegistry& registry) {
  register_fig4_scenarios(registry);
  register_flit_scenarios(registry);
  register_theorem_scenarios(registry);
  register_flow_scenarios(registry);
  register_analysis_scenarios(registry);
  register_fm_scenarios(registry);
  register_shard_scenarios(registry);
  register_generic_scenarios(registry);
  register_replay_scenarios(registry);
  register_perf_scenarios(registry);
  register_serve_scenarios(registry);
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    register_builtin_scenarios(r);
    return r;
  }();
  return registry;
}

}  // namespace lmpr::engine
