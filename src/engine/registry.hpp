// The scenario registry: one named entry per experiment (paper figure,
// table, theorem, ablation, extension), each with a description, its
// quick/full parameter summaries, and a run function producing a
// structured Report.  The single `lmpr` driver and the legacy bench
// shims both resolve scenarios here.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/context.hpp"
#include "engine/report.hpp"

namespace lmpr::engine {

struct Scenario {
  std::string name;        ///< registry key, e.g. "fig4a"
  std::string artifact;    ///< paper artifact, e.g. "Figure 4(a)"
  Family family = Family::kFlow;
  std::string description; ///< one-line summary for `lmpr list`
  std::string quick_params; ///< default (quick) parameter set summary
  std::string full_params;  ///< --full parameter set summary
  /// Computes the study and fills the report's config echo, sections,
  /// metrics, samples and convergence flag.  Must be a deterministic
  /// function of (context.seed, context.full, topo override).
  std::function<void(const RunContext&, Report&)> run;
};

/// Matches `*` (any run) and `?` (any char) glob patterns; everything
/// else is literal.  Used by `lmpr run --filter` and `lmpr list`.
bool glob_match(std::string_view pattern, std::string_view text) noexcept;

class ScenarioRegistry {
 public:
  /// Registers a scenario; names must be unique.
  void add(Scenario scenario);

  /// Lookup by exact name; nullptr when absent.
  const Scenario* find(std::string_view name) const noexcept;

  /// All scenarios in registration order.
  const std::vector<Scenario>& all() const noexcept { return scenarios_; }

  /// Registration-ordered scenarios whose name matches the glob.
  std::vector<const Scenario*> match(std::string_view glob) const;

  /// The process-wide registry with every built-in scenario registered.
  static const ScenarioRegistry& builtin();

 private:
  std::vector<Scenario> scenarios_;
};

/// Registers the full built-in suite (fig4a-d, table1, fig5, theorem1/2,
/// all ablations, and the extension studies) into `registry`.
void register_builtin_scenarios(ScenarioRegistry& registry);

}  // namespace lmpr::engine
