// Dynamic-replay scenarios: the pinned smoke storm the golden test and CI
// byte-diff (replay_quick), and the repair-policy head-to-head on RECOVERY
// TIME under live traffic (replay_cable_storm) -- the dynamic counterpart
// of fm_rebalance_vs_first's static max-load comparison.
#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "engine/replay_support.hpp"
#include "fm/fabric_manager.hpp"
#include "replay/replay.hpp"

namespace lmpr::engine {

namespace {

/// Inverse of the recognition isomorphism of `manager`.
std::vector<std::uint32_t> inverse_canonical(
    const fm::FabricManager& manager) {
  const auto& canonical = manager.canonical();
  std::vector<std::uint32_t> inverse(canonical.size(), 0);
  for (std::uint32_t raw = 0; raw < canonical.size(); ++raw) {
    inverse[static_cast<std::size_t>(canonical[raw])] = raw;
  }
  return inverse;
}

fm::Event timed_cable_down(const fm::FabricManager& manager,
                           const std::vector<std::uint32_t>& inverse,
                           std::uint64_t cable, std::uint64_t at) {
  const topo::Link& link =
      manager.xgft().link(static_cast<topo::LinkId>(cable));
  fm::Event event{fm::EventType::kCableDown,
                  inverse[static_cast<std::size_t>(link.src)],
                  inverse[static_cast<std::size_t>(link.dst)]};
  event.at = at;
  event.timed = true;
  return event;
}

void run_replay_quick(const RunContext&, Report& report) {
  // Deliberately pinned -- topology, seed, script and scale are part of
  // the golden contract, so the context's overrides are ignored.
  ReplayRunOptions options;
  options.config = quick_replay_config();
  const fm::EventScript script =
      fm::parse_event_script(std::string(replay_quick_script()));
  std::string error;
  if (!run_replay(options, script, report, error)) {
    report.add_config("error", error);
    report.converged = false;
  }
}

void run_replay_cable_storm(const RunContext& ctx, Report& report) {
  // Width-3 tree: each level-0 switch keeps two surviving uplinks after
  // its port-0 uplink dies, so first_surviving piles every displaced
  // variant onto port 1 while load_aware spreads across ports 1 and 2 --
  // the storm where the policies genuinely differ under live traffic.
  const topo::XgftSpec spec{{4, 4}, {3, 3}};
  const std::uint64_t measure = ctx.full() ? 40'000 : 20'000;
  const std::size_t kills = ctx.full() ? 6 : 4;

  fm::FmConfig probe_config;
  probe_config.track_link_load = false;
  const fm::FabricManager probe{spec, probe_config};
  if (!probe.ok()) {
    report.add_config("error", probe.error());
    report.converged = false;
    return;
  }
  const auto inverse = inverse_canonical(probe);
  const topo::Xgft& xgft = probe.xgft();

  // A burst of port-0 uplink kills across distinct level-0 switches,
  // spaced one window apart after two clean baseline windows; no heals,
  // so recovery measures how fast each policy's repaired routing brings
  // the delay back down on the degraded fabric.
  fm::EventScript script;
  script.ok = true;
  std::uint64_t at = 4'000;
  for (std::size_t i = 0; i < kills; ++i) {
    const topo::NodeId sw = xgft.node_id(1, static_cast<std::uint64_t>(i));
    const topo::LinkId up = xgft.up_link(sw, 0);
    script.events.push_back(
        timed_cable_down(probe, inverse, xgft.cable_of(up), at));
    at += 2'000;
  }

  struct PolicyOutcome {
    fabric::RepairPolicy policy;
    replay::ReplayResult result;
  };
  std::vector<PolicyOutcome> outcomes;
  for (const fabric::RepairPolicy policy :
       {fabric::RepairPolicy::kFirstSurviving,
        fabric::RepairPolicy::kLoadAware}) {
    replay::ReplayConfig config;
    config.sim.warmup_cycles = 2'000;
    config.sim.measure_cycles = measure;
    config.sim.drain_cycles = 6'000;
    config.sim.offered_load = 0.6;
    config.sim.seed = ctx.derived_seed("replay_cable_storm");
    config.sim.drop_policy = flit::DropPolicy::kRerouteAtSwitch;
    config.fm.repair_policy = policy;
    config.fm.zero_timings = true;
    config.window_cycles = 2'000;
    replay::ReplayEngine engine(spec, config);
    if (!engine.ok()) {
      report.add_config("error", engine.error());
      report.converged = false;
      return;
    }
    outcomes.push_back({policy, engine.run(script)});
    if (!outcomes.back().result.ok) {
      report.add_config("error", outcomes.back().result.error);
      report.converged = false;
      return;
    }
  }

  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  const auto effective = [](const replay::ReplayResult& result) {
    return result.recovered ? result.recovery_cycles : kNever;
  };
  util::Table table({"policy", "baseline_delay", "peak_delay", "spike",
                     "dropped", "rerouted", "messages_lost", "recovered",
                     "recovery_cycles"});
  for (const PolicyOutcome& outcome : outcomes) {
    const replay::ReplayResult& result = outcome.result;
    const std::string policy = std::string(to_string(outcome.policy));
    table.add_row(
        {policy, util::Table::num(result.baseline_delay, 1),
         util::Table::num(result.peak_delay, 1),
         util::Table::num(result.baseline_delay > 0.0
                              ? result.peak_delay / result.baseline_delay
                              : 0.0),
         util::Table::num(result.overall.packets_dropped),
         util::Table::num(result.overall.packets_rerouted),
         util::Table::num(result.overall.messages_lost),
         result.recovered ? "yes" : "no",
         result.recovered ? util::Table::num(result.recovery_cycles)
                          : "never"});
    report.add_metric("baseline_delay_" + policy, result.baseline_delay);
    report.add_metric("peak_delay_" + policy, result.peak_delay);
    report.add_metric("recovered_" + policy, result.recovered ? 1.0 : 0.0);
    report.add_metric("recovery_cycles_" + policy,
                      result.recovered
                          ? static_cast<double>(result.recovery_cycles)
                          : -1.0);
  }

  const replay::ReplayResult& first = outcomes[0].result;
  const replay::ReplayResult& aware = outcomes[1].result;
  // The dynamic claim: under live traffic the load-aware repair's spread
  // must not slow recovery relative to first_surviving's pileup -- and
  // the storm must actually produce a transient to recover from.
  const bool spike = aware.peak_delay > aware.baseline_delay;
  report.converged = aware.recovered && spike &&
                     effective(aware) <= effective(first);
  report.add_metric("delay_spike", spike ? 1.0 : 0.0);
  report.add_config("topology", spec.to_string());
  report.add_config("kills", std::to_string(kills));
  report.add_config("measure_cycles", std::to_string(measure));
  report.samples = outcomes[0].result.epochs.size();
  report.add_section("Recovery after an uplink kill burst, load_aware vs "
                         "first_surviving repair, " +
                         spec.to_string(),
                     std::move(table));
}

}  // namespace

void register_replay_scenarios(ScenarioRegistry& registry) {
  Scenario quick;
  quick.name = "replay_quick";
  quick.artifact = "extension";
  quick.family = Family::kFlit;
  quick.description = "Pinned replay smoke storm (golden contract): a "
                      "level-1 cable and a host uplink die mid-measurement "
                      "and heal, epoch windows track the transient";
  quick.quick_params = "XGFT(2;4,4;2,2), 6 events, 2+16+4 kcycles, seed 42";
  quick.full_params = "identical (the run is pinned for the golden file)";
  quick.run = run_replay_quick;
  registry.add(quick);

  Scenario storm;
  storm.name = "replay_cable_storm";
  storm.artifact = "extension";
  storm.family = Family::kFlit;
  storm.description = "Live-traffic recovery time after an uplink kill "
                      "burst, load_aware vs first_surviving repair "
                      "(load_aware must not recover slower)";
  storm.quick_params = "XGFT(2;4,4;3,3), 4 kills, 20 kcycle window";
  storm.full_params = "XGFT(2;4,4;3,3), 6 kills, 40 kcycle window";
  storm.run = run_replay_cable_storm;
  registry.add(storm);
}

}  // namespace lmpr::engine
