// Flit-level scenarios: Table 1, Figure 5, the traffic-split /
// destination-model / virtual-channel ablations, and the adaptive
// variant-selection study (oblivious vs credit-aware choice among the K
// installed LFT variants).
#include "engine/registry.hpp"
#include "engine/study.hpp"
#include "fabric/degraded.hpp"
#include "fabric/lft.hpp"

namespace lmpr::engine {

namespace {

void run_table1(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 5 : 2);

  const std::vector<std::size_t> k_values =
      ctx.full() ? std::vector<std::size_t>{1, 2, 4, 8, 16}
                 : std::vector<std::size_t>{1, 2, 4, 8};

  // d-mod-k ignores K: measure its single column value once.
  const route::RouteTable dmodk(xgft, route::Heuristic::kDModK, 1,
                                ctx.seed());
  const double dmodk_throughput =
      measure_saturation(dmodk, base, loads, pairings, &ctx.pool())
          .max_throughput;

  double best = dmodk_throughput;
  util::Table table(
      {"num_paths", "dmodk_%", "shift1_%", "random_%", "disjoint_%"});
  for (const std::size_t k : k_values) {
    std::vector<std::string> row{util::Table::num(k),
                                 util::Table::num(100.0 * dmodk_throughput, 2)};
    for (const route::Heuristic h :
         {route::Heuristic::kShift1, route::Heuristic::kRandom,
          route::Heuristic::kDisjoint}) {
      const route::RouteTable rt(xgft, h, k, ctx.seed());
      const auto result =
        measure_saturation(rt, base, loads, pairings, &ctx.pool());
      best = std::max(best, result.max_throughput);
      row.push_back(util::Table::num(100.0 * result.max_throughput, 2));
    }
    table.add_row(std::move(row));
  }
  report.add_config("topology", spec.to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.add_config("loads", std::to_string(loads.size()));
  report.add_metric("best_throughput_percent", 100.0 * best);
  report.samples = pairings.size();
  report.add_section("Table 1: max throughput (%), uniform (fixed-pairing) "
                     "traffic, " + spec.to_string(),
                     std::move(table));
}

void run_fig5(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};

  struct Series {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Series series[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"disjoint(2)", route::Heuristic::kDisjoint, 2},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
      {"shift1(2)", route::Heuristic::kShift1, 2},
      {"shift1(8)", route::Heuristic::kShift1, 8},
      {"random(1)", route::Heuristic::kRandomSingle, 1},
      {"random(2)", route::Heuristic::kRandom, 2},
      {"random(8)", route::Heuristic::kRandom, 8},
  };

  const auto base = flit_base_config(ctx.full());
  const auto loads = ctx.full() ? flit::linspace_loads(0.05, 0.95, 10)
                                : std::vector<double>{0.1, 0.3, 0.5, 0.7};
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 1);

  // delays[series][load] accumulated over pairings.
  std::vector<std::vector<double>> delays(
      std::size(series), std::vector<double>(loads.size(), 0.0));
  for (std::size_t s = 0; s < std::size(series); ++s) {
    const route::RouteTable table(xgft, series[s].heuristic, series[s].k,
                                  ctx.seed());
    for (const auto& pairing : pairings) {
      flit::SimConfig config = base;
      config.seed = ctx.seed();
      config.fixed_destinations = pairing;
      const auto sweep =
          flit::run_load_sweep(table, config, loads, &ctx.pool());
      for (std::size_t i = 0; i < loads.size(); ++i) {
        delays[s][i] += sweep.points[i].mean_message_delay /
                        static_cast<double>(pairings.size());
      }
    }
  }

  std::vector<std::string> headers{"offered_load_%"};
  for (const auto& s : series) headers.emplace_back(s.name);
  util::Table table(headers);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> row{util::Table::num(100.0 * loads[i], 0)};
    for (std::size_t s = 0; s < std::size(series); ++s) {
      row.push_back(util::Table::num(delays[s][i], 1));
    }
    table.add_row(std::move(row));
  }
  report.add_config("topology", spec.to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.add_config("loads", std::to_string(loads.size()));
  report.samples = pairings.size();
  report.add_section(
      "Figure 5: mean message delay (cycles) vs offered load, " +
          spec.to_string(),
      std::move(table));
}

void run_path_granularity(const RunContext& ctx, Report& report) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 2);

  struct Mode {
    const char* name;
    flit::PathSelection selection;
  };
  const Mode modes[] = {
      {"random per message", flit::PathSelection::kRandomPerMessage},
      {"random per packet", flit::PathSelection::kRandomPerPacket},
      {"round robin per message", flit::PathSelection::kRoundRobinPerMessage},
  };

  util::Table table({"heuristic", "K", "path granularity", "max_throughput_%",
                     "low_load_delay_cyc", "reorder_frac@high"});
  for (const route::Heuristic h :
       {route::Heuristic::kDisjoint, route::Heuristic::kShift1}) {
    for (const std::size_t k : {2u, 8u}) {
      const route::RouteTable rt(xgft, h, k, ctx.seed());
      for (const Mode& mode : modes) {
        flit::SimConfig config = base;
        config.path_selection = mode.selection;
        const auto result =
          measure_saturation(rt, config, loads, pairings, &ctx.pool());
        table.add_row({std::string(to_string(h)), util::Table::num(k),
                       mode.name,
                       util::Table::num(100.0 * result.max_throughput, 2),
                       util::Table::num(result.delay_at_low_load, 1),
                       util::Table::num(result.reorder_at_high_load)});
      }
    }
  }
  report.add_config("topology", xgft.spec().to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.samples = pairings.size();
  report.add_section("Ablation A3: traffic-split granularity, " +
                         xgft.spec().to_string(),
                     std::move(table));
}

void run_destination_mode(const RunContext& ctx, Report& report) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 2);

  struct Scheme {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Scheme schemes[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
  };

  util::Table table({"scheme", "destination model", "max_throughput_%"});
  for (const Scheme& scheme : schemes) {
    const route::RouteTable rt(xgft, scheme.heuristic, scheme.k,
                               ctx.seed());
    {
      const auto fixed =
          measure_saturation(rt, base, loads, pairings, &ctx.pool());
      table.add_row({scheme.name, "fixed pairing (permutation)",
                     util::Table::num(100.0 * fixed.max_throughput, 2)});
    }
    {
      flit::SimConfig config = base;
      config.destination_mode = flit::DestinationMode::kPerMessage;
      double best = 0.0;
      for (std::size_t i = 0; i < pairings.size(); ++i) {
        config.seed = base.seed + 31 * (i + 1);
        const auto sweep =
            flit::run_load_sweep(rt, config, loads, &ctx.pool());
        best += sweep.max_throughput;
      }
      table.add_row({scheme.name, "fresh per message",
                     util::Table::num(100.0 * best /
                                          static_cast<double>(pairings.size()),
                                      2)});
    }
  }
  report.add_config("topology", xgft.spec().to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.samples = pairings.size();
  report.add_section("Ablation A4: destination model vs routing gains, " +
                         xgft.spec().to_string(),
                     std::move(table));
}

void run_virtual_channels(const RunContext& ctx, Report& report) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 2);

  struct Scheme {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Scheme schemes[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"shift1(8)", route::Heuristic::kShift1, 8},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
  };

  util::Table table({"scheme", "VCs", "max_throughput_%"});
  for (const Scheme& scheme : schemes) {
    const route::RouteTable rt(xgft, scheme.heuristic, scheme.k,
                               ctx.seed());
    for (const std::uint32_t vcs : {1u, 2u, 4u}) {
      flit::SimConfig config = base;
      config.num_vcs = vcs;
      const auto result =
          measure_saturation(rt, config, loads, pairings, &ctx.pool());
      table.add_row({scheme.name, util::Table::num(std::uint64_t{vcs}),
                     util::Table::num(100.0 * result.max_throughput, 2)});
    }
  }
  report.add_config("topology", xgft.spec().to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.samples = pairings.size();
  report.add_section(
      "Ablation A6: virtual channels vs saturation throughput, " +
          xgft.spec().to_string(),
      std::move(table));
}

// The headline study for the adaptive variant-selection subsystem
// (DESIGN.md section 16): on the same disjoint-layout LFTs, compare the
// oblivious split across the K installed variants against the per-switch
// selector that re-picks a variant from live output credits/occupancy at
// injection and every upward hop.  Two traffic patterns where oblivious
// splitting is known to leave throughput on the table -- the shift-1
// permutation (the paper's worst case for the shift LID layout) and a
// hotspot -- and the K=16 table (every top switch, the LFT analogue of
// UMULTI) as the upper reference.  The all-ports credit-based adaptive
// router rides along as the unconstrained baseline: the selector may only
// choose among the K *installed* variants, so the gap between the two is
// the price of staying LFT-deployable.
void run_adaptive_vs_oblivious(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};
  const fabric::Degradation healthy(xgft);

  auto base = flit_base_config(ctx.full());
  base.seed = ctx.seed();
  const auto loads = flit_load_grid(ctx.full());

  struct Traffic {
    const char* name;
    flit::DestinationMode mode;
  };
  const Traffic traffics[] = {
      {"shift1", flit::DestinationMode::kShift},
      {"hotspot", flit::DestinationMode::kHotspot},
  };
  struct Policy {
    const char* name;
    flit::SelectPolicy select;
  };
  const Policy policies[] = {
      {"oblivious", flit::SelectPolicy::kOblivious},
      {"adaptive_credit", flit::SelectPolicy::kAdaptiveCredit},
      {"adaptive_occupancy", flit::SelectPolicy::kAdaptiveOccupancy},
  };

  const auto umulti_k = spec.num_top_switches();
  std::vector<std::uint64_t> k_values{1, 2, 4};
  if (k_values.back() < umulti_k) k_values.push_back(umulti_k);

  // shift-1 rescue metrics: does adaptive K=2 recover what oblivious K=2
  // loses, and how close does it get to the UMULTI-style K=16 reference?
  double shift1_k2_oblivious = 0.0;
  double shift1_k2_adaptive = 0.0;
  double shift1_umulti = 0.0;

  util::Table table({"traffic", "k_paths", "policy", "max_throughput_%",
                     "low_load_delay_cyc", "reorder_frac@high"});
  for (const std::uint64_t k : k_values) {
    const fabric::Lft lft(xgft, k, fabric::LidLayout::kDisjointLayout);
    const fabric::Tables tables = fabric::build_lft(lft, healthy);
    const bool umulti_row = k == umulti_k && k > 4;
    for (const Traffic& traffic : traffics) {
      flit::SimConfig config = base;
      config.destination_mode = traffic.mode;
      for (const Policy& policy : policies) {
        // K=1 has a single variant: the selector cannot engage, so only
        // the oblivious row is measured (the others would be identical).
        if (k == 1 && policy.select != flit::SelectPolicy::kOblivious) {
          continue;
        }
        config.select = policy.select;
        const auto result =
            measure_saturation_lft(lft, tables, config, loads, &ctx.pool());
        const std::string label =
            umulti_row ? std::string("umulti(") + std::to_string(k) + ")"
                       : std::to_string(k);
        table.add_row({traffic.name, label, policy.name,
                       util::Table::num(100.0 * result.max_throughput, 2),
                       util::Table::num(result.delay_at_low_load, 1),
                       util::Table::num(result.reorder_at_high_load)});
        if (traffic.mode == flit::DestinationMode::kShift && k == 2) {
          if (policy.select == flit::SelectPolicy::kOblivious) {
            shift1_k2_oblivious = result.max_throughput;
          } else if (policy.select == flit::SelectPolicy::kAdaptiveCredit) {
            shift1_k2_adaptive = result.max_throughput;
          }
        }
        if (traffic.mode == flit::DestinationMode::kShift && umulti_row &&
            policy.select == flit::SelectPolicy::kOblivious) {
          shift1_umulti = result.max_throughput;
        }
      }
    }
  }

  // Unconstrained baseline: the all-ports credit-based adaptive router
  // (RoutingMode::kAdaptive) on the K=1 tables -- it ignores the variant
  // block entirely and picks among every usable upward port.
  {
    const fabric::Lft lft(xgft, 1, fabric::LidLayout::kDisjointLayout);
    const fabric::Tables tables = fabric::build_lft(lft, healthy);
    for (const Traffic& traffic : traffics) {
      flit::SimConfig config = base;
      config.destination_mode = traffic.mode;
      config.routing_mode = flit::RoutingMode::kAdaptive;
      const auto result =
          measure_saturation_lft(lft, tables, config, loads, &ctx.pool());
      table.add_row({traffic.name, "all-ports", "adaptive_credit",
                     util::Table::num(100.0 * result.max_throughput, 2),
                     util::Table::num(result.delay_at_low_load, 1),
                     util::Table::num(result.reorder_at_high_load)});
    }
  }

  // Selector-engagement probe: one mid-load shift-1 run at K=4 whose
  // decision/switch counters prove the adaptive rows above actually
  // exercised non-default variants (the degeneracy guard the equivalence
  // tests also enforce), and that the counters are kernel-independent.
  {
    const fabric::Lft lft(xgft, 4, fabric::LidLayout::kDisjointLayout);
    const fabric::Tables tables = fabric::build_lft(lft, healthy);
    flit::SimConfig config = base;
    config.destination_mode = flit::DestinationMode::kShift;
    config.select = flit::SelectPolicy::kAdaptiveCredit;
    config.offered_load = 0.75;
    flit::Network net(lft, tables, config);
    net.run();
    const adaptive::SelectorStats& stats = net.selector_stats();
    report.add_metric("selector_decisions",
                      static_cast<double>(stats.decisions));
    report.add_metric("selector_switches",
                      static_cast<double>(stats.switches));
  }

  report.add_config("topology", spec.to_string());
  report.add_config("layout", "disjoint");
  report.add_config("loads", std::to_string(loads.size()));
  report.add_config("hotspot",
                    std::to_string(base.hotspot_target) + " @ " +
                        util::Table::num(base.hotspot_fraction, 2));
  report.add_metric("shift1_k2_oblivious_throughput", shift1_k2_oblivious);
  report.add_metric("shift1_k2_adaptive_throughput", shift1_k2_adaptive);
  report.add_metric("shift1_umulti_throughput", shift1_umulti);
  if (shift1_umulti > shift1_k2_oblivious) {
    // Fraction of the oblivious-K=2 -> UMULTI gap the selector recovers.
    report.add_metric("shift1_k2_rescue_fraction",
                      (shift1_k2_adaptive - shift1_k2_oblivious) /
                          (shift1_umulti - shift1_k2_oblivious));
  }
  report.samples = k_values.size();
  report.add_section(
      "Adaptive variant selection vs oblivious split (disjoint LFTs), " +
          spec.to_string(),
      std::move(table));
}

}  // namespace

void register_flit_scenarios(ScenarioRegistry& registry) {
  Scenario table1;
  table1.name = "table1";
  table1.artifact = "Table 1";
  table1.family = Family::kFlit;
  table1.description = "Max throughput (% of injection capacity) under "
                       "fixed-pairing uniform traffic per (heuristic, K)";
  table1.quick_params = "2 pairings x 5 loads, 15k cycles, K in {1,2,4,8}";
  table1.full_params = "5 pairings x 10 loads, 50k cycles, K in {1,2,4,8,16}";
  table1.run = run_table1;
  registry.add(table1);

  Scenario fig5;
  fig5.name = "fig5";
  fig5.artifact = "Figure 5";
  fig5.family = Family::kFlit;
  fig5.description = "Mean message delay vs offered load for the paper's "
                     "eight routing series";
  fig5.quick_params = "1 pairing x 4 loads, 15k cycles";
  fig5.full_params = "3 pairings x 10 loads, 50k cycles";
  fig5.run = run_fig5;
  registry.add(fig5);

  Scenario a3;
  a3.name = "ablation_path_granularity";
  a3.artifact = "Ablation A3";
  a3.family = Family::kFlit;
  a3.description = "Traffic split per message / per packet / round-robin: "
                   "throughput, delay and reordering";
  a3.quick_params = "2 pairings x 5 loads";
  a3.full_params = "3 pairings x 10 loads";
  a3.run = run_path_granularity;
  registry.add(a3);

  Scenario a4;
  a4.name = "ablation_destination_mode";
  a4.artifact = "Ablation A4";
  a4.family = Family::kFlit;
  a4.description = "Fixed pairing vs fresh destination per message: where "
                   "the multi-path gains come from";
  a4.quick_params = "2 pairings x 5 loads";
  a4.full_params = "3 pairings x 10 loads";
  a4.run = run_destination_mode;
  registry.add(a4);

  Scenario a6;
  a6.name = "ablation_virtual_channels";
  a6.artifact = "Ablation A6";
  a6.family = Family::kFlit;
  a6.description = "Saturation throughput at 1/2/4 virtual channels: "
                   "head-of-line blocking vs path quality";
  a6.quick_params = "2 pairings x 5 loads";
  a6.full_params = "3 pairings x 10 loads";
  a6.run = run_virtual_channels;
  registry.add(a6);

  Scenario adaptive;
  adaptive.name = "adaptive_vs_oblivious";
  adaptive.artifact = "extension";
  adaptive.family = Family::kFlit;
  adaptive.description =
      "Adaptive variant selection (credit/occupancy-aware choice among "
      "the K installed LFT variants) vs the oblivious split, under "
      "shift-1 and hotspot traffic, with UMULTI-style K=16 and all-ports "
      "adaptive as references";
  adaptive.quick_params = "K in {1,2,4,16} x 2 traffics x 5 loads, "
                          "15k cycles";
  adaptive.full_params = "K in {1,2,4,16} x 2 traffics x 10 loads, "
                         "50k cycles";
  adaptive.run = run_adaptive_vs_oblivious;
  registry.add(adaptive);
}

}  // namespace lmpr::engine
