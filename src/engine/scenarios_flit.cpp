// Flit-level scenarios: Table 1, Figure 5, the traffic-split /
// destination-model / virtual-channel ablations, and the credit-based
// adaptive-routing reference point.
#include "engine/registry.hpp"
#include "engine/study.hpp"

namespace lmpr::engine {

namespace {

void run_table1(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 5 : 2);

  const std::vector<std::size_t> k_values =
      ctx.full() ? std::vector<std::size_t>{1, 2, 4, 8, 16}
                 : std::vector<std::size_t>{1, 2, 4, 8};

  // d-mod-k ignores K: measure its single column value once.
  const route::RouteTable dmodk(xgft, route::Heuristic::kDModK, 1,
                                ctx.seed());
  const double dmodk_throughput =
      measure_saturation(dmodk, base, loads, pairings, &ctx.pool())
          .max_throughput;

  double best = dmodk_throughput;
  util::Table table(
      {"num_paths", "dmodk_%", "shift1_%", "random_%", "disjoint_%"});
  for (const std::size_t k : k_values) {
    std::vector<std::string> row{util::Table::num(k),
                                 util::Table::num(100.0 * dmodk_throughput, 2)};
    for (const route::Heuristic h :
         {route::Heuristic::kShift1, route::Heuristic::kRandom,
          route::Heuristic::kDisjoint}) {
      const route::RouteTable rt(xgft, h, k, ctx.seed());
      const auto result =
        measure_saturation(rt, base, loads, pairings, &ctx.pool());
      best = std::max(best, result.max_throughput);
      row.push_back(util::Table::num(100.0 * result.max_throughput, 2));
    }
    table.add_row(std::move(row));
  }
  report.add_config("topology", spec.to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.add_config("loads", std::to_string(loads.size()));
  report.add_metric("best_throughput_percent", 100.0 * best);
  report.samples = pairings.size();
  report.add_section("Table 1: max throughput (%), uniform (fixed-pairing) "
                     "traffic, " + spec.to_string(),
                     std::move(table));
}

void run_fig5(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};

  struct Series {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Series series[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"disjoint(2)", route::Heuristic::kDisjoint, 2},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
      {"shift1(2)", route::Heuristic::kShift1, 2},
      {"shift1(8)", route::Heuristic::kShift1, 8},
      {"random(1)", route::Heuristic::kRandomSingle, 1},
      {"random(2)", route::Heuristic::kRandom, 2},
      {"random(8)", route::Heuristic::kRandom, 8},
  };

  const auto base = flit_base_config(ctx.full());
  const auto loads = ctx.full() ? flit::linspace_loads(0.05, 0.95, 10)
                                : std::vector<double>{0.1, 0.3, 0.5, 0.7};
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 1);

  // delays[series][load] accumulated over pairings.
  std::vector<std::vector<double>> delays(
      std::size(series), std::vector<double>(loads.size(), 0.0));
  for (std::size_t s = 0; s < std::size(series); ++s) {
    const route::RouteTable table(xgft, series[s].heuristic, series[s].k,
                                  ctx.seed());
    for (const auto& pairing : pairings) {
      flit::SimConfig config = base;
      config.seed = ctx.seed();
      config.fixed_destinations = pairing;
      const auto sweep =
          flit::run_load_sweep(table, config, loads, &ctx.pool());
      for (std::size_t i = 0; i < loads.size(); ++i) {
        delays[s][i] += sweep.points[i].mean_message_delay /
                        static_cast<double>(pairings.size());
      }
    }
  }

  std::vector<std::string> headers{"offered_load_%"};
  for (const auto& s : series) headers.emplace_back(s.name);
  util::Table table(headers);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> row{util::Table::num(100.0 * loads[i], 0)};
    for (std::size_t s = 0; s < std::size(series); ++s) {
      row.push_back(util::Table::num(delays[s][i], 1));
    }
    table.add_row(std::move(row));
  }
  report.add_config("topology", spec.to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.add_config("loads", std::to_string(loads.size()));
  report.samples = pairings.size();
  report.add_section(
      "Figure 5: mean message delay (cycles) vs offered load, " +
          spec.to_string(),
      std::move(table));
}

void run_path_granularity(const RunContext& ctx, Report& report) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 2);

  struct Mode {
    const char* name;
    flit::PathSelection selection;
  };
  const Mode modes[] = {
      {"random per message", flit::PathSelection::kRandomPerMessage},
      {"random per packet", flit::PathSelection::kRandomPerPacket},
      {"round robin per message", flit::PathSelection::kRoundRobinPerMessage},
  };

  util::Table table({"heuristic", "K", "path granularity", "max_throughput_%",
                     "low_load_delay_cyc", "reorder_frac@high"});
  for (const route::Heuristic h :
       {route::Heuristic::kDisjoint, route::Heuristic::kShift1}) {
    for (const std::size_t k : {2u, 8u}) {
      const route::RouteTable rt(xgft, h, k, ctx.seed());
      for (const Mode& mode : modes) {
        flit::SimConfig config = base;
        config.path_selection = mode.selection;
        const auto result =
          measure_saturation(rt, config, loads, pairings, &ctx.pool());
        table.add_row({std::string(to_string(h)), util::Table::num(k),
                       mode.name,
                       util::Table::num(100.0 * result.max_throughput, 2),
                       util::Table::num(result.delay_at_low_load, 1),
                       util::Table::num(result.reorder_at_high_load)});
      }
    }
  }
  report.add_config("topology", xgft.spec().to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.samples = pairings.size();
  report.add_section("Ablation A3: traffic-split granularity, " +
                         xgft.spec().to_string(),
                     std::move(table));
}

void run_destination_mode(const RunContext& ctx, Report& report) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 2);

  struct Scheme {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Scheme schemes[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
  };

  util::Table table({"scheme", "destination model", "max_throughput_%"});
  for (const Scheme& scheme : schemes) {
    const route::RouteTable rt(xgft, scheme.heuristic, scheme.k,
                               ctx.seed());
    {
      const auto fixed =
          measure_saturation(rt, base, loads, pairings, &ctx.pool());
      table.add_row({scheme.name, "fixed pairing (permutation)",
                     util::Table::num(100.0 * fixed.max_throughput, 2)});
    }
    {
      flit::SimConfig config = base;
      config.destination_mode = flit::DestinationMode::kPerMessage;
      double best = 0.0;
      for (std::size_t i = 0; i < pairings.size(); ++i) {
        config.seed = base.seed + 31 * (i + 1);
        const auto sweep =
            flit::run_load_sweep(rt, config, loads, &ctx.pool());
        best += sweep.max_throughput;
      }
      table.add_row({scheme.name, "fresh per message",
                     util::Table::num(100.0 * best /
                                          static_cast<double>(pairings.size()),
                                      2)});
    }
  }
  report.add_config("topology", xgft.spec().to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.samples = pairings.size();
  report.add_section("Ablation A4: destination model vs routing gains, " +
                         xgft.spec().to_string(),
                     std::move(table));
}

void run_virtual_channels(const RunContext& ctx, Report& report) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 2);

  struct Scheme {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  const Scheme schemes[] = {
      {"dmodk", route::Heuristic::kDModK, 1},
      {"shift1(8)", route::Heuristic::kShift1, 8},
      {"disjoint(8)", route::Heuristic::kDisjoint, 8},
  };

  util::Table table({"scheme", "VCs", "max_throughput_%"});
  for (const Scheme& scheme : schemes) {
    const route::RouteTable rt(xgft, scheme.heuristic, scheme.k,
                               ctx.seed());
    for (const std::uint32_t vcs : {1u, 2u, 4u}) {
      flit::SimConfig config = base;
      config.num_vcs = vcs;
      const auto result =
          measure_saturation(rt, config, loads, pairings, &ctx.pool());
      table.add_row({scheme.name, util::Table::num(std::uint64_t{vcs}),
                     util::Table::num(100.0 * result.max_throughput, 2)});
    }
  }
  report.add_config("topology", xgft.spec().to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.samples = pairings.size();
  report.add_section(
      "Ablation A6: virtual channels vs saturation throughput, " +
          xgft.spec().to_string(),
      std::move(table));
}

void run_adaptive_vs_oblivious(const RunContext& ctx, Report& report) {
  const topo::Xgft xgft{topo::XgftSpec::m_port_n_tree(8, 3)};

  const auto base = flit_base_config(ctx.full());
  const auto loads = flit_load_grid(ctx.full());
  const auto pairings =
      shared_pairings(xgft.num_hosts(), ctx.seed(), ctx.full() ? 3 : 2);

  util::Table table({"routing", "max_throughput_%", "low_load_delay_cyc"});

  // Oblivious schemes.
  struct Scheme {
    const char* name;
    route::Heuristic heuristic;
    std::size_t k;
  };
  for (const Scheme& scheme :
       {Scheme{"dmodk (oblivious)", route::Heuristic::kDModK, 1},
        Scheme{"disjoint(4) (oblivious)", route::Heuristic::kDisjoint, 4},
        Scheme{"disjoint(8) (oblivious)", route::Heuristic::kDisjoint, 8},
        Scheme{"umulti(16) (oblivious)", route::Heuristic::kUmulti, 16}}) {
    const route::RouteTable rt(xgft, scheme.heuristic, scheme.k,
                               ctx.seed());
    const auto result =
        measure_saturation(rt, base, loads, pairings, &ctx.pool());
    table.add_row({scheme.name,
                   util::Table::num(100.0 * result.max_throughput, 2),
                   util::Table::num(result.delay_at_low_load, 1)});
  }

  // Adaptive routing (route table is a placeholder; routing ignores it).
  {
    const route::RouteTable rt(xgft, route::Heuristic::kDModK, 1,
                               ctx.seed());
    flit::SimConfig config = base;
    config.routing_mode = flit::RoutingMode::kAdaptive;
    const auto result =
          measure_saturation(rt, config, loads, pairings, &ctx.pool());
    table.add_row({"credit-based adaptive",
                   util::Table::num(100.0 * result.max_throughput, 2),
                   util::Table::num(result.delay_at_low_load, 1)});
  }
  report.add_config("topology", xgft.spec().to_string());
  report.add_config("pairings", std::to_string(pairings.size()));
  report.samples = pairings.size();
  report.add_section("Adaptive vs oblivious routing (fixed pairing), " +
                         xgft.spec().to_string(),
                     std::move(table));
}

}  // namespace

void register_flit_scenarios(ScenarioRegistry& registry) {
  Scenario table1;
  table1.name = "table1";
  table1.artifact = "Table 1";
  table1.family = Family::kFlit;
  table1.description = "Max throughput (% of injection capacity) under "
                       "fixed-pairing uniform traffic per (heuristic, K)";
  table1.quick_params = "2 pairings x 5 loads, 15k cycles, K in {1,2,4,8}";
  table1.full_params = "5 pairings x 10 loads, 50k cycles, K in {1,2,4,8,16}";
  table1.run = run_table1;
  registry.add(table1);

  Scenario fig5;
  fig5.name = "fig5";
  fig5.artifact = "Figure 5";
  fig5.family = Family::kFlit;
  fig5.description = "Mean message delay vs offered load for the paper's "
                     "eight routing series";
  fig5.quick_params = "1 pairing x 4 loads, 15k cycles";
  fig5.full_params = "3 pairings x 10 loads, 50k cycles";
  fig5.run = run_fig5;
  registry.add(fig5);

  Scenario a3;
  a3.name = "ablation_path_granularity";
  a3.artifact = "Ablation A3";
  a3.family = Family::kFlit;
  a3.description = "Traffic split per message / per packet / round-robin: "
                   "throughput, delay and reordering";
  a3.quick_params = "2 pairings x 5 loads";
  a3.full_params = "3 pairings x 10 loads";
  a3.run = run_path_granularity;
  registry.add(a3);

  Scenario a4;
  a4.name = "ablation_destination_mode";
  a4.artifact = "Ablation A4";
  a4.family = Family::kFlit;
  a4.description = "Fixed pairing vs fresh destination per message: where "
                   "the multi-path gains come from";
  a4.quick_params = "2 pairings x 5 loads";
  a4.full_params = "3 pairings x 10 loads";
  a4.run = run_destination_mode;
  registry.add(a4);

  Scenario a6;
  a6.name = "ablation_virtual_channels";
  a6.artifact = "Ablation A6";
  a6.family = Family::kFlit;
  a6.description = "Saturation throughput at 1/2/4 virtual channels: "
                   "head-of-line blocking vs path quality";
  a6.quick_params = "2 pairings x 5 loads";
  a6.full_params = "3 pairings x 10 loads";
  a6.run = run_virtual_channels;
  registry.add(a6);

  Scenario adaptive;
  adaptive.name = "adaptive_vs_oblivious";
  adaptive.artifact = "extension";
  adaptive.family = Family::kFlit;
  adaptive.description = "Credit-based adaptive up-routing as the upper "
                         "reference for oblivious multi-path";
  adaptive.quick_params = "2 pairings x 5 loads";
  adaptive.full_params = "3 pairings x 10 loads";
  adaptive.run = run_adaptive_vs_oblivious;
  registry.add(adaptive);
}

}  // namespace lmpr::engine
