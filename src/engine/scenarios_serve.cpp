// The routing-daemon scenario: serve_throughput measures PATH
// queries/sec sustained by hammering reader threads while a cable storm
// replays through the service's ingest thread -- the headline number for
// the `lmpr serve` published-snapshot design.  Readers double as torn-
// read detectors; any inconsistent answer fails convergence.
#include "engine/registry.hpp"
#include "engine/serve_support.hpp"
#include "engine/study.hpp"

namespace lmpr::engine {

namespace {

void run_serve_throughput_scenario(const RunContext& ctx, Report& report) {
  ServeThroughputOptions options;
  options.seed = ctx.seed();
  options.readers = 4;
  options.storm_cables = ctx.full() ? 256 : 64;

  const ServeThroughputResult result = run_serve_throughput(options);
  if (!result.ok) {
    report.converged = false;
    report.add_config("error", result.error);
    return;
  }

  report.samples = result.queries;
  report.converged = result.inconsistent == 0;
  report.add_config("topology", options.spec);
  report.add_config("readers", std::to_string(options.readers));
  report.add_config("storm_cables", std::to_string(options.storm_cables));
  report.add_metric("queries_per_sec", result.queries_per_sec);
  report.add_metric("events_per_sec", result.events_per_sec);
  report.add_metric("queries", static_cast<double>(result.queries));
  report.add_metric("storm_events", static_cast<double>(result.events));
  report.add_metric("inconsistent", static_cast<double>(result.inconsistent));
  report.add_metric("final_generation",
                    static_cast<double>(result.final_generation));

  util::Table table({"measure", "value"});
  table.add_row({"queries answered", util::Table::num(
                     static_cast<double>(result.queries), 0)});
  table.add_row({"queries/sec", util::Table::num(result.queries_per_sec, 0)});
  table.add_row({"storm events/sec",
                 util::Table::num(result.events_per_sec, 0)});
  table.add_row({"inconsistent answers",
                 util::Table::num(static_cast<double>(result.inconsistent),
                                  0)});
  report.add_section("Serve throughput under a cable storm",
                     std::move(table));
}

}  // namespace

void register_serve_scenarios(ScenarioRegistry& registry) {
  Scenario serve;
  serve.name = "serve_throughput";
  serve.artifact = "routing daemon";
  serve.family = Family::kAnalysis;
  serve.description =
      "PATH queries/sec from 4 reader threads while a cable storm "
      "repairs through the lmpr serve ingest thread; readers assert "
      "generation-consistent answers";
  serve.quick_params = "XGFT(3;4,4,4;1,2,2), k=4, 64 cables toggled";
  serve.full_params = "same topology, 256 cables toggled";
  serve.run = run_serve_throughput_scenario;
  registry.add(serve);
}

}  // namespace lmpr::engine
