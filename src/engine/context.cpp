#include "engine/context.hpp"

#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace lmpr::engine {

CommonOptions CommonOptions::from_cli(const util::Cli& cli) {
  CommonOptions options;
  options.full = util::full_scale_requested(cli);
  options.csv_path = cli.get_or("csv", "");
  options.seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{7}));
  options.workers = static_cast<std::size_t>(cli.get_or(
      "workers",
      static_cast<std::int64_t>(util::ThreadPool::default_workers())));
  options.topo = cli.get_or("topo", "");
  if (const auto unknown = cli.unknown_flags(); !unknown.empty()) {
    std::ostringstream oss;
    oss << "unknown flag" << (unknown.size() > 1 ? "s" : "") << ":";
    for (const auto& name : unknown) oss << " --" << name;
    throw std::invalid_argument(oss.str());
  }
  return options;
}

util::ThreadPool& RunContext::pool() const {
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<util::ThreadPool>(options_.workers);
    pool_ = owned_pool_.get();
  }
  return *pool_;
}

topo::XgftSpec RunContext::topo_or(const topo::XgftSpec& fallback) const {
  if (options_.topo.empty()) return fallback;
  return topo::XgftSpec::parse(options_.topo);
}

util::CiStoppingRule RunContext::stopping_rule() const noexcept {
  util::CiStoppingRule rule;
  if (options_.full) {
    rule.initial_samples = 100;
    rule.max_samples = 12800;
  } else {
    rule.initial_samples = 30;
    rule.max_samples = 120;
  }
  return rule;
}

std::uint64_t RunContext::derived_seed(std::string_view tag) const noexcept {
  // FNV-1a over the tag, then one splitmix64 round keyed by the base seed.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : tag) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  std::uint64_t state = options_.seed ^ hash;
  return util::splitmix64(state);
}

}  // namespace lmpr::engine
