// Flow-level ablations and extension studies: per-level load balance,
// s-mod-k equivalence, structured patterns, the price of obliviousness,
// worst-case permutation search, collectives and failure resilience.
#include <bit>

#include "engine/registry.hpp"
#include "engine/study.hpp"
#include "flow/collectives.hpp"
#include "flow/link_load.hpp"
#include "flow/oload.hpp"
#include "flow/resilience.hpp"
#include "flow/traffic.hpp"
#include "flow/traffic_aware.hpp"
#include "flow/worst_case.hpp"
#include "util/rng.hpp"

namespace lmpr::engine {

namespace {

void run_level_balance(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(
      topo::XgftSpec::m_port_n_tree(ctx.full() ? 16 : 8, 3));
  const topo::Xgft xgft{spec};
  const int samples = ctx.full() ? 200 : 40;
  const std::vector<std::size_t> k_values{2, 4, 8};

  util::Table table({"heuristic", "K", "max_load", "up_L0", "up_L1", "up_L2",
                     "down_L2", "down_L1", "down_L0"});
  for (const route::Heuristic h :
       {route::Heuristic::kDModK, route::Heuristic::kShift1,
        route::Heuristic::kDisjoint, route::Heuristic::kRandom}) {
    for (const std::size_t k : k_values) {
      util::Rng rng{ctx.seed()};
      flow::LoadEvaluator eval(xgft);
      double overall = 0.0;
      std::vector<double> up(xgft.height(), 0.0);
      std::vector<double> down(xgft.height(), 0.0);
      for (int s = 0; s < samples; ++s) {
        const auto tm =
            flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
        const auto result = eval.evaluate(tm, h, k, rng);
        overall += result.max_load;
        for (std::uint32_t l = 0; l < xgft.height(); ++l) {
          up[l] += result.max_up_load_per_level[l];
          down[l] += result.max_down_load_per_level[l];
        }
      }
      const double n = samples;
      table.add_row({std::string(to_string(h)), util::Table::num(k),
                     util::Table::num(overall / n),
                     util::Table::num(up[0] / n), util::Table::num(up[1] / n),
                     util::Table::num(up[2] / n),
                     util::Table::num(down[2] / n),
                     util::Table::num(down[1] / n),
                     util::Table::num(down[0] / n)});
      if (route::is_single_path(h)) break;  // K is irrelevant
    }
  }
  report.add_config("topology", spec.to_string());
  report.add_config("samples", std::to_string(samples));
  report.samples = static_cast<std::size_t>(samples);
  report.add_section(
      "Ablation A1: avg per-level max link load (permutations), " +
          spec.to_string(),
      std::move(table));
}

void run_smodk_vs_dmodk(const RunContext& ctx, Report& report) {
  const std::vector<topo::XgftSpec> specs = {
      topo::XgftSpec::m_port_n_tree(8, 2),
      topo::XgftSpec::m_port_n_tree(16, 2),
      topo::XgftSpec::m_port_n_tree(8, 3),
      topo::XgftSpec::m_port_n_tree(16, 3),
  };

  util::Table table({"topology", "dmodk avg max load", "smodk avg max load",
                     "relative diff %", "samples"});
  bool converged = true;
  std::size_t max_samples = 0;
  for (const auto& spec : specs) {
    const topo::Xgft xgft{spec};
    double means[2] = {0.0, 0.0};
    std::size_t samples = 0;
    const route::Heuristic hs[2] = {route::Heuristic::kDModK,
                                    route::Heuristic::kSModK};
    for (int i = 0; i < 2; ++i) {
      flow::PermutationStudyConfig config;
      config.heuristic = hs[i];
      config.k_paths = 1;
      config.stopping = ctx.stopping_rule();
      config.seed = ctx.seed();
      config.track_perf_ratio = false;
      const auto result = flow::run_permutation_study(xgft, config);
      means[i] = result.max_load.mean();
      samples = result.samples;
      converged = converged && result.converged;
    }
    max_samples = std::max(max_samples, samples);
    table.add_row({spec.to_string(), util::Table::num(means[0]),
                   util::Table::num(means[1]),
                   util::Table::num(100.0 * std::abs(means[0] - means[1]) /
                                        means[0],
                                    2),
                   util::Table::num(samples)});
  }
  report.add_config("topologies", std::to_string(specs.size()));
  report.samples = max_samples;
  report.converged = converged;
  report.add_section(
      "s-mod-k vs d-mod-k: negligible difference (Section 3.3)",
      std::move(table));
}

void run_patterns_structured(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};
  const std::uint64_t hosts = xgft.num_hosts();

  struct Scheme {
    route::Heuristic heuristic;
    std::size_t k;
  };
  std::vector<Scheme> schemes{{route::Heuristic::kDModK, 1}};
  for (const std::size_t k : {2u, 4u, 8u}) {
    schemes.push_back({route::Heuristic::kShift1, k});
    schemes.push_back({route::Heuristic::kDisjoint, k});
    schemes.push_back({route::Heuristic::kRandom, k});
  }
  schemes.push_back({route::Heuristic::kUmulti, 1});

  // Pattern families.  all-shifts = worst over every cyclic offset;
  // W-shifts = offsets that are multiples of prod(w) (the d-mod-k
  // concentrators from the Theorem 2 proof idea).
  const std::uint64_t w_total = spec.num_top_switches();
  std::vector<std::uint64_t> all_shifts;
  for (std::uint64_t s = 1; s < hosts; ++s) all_shifts.push_back(s);

  util::Table table({"heuristic", "K", "worst shift PERF",
                     "worst W-multiple shift PERF", "bit-reversal PERF"});
  flow::LoadEvaluator eval(xgft);
  util::Rng rng{ctx.seed()};
  for (const auto& scheme : schemes) {
    double worst_shift = 0.0;
    double worst_wshift = 0.0;
    for (const std::uint64_t offset : all_shifts) {
      const auto tm = flow::TrafficMatrix::shift(hosts, offset);
      const double perf = flow::perf_ratio(
          eval.evaluate(tm, scheme.heuristic, scheme.k, rng).max_load,
          flow::oload(xgft, tm).value);
      worst_shift = std::max(worst_shift, perf);
      if (offset % w_total == 0) worst_wshift = std::max(worst_wshift, perf);
    }
    double bitrev = 0.0;
    if (std::has_single_bit(hosts)) {
      const auto tm = flow::TrafficMatrix::bit_reversal(hosts);
      bitrev = flow::perf_ratio(
          eval.evaluate(tm, scheme.heuristic, scheme.k, rng).max_load,
          flow::oload(xgft, tm).value);
    }
    table.add_row({std::string(to_string(scheme.heuristic)),
                   util::Table::num(scheme.k),
                   util::Table::num(worst_shift),
                   util::Table::num(worst_wshift),
                   util::Table::num(bitrev)});
  }
  report.add_config("topology", spec.to_string());
  report.samples = all_shifts.size();
  report.add_section(
      "Structured patterns (shift family, bit-reversal), " + spec.to_string(),
      std::move(table));
}

void run_price_of_obliviousness(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};
  const int samples = ctx.full() ? 100 : 25;

  util::Table table({"K", "oload(optimal)", "aware(greedy)", "disjoint",
                     "random", "shift1", "dmodk"});
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    util::Rng rng{ctx.seed()};
    flow::LoadEvaluator eval(xgft);
    double sums[6] = {0, 0, 0, 0, 0, 0};
    for (int s = 0; s < samples; ++s) {
      const auto tm =
          flow::TrafficMatrix::random_permutation(xgft.num_hosts(), rng);
      sums[0] += flow::oload(xgft, tm).value;
      flow::TrafficAwareConfig aware;
      aware.k_paths = k;
      sums[1] += flow::traffic_aware_kpath(xgft, tm, aware).max_load;
      sums[2] += eval.evaluate(tm, route::Heuristic::kDisjoint, k, rng).max_load;
      sums[3] += eval.evaluate(tm, route::Heuristic::kRandom, k, rng).max_load;
      sums[4] += eval.evaluate(tm, route::Heuristic::kShift1, k, rng).max_load;
      sums[5] += eval.evaluate(tm, route::Heuristic::kDModK, k, rng).max_load;
    }
    std::vector<std::string> row{util::Table::num(k)};
    for (const double sum : sums) {
      row.push_back(util::Table::num(sum / samples));
    }
    table.add_row(std::move(row));
  }
  report.add_config("topology", spec.to_string());
  report.add_config("samples", std::to_string(samples));
  report.samples = static_cast<std::size_t>(samples);
  report.add_section(
      "Price of obliviousness (avg max permutation load), " + spec.to_string(),
      std::move(table));
}

void run_worst_case(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};

  util::Table table({"heuristic", "K", "worst PERF found", "worst max load",
                     "evaluations"});
  std::size_t total_evaluations = 0;
  auto run = [&](route::Heuristic h, std::size_t k) {
    flow::WorstCaseConfig config;
    config.heuristic = h;
    config.k_paths = k;
    config.steps = ctx.full() ? 4000 : 600;
    config.restarts = ctx.full() ? 6 : 2;
    config.seed = ctx.seed();
    const auto result = flow::search_worst_permutation(xgft, config);
    total_evaluations += result.evaluations;
    table.add_row({std::string(to_string(h)), util::Table::num(k),
                   util::Table::num(result.worst_perf),
                   util::Table::num(result.worst_max_load),
                   util::Table::num(result.evaluations)});
  };
  run(route::Heuristic::kDModK, 1);
  for (const std::size_t k : {2u, 4u, 8u}) {
    run(route::Heuristic::kShift1, k);
    run(route::Heuristic::kDisjoint, k);
    run(route::Heuristic::kRandom, k);
  }
  run(route::Heuristic::kUmulti, 1);
  report.add_config("topology", spec.to_string());
  report.samples = total_evaluations;
  report.add_section(
      "Worst-case permutation search (hill climbing), " + spec.to_string(),
      std::move(table));
}

void run_collectives(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};
  const std::uint64_t hosts = xgft.num_hosts();

  std::vector<flow::Collective> workloads;
  workloads.push_back(flow::shift_all_to_all(hosts));
  workloads.push_back(flow::ring_allreduce(hosts));
  if (std::has_single_bit(hosts)) {
    workloads.push_back(flow::recursive_doubling(hosts));
  }
  workloads.push_back(flow::stencil3d(2, 8, hosts / 16));
  workloads.push_back(flow::transpose(hosts / 16, 16));

  struct Scheme {
    route::Heuristic heuristic;
    std::size_t k;
  };
  std::vector<Scheme> schemes{{route::Heuristic::kDModK, 1},
                              {route::Heuristic::kShift1, 4},
                              {route::Heuristic::kDisjoint, 4},
                              {route::Heuristic::kRandom, 4},
                              {route::Heuristic::kDisjoint, 8},
                              {route::Heuristic::kUmulti, 1}};

  util::Table table({"workload", "heuristic", "K", "slowdown",
                     "time", "optimal"});
  util::Rng rng{ctx.seed()};
  for (const auto& workload : workloads) {
    for (const auto& scheme : schemes) {
      const auto cost = flow::evaluate_collective(
          xgft, workload, scheme.heuristic, scheme.k, rng);
      table.add_row({workload.name, std::string(to_string(scheme.heuristic)),
                     util::Table::num(scheme.k),
                     util::Table::num(cost.slowdown),
                     util::Table::num(cost.time, 1),
                     util::Table::num(cost.optimal_time, 1)});
    }
  }
  report.add_config("topology", spec.to_string());
  report.add_config("workloads", std::to_string(workloads.size()));
  report.samples = workloads.size() * schemes.size();
  report.add_section(
      "Collective workloads (bandwidth model), " + spec.to_string(),
      std::move(table));
}

void run_resilience(const RunContext& ctx, Report& report) {
  const auto spec = ctx.topo_or(topo::XgftSpec::m_port_n_tree(8, 3));
  const topo::Xgft xgft{spec};

  util::Table table({"failure rate", "heuristic", "K", "connectivity",
                     "worst trial", "surviving paths"});
  const std::size_t trials = ctx.full() ? 100 : 20;
  for (const double rate : {0.01, 0.05}) {
    struct Scheme {
      route::Heuristic heuristic;
      std::size_t k;
    };
    for (const Scheme& scheme :
         {Scheme{route::Heuristic::kDModK, 1},
          Scheme{route::Heuristic::kShift1, 4},
          Scheme{route::Heuristic::kDisjoint, 4},
          Scheme{route::Heuristic::kRandom, 4},
          Scheme{route::Heuristic::kDisjoint, 8}}) {
      flow::ResilienceConfig config;
      config.heuristic = scheme.heuristic;
      config.k_paths = scheme.k;
      config.cable_failure_probability = rate;
      config.trials = trials;
      config.pair_samples = ctx.full() ? 5000 : 1000;
      config.seed = ctx.seed();
      const auto result = flow::measure_resilience(xgft, config);
      table.add_row({util::Table::num(100.0 * rate, 0) + "%",
                     std::string(to_string(scheme.heuristic)),
                     util::Table::num(scheme.k),
                     util::Table::num(result.connectivity, 4),
                     util::Table::num(result.worst_connectivity, 4),
                     util::Table::num(result.surviving_paths, 4)});
    }
  }
  report.add_config("topology", spec.to_string());
  report.add_config("trials", std::to_string(trials));
  report.samples = trials;
  report.add_section(
      "Multi-path resilience to random cable failures, " + spec.to_string(),
      std::move(table));
}

}  // namespace

void register_flow_scenarios(ScenarioRegistry& registry) {
  Scenario a1;
  a1.name = "ablation_level_balance";
  a1.artifact = "Ablation A1";
  a1.family = Family::kFlow;
  a1.description = "Per-level max link load split up/down: where each "
                   "heuristic leaves contention (Section 4.2.2)";
  a1.quick_params = "8-port 3-tree, 40 permutations";
  a1.full_params = "16-port 3-tree, 200 permutations";
  a1.run = run_level_balance;
  registry.add(a1);

  Scenario smodk;
  smodk.name = "smodk_vs_dmodk";
  smodk.artifact = "Section 3.3";
  smodk.family = Family::kFlow;
  smodk.description = "s-mod-k vs d-mod-k average max permutation load: "
                      "the negligible-difference premise";
  smodk.quick_params = "4 paper topologies, CI rule 30..120 samples";
  smodk.full_params = "4 paper topologies, paper stopping rule";
  smodk.run = run_smodk_vs_dmodk;
  registry.add(smodk);

  Scenario patterns;
  patterns.name = "patterns_structured";
  patterns.artifact = "extension";
  patterns.family = Family::kFlow;
  patterns.description = "Worst PERF over cyclic shifts, W-multiple shifts "
                         "and bit-reversal per heuristic";
  patterns.quick_params = "8-port 3-tree, all shift offsets";
  patterns.full_params = "same (the pattern family is exhaustive)";
  patterns.run = run_patterns_structured;
  registry.add(patterns);

  Scenario price;
  price.name = "price_of_obliviousness";
  price.artifact = "extension";
  price.family = Family::kFlow;
  price.description = "Oblivious K-path heuristics vs traffic-aware greedy "
                      "router vs the OLOAD optimum";
  price.quick_params = "25 permutations per K";
  price.full_params = "100 permutations per K";
  price.run = run_price_of_obliviousness;
  registry.add(price);

  Scenario worst;
  worst.name = "worst_case_permutations";
  worst.artifact = "extension";
  worst.family = Family::kFlow;
  worst.description = "Hill-climbing adversary searching the worst "
                      "permutation per (heuristic, K)";
  worst.quick_params = "600 steps x 2 restarts";
  worst.full_params = "4000 steps x 6 restarts";
  worst.run = run_worst_case;
  registry.add(worst);

  Scenario coll;
  coll.name = "collectives_workloads";
  coll.artifact = "extension";
  coll.family = Family::kFlow;
  coll.description = "Bandwidth-model slowdown of collectives (all-to-all, "
                     "allreduce, stencil, transpose) per scheme";
  coll.quick_params = "5 workloads x 6 schemes";
  coll.full_params = "same (workloads are deterministic)";
  coll.run = run_collectives;
  registry.add(coll);

  Scenario resil;
  resil.name = "resilience_multipath";
  resil.artifact = "extension";
  resil.family = Family::kFlow;
  resil.description = "Pair connectivity under random cable failures: K "
                      "installed paths as static redundancy";
  resil.quick_params = "20 trials x 1000 pair samples";
  resil.full_params = "100 trials x 5000 pair samples";
  resil.run = run_resilience;
  registry.add(resil);
}

}  // namespace lmpr::engine
