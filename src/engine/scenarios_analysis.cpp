// Analytical (simulation-free) scenarios: the InfiniBand LID/LMC budget
// of K-path routing and the LFT realizability of each LID layout.
#include "core/lid_cost.hpp"
#include "engine/registry.hpp"
#include "engine/study.hpp"
#include "fabric/lft.hpp"
#include "util/rng.hpp"

namespace lmpr::engine {

namespace {

void run_lid_cost(const RunContext& /*ctx*/, Report& report) {
  util::Table table({"topology", "hosts", "K", "effective_paths", "LMC",
                     "total_LIDs", "realizable"});
  std::size_t rows = 0;
  for (const std::uint32_t ports : {8u, 16u, 24u}) {
    for (const std::size_t levels : {2u, 3u}) {
      const auto spec = topo::XgftSpec::m_port_n_tree(ports, levels);
      const topo::Xgft xgft{spec};
      const std::uint64_t max_paths = spec.num_top_switches();
      std::vector<std::uint64_t> ks{1, 2, 4, 8};
      if (max_paths > 8) ks.push_back(max_paths);  // the UMULTI column
      for (const std::uint64_t k : ks) {
        const auto cost = route::lid_cost(xgft, k);
        table.add_row({spec.to_string(), util::Table::num(xgft.num_hosts()),
                       util::Table::num(k),
                       util::Table::num(cost.effective_paths),
                       util::Table::num(std::uint64_t{cost.lmc}),
                       util::Table::num(cost.total_lids),
                       cost.realizable ? "yes" : "NO"});
        ++rows;
      }
    }
  }
  report.add_config("topologies", "6 m-port n-trees");
  report.samples = rows;
  report.add_section("Ablation A2: InfiniBand LID cost of K-path routing",
                     std::move(table));
}

void run_lft_realizability(const RunContext& ctx, Report& report) {
  const std::vector<topo::XgftSpec> specs = {
      topo::XgftSpec::m_port_n_tree(8, 2),
      topo::XgftSpec::m_port_n_tree(8, 3),
      topo::XgftSpec::m_port_n_tree(16, 3),
  };
  const int pair_samples = ctx.full() ? 2000 : 300;

  util::Table table({"topology", "layout", "K", "LIDs", "avg coverage ratio",
                     "worst coverage ratio", "pairs at full K"});
  util::Rng rng{ctx.seed()};
  for (const auto& spec : specs) {
    const topo::Xgft xgft{spec};
    for (const auto layout : {fabric::LidLayout::kDisjointLayout,
                              fabric::LidLayout::kShiftLayout}) {
      for (const std::uint64_t k : {2ull, 4ull, 8ull}) {
        if (k > spec.num_top_switches()) continue;
        const fabric::Lft lft(xgft, k, layout);
        double ratio_sum = 0.0;
        double worst = 1.0;
        int full_cover = 0;
        int counted = 0;
        for (int i = 0; i < pair_samples; ++i) {
          const std::uint64_t s = rng.below(xgft.num_hosts());
          const std::uint64_t d = rng.below(xgft.num_hosts());
          if (s == d) continue;
          const std::uint64_t want =
              std::min<std::uint64_t>(k, xgft.num_shortest_paths(s, d));
          const std::uint64_t got =
              std::min<std::uint64_t>(lft.coverage(s, d), want);
          const double ratio =
              static_cast<double>(got) / static_cast<double>(want);
          ratio_sum += ratio;
          worst = std::min(worst, ratio);
          full_cover += (got == want);
          ++counted;
        }
        table.add_row(
            {spec.to_string(),
             layout == fabric::LidLayout::kDisjointLayout ? "disjoint"
                                                          : "shift",
             util::Table::num(k),
             util::Table::num(std::uint64_t{lft.lid_end() - 1}),
             util::Table::num(ratio_sum / counted),
             util::Table::num(worst),
             util::Table::num(100.0 * full_cover / counted, 1) + "%"});
      }
    }
  }
  report.add_config("topologies", std::to_string(specs.size()));
  report.add_config("pair_samples", std::to_string(pair_samples));
  report.samples = static_cast<std::size_t>(pair_samples);
  report.add_section(
      "Ablation A5: LFT realizability of limited multi-path routing",
      std::move(table));
}

}  // namespace

void register_analysis_scenarios(ScenarioRegistry& registry) {
  Scenario a2;
  a2.name = "ablation_lid_cost";
  a2.artifact = "Ablation A2";
  a2.family = Family::kAnalysis;
  a2.description = "InfiniBand LID/LMC budget per K on the six paper "
                   "topologies: where unlimited multi-path stops fitting";
  a2.quick_params = "closed-form (scale-independent)";
  a2.full_params = "same";
  a2.run = run_lid_cost;
  registry.add(a2);

  Scenario a5;
  a5.name = "ablation_lft_realizability";
  a5.artifact = "Ablation A5";
  a5.family = Family::kAnalysis;
  a5.description = "Multipath coverage of disjoint- vs shift-style LID "
                   "layouts when deployed as destination-based LFTs";
  a5.quick_params = "300 SD pair samples";
  a5.full_params = "2000 SD pair samples";
  a5.run = run_lft_realizability;
  registry.add(a5);
}

}  // namespace lmpr::engine
